package fpinterop

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark prints its artifact once (so `go test
// -bench=.` output contains the same rows/series the paper reports) and
// then times the analysis computation.
//
// The shared dataset is built once per process at paper scale — 494
// subjects, 120,855 DMI and 483,420 DDMI comparisons (~660k matches) —
// which takes a couple of minutes on one core. Set FPINTEROP_BENCH_SUBJECTS
// (and optionally FPINTEROP_BENCH_DMI / FPINTEROP_BENCH_DDMI) to shrink it
// for quick runs.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/calib"
	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/shard"
	"fpinterop/internal/stats"
	"fpinterop/internal/study"
)

var (
	benchOnce sync.Once
	benchDS   *study.Dataset
	benchSets *study.ScoreSets
	benchErr  error

	printOnce = map[string]*sync.Once{}
	printMu   sync.Mutex
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchStudy(b *testing.B) (*study.Dataset, *study.ScoreSets) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := study.Config{
			Seed:     2013,
			Subjects: envInt("FPINTEROP_BENCH_SUBJECTS", 494),
			MaxDMI:   envInt("FPINTEROP_BENCH_DMI", 120855),
			MaxDDMI:  envInt("FPINTEROP_BENCH_DDMI", 483420),
		}
		fmt.Printf("[bench] building study: %d subjects, %d DMI, %d DDMI...\n",
			cfg.Subjects, cfg.MaxDMI, cfg.MaxDDMI)
		benchDS, benchErr = study.BuildDataset(cfg)
		if benchErr != nil {
			return
		}
		benchSets, benchErr = study.GenerateScores(benchDS)
		if benchErr == nil {
			fmt.Printf("[bench] study ready.\n")
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchSets
}

// printArtifact prints a rendered table/figure exactly once per process.
func printArtifact(key, text string) {
	printMu.Lock()
	once, ok := printOnce[key]
	if !ok {
		once = &sync.Once{}
		printOnce[key] = once
	}
	printMu.Unlock()
	once.Do(func() { fmt.Println(text) })
}

// BenchmarkTable1DeviceProfiles regenerates Table 1 (device metadata).
func BenchmarkTable1DeviceProfiles(b *testing.B) {
	ds, _ := benchStudy(b)
	printArtifact("table1", study.RenderTable1(ds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.RenderTable1(ds)
	}
}

// BenchmarkFigure1Demographics regenerates Figure 1 (cohort demographics).
func BenchmarkFigure1Demographics(b *testing.B) {
	ds, _ := benchStudy(b)
	printArtifact("figure1", study.RenderFigure1(study.Figure1(ds)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.Figure1(ds)
	}
}

// BenchmarkTable3ScoreCounts regenerates Table 3 (score-set sizes: DMG
// 1,976; DDMG 9,880; DMI 120,855; DDMI 483,420 at paper scale).
func BenchmarkTable3ScoreCounts(b *testing.B) {
	_, sets := benchStudy(b)
	printArtifact("table3", study.RenderTable3(study.Table3(sets)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.Table3(sets)
	}
}

// BenchmarkFigure2OrderedGenuine regenerates Figure 2 (ordered DDMG
// curves per probe device against the Seek II gallery).
func BenchmarkFigure2OrderedGenuine(b *testing.B) {
	ds, sets := benchStudy(b)
	f, err := study.Figure2(ds, sets, "D3")
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("figure2", study.RenderFigure2(f))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Figure2(ds, sets, "D3"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3SameDeviceHistogram regenerates Figure 3 (DMG vs DMI
// histograms on the Cross Match Guardian R2).
func BenchmarkFigure3SameDeviceHistogram(b *testing.B) {
	ds, sets := benchStudy(b)
	f, err := study.Figure3(ds, sets, "D0")
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("figure3", study.RenderFigureHist("Figure 3: DMG and DMI histograms", f))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Figure3(ds, sets, "D0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4CrossDeviceHistogram regenerates Figure 4 (DDMG vs DDMI
// histograms, Guardian R2 gallery vs digID Mini probes).
func BenchmarkFigure4CrossDeviceHistogram(b *testing.B) {
	ds, sets := benchStudy(b)
	f, err := study.Figure4(ds, sets, "D0", "D1")
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("figure4", study.RenderFigureHist("Figure 4: DDMG and DDMI histograms", f))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Figure4(ds, sets, "D0", "D1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4KendallMatrix regenerates Table 4 (Kendall rank
// correlation p-values; diagonal ≈ e-242 at paper scale).
func BenchmarkTable4KendallMatrix(b *testing.B) {
	ds, sets := benchStudy(b)
	t4, err := study.Table4(ds, sets)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("table4", study.RenderTable4(t4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Table4(ds, sets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5FNMRMatrix regenerates Table 5 (interoperability FNMR
// matrix at FMR 0.01%).
func BenchmarkTable5FNMRMatrix(b *testing.B) {
	ds, sets := benchStudy(b)
	m, err := study.FNMRMatrix(ds, sets, study.FNMRMatrixOptions{TargetFMR: 0.0001})
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("table5", study.RenderFNMRMatrix("Table 5: Interoperability FNMR matrix", m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.FNMRMatrix(ds, sets, study.FNMRMatrixOptions{TargetFMR: 0.0001}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6QualityFNMR regenerates Table 6 (FNMR matrix at FMR 0.1%
// restricted to NFIQ quality better than 3).
func BenchmarkTable6QualityFNMR(b *testing.B) {
	ds, sets := benchStudy(b)
	opts := study.FNMRMatrixOptions{TargetFMR: 0.001, MaxQuality: nfiq.Good}
	m, err := study.FNMRMatrix(ds, sets, opts)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("table6", study.RenderFNMRMatrix("Table 6: FNMR matrix, NFIQ quality < 3", m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.FNMRMatrix(ds, sets, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5QualitySurface regenerates Figure 5 (low genuine scores
// by quality pair, same-device vs diverse-device surfaces).
func BenchmarkFigure5QualitySurface(b *testing.B) {
	_, sets := benchStudy(b)
	printArtifact("figure5", study.RenderFigure5(study.Figure5(sets)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.Figure5(sets)
	}
}

// BenchmarkDatasetBuild measures the simulated data collection itself at
// a reduced cohort size (the paper-scale build is timed once by the
// shared setup).
func BenchmarkDatasetBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := study.BuildDataset(study.Config{Seed: 1, Subjects: 10, MaxDMI: 1, MaxDDMI: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreGeneration measures match throughput on a small study.
func BenchmarkScoreGeneration(b *testing.B) {
	ds, err := study.BuildDataset(study.Config{Seed: 1, Subjects: 10, MaxDMI: 100, MaxDDMI: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.GenerateScores(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMatcherDiversity contrasts the primary matcher with
// the simpler baseline on the same cross-device genuine pairs — the
// "diverse matchers" axis of the paper's further work.
func BenchmarkAblationMatcherDiversity(b *testing.B) {
	ds, _ := benchStudy(b)
	n := ds.NumSubjects()
	if n > 60 {
		n = 60
	}
	hough := &match.HoughMatcher{}
	greedy := &match.GreedyMatcher{}
	var hs, gs []float64
	for s := 0; s < n; s++ {
		g := ds.Impression(s, 0, 0).Template
		p := ds.Impression(s, 1, 0).Template
		hr, err := hough.Match(g, p)
		if err != nil {
			b.Fatal(err)
		}
		gr, err := greedy.Match(g, p)
		if err != nil {
			b.Fatal(err)
		}
		hs = append(hs, hr.Score)
		gs = append(gs, gr.Score)
	}
	printArtifact("ablation-matcher", fmt.Sprintf(
		"Ablation: matcher diversity on D0->D1 genuine pairs (n=%d)\n"+
			"  Hough (BioEngine-like): mean %.2f, FNMR@7 %.3f\n"+
			"  Greedy baseline:        mean %.2f, FNMR@7 %.3f",
		n, stats.Mean(hs), stats.FNMRAt(hs, 7), stats.Mean(gs), stats.FNMRAt(gs, 7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.Impression(i%n, 0, 0).Template
		p := ds.Impression(i%n, 1, 0).Template
		if _, err := hough.Match(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCalibration measures how much the Ross–Nadgir TPS
// calibration recovers on cross-device genuine scores.
func BenchmarkAblationCalibration(b *testing.B) {
	ds, _ := benchStudy(b)
	n := ds.NumSubjects()
	if n > 80 {
		n = 80
	}
	train := n / 2
	base := &match.HoughMatcher{}
	var pairs []calib.TemplatePair
	for s := 0; s < train; s++ {
		pairs = append(pairs, calib.TemplatePair{
			Gallery: ds.Impression(s, 0, 0).Template,
			Probe:   ds.Impression(s, 1, 0).Template,
		})
	}
	cal, err := calib.FitCalibration(base, pairs, calib.CalibrationOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cm := &calib.CalibratedMatcher{Base: base, Cal: cal}
	var plain, fixed []float64
	for s := train; s < n; s++ {
		g := ds.Impression(s, 0, 0).Template
		p := ds.Impression(s, 1, 0).Template
		r1, err := base.Match(g, p)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := cm.Match(g, p)
		if err != nil {
			b.Fatal(err)
		}
		plain = append(plain, r1.Score)
		fixed = append(fixed, r2.Score)
	}
	printArtifact("ablation-calibration", fmt.Sprintf(
		"Ablation: Ross-Nadgir calibration on D0->D1 (train %d, eval %d)\n"+
			"  plain:      mean %.2f, FNMR@7 %.3f\n"+
			"  calibrated: mean %.2f, FNMR@7 %.3f",
		train, n-train, stats.Mean(plain), stats.FNMRAt(plain, 7),
		stats.Mean(fixed), stats.FNMRAt(fixed, 7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := train + i%(n-train)
		if _, err := cm.Match(ds.Impression(s, 0, 0).Template, ds.Impression(s, 1, 0).Template); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHabituation quantifies the habituation future-work
// bullet: quality and genuine scores of first vs second samples.
func BenchmarkAblationHabituation(b *testing.B) {
	ds, sets := benchStudy(b)
	var q0, q1, n0, n1 int
	for s := 0; s < ds.NumSubjects(); s++ {
		for d := 0; d < 4; d++ {
			q0 += int(ds.Impression(s, d, 0).Quality)
			n0++
			q1 += int(ds.Impression(s, d, 1).Quality)
			n1++
		}
	}
	printArtifact("ablation-habituation", fmt.Sprintf(
		"Ablation: habituation (live-scan samples)\n"+
			"  mean NFIQ sample 0: %.3f\n  mean NFIQ sample 1: %.3f (lower is better)",
		float64(q0)/float64(n0), float64(q1)/float64(n1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.Figure5(sets)
	}
}

// BenchmarkAblationQualityNorm measures Poh-style quality-conditioned
// score normalization against raw thresholds.
func BenchmarkAblationQualityNorm(b *testing.B) {
	_, sets := benchStudy(b)
	var training []calib.ScoredComparison
	for _, s := range sets.DMI {
		training = append(training, calib.ScoredComparison{
			Score: s.Value, QualityG: s.QualityG, QualityP: s.QualityP,
		})
	}
	for _, s := range sets.DDMI {
		training = append(training, calib.ScoredComparison{
			Score: s.Value, QualityG: s.QualityG, QualityP: s.QualityP,
		})
	}
	qn, err := calib.FitQualityNorm(training, 30)
	if err != nil {
		b.Fatal(err)
	}
	// Normalized genuine/impostor separation vs raw.
	var rawG, rawI, normG, normI []float64
	for _, s := range sets.DDMG {
		rawG = append(rawG, s.Value)
		normG = append(normG, qn.Normalize(s.Value, s.QualityG, s.QualityP))
	}
	for _, s := range sets.DDMI {
		rawI = append(rawI, s.Value)
		normI = append(normI, qn.Normalize(s.Value, s.QualityG, s.QualityP))
	}
	d := func(g, i []float64) float64 {
		sg, si := stats.StdDev(g), stats.StdDev(i)
		return (stats.Mean(g) - stats.Mean(i)) / (sg + si + 1e-9)
	}
	printArtifact("ablation-qualitynorm", fmt.Sprintf(
		"Ablation: quality-conditioned score normalization (cross-device)\n"+
			"  raw separation (d'):        %.3f\n"+
			"  normalized separation (d'): %.3f",
		d(rawG, rawI), d(normG, normI)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qn.Normalize(5, nfiq.Good, nfiq.Fair)
	}
}

// BenchmarkHoughMatch measures single-comparison latency on study
// templates (the number that bounds full-study runtime), in the three
// modes the system uses: the pooled public API, a dedicated session
// (zero steady-state allocations), and a session against an
// enroll-time preparation (the gallery scan configuration).
func BenchmarkHoughMatch(b *testing.B) {
	ds, _ := benchStudy(b)
	m := &match.HoughMatcher{}
	g := ds.Impression(0, 0, 0).Template
	p := ds.Impression(0, 1, 0).Template
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Match(g, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		sess := match.NewSession(m)
		if _, err := sess.Match(g, p); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Match(g, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-prepared", func(b *testing.B) {
		b.ReportAllocs()
		sess := match.NewSession(m)
		prep := m.Prepare(g)
		if _, err := sess.MatchPrepared(prep, p); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.MatchPrepared(prep, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCaptureTemplatePath measures template-level capture throughput.
func BenchmarkCaptureTemplatePath(b *testing.B) {
	ds, _ := benchStudy(b)
	subj := ds.Cohort.Subjects[0]
	d0, _ := sensor.ProfileByID("D0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d0.CaptureSubject(subj, i%2, sensor.CaptureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistortionSweep sweeps the device-characteristic
// distortion amplitude — the design knob DESIGN.md identifies as the
// mechanism behind interoperability loss — and reports how cross-device
// genuine scores respond. At zero relative warp the cross-device penalty
// should largely vanish; it should grow monotonically with amplitude.
func BenchmarkAblationDistortionSweep(b *testing.B) {
	ds, _ := benchStudy(b)
	n := ds.NumSubjects()
	if n > 40 {
		n = 40
	}
	base, _ := sensor.ProfileByID("D1")
	matcher := &match.HoughMatcher{}
	var lines []string
	for _, scale := range []float64{0, 0.5, 1, 2} {
		// Copy the probe device and rescale its systematic warp.
		dev := *base
		dev.DistortAmp = base.DistortAmp * scale
		var scores []float64
		for s := 0; s < n; s++ {
			subj := ds.Cohort.Subjects[s]
			imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
			if err != nil {
				b.Fatal(err)
			}
			g := ds.Impression(s, 0, 0) // D0 gallery
			res, err := matcher.Match(g.Template, imp.Template)
			if err != nil {
				b.Fatal(err)
			}
			scores = append(scores, res.Score)
		}
		lines = append(lines, fmt.Sprintf("  amp x%.1f: mean %.2f, FNMR@7 %.3f",
			scale, stats.Mean(scores), stats.FNMRAt(scores, 7)))
	}
	printArtifact("ablation-distortion", "Ablation: D1 distortion amplitude vs D0-gallery genuine scores\n"+
		strings.Join(lines, "\n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := ds.Cohort.Subjects[i%n]
		if _, err := base.CaptureSubject(subj, 0, sensor.CaptureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTwoFingerFusion quantifies the paper's final
// further-work bullet: using more than one finger per participant to
// improve the error rates. Cross-device verification (D0 gallery, D1
// probes) with right index + right middle, fused with the sum rule.
func BenchmarkExtensionTwoFingerFusion(b *testing.B) {
	ds, _ := benchStudy(b)
	n := ds.NumSubjects()
	if n > 50 {
		n = 50
	}
	d0, _ := sensor.ProfileByID("D0")
	d1, _ := sensor.ProfileByID("D1")
	matcher := &match.HoughMatcher{}
	fingers := []population.Finger{population.RightIndex, population.RightMiddle}
	var single, fused []float64
	for s := 0; s < n; s++ {
		subj := ds.Cohort.Subjects[s]
		var scores []float64
		for _, f := range fingers {
			g, err := d0.CaptureFinger(subj, f, 0, sensor.CaptureOptions{})
			if err != nil {
				b.Fatal(err)
			}
			p, err := d1.CaptureFinger(subj, f, 1, sensor.CaptureOptions{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := matcher.Match(g.Template, p.Template)
			if err != nil {
				b.Fatal(err)
			}
			scores = append(scores, res.Score)
		}
		single = append(single, scores[0])
		fused = append(fused, calib.FuseSum(scores))
	}
	printArtifact("extension-twofinger", fmt.Sprintf(
		"Extension: two-finger sum-rule fusion, D0 gallery -> D1 probes (n=%d)\n"+
			"  single finger: mean %.2f, FNMR@7 %.3f\n"+
			"  two fingers:   mean %.2f, FNMR@7 %.3f",
		n, stats.Mean(single), stats.FNMRAt(single, 7),
		stats.Mean(fused), stats.FNMRAt(fused, 7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subj := ds.Cohort.Subjects[i%n]
		if _, err := d1.CaptureFinger(subj, population.RightMiddle, 0, sensor.CaptureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionIdentificationCMC measures closed-set identification
// across device pairs — the US-VISIT 1:N workload (O(n²) matches, so it
// runs on a sub-cohort).
func BenchmarkExtensionIdentificationCMC(b *testing.B) {
	ds, _ := benchStudy(b)
	n := ds.NumSubjects()
	if n > 60 {
		n = 60
	}
	var results []study.IdentificationResult
	for _, probeID := range []string{"D0", "D1", "D4"} {
		r, err := study.Identification(ds, "D0", probeID, n, 5)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}
	printArtifact("extension-cmc", study.RenderIdentification(results))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Identification(ds, "D0", "D1", 10, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionShift prints the Mann-Whitney distribution-shift test
// of DMG vs DDMG per gallery device.
func BenchmarkExtensionShift(b *testing.B) {
	ds, sets := benchStudy(b)
	a, err := study.Shift(ds, sets)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("extension-shift", study.RenderShift(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Shift(ds, sets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionEERMatrix prints the per-device-pair equal error
// rates, mirroring the Ross & Jain cross-sensor EER comparison.
func BenchmarkExtensionEERMatrix(b *testing.B) {
	ds, sets := benchStudy(b)
	m, err := study.EERMatrix(ds, sets)
	if err != nil {
		b.Fatal(err)
	}
	printArtifact("extension-eer", study.RenderEERMatrix(m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.EERMatrix(ds, sets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionQualityByDevice prints the per-device NFIQ
// distribution.
func BenchmarkExtensionQualityByDevice(b *testing.B) {
	ds, _ := benchStudy(b)
	printArtifact("extension-qualitydist", study.RenderQualityByDevice(study.QualityByDevice(ds)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = study.QualityByDevice(ds)
	}
}

// --- Indexed 1:N identification ---------------------------------------
//
// The retrieval-stage benchmark builds synthetic galleries far larger
// than the study cohort (identification latency is the deployment
// bottleneck, not match accuracy), so it uses its own template cache
// rather than the shared study dataset. Scale with
// FPINTEROP_BENCH_GALLERY, a comma-separated list of gallery sizes
// (default "1000,10000,50000").

var (
	idxBenchMu      sync.Mutex
	idxBenchCohort  *population.Cohort
	idxBenchTpls    []*minutiae.Template // gallery templates (D0, sample 0)
	idxBenchProbes  []*minutiae.Template // probe templates (D0, sample 1)
	idxBenchStores  = map[string]*gallery.Store{}
	idxBenchRouters = map[string]*shard.Router{}
)

const idxBenchProbeCount = 16

func idxBenchSizes() []int {
	spec := os.Getenv("FPINTEROP_BENCH_GALLERY")
	if spec == "" {
		return []int{1000, 10000, 50000}
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		if n, err := strconv.Atoi(strings.TrimSpace(f)); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return []int{1000, 10000, 50000}
	}
	return out
}

// idxBenchFill ensures n gallery templates and the shared probe set are
// captured; the caller must hold idxBenchMu.
func idxBenchFill(b *testing.B, n int) {
	b.Helper()
	if idxBenchCohort == nil {
		max := idxBenchProbeCount
		for _, s := range idxBenchSizes() {
			if s > max {
				max = s
			}
		}
		idxBenchCohort = population.NewCohort(rng.New(4242), population.CohortOptions{Size: max})
	}
	d0, _ := sensor.ProfileByID("D0")
	for len(idxBenchTpls) < n {
		imp, err := d0.CaptureSubject(idxBenchCohort.Subjects[len(idxBenchTpls)], 0, sensor.CaptureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		idxBenchTpls = append(idxBenchTpls, imp.Template)
	}
	for len(idxBenchProbes) < idxBenchProbeCount {
		imp, err := d0.CaptureSubject(idxBenchCohort.Subjects[len(idxBenchProbes)], 1, sensor.CaptureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		idxBenchProbes = append(idxBenchProbes, imp.Template)
	}
}

// idxBenchStore returns a cached gallery of n enrollments, with or
// without the triplet index, plus the shared probe set. Stores are
// built once per (size, variant) and reused across benchmark
// iterations.
func idxBenchStore(b *testing.B, n int, indexed bool) (*gallery.Store, []*minutiae.Template) {
	b.Helper()
	idxBenchMu.Lock()
	defer idxBenchMu.Unlock()
	idxBenchFill(b, n)
	key := fmt.Sprintf("exhaustive/%d", n)
	if indexed {
		key = fmt.Sprintf("indexed/%d", n)
	}
	if s, ok := idxBenchStores[key]; ok {
		return s, idxBenchProbes
	}
	store := gallery.New(nil)
	for i := 0; i < n; i++ {
		if err := store.Enroll(fmt.Sprintf("subject-%06d", i), "D0", idxBenchTpls[i]); err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		start := time.Now()
		if err := store.EnableIndex(gallery.IndexOptions{}); err != nil {
			b.Fatal(err)
		}
		st, _ := store.IndexStats()
		printArtifact(key, fmt.Sprintf(
			"[indexed-identify] N=%d: index built in %v (%d keys, %d postings)",
			n, time.Since(start).Round(time.Millisecond), st.DistinctKeys, st.Postings))
	}
	idxBenchStores[key] = store
	return store, idxBenchProbes
}

// BenchmarkExtensionIndexedIdentify contrasts 1:N identification served
// by the minutia-triplet retrieval index against the exhaustive scan at
// growing gallery sizes, and prints the indexed-vs-exhaustive CMC
// comparison on the study population (the recall cost of the
// shortlist). The acceptance bar for the retrieval stage: ≥5× speedup
// at 10k enrollments with rank-1 within 2pp of exhaustive.
func BenchmarkExtensionIndexedIdentify(b *testing.B) {
	ds, sets := benchStudy(b)
	if e, ok := study.ExperimentByID("index"); ok {
		out, err := e.Run(ds, sets)
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("extension-index", out)
	}
	for _, n := range idxBenchSizes() {
		for _, indexed := range []bool{false, true} {
			name := fmt.Sprintf("exhaustive/N=%d", n)
			if indexed {
				name = fmt.Sprintf("indexed/N=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				store, probes := idxBenchStore(b, n, indexed)
				b.ResetTimer()
				shortlistSum := 0
				for i := 0; i < b.N; i++ {
					cands, stats, err := store.IdentifyDetailed(probes[i%len(probes)], 5)
					if err != nil {
						b.Fatal(err)
					}
					if len(cands) == 0 {
						b.Fatal("no candidates")
					}
					if indexed && !stats.Indexed {
						b.Fatalf("recall guard tripped at N=%d (shortlist %d)", n, stats.Shortlist)
					}
					shortlistSum += stats.Shortlist
				}
				if indexed {
					b.ReportMetric(float64(shortlistSum)/float64(b.N), "shortlist/op")
				}
			})
		}
	}
}

// shardBenchRouter returns a cached scatter-gather router of `shards`
// indexed local shards holding n enrollments, plus the shared probes.
// Per-shard index fanout shrinks with the shard count (each shard only
// needs to surface the global top-k plus slack), so the merged scan
// count stays comparable to a single indexed store while ring lookup
// and index voting parallelize across shards.
func shardBenchRouter(b *testing.B, n, shards int) (*shard.Router, []*minutiae.Template) {
	b.Helper()
	idxBenchMu.Lock()
	defer idxBenchMu.Unlock()
	idxBenchFill(b, n)
	key := fmt.Sprintf("sharded/%d/%d", shards, n)
	if r, ok := idxBenchRouters[key]; ok {
		return r, idxBenchProbes
	}
	fanout := (64 + shards - 1) / shards
	if fanout < 8 {
		fanout = 8
	}
	backends := make([]shard.Backend, shards)
	for i := range backends {
		store := gallery.New(nil)
		if err := store.EnableIndex(gallery.IndexOptions{
			Index:         index.Options{Fanout: fanout},
			MinCandidates: 1,
		}); err != nil {
			b.Fatal(err)
		}
		backends[i] = shard.NewLocal(fmt.Sprintf("shard-%d", i), store)
	}
	router, err := shard.New(backends, shard.Options{})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]shard.Enrollment, n)
	for i := 0; i < n; i++ {
		items[i] = shard.Enrollment{ID: fmt.Sprintf("subject-%06d", i), DeviceID: "D0", Template: idxBenchTpls[i]}
	}
	start := time.Now()
	if err := router.EnrollBatch(context.Background(), items); err != nil {
		b.Fatal(err)
	}
	sizes := make([]string, shards)
	for i, bk := range router.Backends() {
		sz, _ := bk.Len(context.Background())
		sizes[i] = fmt.Sprintf("%d", sz)
	}
	printArtifact(key, fmt.Sprintf(
		"[sharded-identify] N=%d shards=%d: built in %v (per-shard fanout %d, sizes %s)",
		n, shards, time.Since(start).Round(time.Millisecond), fanout, strings.Join(sizes, "/")))
	idxBenchRouters[key] = router
	return router, idxBenchProbes
}

// BenchmarkExtensionShardedIdentify measures 1:N identification through
// the scatter-gather shard router at growing shard counts: the
// horizontal-scale path the deployment architecture needs once a single
// store (even indexed) saturates. Each sub-benchmark fans the probe out
// to every shard and merges the per-shard top-5 shortlists; at a fixed
// gallery size the p50 should improve as shards are added, because the
// per-shard index voting and shortlist scoring shrink with the
// partition while the fan-out runs in parallel.
func BenchmarkExtensionShardedIdentify(b *testing.B) {
	for _, n := range idxBenchSizes() {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("shards=%d/N=%d", shards, n), func(b *testing.B) {
				router, probes := shardBenchRouter(b, n, shards)
				b.ResetTimer()
				scannedSum := 0
				for i := 0; i < b.N; i++ {
					cands, stats, err := router.IdentifyDetailed(context.Background(), probes[i%len(probes)], 5)
					if err != nil {
						b.Fatal(err)
					}
					if len(cands) == 0 {
						b.Fatal("no candidates")
					}
					if stats.Partial || stats.ShardsQueried != shards {
						b.Fatalf("partial coverage at N=%d shards=%d: %+v", n, shards, stats)
					}
					scannedSum += stats.Scanned
				}
				b.ReportMetric(float64(scannedSum)/float64(b.N), "scanned/op")
			})
		}
	}
}

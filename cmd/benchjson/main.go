// Command benchjson converts `go test -bench` output into a JSON
// perf-trajectory file: a map from benchmark name to its measured
// metrics (ns/op, B/op, allocs/op, and any custom b.ReportMetric
// units). CI pipes the key benchmarks through it and uploads the result
// (BENCH_PR4.json) so per-PR performance is diffable by machines, not
// just eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./cmd/benchjson -o BENCH.json
//
// Lines that are not benchmark results are ignored, so raw `go test`
// output can be piped straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements, keyed by unit ("ns/op",
// "B/op", "allocs/op", "shortlist/op", ...).
type Metrics map[string]float64

// benchLine matches a benchmark result row: name, iteration count, then
// value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing GOMAXPROCS marker (Benchmark-8 → Benchmark).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark results from go test -bench output.
func parse(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		metrics := out[name]
		if metrics == nil {
			metrics = make(Metrics)
			out[name] = metrics
		}
		iters, err := strconv.ParseFloat(m[2], 64)
		if err == nil {
			metrics["iterations"] = iters
		}
		// value unit pairs: "45300 ns/op 512 B/op 1 allocs/op".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], sc.Text())
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	// Go maps marshal with sorted keys, so the output is already stable.
	data, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
}

// Command benchjson converts `go test -bench` output into a JSON
// perf-trajectory file: a map from benchmark name to its measured
// metrics (ns/op, B/op, allocs/op, and any custom b.ReportMetric
// units). CI pipes the key benchmarks through it and uploads the result
// (BENCH_PR4.json) so per-PR performance is diffable by machines, not
// just eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./cmd/benchjson -o BENCH.json
//
// Lines that are not benchmark results are ignored, so raw `go test`
// output can be piped straight in.
//
// Regression gating: -baseline FILE compares each benchmark's ns/op
// against an earlier benchjson file and, with -max-regress PCT, exits
// nonzero when any shared benchmark slowed down by more than PCT
// percent. -ratio NAME_A,NAME_B,MAX asserts a scaling relationship
// inside the current run — exit nonzero when ns/op(A)/ns/op(B) exceeds
// MAX (e.g. a depth-8 pipelined benchmark must spend well under 8x a
// depth-1 stream per operation).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements, keyed by unit ("ns/op",
// "B/op", "allocs/op", "shortlist/op", ...).
type Metrics map[string]float64

// benchLine matches a benchmark result row: name, iteration count, then
// value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing GOMAXPROCS marker (Benchmark-8 → Benchmark).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark results from go test -bench output.
func parse(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		metrics := out[name]
		if metrics == nil {
			metrics = make(Metrics)
			out[name] = metrics
		}
		iters, err := strconv.ParseFloat(m[2], 64)
		if err == nil {
			metrics["iterations"] = iters
		}
		// value unit pairs: "45300 ns/op 512 B/op 1 allocs/op".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], sc.Text())
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// checkBaseline compares ns/op per benchmark against an earlier
// benchjson file, returning the names that regressed beyond maxRegress
// percent (none when maxRegress <= 0 — report-only mode). Benchmarks
// present on only one side are skipped: the corpus grows PR over PR.
func checkBaseline(cur map[string]Metrics, baseline []byte, maxRegress float64, warn io.Writer) ([]string, error) {
	var prev struct {
		Benchmarks map[string]Metrics `json:"benchmarks"`
	}
	if err := json.Unmarshal(baseline, &prev); err != nil {
		return nil, fmt.Errorf("benchjson: bad baseline: %w", err)
	}
	var regressed []string
	for name, metrics := range cur {
		base, ok := prev.Benchmarks[name]
		if !ok || base["ns/op"] <= 0 || metrics["ns/op"] <= 0 {
			continue
		}
		pct := (metrics["ns/op"] - base["ns/op"]) / base["ns/op"] * 100
		fmt.Fprintf(warn, "benchjson: %s ns/op %+.1f%% vs baseline\n", name, pct)
		if maxRegress > 0 && pct > maxRegress {
			regressed = append(regressed, name)
		}
	}
	return regressed, nil
}

// checkRatio evaluates a NAME_A,NAME_B,MAX assertion against the
// current results.
func checkRatio(cur map[string]Metrics, spec string, warn io.Writer) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("benchjson: -ratio wants NAME_A,NAME_B,MAX, got %q", spec)
	}
	max, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("benchjson: bad -ratio bound %q", parts[2])
	}
	a, b := cur[parts[0]], cur[parts[1]]
	if a["ns/op"] <= 0 || b["ns/op"] <= 0 {
		return fmt.Errorf("benchjson: -ratio needs ns/op for both %q and %q", parts[0], parts[1])
	}
	r := a["ns/op"] / b["ns/op"]
	fmt.Fprintf(warn, "benchjson: ratio %s/%s = %.3f (max %.3f)\n", parts[0], parts[1], r, max)
	if r > max {
		return fmt.Errorf("benchjson: ratio %s/%s = %.3f exceeds %.3f", parts[0], parts[1], r, max)
	}
	return nil
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	baseline := flag.String("baseline", "", "earlier benchjson file to diff ns/op against")
	maxRegress := flag.Float64("max-regress", 0, "with -baseline: fail when any shared benchmark's ns/op regresses more than this percent (0 = report only)")
	ratio := flag.String("ratio", "", "NAME_A,NAME_B,MAX: fail when ns/op(A)/ns/op(B) exceeds MAX")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	failed := false
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		regressed, err := checkBaseline(results, data, *maxRegress, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, name := range regressed {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s regressed more than %.1f%%\n", name, *maxRegress)
			failed = true
		}
	}
	if *ratio != "" {
		if err := checkRatio(results, *ratio, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	// Go maps marshal with sorted keys, so the output is already stable.
	data, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
	}
	if failed {
		// The JSON is still written above: a failing gate should leave
		// the artifact behind for the investigation.
		os.Exit(1)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: fpinterop
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHoughMatch/pooled-8         	   25000	     45300 ns/op	     512 B/op	       1 allocs/op
BenchmarkHoughMatch/session-8        	   30000	     40100 ns/op	       0 B/op	       0 allocs/op
BenchmarkExtensionIndexedIdentify/indexed/N=1000-8 	 100	  901234 ns/op	  64.0 shortlist/op
PASS
ok  	fpinterop	12.3s
`
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	pooled := got["BenchmarkHoughMatch/pooled"]
	if pooled == nil {
		t.Fatalf("missing pooled entry (cpu suffix not stripped?): %v", got)
	}
	if pooled["ns/op"] != 45300 || pooled["allocs/op"] != 1 {
		t.Fatalf("pooled metrics wrong: %v", pooled)
	}
	sess := got["BenchmarkHoughMatch/session"]
	if sess["allocs/op"] != 0 {
		t.Fatalf("session allocs/op = %v, want 0", sess["allocs/op"])
	}
	idx := got["BenchmarkExtensionIndexedIdentify/indexed/N=1000"]
	if idx["shortlist/op"] != 64 {
		t.Fatalf("custom metric lost: %v", idx)
	}
	if idx["iterations"] != 100 {
		t.Fatalf("iterations lost: %v", idx)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmark notanumber ns/op\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed garbage: %v", got)
	}
}

func TestCheckBaseline(t *testing.T) {
	cur := map[string]Metrics{
		"BenchmarkA":   {"ns/op": 110},
		"BenchmarkB":   {"ns/op": 100},
		"BenchmarkNew": {"ns/op": 50}, // absent from the baseline: skipped
	}
	baseline := []byte(`{"benchmarks":{"BenchmarkA":{"ns/op":100},"BenchmarkB":{"ns/op":100},"BenchmarkGone":{"ns/op":1}}}`)
	var buf strings.Builder
	regressed, err := checkBaseline(cur, baseline, 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("regressed = %v, want [BenchmarkA]", regressed)
	}
	// Report-only mode never fails.
	regressed, err = checkBaseline(cur, baseline, 0, &buf)
	if err != nil || len(regressed) != 0 {
		t.Fatalf("report-only: %v %v", regressed, err)
	}
	if _, err := checkBaseline(cur, []byte("not json"), 5, &buf); err == nil {
		t.Fatal("bad baseline accepted")
	}
}

func TestCheckRatio(t *testing.T) {
	cur := map[string]Metrics{
		"BenchmarkDepth8": {"ns/op": 300},
		"BenchmarkDepth1": {"ns/op": 1000},
	}
	var buf strings.Builder
	if err := checkRatio(cur, "BenchmarkDepth8,BenchmarkDepth1,0.5", &buf); err != nil {
		t.Fatalf("0.3 ratio under 0.5 bound failed: %v", err)
	}
	if err := checkRatio(cur, "BenchmarkDepth8,BenchmarkDepth1,0.2", &buf); err == nil {
		t.Fatal("0.3 ratio over 0.2 bound accepted")
	}
	if err := checkRatio(cur, "BenchmarkDepth8,BenchmarkMissing,0.5", &buf); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if err := checkRatio(cur, "malformed", &buf); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if err := checkRatio(cur, "BenchmarkDepth8,BenchmarkDepth1,zero", &buf); err == nil {
		t.Fatal("bad bound accepted")
	}
}

// Command fpclassify assigns the Henry pattern class (arch, tented arch,
// left/right loop, whorl) to fingerprint images by detecting singular
// points with the Poincaré index.
//
// Usage:
//
//	fpclassify print.pgm [more.pgm ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"fpinterop/internal/classify"
	"fpinterop/internal/imgproc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpclassify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpclassify", flag.ContinueOnError)
	minCoherence := fs.Float64("min-coherence", 0.3, "minimum ring coherence for singular point detection")
	showPoints := fs.Bool("points", false, "list detected singular points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one PGM file")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		img, err := imgproc.ReadPGM(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		class, pts := classify.ClassifyImage(img, *minCoherence)
		cores, deltas := 0, 0
		for _, p := range pts {
			if p.IsCore() {
				cores++
			} else {
				deltas++
			}
		}
		fmt.Printf("%s: %s (%d cores, %d deltas)\n", path, class, cores, deltas)
		if *showPoints {
			for _, p := range pts {
				kind := "delta"
				if p.IsCore() {
					kind = "core"
				}
				fmt.Printf("  %-5s at (%d, %d)\n", kind, p.X, p.Y)
			}
		}
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"fpinterop/internal/imgproc"
	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

func writePrint(t *testing.T, class ridge.Class) string {
	t.Helper()
	m := ridge.Generate("cli", rng.New(9).Child("m"),
		ridge.GenOptions{ForceClass: class, MeanMinutiae: 10})
	img, err := ridge.Synthesize(m, m.Pad, 250, ridge.SynthOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.pgm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := imgproc.WritePGM(f, img); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunClassifies(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis is slow")
	}
	path := writePrint(t, ridge.Whorl)
	if err := run([]string{"-points", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected no-args error")
	}
	if err := run([]string{"/no/such.pgm"}); err == nil {
		t.Fatal("expected missing-file error")
	}
}

// Command fpgen synthesizes fingerprint data: a master print captured
// through a chosen device's full image pipeline, written as a PGM image,
// optionally alongside the minutiae template.
//
// Usage:
//
//	fpgen -out print.pgm [-seed N] [-subject N] [-device D0] [-sample N]
//	      [-template print.fmr]
package main

import (
	"flag"
	"fmt"
	"os"

	"fpinterop/internal/imgproc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpgen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2013, "study seed")
	subject := fs.Int("subject", 0, "subject index within the cohort")
	deviceID := fs.String("device", "D0", "capture device (D0..D4)")
	sample := fs.Int("sample", 0, "sample index")
	out := fs.String("out", "", "output PGM path (required)")
	tplOut := fs.String("template", "", "optional output path for the minutiae template")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	dev, ok := sensor.ProfileByID(*deviceID)
	if !ok {
		return fmt.Errorf("unknown device %q (want D0..D4)", *deviceID)
	}
	if *subject < 0 {
		return fmt.Errorf("subject index must be non-negative")
	}

	cohort := population.NewCohort(rng.New(*seed).Child("cohort"), population.CohortOptions{
		Size: *subject + 1,
	})
	subj := cohort.Subjects[*subject]

	img, _, err := dev.CaptureImage(subj.Master(), subj.Traits,
		subj.CaptureSource(dev.ID+"/image", *sample),
		sensor.CaptureOptions{SampleIndex: *sample})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create output: %w", err)
	}
	defer f.Close()
	if err := imgproc.WritePGM(f, img); err != nil {
		return err
	}
	fmt.Printf("wrote %s: subject %d on %s (%s), %dx%d px\n",
		*out, *subject, dev.ID, dev.Model, img.W, img.H)

	if *tplOut != "" {
		imp, err := dev.CaptureSubject(subj, *sample, sensor.CaptureOptions{})
		if err != nil {
			return err
		}
		data, err := minutiae.Marshal(imp.Template)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*tplOut, data, 0o644); err != nil {
			return fmt.Errorf("write template: %w", err)
		}
		fmt.Printf("wrote %s: %d minutiae, quality %s\n", *tplOut, imp.Template.Count(), imp.Quality)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGeneratesPGMAndTemplate(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "a.pgm")
	tpl := filepath.Join(dir, "a.fmr")
	if err := run([]string{"-out", img, "-template", tpl, "-device", "D2", "-subject", "1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatalf("not a PGM: %q", data[:2])
	}
	tplData, err := os.ReadFile(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if string(tplData[:3]) != "FMR" {
		t.Fatalf("not a template: %q", tplData[:3])
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -out
		{"-out", "x.pgm", "-device", "D9"},  // unknown device
		{"-out", "x.pgm", "-subject", "-1"}, // bad subject
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("expected error for %v", args)
		}
	}
}

// Command fpmatch compares two fingerprints and prints the similarity
// score. Inputs may be PGM images (matched through the full image
// pipeline: enhancement, binarization, thinning, minutiae extraction) or
// serialized minutiae templates (.fmr files produced by fpgen).
//
// Usage:
//
//	fpmatch gallery.pgm probe.pgm
//	fpmatch -templates gallery.fmr probe.fmr
//	fpmatch -matcher greedy a.pgm b.pgm
package main

import (
	"flag"
	"fmt"
	"os"

	"fpinterop/internal/imgproc"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpmatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpmatch", flag.ContinueOnError)
	templates := fs.Bool("templates", false, "inputs are serialized templates, not PGM images")
	matcherName := fs.String("matcher", "hough", "matcher: hough (BioEngine-like) or greedy (baseline)")
	dpi := fs.Int("dpi", 500, "image resolution for the image pipeline")
	threshold := fs.Float64("threshold", 7, "decision threshold (7 = the study's template-path impostor ceiling; image-pipeline scores run lower, try 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("need exactly two input files, got %d", fs.NArg())
	}

	var m match.Matcher
	switch *matcherName {
	case "hough":
		m = &match.HoughMatcher{}
	case "greedy":
		m = &match.GreedyMatcher{}
	default:
		return fmt.Errorf("unknown matcher %q", *matcherName)
	}

	load := func(path string) (*minutiae.Template, error) {
		if *templates {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return minutiae.Unmarshal(data)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		img, err := imgproc.ReadPGM(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return minutiae.ExtractFromImage(img, *dpi, minutiae.ExtractOptions{})
	}

	gallery, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	probe, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	res, err := m.Match(gallery, probe)
	if err != nil {
		return err
	}
	fmt.Printf("gallery: %d minutiae, probe: %d minutiae\n", gallery.Count(), probe.Count())
	fmt.Printf("score: %.2f  (matched %d, mean residual %.1f px)\n",
		res.Score, res.Matched, res.MeanResidual)
	if res.Score >= *threshold {
		fmt.Printf("decision: MATCH (score >= threshold %.3g)\n", *threshold)
	} else {
		fmt.Println("decision: NO MATCH")
	}
	return nil
}

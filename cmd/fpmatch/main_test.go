package main

import (
	"os"
	"path/filepath"
	"testing"

	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// writeTemplates captures two genuine samples and writes them as .fmr
// files, returning their paths.
func writeTemplates(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	cohort := population.NewCohort(rng.New(5), population.CohortOptions{Size: 1})
	d0, _ := sensor.ProfileByID("D0")
	paths := make([]string, 2)
	for k := 0; k < 2; k++ {
		imp, err := d0.CaptureSubject(cohort.Subjects[0], k, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := minutiae.Marshal(imp.Template)
		if err != nil {
			t.Fatal(err)
		}
		paths[k] = filepath.Join(dir, []string{"g.fmr", "p.fmr"}[k])
		if err := os.WriteFile(paths[k], data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths[0], paths[1]
}

func TestRunTemplatesMode(t *testing.T) {
	g, p := writeTemplates(t)
	if err := run([]string{"-templates", g, p}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedyMatcher(t *testing.T) {
	g, p := writeTemplates(t)
	if err := run([]string{"-templates", "-matcher", "greedy", g, p}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	g, _ := writeTemplates(t)
	cases := [][]string{
		{g},                                // one file
		{"-matcher", "nope", g, g},         // unknown matcher
		{"-templates", g, "/no/such/file"}, // missing input
		{"/no/such/file.pgm", "/also/no.pgm"} /* missing images */}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("expected error for %v", args)
		}
	}
}

// Command fpquality assesses fingerprint image quality with the
// NFIQ-like classifier (1 = best, 5 = worst) and reports whether NIST
// SP 800-76 recapture guidance applies. With -summary it also prints
// the NFIQ class distribution across all inputs — the quality histogram
// behind the paper's Table 6 filtering (keep only classes 1-2).
//
// Usage:
//
//	fpquality [-v] [-summary] print.pgm [more.pgm ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"fpinterop/internal/imgproc"
	"fpinterop/internal/nfiq"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpquality:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpquality", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print raw quality features")
	summary := fs.Bool("summary", false, "print the NFIQ class distribution across all inputs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one PGM file")
	}
	byClass := map[nfiq.Class]int{}
	recapture := 0
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		img, err := imgproc.ReadPGM(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		features := nfiq.ExtractFeatures(img)
		class := nfiq.ClassFromScore(features.Score())
		byClass[class]++
		fmt.Printf("%s: %s", path, class)
		if nfiq.RecaptureRecommended(class) {
			recapture++
			fmt.Printf("  [NIST SP 800-76: reacquire, up to 3 attempts]")
		}
		fmt.Println()
		if *verbose {
			fmt.Printf("  orientation certainty: %.3f\n", features.OrientationCertainty)
			fmt.Printf("  ridge freq validity:   %.3f\n", features.RidgeFrequencyValid)
			fmt.Printf("  contrast:              %.3f\n", features.Contrast)
			fmt.Printf("  foreground fraction:   %.3f\n", features.ForegroundFraction)
			fmt.Printf("  utility score:         %.3f\n", features.Score())
		}
	}
	if *summary {
		total := fs.NArg()
		fmt.Printf("\nNFIQ class distribution (%d images)\n", total)
		for c := nfiq.Excellent; c <= nfiq.Poor; c++ {
			n := byClass[c]
			fmt.Printf("  %-12s %4d  (%.1f%%)\n", c, n, 100*float64(n)/float64(total))
		}
		fmt.Printf("  recapture recommended: %d\n", recapture)
	}
	return nil
}

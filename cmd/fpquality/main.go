// Command fpquality assesses fingerprint image quality with the
// NFIQ-like classifier (1 = best, 5 = worst) and reports whether NIST
// SP 800-76 recapture guidance applies.
//
// Usage:
//
//	fpquality print.pgm [more.pgm ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"fpinterop/internal/imgproc"
	"fpinterop/internal/nfiq"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpquality:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpquality", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print raw quality features")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one PGM file")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		img, err := imgproc.ReadPGM(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		features := nfiq.ExtractFeatures(img)
		class := nfiq.ClassFromScore(features.Score())
		fmt.Printf("%s: %s", path, class)
		if nfiq.RecaptureRecommended(class) {
			fmt.Printf("  [NIST SP 800-76: reacquire, up to 3 attempts]")
		}
		fmt.Println()
		if *verbose {
			fmt.Printf("  orientation certainty: %.3f\n", features.OrientationCertainty)
			fmt.Printf("  ridge freq validity:   %.3f\n", features.RidgeFrequencyValid)
			fmt.Printf("  contrast:              %.3f\n", features.Contrast)
			fmt.Printf("  foreground fraction:   %.3f\n", features.ForegroundFraction)
			fmt.Printf("  utility score:         %.3f\n", features.Score())
		}
	}
	return nil
}

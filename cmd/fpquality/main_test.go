package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"fpinterop/internal/imgproc"
)

func writeRidgePGM(t *testing.T) string {
	t.Helper()
	im := imgproc.NewImage(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			im.Set(x, y, 0.5+0.45*math.Cos(2*math.Pi*float64(x)/9))
		}
	}
	path := filepath.Join(t.TempDir(), "r.pgm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := imgproc.WritePGM(f, im); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAssessesQuality(t *testing.T) {
	path := writeRidgePGM(t)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-v", path, path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-summary", path, path, path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected no-args error")
	}
	if err := run([]string{"/no/such.pgm"}); err == nil {
		t.Fatal("expected missing-file error")
	}
}

// Command fpvet runs the repository's invariant analyzers over the
// module: context flow, pool safety, hot-path allocations, sentinel
// error identity, and lock discipline. It is the static half of the
// contracts the benchmarks and race tests check dynamically, and CI
// runs it on every change.
//
// Usage:
//
//	go run ./cmd/fpvet [-only ctxflow,poolsafe,...] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when the module is clean, 1 when findings are reported,
// and 2 when loading or type-checking fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpinterop/internal/analysis"
	"fpinterop/internal/analysis/ctxflow"
	"fpinterop/internal/analysis/hotpathalloc"
	"fpinterop/internal/analysis/locksafe"
	"fpinterop/internal/analysis/poolsafe"
	"fpinterop/internal/analysis/sentinelerr"
)

// suite returns every analyzer in its repository-default
// configuration.
func suite() []analysis.Analyzer {
	return []analysis.Analyzer{
		ctxflow.New(),
		poolsafe.New(),
		hotpathalloc.New(),
		sentinelerr.New(),
		locksafe.New(),
	}
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := suite()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				filtered = append(filtered, a)
				delete(keep, a.Name())
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "fpvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpvet: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fpvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

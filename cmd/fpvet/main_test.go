package main

import (
	"os"
	"path/filepath"
	"testing"

	"fpinterop/internal/analysis"
)

// moduleRoot walks up from the working directory to the go.mod that
// defines the fpinterop module.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestRepositoryIsClean runs the full analyzer suite over the module
// exactly as CI does and requires zero findings: every invariant
// violation is either fixed or carries an //fpvet:allow annotation
// with a reason. A finding here means a regression slipped in — run
// `go run ./cmd/fpvet ./...` for the same report with file positions.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from module root")
	}
	findings := analysis.Run(pkgs, suite())
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

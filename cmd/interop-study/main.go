// Command interop-study runs the full interoperability study and prints
// the paper's tables and figures.
//
// Usage:
//
//	interop-study [-seed N] [-subjects N] [-dmi N] [-ddmi N] [-only LIST]
//
// -only selects specific outputs, e.g. -only table3,table5,figure2;
// the default prints everything. Paper-scale runs (-subjects 494 with full
// impostor sets) perform ~660k comparisons and take a couple of minutes
// on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fpinterop/internal/nfiq"
	"fpinterop/internal/study"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "interop-study:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("interop-study", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2013, "study seed (the whole run is a pure function of it)")
	subjects := fs.Int("subjects", 494, "cohort size (paper: 494)")
	dmi := fs.Int("dmi", 120855, "same-device impostor comparisons (paper: 120855)")
	ddmi := fs.Int("ddmi", 483420, "cross-device impostor comparisons (paper: 483420)")
	only := fs.String("only", "", "comma-separated outputs: table1,table2,table3,table4,table5,table6,figure1,figure2,figure3,figure4,figure5,shift,eer,index,shard")
	list := fs.Bool("list", false, "list all reproducible artifacts and exit")
	jsonPath := fs.String("json", "", "also write the machine-readable report to this path")
	csvPath := fs.String("csv", "", "also write every raw score as CSV to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintf(out, "%-9s %-55s %s\n", "ID", "Title", "Paper claim")
		for _, e := range study.Experiments() {
			fmt.Fprintf(out, "%-9s %-55s %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return nil
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	cfg := study.Config{
		Seed:     *seed,
		Subjects: *subjects,
		MaxDMI:   *dmi,
		MaxDDMI:  *ddmi,
	}
	start := time.Now()
	fmt.Fprintf(out, "Building dataset: %d subjects × 5 devices × 2 samples (seed %d)...\n", *subjects, *seed)
	ds, err := study.BuildDataset(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Dataset ready in %v. Generating score sets...\n", time.Since(start).Round(time.Millisecond))
	t0 := time.Now()
	sets, err := study.GenerateScores(ds)
	if err != nil {
		return err
	}
	counts := study.Table3(sets)
	fmt.Fprintf(out, "Scores ready in %v (%d comparisons).\n\n",
		time.Since(t0).Round(time.Millisecond),
		counts.DMG+counts.DDMG+counts.DMI+counts.DDMI+len(sets.GenuineAll))

	if sel("table1") {
		fmt.Fprintln(out, study.RenderTable1(ds))
	}
	if sel("table2") {
		fmt.Fprintln(out, study.RenderTable2(study.Table2(ds, sets)))
	}
	if sel("figure1") {
		fmt.Fprintln(out, study.RenderFigure1(study.Figure1(ds)))
	}
	if sel("table3") {
		fmt.Fprintln(out, study.RenderTable3(counts))
	}
	if sel("figure2") {
		f2, err := study.Figure2(ds, sets, "D3")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderFigure2(f2))
	}
	if sel("figure3") {
		f3, err := study.Figure3(ds, sets, "D0")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderFigureHist("Figure 3: DMG and DMI histograms", f3))
	}
	if sel("figure4") {
		f4, err := study.Figure4(ds, sets, "D0", "D1")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderFigureHist("Figure 4: DDMG and DDMI histograms", f4))
	}
	if sel("table4") {
		t4, err := study.Table4(ds, sets)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderTable4(t4))
	}
	if sel("table5") {
		m, err := study.FNMRMatrix(ds, sets, study.FNMRMatrixOptions{TargetFMR: 0.0001})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderFNMRMatrix("Table 5: Interoperability FNMR matrix", m))
	}
	if sel("table6") {
		m, err := study.FNMRMatrix(ds, sets, study.FNMRMatrixOptions{TargetFMR: 0.001, MaxQuality: nfiq.Good})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderFNMRMatrix("Table 6: FNMR matrix, NFIQ quality < 3", m))
	}
	if sel("figure5") {
		fmt.Fprintln(out, study.RenderFigure5(study.Figure5(sets)))
	}
	if sel("shift") {
		a, err := study.Shift(ds, sets)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderShift(a))
	}
	if sel("eer") {
		m, err := study.EERMatrix(ds, sets)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, study.RenderEERMatrix(m))
	}
	if sel("index") {
		e, ok := study.ExperimentByID("index")
		if !ok {
			return fmt.Errorf("index experiment missing from registry")
		}
		rendered, err := e.Run(ds, sets)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rendered)
	}
	if sel("shard") {
		e, ok := study.ExperimentByID("shard")
		if !ok {
			return fmt.Errorf("shard experiment missing from registry")
		}
		rendered, err := e.Run(ds, sets)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rendered)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *jsonPath, err)
		}
		report, err := study.BuildReport(ds, sets)
		if err == nil {
			err = report.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write JSON report: %w", err)
		}
		fmt.Fprintf(out, "wrote JSON report to %s\n", *jsonPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *csvPath, err)
		}
		err = study.WriteScoresCSV(f, ds, sets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write CSV scores: %w", err)
		}
		fmt.Fprintf(out, "wrote raw scores CSV to %s\n", *csvPath)
	}
	fmt.Fprintf(out, "Total runtime %v.\n", time.Since(start).Round(time.Millisecond))
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a pipe-backed temp file.
func capture(t *testing.T, args []string) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := run(args, tmp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunList(t *testing.T) {
	out := capture(t, []string{"-list"})
	for _, want := range []string{"table3", "figure5", "Kendall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTinyStudy(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "scores.csv")
	out := capture(t, []string{
		"-subjects", "8", "-dmi", "60", "-ddmi", "80",
		"-json", jsonPath, "-csv", csvPath,
	})
	for _, want := range []string{
		"Table 3", "Table 4", "Table 5", "Figure 5", "Equal error rate", "Total runtime",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if fi, err := os.Stat(jsonPath); err != nil || fi.Size() == 0 {
		t.Fatalf("JSON report missing: %v", err)
	}
	if fi, err := os.Stat(csvPath); err != nil || fi.Size() == 0 {
		t.Fatalf("CSV export missing: %v", err)
	}
}

func TestRunOnlySelectsOutputs(t *testing.T) {
	out := capture(t, []string{"-subjects", "6", "-dmi", "30", "-ddmi", "30", "-only", "table3"})
	if !strings.Contains(out, "Table 3") {
		t.Fatal("selected output missing")
	}
	if strings.Contains(out, "Table 5") {
		t.Fatal("unselected output printed")
	}
}

func TestRunBadFlag(t *testing.T) {
	tmp, _ := os.CreateTemp(t.TempDir(), "out")
	defer tmp.Close()
	if err := run([]string{"-no-such-flag"}, tmp); err == nil {
		t.Fatal("expected flag error")
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"fpinterop/internal/matchsvc"
	"fpinterop/internal/obs"
)

// adminShard is one shard's row in the /admin/stats topology view.
type adminShard struct {
	Name        string `json:"name"`
	Enrollments int    `json:"enrollments"`
	Degraded    bool   `json:"degraded"`
	Err         string `json:"err,omitempty"`
}

// adminView is the /admin/stats document: the same service summary
// OpStats serves on the wire, plus the per-shard breakdown.
type adminView struct {
	Stats  matchsvc.ServiceStats `json:"stats"`
	Shards []adminShard          `json:"shards,omitempty"`
}

// startAdmin serves the operational surface on its own listener,
// separate from the match traffic port:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same registry as a flat JSON document
//	/healthz       liveness probe
//	/admin/stats   service summary + shard topology (JSON)
//	/debug/pprof/  the standard Go profiling endpoints
//
// The mux is explicit — nothing registers through http.DefaultServeMux,
// so a library init cannot quietly widen this surface. Returns the
// bound address; the server drains when ctx is cancelled.
func startAdmin(ctx context.Context, addr string, reg *obs.Registry, view func() adminView) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/admin/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	return ln.Addr().String(), nil
}

package main

// Chaos smoke test: a real matchd process (the test binary re-executed
// in helper mode) served through a deterministic fault-injecting proxy.
// The client runs with the resilience knobs this PR adds — pooled
// connections, retries with backoff, keepalives — and the contract is
// that every operation either succeeds or fails with a typed error,
// and that once the faults stop the service answers cleanly with
// nothing lost. This is the process-level counterpart of
// internal/matchsvc's in-process chaos suite.

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"fpinterop/internal/faultnet"
	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// smokeErrOK reports whether err is one of the typed failures a caller
// is documented to see under transport faults.
func smokeErrOK(err error) bool {
	for _, want := range []error{
		matchsvc.ErrTransport,
		matchsvc.ErrRemote,
		matchsvc.ErrCorruptFrame,
		matchsvc.ErrFrameTooLarge,
		matchsvc.ErrClosed,
		context.Canceled,
		context.DeadlineExceeded,
		os.ErrDeadlineExceeded,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

func TestChaosProxySmokeAgainstRealMatchd(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	const preload = 40
	_, addr := startMatchd(t, "-addr", "127.0.0.1:0", "-preload", "40")

	proxy, err := faultnet.NewProxy(addr, faultnet.Faults{
		Seed:             0xC0FFEE,
		LatencyProb:      0.05,
		LatencyMin:       time.Millisecond,
		LatencyMax:       5 * time.Millisecond,
		ResetProb:        0.01,
		PartialWriteProb: 0.01,
		CorruptProb:      0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cli, err := matchsvc.DialContext(ctx, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetPoolSize(2)
	cli.SetRequestTimeout(2 * time.Second)
	cli.SetRetry(matchsvc.Retry{Attempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})

	// A probe for the preloaded population: same cohort seed and device
	// the -preload path uses, different capture sample.
	dev, _ := sensor.ProfileByID("D0")
	cohort := population.NewCohort(rng.New(2013).Child("cohort"), population.CohortOptions{Size: preload})
	imp, err := dev.CaptureSubject(cohort.Subjects[0], 1, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := imp.Template

	ok := 0
	for i := 0; i < 80; i++ {
		var err error
		switch i % 4 {
		case 0:
			err = cli.Ping(ctx)
		case 1:
			var n int
			if n, err = cli.Count(ctx); err == nil && n != preload {
				t.Fatalf("op %d: count = %d, want %d", i, n, preload)
			}
		case 2:
			var has bool
			if has, err = cli.Has(ctx, "subject-0000"); err == nil && !has {
				t.Fatalf("op %d: preloaded subject missing", i)
			}
		case 3:
			var cands []gallery.Candidate
			if cands, err = cli.Identify(ctx, probe, 3); err == nil && len(cands) == 0 {
				t.Fatalf("op %d: identify over a %d-subject gallery found nothing", i, preload)
			}
		}
		if err == nil {
			ok++
		} else if !smokeErrOK(err) {
			t.Fatalf("op %d: untyped error under faults: %v", i, err)
		}
	}
	if ok == 0 {
		t.Fatal("no operation succeeded through the faulty proxy; retries should have carried some")
	}
	t.Logf("chaos smoke: %d/80 ops succeeded through the faulty proxy", ok)

	// Faults off: the same client (same pool) must serve cleanly.
	proxy.SetEnabled(false)
	if err := cli.Ping(ctx); err != nil {
		t.Fatalf("ping after faults disabled: %v", err)
	}
	n, err := cli.Count(ctx)
	if err != nil || n != preload {
		t.Fatalf("count after faults disabled: n=%d err=%v", n, err)
	}
}

// TestChaosFlagValidation pins the resilience flags' applicability
// rules without starting a server.
func TestChaosFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-pool-size", "0", "-shards", "127.0.0.1:1"},
		{"-pool-size", "2"},
		{"-retry", "-1", "-shards", "127.0.0.1:1"},
		{"-retry", "3"},
		{"-keepalive", "5s"},
		{"-hedge-delay", "-1s", "-local-shards", "2"},
		{"-hedge-delay", "10ms"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

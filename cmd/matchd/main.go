// Command matchd runs the central fingerprint matching service: a TCP
// server owning the enrollment gallery, to which heterogeneous capture
// stations submit match/enroll/verify/identify requests — the deployment
// architecture the paper's discussion section contemplates.
//
// Usage:
//
//	matchd [-addr 127.0.0.1:7070] [-preload N] [-seed N] [-device D0]
//	       [-index] [-index-fanout N] [-idle-timeout 2m]
//	       [-local-shards N | -shards addr1,addr2,...] [-shard-timeout D]
//	       [-replicas "r0a,r0b;r1a"] [-replica-of ADDR] [-replica-sync-interval D]
//	       [-pool-size N] [-retry N] [-keepalive D] [-hedge-delay D]
//	       [-wal-dir DIR] [-compact-every N] [-metrics-addr HOST:PORT]
//
// -preload enrolls N synthetic subjects at startup so the service is
// immediately searchable (useful for demos and load tests). -index
// enables the minutia-triplet retrieval index, so identification
// searches a candidate shortlist instead of the whole gallery; each
// indexed search logs its shortlist size.
//
// Durability: -wal-dir routes every mutation through a write-ahead log
// rooted at DIR, so an acknowledged enrollment survives even a SIGKILL
// of the process; startup replays the log (after restoring the latest
// compaction snapshot) and logs what recovery found. -compact-every N
// folds the log into a snapshot after every N mutations, bounding
// replay work at the next startup; the log is also compacted on clean
// shutdown. Each shard of a -local-shards deployment logs into its own
// subdirectory of DIR. -wal-dir supersedes -store (continuous
// durability versus a shutdown-time snapshot); the two are mutually
// exclusive.
//
// Sharding: -local-shards N partitions the gallery across N in-process
// stores behind a consistent-hash router (each shard indexed when
// -index is set); -shards runs this instance as a scatter-gather front
// over remote matchd shards, routing enrollments by subject ID and
// fanning every identification out to all healthy shards. The two are
// mutually exclusive; a remote front leaves indexing (-index) and
// persistence (-store) to the shard processes that own the data.
//
// Replication: -replica-of ADDR runs this instance as a read replica of
// a WAL-backed primary matchd at ADDR: it bootstraps from a snapshot
// transfer, then continuously streams the primary's log tail (every
// -replica-sync-interval, default 75ms), serving Verify/Identify/Has/
// Scan from local state and refusing writes. Replica staleness is the
// replica_lsn_lag gauge on /metrics. On a -shards front, -replicas
// attaches those replicas to their primaries: semicolon-separated
// groups in -shards order, each group a comma-separated address list
// ("r0a,r0b;;r2a" gives shard 0 two replicas, shard 1 none, shard 2
// one). Reads then balance across each slot's healthy members with
// in-slot failover, and hedged identifies go to a different member
// than the attempt they race.
//
// Resilience: on a -shards front, -pool-size pools N connections per
// remote shard, -retry re-sends idempotent shard calls up to N total
// attempts after transport failures (with capped jittered backoff), and
// -keepalive pings idle pooled connections so a shard's idle deadline
// never silently drops them. -hedge-delay enables hedged identification
// on any sharded deployment: a shard leg still unanswered after D is
// re-sent and the first answer wins, trimming slow-replica tail latency
// without changing results.
//
// Observability: -metrics-addr binds a second, operational listener
// serving /metrics (Prometheus text), /metrics.json, /healthz,
// /admin/stats (service summary + shard topology), and /debug/pprof/*.
// With it set, every layer records into one metrics registry: per-op
// request latency, per-shard health and scatter coverage, WAL append
// and fsync latency, and wire-level connection and frame detail. All
// logging is structured key=value lines on stderr either way.
//
// matchd is the serving side of the public identity-service API:
// consumers reach everything it hosts through fpis.Dial (one matchd)
// or fpis.New with fpis.WithShards (a fleet of them), with per-request
// deadlines and cancellation carried by context.Context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/obs"
	"fpinterop/internal/population"
	"fpinterop/internal/replica"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/shard"
	"fpinterop/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	preload := fs.Int("preload", 0, "enroll N synthetic subjects at startup")
	storePath := fs.String("store", "", "gallery file: loaded at startup if present, saved on shutdown")
	seed := fs.Uint64("seed", 2013, "seed for preloaded subjects")
	deviceID := fs.String("device", "D0", "device used for preloaded enrollments")
	useIndex := fs.Bool("index", false, "serve identification from a minutia-triplet candidate index")
	indexFanout := fs.Int("index-fanout", 0, "index shortlist size (0 = default)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle (or mid-frame) longer than this; 0 disables")
	localShards := fs.Int("local-shards", 0, "partition the gallery across N in-process shards")
	shardAddrs := fs.String("shards", "", "comma-separated remote matchd addresses to scatter-gather over")
	replicaAddrs := fs.String("replicas", "", "read replicas per -shards slot: semicolon-separated groups in -shards order, each a comma-separated address list")
	replicaOf := fs.String("replica-of", "", "run as a read replica of the WAL-backed primary matchd at this address")
	replicaSyncInterval := fs.Duration("replica-sync-interval", 0, "how often a -replica-of instance polls the primary's log tail (0 = 75ms default)")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard identification deadline (0 = none)")
	poolSize := fs.Int("pool-size", 1, "connections pooled per remote shard (requires -shards)")
	retryAttempts := fs.Int("retry", 0, "total attempts for idempotent shard calls after transport failures, 0/1 = no retries (requires -shards)")
	keepalive := fs.Duration("keepalive", 0, "idle-connection keepalive interval toward remote shards; 0 = client default, negative disables (requires -shards)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "re-send a shard identify leg still unanswered after this long, 0 = off (requires -local-shards or -shards)")
	walDir := fs.String("wal-dir", "", "write-ahead-log directory: mutations are durable and replayed at startup")
	compactEvery := fs.Int("compact-every", 0, "compact the WAL into a snapshot after every N mutations (0 = only on shutdown)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz, /admin/stats and /debug/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexFanout < 0 {
		return fmt.Errorf("-index-fanout must be >= 0, got %d", *indexFanout)
	}
	if *indexFanout > 0 && !*useIndex {
		return fmt.Errorf("-index-fanout requires -index")
	}
	if *localShards < 0 {
		return fmt.Errorf("-local-shards must be >= 0, got %d", *localShards)
	}
	if *localShards > 0 && *shardAddrs != "" {
		return fmt.Errorf("-local-shards and -shards are mutually exclusive")
	}
	if *shardAddrs != "" && *useIndex {
		return fmt.Errorf("-index belongs on the shard processes, not the -shards front")
	}
	if *shardAddrs != "" && *storePath != "" {
		return fmt.Errorf("-store belongs on the shard processes, not the -shards front")
	}
	if *shardTimeout != 0 && *localShards == 0 && *shardAddrs == "" {
		return fmt.Errorf("-shard-timeout requires -local-shards or -shards")
	}
	if *poolSize < 1 {
		return fmt.Errorf("-pool-size must be >= 1, got %d", *poolSize)
	}
	if *retryAttempts < 0 {
		return fmt.Errorf("-retry must be >= 0, got %d", *retryAttempts)
	}
	if *shardAddrs == "" && (*poolSize != 1 || *retryAttempts != 0 || *keepalive != 0) {
		return fmt.Errorf("-pool-size/-retry/-keepalive configure the remote-shard clients; they require -shards")
	}
	if *hedgeDelay < 0 {
		return fmt.Errorf("-hedge-delay must be >= 0, got %v", *hedgeDelay)
	}
	if *hedgeDelay > 0 && *localShards == 0 && *shardAddrs == "" {
		return fmt.Errorf("-hedge-delay requires -local-shards or -shards")
	}
	if *compactEvery < 0 {
		return fmt.Errorf("-compact-every must be >= 0, got %d", *compactEvery)
	}
	if *compactEvery > 0 && *walDir == "" {
		return fmt.Errorf("-compact-every requires -wal-dir")
	}
	if *walDir != "" && *storePath != "" {
		return fmt.Errorf("-wal-dir and -store are mutually exclusive persistence mechanisms")
	}
	if *walDir != "" && *shardAddrs != "" {
		return fmt.Errorf("-wal-dir belongs on the shard processes, not the -shards front")
	}
	if *replicaOf != "" {
		switch {
		case *localShards > 0 || *shardAddrs != "":
			return fmt.Errorf("-replica-of runs a single-store replica; it excludes -local-shards and -shards")
		case *walDir != "" || *storePath != "":
			return fmt.Errorf("-replica-of replicates the primary's state; it excludes -wal-dir and -store")
		case *preload > 0:
			return fmt.Errorf("-replica-of refuses writes; it excludes -preload")
		}
	}
	if *replicaSyncInterval < 0 {
		return fmt.Errorf("-replica-sync-interval must be >= 0, got %v", *replicaSyncInterval)
	}
	if *replicaSyncInterval != 0 && *replicaOf == "" {
		return fmt.Errorf("-replica-sync-interval requires -replica-of")
	}
	if *replicaAddrs != "" && *shardAddrs == "" {
		return fmt.Errorf("-replicas attaches replicas to -shards slots; it requires -shards")
	}

	logger := obs.NewLogger(os.Stderr)
	indexOpt := gallery.IndexOptions{Index: index.Options{Fanout: *indexFanout}}

	// One registry feeds every layer; nil (no -metrics-addr) keeps all
	// instrumentation as no-ops.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	// The served backend is either a single store or a shard router,
	// either one optionally fronted by a write-ahead log.
	var (
		backend   matchsvc.Gallery
		store     *gallery.Store
		router    *shard.Router
		walStores []*wal.Store
		follower  *replica.Follower
	)
	openWAL := func(dir, name string, st *gallery.Store) (*wal.Store, error) {
		ws, err := wal.Open(dir, st, wal.Options{
			CompactEvery: *compactEvery,
			Metrics:      reg,
			Shard:        name,
		})
		if err != nil {
			return nil, fmt.Errorf("open WAL %s: %w", dir, err)
		}
		walStores = append(walStores, ws)
		rec := ws.Recovery()
		logger.Info("wal recovery", "dir", dir,
			"snapshot_entries", rec.SnapshotEntries, "replayed", rec.Replayed,
			"torn_tail", rec.TornTail, "truncated_bytes", rec.TruncatedBytes)
		return ws, nil
	}
	dialRemote := func(a string) (*matchsvc.Client, error) {
		dialCtx, dialCancel := context.WithTimeout(context.Background(), 5*time.Second)
		cli, err := matchsvc.DialContext(dialCtx, a)
		dialCancel()
		if err != nil {
			return nil, fmt.Errorf("dial shard %s: %w", a, err)
		}
		cli.SetRedialTimeout(5 * time.Second)
		// A hung shard must not wedge the front: bound every round
		// trip so abandoned scatter calls unwind instead of piling
		// up, giving the router's own deadline generous headroom.
		reqTimeout := 2 * *shardTimeout
		if reqTimeout <= 0 {
			reqTimeout = 2 * time.Minute
		}
		cli.SetRequestTimeout(reqTimeout)
		cli.SetMetrics(reg)
		cli.SetPoolSize(*poolSize)
		if *retryAttempts > 1 {
			cli.SetRetry(matchsvc.Retry{Attempts: *retryAttempts})
		}
		if *keepalive != 0 {
			cli.SetKeepalive(*keepalive)
		}
		return cli, nil
	}
	switch {
	case *replicaOf != "":
		store = gallery.New(nil)
		if *useIndex {
			if err := store.EnableIndex(indexOpt); err != nil {
				return fmt.Errorf("enable index: %w", err)
			}
		}
		if reg != nil {
			store.SetMetrics(reg, "replica")
		}
		cli, err := dialRemote(*replicaOf)
		if err != nil {
			return fmt.Errorf("replica: %w", err)
		}
		defer cli.Close()
		follower = replica.NewFollower(store, cli, replica.FollowerOptions{
			Interval: *replicaSyncInterval,
			Metrics:  reg,
			Shard:    "local",
		})
		// Catch up before accepting the first read, so a freshly started
		// replica never serves an empty gallery against a full primary.
		syncCtx, syncCancel := context.WithTimeout(context.Background(), 5*time.Minute)
		err = follower.Sync(syncCtx)
		syncCancel()
		if err != nil {
			return fmt.Errorf("replica: initial sync from %s: %w", *replicaOf, err)
		}
		logger.Info("replica synced", "primary", *replicaOf,
			"lsn", follower.LSN(), "enrollments", store.Len())
		backend = replica.ReadOnlyGallery{Store: store}

	case *shardAddrs != "":
		var primaries []string
		for _, a := range strings.Split(*shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				primaries = append(primaries, a)
			}
		}
		var groups [][]string
		if *replicaAddrs != "" {
			raw := strings.Split(*replicaAddrs, ";")
			if len(raw) != len(primaries) {
				return fmt.Errorf("-replicas lists %d slot groups, -shards has %d addresses", len(raw), len(primaries))
			}
			groups = make([][]string, len(raw))
			for i, g := range raw {
				for _, a := range strings.Split(g, ",") {
					if a = strings.TrimSpace(a); a != "" {
						groups[i] = append(groups[i], a)
					}
				}
			}
		}
		var backends []shard.Backend
		replicaCount := 0
		for i, a := range primaries {
			cli, err := dialRemote(a)
			if err != nil {
				return err
			}
			defer cli.Close()
			var b shard.Backend = shard.NewRemote(a, cli)
			if groups != nil && len(groups[i]) > 0 {
				members := make([]shard.Backend, 0, len(groups[i]))
				for _, ra := range groups[i] {
					rcli, err := dialRemote(ra)
					if err != nil {
						return fmt.Errorf("replica of %s: %w", a, err)
					}
					defer rcli.Close()
					members = append(members, shard.NewRemote(ra, rcli))
				}
				replicaCount += len(members)
				// The set keeps the primary's address as its ring name, so
				// attaching replicas to a live deployment moves no keys.
				b = replica.NewSet(a, b, members, replica.SetOptions{Metrics: reg})
			}
			backends = append(backends, b)
		}
		var err error
		router, err = shard.New(backends, shard.Options{ShardTimeout: *shardTimeout, Registry: reg, HedgeDelay: *hedgeDelay})
		if err != nil {
			return err
		}
		backend = shard.Front{Router: router}
		logger.Info("scatter-gather front", "remote_shards", len(backends), "replicas", replicaCount)

	case *localShards > 0:
		backends := make([]shard.Backend, *localShards)
		for i := range backends {
			name := fmt.Sprintf("shard-%d", i)
			st := gallery.New(nil)
			if *useIndex {
				if err := st.EnableIndex(indexOpt); err != nil {
					return fmt.Errorf("enable index on shard %d: %w", i, err)
				}
			}
			if reg != nil {
				st.SetMetrics(reg, name)
			}
			if *walDir != "" {
				ws, err := openWAL(filepath.Join(*walDir, name), name, st)
				if err != nil {
					return err
				}
				backends[i] = shard.NewDurableLocal(name, ws)
				continue
			}
			backends[i] = shard.NewLocal(name, st)
		}
		var err error
		router, err = shard.New(backends, shard.Options{ShardTimeout: *shardTimeout, Registry: reg, HedgeDelay: *hedgeDelay})
		if err != nil {
			return err
		}
		backend = shard.Front{Router: router}
		logger.Info("local shards", "count", *localShards)

	default:
		store = gallery.New(nil)
		if *useIndex {
			if err := store.EnableIndex(indexOpt); err != nil {
				return fmt.Errorf("enable index: %w", err)
			}
		}
		if reg != nil {
			store.SetMetrics(reg, "local")
		}
		backend = store
		if *walDir != "" {
			ws, err := openWAL(*walDir, "local", store)
			if err != nil {
				return err
			}
			// The durable store shadows the mutating methods, so served
			// enrollments and removals hit the log before they are acked.
			backend = ws
		}
	}

	if *storePath != "" {
		if f, err := os.Open(*storePath); err == nil {
			var loadErr error
			if router != nil {
				loadErr = router.LoadFrom(f)
			} else {
				loadErr = store.LoadFrom(f)
			}
			f.Close()
			if loadErr != nil {
				return fmt.Errorf("load gallery %s: %w", *storePath, loadErr)
			}
			logger.Info("loaded gallery", "path", *storePath, "enrollments", backend.Len())
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("open gallery %s: %w", *storePath, err)
		}
	}
	if *preload > 0 {
		dev, ok := sensor.ProfileByID(*deviceID)
		if !ok {
			return fmt.Errorf("unknown device %q", *deviceID)
		}
		cohort := population.NewCohort(rng.New(*seed).Child("cohort"), population.CohortOptions{Size: *preload})
		items := make([]shard.Enrollment, len(cohort.Subjects))
		for i, subj := range cohort.Subjects {
			imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
			if err != nil {
				return fmt.Errorf("preload subject %d: %w", i, err)
			}
			items[i] = shard.Enrollment{
				ID:       fmt.Sprintf("subject-%04d", i),
				DeviceID: dev.ID,
				Template: imp.Template,
			}
		}
		if len(walStores) > 0 {
			// A durable gallery may already hold recovered subjects; the
			// preload tops it up to N instead of failing on the overlap.
			fresh := 0
			for _, it := range items {
				var err error
				if router != nil {
					err = router.Enroll(context.Background(), it.ID, it.DeviceID, it.Template)
				} else {
					err = backend.Enroll(it.ID, it.DeviceID, it.Template)
				}
				if errors.Is(err, gallery.ErrDuplicate) {
					continue
				}
				if err != nil {
					return fmt.Errorf("preload enroll %q: %w", it.ID, err)
				}
				fresh++
			}
			logger.Info("preloaded", "enrollments", fresh, "device", dev.Model,
				"already_recovered", len(items)-fresh)
		} else {
			if router != nil {
				if err := router.EnrollBatch(context.Background(), items); err != nil {
					return fmt.Errorf("preload: %w", err)
				}
			} else {
				for _, it := range items {
					if err := store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
						return fmt.Errorf("preload enroll %q: %w", it.ID, err)
					}
				}
			}
			logger.Info("preloaded", "enrollments", *preload, "device", dev.Model)
		}
	}

	if store != nil {
		if st, ok := store.IndexStats(); ok {
			logger.Info("index enabled", "templates", st.Templates,
				"keys", st.DistinctKeys, "postings", st.Postings)
		}
	}
	if router != nil {
		for i, b := range router.Backends() {
			n, err := b.Len(context.Background())
			if err != nil {
				logger.Error("shard unreachable", "shard", b.Name(), "index", i, "err", err)
				continue
			}
			logger.Info("shard ready", "shard", b.Name(), "index", i, "enrollments", n)
		}
	}

	// statsFn assembles the service summary OpStats and /admin/stats
	// serve — the process knows its topology, index state, and WAL in a
	// way the wire server cannot infer from the Gallery interface.
	statsFn := func() matchsvc.ServiceStats {
		st := matchsvc.ServiceStats{Shards: 1}
		if router != nil {
			st.Shards = len(router.Backends())
			st.Enrollments = router.Len(context.Background())
			for _, i := range router.Degraded() {
				st.DegradedShards = append(st.DegradedShards, router.Backends()[i].Name())
			}
			st.Indexed = *useIndex
		} else {
			st.Enrollments = backend.Len()
			_, st.Indexed = store.IndexStats()
		}
		if len(walStores) > 0 {
			w := &matchsvc.WALServiceStats{}
			for _, ws := range walStores {
				rec := ws.Recovery()
				w.SnapshotEntries += rec.SnapshotEntries
				w.Replayed += rec.Replayed
				w.TruncatedBytes += rec.TruncatedBytes
				if rec.TornTail {
					w.TornTails++
				}
				if size, err := ws.LogSize(); err == nil {
					w.LogBytes += size
				}
			}
			st.WAL = w
		}
		return st
	}

	srv := matchsvc.NewServer(backend, logger.StdLogger("matchsvc"))
	srv.SetIdleTimeout(*idleTimeout)
	srv.SetStatsFunc(statsFn)
	srv.SetMetrics(reg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", bound, "enrollments", backend.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if follower != nil {
		// Continuous catch-up for the life of the process; stops with
		// the serve context on shutdown.
		go follower.Run(ctx)
	}
	if *metricsAddr != "" {
		view := func() adminView {
			v := adminView{Stats: statsFn()}
			if router != nil {
				degraded := make(map[int]bool)
				for _, i := range router.Degraded() {
					degraded[i] = true
				}
				for i, b := range router.Backends() {
					row := adminShard{Name: b.Name(), Degraded: degraded[i]}
					n, err := b.Len(context.Background())
					if err != nil {
						row.Err = err.Error()
					} else {
						row.Enrollments = n
					}
					v.Shards = append(v.Shards, row)
				}
			}
			return v
		}
		mbound, err := startAdmin(ctx, *metricsAddr, reg, view)
		if err != nil {
			return err
		}
		logger.Info("metrics listening", "addr", mbound)
	}
	if router != nil {
		// Degraded shards only rejoin the scatter set when something
		// probes them; do it periodically so a repaired shard does not
		// stay invisible until restart.
		go func() {
			ticker := time.NewTicker(30 * time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					for i, err := range router.CheckHealth(ctx) {
						if err != nil {
							logger.Error("health probe failed",
								"shard", router.Backends()[i].Name(), "index", i, "err", err)
						}
					}
				}
			}
		}()
	}
	if err := srv.Serve(ctx); err != nil {
		return err
	}
	if *storePath != "" {
		// Staged in a temp file and renamed into place, so a crash
		// mid-save can never clobber the previous good snapshot.
		var err error
		if router != nil {
			err = router.SaveFile(*storePath)
		} else {
			err = store.SaveFile(*storePath)
		}
		if err != nil {
			return fmt.Errorf("save gallery %s: %w", *storePath, err)
		}
		logger.Info("saved gallery", "path", *storePath, "enrollments", backend.Len())
	}
	for _, ws := range walStores {
		// A clean shutdown leaves only a snapshot behind, so the next
		// startup replays nothing.
		if err := ws.Compact(); err != nil {
			return fmt.Errorf("compact WAL: %w", err)
		}
		if err := ws.Close(); err != nil {
			return fmt.Errorf("close WAL: %w", err)
		}
	}
	if len(walStores) > 0 {
		logger.Info("wal compacted", "stores", len(walStores), "enrollments", backend.Len())
	}
	logger.Info("shut down")
	return nil
}

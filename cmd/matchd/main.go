// Command matchd runs the central fingerprint matching service: a TCP
// server owning the enrollment gallery, to which heterogeneous capture
// stations submit match/enroll/verify/identify requests — the deployment
// architecture the paper's discussion section contemplates.
//
// Usage:
//
//	matchd [-addr 127.0.0.1:7070] [-preload N] [-seed N] [-device D0]
//	       [-index] [-index-fanout N]
//
// -preload enrolls N synthetic subjects at startup so the service is
// immediately searchable (useful for demos and load tests). -index
// enables the minutia-triplet retrieval index, so identification
// searches a candidate shortlist instead of the whole gallery; each
// indexed search logs its shortlist size.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	preload := fs.Int("preload", 0, "enroll N synthetic subjects at startup")
	storePath := fs.String("store", "", "gallery file: loaded at startup if present, saved on shutdown")
	seed := fs.Uint64("seed", 2013, "seed for preloaded subjects")
	deviceID := fs.String("device", "D0", "device used for preloaded enrollments")
	useIndex := fs.Bool("index", false, "serve identification from a minutia-triplet candidate index")
	indexFanout := fs.Int("index-fanout", 0, "index shortlist size (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexFanout < 0 {
		return fmt.Errorf("-index-fanout must be >= 0, got %d", *indexFanout)
	}
	if *indexFanout > 0 && !*useIndex {
		return fmt.Errorf("-index-fanout requires -index")
	}

	logger := log.New(os.Stderr, "matchd: ", log.LstdFlags)
	store := gallery.New(nil)
	if *useIndex {
		opt := gallery.IndexOptions{Index: index.Options{Fanout: *indexFanout}}
		if err := store.EnableIndex(opt); err != nil {
			return fmt.Errorf("enable index: %w", err)
		}
	}
	if *storePath != "" {
		if f, err := os.Open(*storePath); err == nil {
			loadErr := store.LoadFrom(f)
			f.Close()
			if loadErr != nil {
				return fmt.Errorf("load gallery %s: %w", *storePath, loadErr)
			}
			logger.Printf("loaded %d enrollments from %s", store.Len(), *storePath)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("open gallery %s: %w", *storePath, err)
		}
	}
	if *preload > 0 {
		dev, ok := sensor.ProfileByID(*deviceID)
		if !ok {
			return fmt.Errorf("unknown device %q", *deviceID)
		}
		cohort := population.NewCohort(rng.New(*seed).Child("cohort"), population.CohortOptions{Size: *preload})
		for i, subj := range cohort.Subjects {
			imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
			if err != nil {
				return fmt.Errorf("preload subject %d: %w", i, err)
			}
			if err := store.Enroll(fmt.Sprintf("subject-%04d", i), dev.ID, imp.Template); err != nil {
				return fmt.Errorf("preload enroll %d: %w", i, err)
			}
		}
		logger.Printf("preloaded %d enrollments from %s", *preload, dev.Model)
	}

	if st, ok := store.IndexStats(); ok {
		logger.Printf("index enabled: %d templates, %d keys, %d postings",
			st.Templates, st.DistinctKeys, st.Postings)
	}

	srv := matchsvc.NewServer(store, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (%d enrollments)", bound, store.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		return err
	}
	if *storePath != "" {
		f, err := os.Create(*storePath)
		if err != nil {
			return fmt.Errorf("create gallery %s: %w", *storePath, err)
		}
		err = store.SaveTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save gallery %s: %w", *storePath, err)
		}
		logger.Printf("saved %d enrollments to %s", store.Len(), *storePath)
	}
	logger.Printf("shut down")
	return nil
}

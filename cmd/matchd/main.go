// Command matchd runs the central fingerprint matching service: a TCP
// server owning the enrollment gallery, to which heterogeneous capture
// stations submit match/enroll/verify/identify requests — the deployment
// architecture the paper's discussion section contemplates.
//
// Usage:
//
//	matchd [-addr 127.0.0.1:7070] [-preload N] [-seed N] [-device D0]
//	       [-index] [-index-fanout N] [-idle-timeout 2m]
//	       [-local-shards N | -shards addr1,addr2,...] [-shard-timeout D]
//
// -preload enrolls N synthetic subjects at startup so the service is
// immediately searchable (useful for demos and load tests). -index
// enables the minutia-triplet retrieval index, so identification
// searches a candidate shortlist instead of the whole gallery; each
// indexed search logs its shortlist size.
//
// Sharding: -local-shards N partitions the gallery across N in-process
// stores behind a consistent-hash router (each shard indexed when
// -index is set); -shards runs this instance as a scatter-gather front
// over remote matchd shards, routing enrollments by subject ID and
// fanning every identification out to all healthy shards. The two are
// mutually exclusive; a remote front leaves indexing (-index) and
// persistence (-store) to the shard processes that own the data.
//
// matchd is the serving side of the public identity-service API:
// consumers reach everything it hosts through fpis.Dial (one matchd)
// or fpis.New with fpis.WithShards (a fleet of them), with per-request
// deadlines and cancellation carried by context.Context.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matchd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	preload := fs.Int("preload", 0, "enroll N synthetic subjects at startup")
	storePath := fs.String("store", "", "gallery file: loaded at startup if present, saved on shutdown")
	seed := fs.Uint64("seed", 2013, "seed for preloaded subjects")
	deviceID := fs.String("device", "D0", "device used for preloaded enrollments")
	useIndex := fs.Bool("index", false, "serve identification from a minutia-triplet candidate index")
	indexFanout := fs.Int("index-fanout", 0, "index shortlist size (0 = default)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle (or mid-frame) longer than this; 0 disables")
	localShards := fs.Int("local-shards", 0, "partition the gallery across N in-process shards")
	shardAddrs := fs.String("shards", "", "comma-separated remote matchd addresses to scatter-gather over")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard identification deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexFanout < 0 {
		return fmt.Errorf("-index-fanout must be >= 0, got %d", *indexFanout)
	}
	if *indexFanout > 0 && !*useIndex {
		return fmt.Errorf("-index-fanout requires -index")
	}
	if *localShards < 0 {
		return fmt.Errorf("-local-shards must be >= 0, got %d", *localShards)
	}
	if *localShards > 0 && *shardAddrs != "" {
		return fmt.Errorf("-local-shards and -shards are mutually exclusive")
	}
	if *shardAddrs != "" && *useIndex {
		return fmt.Errorf("-index belongs on the shard processes, not the -shards front")
	}
	if *shardAddrs != "" && *storePath != "" {
		return fmt.Errorf("-store belongs on the shard processes, not the -shards front")
	}
	if *shardTimeout != 0 && *localShards == 0 && *shardAddrs == "" {
		return fmt.Errorf("-shard-timeout requires -local-shards or -shards")
	}

	logger := log.New(os.Stderr, "matchd: ", log.LstdFlags)
	indexOpt := gallery.IndexOptions{Index: index.Options{Fanout: *indexFanout}}

	// The served backend is either a single store or a shard router.
	var (
		backend matchsvc.Gallery
		store   *gallery.Store
		router  *shard.Router
	)
	switch {
	case *shardAddrs != "":
		var backends []shard.Backend
		for _, a := range strings.Split(*shardAddrs, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			dialCtx, dialCancel := context.WithTimeout(context.Background(), 5*time.Second)
			cli, err := matchsvc.DialContext(dialCtx, a)
			dialCancel()
			if err != nil {
				return fmt.Errorf("dial shard %s: %w", a, err)
			}
			cli.SetRedialTimeout(5 * time.Second)
			defer cli.Close()
			// A hung shard must not wedge the front: bound every round
			// trip so abandoned scatter calls unwind instead of piling
			// up, giving the router's own deadline generous headroom.
			reqTimeout := 2 * *shardTimeout
			if reqTimeout <= 0 {
				reqTimeout = 2 * time.Minute
			}
			cli.SetRequestTimeout(reqTimeout)
			backends = append(backends, shard.NewRemote(a, cli))
		}
		var err error
		router, err = shard.New(backends, shard.Options{ShardTimeout: *shardTimeout})
		if err != nil {
			return err
		}
		backend = shard.Front{Router: router}
		logger.Printf("scatter-gather front over %d remote shards", len(backends))

	case *localShards > 0:
		backends := make([]shard.Backend, *localShards)
		for i := range backends {
			st := gallery.New(nil)
			if *useIndex {
				if err := st.EnableIndex(indexOpt); err != nil {
					return fmt.Errorf("enable index on shard %d: %w", i, err)
				}
			}
			backends[i] = shard.NewLocal(fmt.Sprintf("shard-%d", i), st)
		}
		var err error
		router, err = shard.New(backends, shard.Options{ShardTimeout: *shardTimeout})
		if err != nil {
			return err
		}
		backend = shard.Front{Router: router}
		logger.Printf("gallery partitioned across %d local shards", *localShards)

	default:
		store = gallery.New(nil)
		if *useIndex {
			if err := store.EnableIndex(indexOpt); err != nil {
				return fmt.Errorf("enable index: %w", err)
			}
		}
		backend = store
	}

	if *storePath != "" {
		if f, err := os.Open(*storePath); err == nil {
			var loadErr error
			if router != nil {
				loadErr = router.LoadFrom(f)
			} else {
				loadErr = store.LoadFrom(f)
			}
			f.Close()
			if loadErr != nil {
				return fmt.Errorf("load gallery %s: %w", *storePath, loadErr)
			}
			logger.Printf("loaded %d enrollments from %s", backend.Len(), *storePath)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("open gallery %s: %w", *storePath, err)
		}
	}
	if *preload > 0 {
		dev, ok := sensor.ProfileByID(*deviceID)
		if !ok {
			return fmt.Errorf("unknown device %q", *deviceID)
		}
		cohort := population.NewCohort(rng.New(*seed).Child("cohort"), population.CohortOptions{Size: *preload})
		items := make([]shard.Enrollment, len(cohort.Subjects))
		for i, subj := range cohort.Subjects {
			imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
			if err != nil {
				return fmt.Errorf("preload subject %d: %w", i, err)
			}
			items[i] = shard.Enrollment{
				ID:       fmt.Sprintf("subject-%04d", i),
				DeviceID: dev.ID,
				Template: imp.Template,
			}
		}
		if router != nil {
			if err := router.EnrollBatch(context.Background(), items); err != nil {
				return fmt.Errorf("preload: %w", err)
			}
		} else {
			for _, it := range items {
				if err := store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
					return fmt.Errorf("preload enroll %q: %w", it.ID, err)
				}
			}
		}
		logger.Printf("preloaded %d enrollments from %s", *preload, dev.Model)
	}

	if store != nil {
		if st, ok := store.IndexStats(); ok {
			logger.Printf("index enabled: %d templates, %d keys, %d postings",
				st.Templates, st.DistinctKeys, st.Postings)
		}
	}
	if router != nil {
		for i, b := range router.Backends() {
			n, err := b.Len(context.Background())
			if err != nil {
				logger.Printf("shard %d (%s): unreachable: %v", i, b.Name(), err)
				continue
			}
			logger.Printf("shard %d (%s): %d enrollments", i, b.Name(), n)
		}
	}

	srv := matchsvc.NewServer(backend, logger)
	srv.SetIdleTimeout(*idleTimeout)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (%d enrollments)", bound, backend.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if router != nil {
		// Degraded shards only rejoin the scatter set when something
		// probes them; do it periodically so a repaired shard does not
		// stay invisible until restart.
		go func() {
			ticker := time.NewTicker(30 * time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					for i, err := range router.CheckHealth(ctx) {
						if err != nil {
							logger.Printf("health probe: shard %d (%s): %v",
								i, router.Backends()[i].Name(), err)
						}
					}
				}
			}
		}()
	}
	if err := srv.Serve(ctx); err != nil {
		return err
	}
	if *storePath != "" {
		f, err := os.Create(*storePath)
		if err != nil {
			return fmt.Errorf("create gallery %s: %w", *storePath, err)
		}
		if router != nil {
			err = router.SaveTo(f)
		} else {
			err = store.SaveTo(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save gallery %s: %w", *storePath, err)
		}
		logger.Printf("saved %d enrollments to %s", backend.Len(), *storePath)
	}
	logger.Printf("shut down")
	return nil
}

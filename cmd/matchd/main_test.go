package main

import (
	"testing"
)

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-preload", "1", "-device", "D9"}); err == nil {
		t.Fatal("expected unknown-device error")
	}
	// An unusable listen address fails fast rather than serving.
	if err := run([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error")
	}
}

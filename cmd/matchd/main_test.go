package main

import (
	"testing"
)

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-preload", "1", "-device", "D9"}); err == nil {
		t.Fatal("expected unknown-device error")
	}
	// An unusable listen address fails fast rather than serving.
	if err := run([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error")
	}
	if err := run([]string{"-index-fanout", "-1"}); err == nil {
		t.Fatal("expected fanout validation error")
	}
	if err := run([]string{"-index-fanout", "128"}); err == nil {
		t.Fatal("expected -index-fanout without -index to be rejected")
	}
	// The indexed preload path wires EnableIndex before enrollment; the
	// bad address still aborts before serving.
	if err := run([]string{"-index", "-preload", "3", "-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error on indexed preload")
	}
	if err := run([]string{"-local-shards", "-2"}); err == nil {
		t.Fatal("expected negative -local-shards to be rejected")
	}
	if err := run([]string{"-local-shards", "2", "-shards", "127.0.0.1:1"}); err == nil {
		t.Fatal("expected -local-shards with -shards to be rejected")
	}
	if err := run([]string{"-shards", "127.0.0.1:1", "-index"}); err == nil {
		t.Fatal("expected -index on a -shards front to be rejected")
	}
	if err := run([]string{"-shards", "127.0.0.1:1", "-store", "/tmp/x"}); err == nil {
		t.Fatal("expected -store on a -shards front to be rejected")
	}
	if err := run([]string{"-shard-timeout", "5s"}); err == nil {
		t.Fatal("expected -shard-timeout without sharding to be rejected")
	}
	// A remote-shard front fails fast when a shard is unreachable.
	if err := run([]string{"-shards", "127.0.0.1:1", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("expected dial error for unreachable shard")
	}
	// The sharded preload path routes through EnrollBatch; the bad listen
	// address still aborts before serving.
	if err := run([]string{"-local-shards", "3", "-preload", "3", "-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error on sharded preload")
	}
}

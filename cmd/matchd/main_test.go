package main

import (
	"testing"
)

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-preload", "1", "-device", "D9"}); err == nil {
		t.Fatal("expected unknown-device error")
	}
	// An unusable listen address fails fast rather than serving.
	if err := run([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error")
	}
	if err := run([]string{"-index-fanout", "-1"}); err == nil {
		t.Fatal("expected fanout validation error")
	}
	if err := run([]string{"-index-fanout", "128"}); err == nil {
		t.Fatal("expected -index-fanout without -index to be rejected")
	}
	// The indexed preload path wires EnableIndex before enrollment; the
	// bad address still aborts before serving.
	if err := run([]string{"-index", "-preload", "3", "-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error on indexed preload")
	}
}

package main

// Metrics smoke test: a real matchd process serving sharded, durable
// traffic with -metrics-addr set must expose populated metrics — per-op
// request latency, per-shard health, WAL fsync detail — plus a healthy
// /healthz, a parseable /metrics.json, and an /admin/stats document
// that matches the topology it is actually running.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

var metricsRe = regexp.MustCompile(`msg="metrics listening" addr=(\S+)`)

// startMatchdWithMetrics launches a helper-mode matchd and returns the
// command plus both bound addresses: the match port and the admin port.
func startMatchdWithMetrics(t *testing.T, args ...string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("matchd[%d]: %s", cmd.Process.Pid, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				select {
				case metricsCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr, maddr string
	deadline := time.After(30 * time.Second)
	for addr == "" || maddr == "" {
		select {
		case addr = <-addrCh:
		case maddr = <-metricsCh:
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("matchd helper did not report both addresses (match=%q metrics=%q)", addr, maddr)
		}
	}
	return cmd, addr, maddr
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func TestMetricsSurfaceServesPopulatedMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	walDir := filepath.Join(t.TempDir(), "wal")
	cmd, addr, maddr := startMatchdWithMetrics(t,
		"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-local-shards", "2", "-wal-dir", walDir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Real traffic: enrollments spread across both shards by consistent
	// hashing, identifications scatter over both.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cli, err := matchsvc.DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dev, _ := sensor.ProfileByID("D0")
	cohort := population.NewCohort(rng.New(20130808), population.CohortOptions{Size: 12})
	probes := make([]*minutiae.Template, 0, 3)
	for i, subj := range cohort.Subjects {
		imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Enroll(ctx, fmt.Sprintf("subject-%04d", i), dev.ID, imp.Template); err != nil {
			t.Fatal(err)
		}
		if len(probes) < 3 {
			p, err := dev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, p.Template)
		}
	}
	for _, probe := range probes {
		if _, err := cli.Identify(ctx, probe, 3); err != nil {
			t.Fatal(err)
		}
	}

	// OpStats over the wire from a real durable sharded process.
	st, err := cli.ServiceStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != 12 || st.Shards != 2 {
		t.Fatalf("ServiceStats = %+v, want 12 enrollments on 2 shards", st)
	}
	if st.WAL == nil || st.WAL.LogBytes <= 0 {
		t.Fatalf("ServiceStats.WAL = %+v, want live log bytes", st.WAL)
	}

	if got := httpGet(t, "http://"+maddr+"/healthz"); strings.TrimSpace(got) != "ok" {
		t.Fatalf("/healthz = %q", got)
	}

	body := httpGet(t, "http://"+maddr+"/metrics")
	// Families every layer must have populated after the traffic above:
	// per-op server latency, per-shard identify latency and health,
	// gallery search counters, WAL append+fsync detail.
	for _, re := range []string{
		`matchsvc_server_requests_total\{op="enroll"\} 12`,
		`matchsvc_server_requests_total\{op="identify"\} 3`,
		`matchsvc_server_latency_ns_count\{op="enroll"\} 12`,
		`matchsvc_server_latency_ns_count\{op="identify"\} 3`,
		`matchsvc_server_connections [1-9]`,
		`shard_degraded\{shard="shard-0"\} 0`,
		`shard_degraded\{shard="shard-1"\} 0`,
		`shard_identify_latency_ns_count\{shard="shard-0"\} 3`,
		`shard_identify_latency_ns_count\{shard="shard-1"\} 3`,
		`shard_searches_total 3`,
		`gallery_identify_total\{shard="shard-[01]"\} 3`,
		`gallery_enrollments\{shard="shard-[01]"\} [1-9]`,
		`wal_append_latency_ns_count\{shard="shard-[01]"\} [1-9]`,
		`wal_fsync_latency_ns_count\{shard="shard-[01]"\} [1-9]`,
		`wal_log_bytes\{shard="shard-[01]"\} [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing %s", re)
		}
	}
	if t.Failed() {
		t.Fatalf("full exposition:\n%s", body)
	}

	// The JSON exposition must parse and carry the same families.
	var flat map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+maddr+"/metrics.json")), &flat); err != nil {
		t.Fatalf("/metrics.json did not parse: %v", err)
	}
	if _, ok := flat[`matchsvc_server_requests_total{op=enroll}`]; !ok {
		keys := make([]string, 0, len(flat))
		for k := range flat {
			keys = append(keys, k)
		}
		t.Fatalf("/metrics.json missing enroll counter; keys: %v", keys)
	}

	// /admin/stats reflects the actual topology.
	var view struct {
		Stats  matchsvc.ServiceStats `json:"stats"`
		Shards []struct {
			Name        string `json:"name"`
			Enrollments int    `json:"enrollments"`
			Degraded    bool   `json:"degraded"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+maddr+"/admin/stats")), &view); err != nil {
		t.Fatal(err)
	}
	if view.Stats.Shards != 2 || view.Stats.Enrollments != 12 {
		t.Fatalf("/admin/stats stats = %+v", view.Stats)
	}
	if view.Stats.WAL == nil || view.Stats.WAL.LogBytes <= 0 {
		t.Fatalf("/admin/stats WAL = %+v", view.Stats.WAL)
	}
	if len(view.Shards) != 2 {
		t.Fatalf("/admin/stats shards = %+v", view.Shards)
	}
	total := 0
	for _, sh := range view.Shards {
		if sh.Degraded {
			t.Fatalf("shard %s reported degraded", sh.Name)
		}
		total += sh.Enrollments
	}
	if total != 12 {
		t.Fatalf("per-shard enrollments sum to %d, want 12", total)
	}

	// pprof is mounted on the explicit mux.
	if got := httpGet(t, "http://"+maddr+"/debug/pprof/cmdline"); got == "" {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}

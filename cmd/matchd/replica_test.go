package main

// Replica smoke test at the process level: a WAL-backed primary matchd
// and two matchd read replicas (-replica-of) over real TCP. Replicas
// bootstrap before serving, stream the primary's tail continuously,
// refuse writes, expose their LSN lag on /metrics, and keep answering
// identifies bit-identically to the primary — even after the primary
// itself goes away.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// startReplicaMatchd starts a helper-mode matchd replica with a metrics
// listener, returning the serve and metrics addresses.
func startReplicaMatchd(t *testing.T, primary string) (addr, metricsAddr string) {
	t.Helper()
	cmd, addr, maddr := startMatchdWithMetrics(t,
		"-addr", "127.0.0.1:0",
		"-replica-of", primary,
		"-replica-sync-interval", "5ms",
		"-metrics-addr", "127.0.0.1:0")
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return addr, maddr
}

func TestReplicaSmokeProcessLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	const n = 40
	dev, _ := sensor.ProfileByID("D0")
	cohort := population.NewCohort(rng.New(20130808), population.CohortOptions{Size: n})
	normalize := func(tpl *minutiae.Template) *minutiae.Template {
		data, err := minutiae.Marshal(tpl)
		if err != nil {
			t.Fatal(err)
		}
		out, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ids := make([]string, n)
	tpls := make([]*minutiae.Template, n)
	probes := make([]*minutiae.Template, 0, 8)
	for i, subj := range cohort.Subjects {
		imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("subject-%04d", i)
		tpls[i] = normalize(imp.Template)
		if len(probes) < 8 {
			p, err := dev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, normalize(p.Template))
		}
	}

	walDir := filepath.Join(t.TempDir(), "wal")
	pcmd, paddr := startMatchd(t, "-addr", "127.0.0.1:0", "-wal-dir", walDir)
	primaryUp := true
	defer func() {
		if primaryUp {
			pcmd.Process.Kill()
			pcmd.Wait()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	pcli, err := matchsvc.DialContext(ctx, paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcli.Close()

	// Half the population enrolled before the replicas exist: the
	// bootstrap transfer, not the tail, must deliver these.
	for i := 0; i < n/2; i++ {
		if err := pcli.Enroll(ctx, ids[i], dev.ID, tpls[i]); err != nil {
			t.Fatal(err)
		}
	}

	r1addr, r1metrics := startReplicaMatchd(t, paddr)
	r2addr, _ := startReplicaMatchd(t, paddr)
	r1, err := matchsvc.DialContext(ctx, r1addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := matchsvc.DialContext(ctx, r2addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	// A replica serves the bootstrapped population the moment it
	// listens — the initial sync gates serving.
	for _, cli := range []*matchsvc.Client{r1, r2} {
		ok, err := cli.Has(ctx, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("replica listening before its bootstrap sync delivered the gallery")
		}
	}

	// The second half arrives while the replicas are live: the tail
	// stream must carry it over within the sync cadence.
	for i := n / 2; i < n; i++ {
		if err := pcli.Enroll(ctx, ids[i], dev.ID, tpls[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitHas := func(cli *matchsvc.Client, id string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			ok, err := cli.Has(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica never caught up to %q", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitHas(r1, ids[n-1])
	waitHas(r2, ids[n-1])

	// Writes are refused with a remote error; state is untouched.
	if err := r1.Enroll(ctx, "intruder", dev.ID, tpls[0]); err == nil ||
		!strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("replica accepted a write: %v", err)
	}
	if ok, _ := r1.Has(ctx, "intruder"); ok {
		t.Fatal("refused write still mutated the replica")
	}

	// Identify on each replica is bit-identical to the primary's answer
	// over the same recovered population.
	for pi, probe := range probes {
		want, err := pcli.Identify(ctx, probe, 3)
		if err != nil {
			t.Fatal(err)
		}
		for ri, cli := range []*matchsvc.Client{r1, r2} {
			got, err := cli.Identify(ctx, probe, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("replica %d probe %d: %d candidates vs %d", ri, pi, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("replica %d probe %d rank %d: (%q, %v) vs primary (%q, %v)",
						ri, pi, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}

	// The staleness bound is observable: the lag gauge is published on
	// the replica's /metrics and reads 0 once caught up.
	resp, err := http.Get("http://" + r1metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "replica_lsn_lag") {
		t.Fatalf("/metrics missing replica_lsn_lag:\n%s", text)
	}
	if !strings.Contains(text, `replica_lsn_lag{shard="local"} 0`) {
		t.Fatalf("caught-up replica reports nonzero lag:\n%s", text)
	}
	if !strings.Contains(text, "replica_records_applied_total") {
		t.Fatalf("/metrics missing replica_records_applied_total:\n%s", text)
	}

	// Reads outlive the primary: kill it and the replicas keep
	// answering from local state.
	pcmd.Process.Kill()
	pcmd.Wait()
	primaryUp = false
	got, err := r2.Identify(ctx, probes[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("replica lost its gallery with the primary")
	}
}

// TestReplicaFlagValidation pins the replica flag applicability rules.
func TestReplicaFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-replica-of", "127.0.0.1:1", "-local-shards", "2"},
		{"-replica-of", "127.0.0.1:1", "-shards", "127.0.0.1:2"},
		{"-replica-of", "127.0.0.1:1", "-wal-dir", "x"},
		{"-replica-of", "127.0.0.1:1", "-store", "y"},
		{"-replica-of", "127.0.0.1:1", "-preload", "5"},
		{"-replica-sync-interval", "50ms"},
		{"-replica-sync-interval", "-1s", "-replica-of", "127.0.0.1:1"},
		{"-replicas", "127.0.0.1:2"},
		{"-shards", "127.0.0.1:1,127.0.0.1:2", "-replicas", "127.0.0.1:3"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

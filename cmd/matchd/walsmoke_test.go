package main

// WAL smoke test: a real matchd process (this test binary re-executed
// in helper mode) serving with -wal-dir is SIGKILLed mid-enrollment,
// restarted over the same directory, and must come back with every
// acknowledged enrollment intact and rank-1 identification identical
// to a reference store over the recovered population. This is the
// process-level counterpart of internal/wal's in-process crash tests:
// nothing here gets a chance to flush politely.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

const helperEnv = "MATCHD_TEST_HELPER"

// TestMain turns the test binary into matchd when re-executed in
// helper mode, so the smoke test gets a genuine separate process to
// kill without shelling out to the go tool.
func TestMain(m *testing.M) {
	if args := os.Getenv(helperEnv); args != "" {
		if err := run(strings.Split(args, "\x1f")); err != nil {
			fmt.Fprintln(os.Stderr, "matchd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var listenRe = regexp.MustCompile(`msg=listening addr=(\S+)`)

// startMatchd launches a helper-mode matchd and returns its bound
// address (parsed from the startup log) and the running command.
func startMatchd(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("matchd[%d]: %s", cmd.Process.Pid, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("matchd helper did not report a listen address")
		return nil, ""
	}
}

func smokeSubjects(t *testing.T) int {
	n := 150
	if v := os.Getenv("WALSMOKE_SUBJECTS"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			t.Fatalf("bad WALSMOKE_SUBJECTS=%q", v)
		}
		n = parsed
	}
	return n
}

func TestKillNineRecoversAcknowledgedEnrollments(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	n := smokeSubjects(t)
	dev, _ := sensor.ProfileByID("D0")
	cohort := population.NewCohort(rng.New(20130807), population.CohortOptions{Size: n})
	// Codec-normalized like the fpis conformance fixtures: enrollment
	// and probes cross the wire codec, so only normalized templates make
	// the local reference store's scores bit-comparable to the server's.
	normalize := func(tpl *minutiae.Template) *minutiae.Template {
		data, err := minutiae.Marshal(tpl)
		if err != nil {
			t.Fatal(err)
		}
		out, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ids := make([]string, n)
	tpls := make([]*minutiae.Template, n)
	probes := make([]*minutiae.Template, 0, 16)
	for i, subj := range cohort.Subjects {
		imp, err := dev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("subject-%04d", i)
		tpls[i] = normalize(imp.Template)
		if len(probes) < 16 {
			p, err := dev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, normalize(p.Template))
		}
	}

	walDir := filepath.Join(t.TempDir(), "wal")
	cmd, addr := startMatchd(t, "-addr", "127.0.0.1:0", "-wal-dir", walDir, "-compact-every", "64")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cli, err := matchsvc.DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}

	// Stream enrollments and SIGKILL the server from another goroutine
	// once a third of them are acknowledged — the ack stream is cut
	// mid-flight, exactly the crash the WAL exists for.
	var (
		mu    sync.Mutex
		acked []int
	)
	killAt := n / 3
	killed := make(chan struct{})
	var killOnce sync.Once
	for i := range ids {
		err := cli.Enroll(ctx, ids[i], dev.ID, tpls[i])
		if err != nil {
			break // the kill landed; anything unacknowledged stays unclaimed
		}
		mu.Lock()
		acked = append(acked, i)
		count := len(acked)
		mu.Unlock()
		if count == killAt {
			go killOnce.Do(func() {
				cmd.Process.Kill() // SIGKILL: no handler, no flush
				close(killed)
			})
		}
	}
	<-killed
	cmd.Wait()
	cli.Close()
	if len(acked) < killAt {
		t.Fatalf("only %d enrollments acknowledged before the kill; wanted at least %d", len(acked), killAt)
	}
	t.Logf("killed matchd with %d of %d enrollments acknowledged", len(acked), n)

	// Restart over the same WAL directory: recovery must surface every
	// acknowledged enrollment.
	cmd2, addr2 := startMatchd(t, "-addr", "127.0.0.1:0", "-wal-dir", walDir, "-compact-every", "64")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cli2, err := matchsvc.DialContext(ctx, addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	for _, i := range acked {
		ok, err := cli2.Has(ctx, ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("acknowledged enrollment %q lost across the crash", ids[i])
		}
	}

	// The recovered population may legitimately include one extra
	// subject (logged durably, ack lost to the kill). Page the exact
	// recovered set out and hold rank-1 identification bit-identical to
	// a reference store over that same set.
	byID := make(map[string]*minutiae.Template, n)
	for i := range ids {
		byID[ids[i]] = tpls[i]
	}
	ref := gallery.New(nil)
	recovered := 0
	after := ""
	for {
		page, err := cli2.Scan(ctx, after, 128)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		after = page[len(page)-1].ID
		for _, e := range page {
			tpl, ok := byID[e.ID]
			if !ok {
				t.Fatalf("recovered unknown subject %q", e.ID)
			}
			if err := ref.Enroll(e.ID, e.DeviceID, tpl); err != nil {
				t.Fatal(err)
			}
			recovered++
		}
	}
	if recovered < len(acked) || recovered > len(acked)+1 {
		t.Fatalf("recovered %d subjects; acknowledged %d (at most one in-flight extra allowed)",
			recovered, len(acked))
	}
	for pi, probe := range probes {
		got, err := cli2.Identify(ctx, probe, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Identify(probe, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d candidates vs reference %d", pi, len(got), len(want))
		}
		if len(got) > 0 && (got[0].ID != want[0].ID || got[0].Score != want[0].Score) {
			t.Fatalf("probe %d rank-1 diverged after recovery: (%q, %v) vs reference (%q, %v)",
				pi, got[0].ID, got[0].Score, want[0].ID, want[0].Score)
		}
	}
}

// TestWALFlagValidation pins the flag applicability rules without
// starting a server.
func TestWALFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-compact-every", "8"},
		{"-wal-dir", "x", "-store", "y"},
		{"-wal-dir", "x", "-shards", "127.0.0.1:1"},
		{"-compact-every", "-1", "-wal-dir", "x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// Package fpinterop is a from-scratch Go reproduction of "Interoperability
// in Fingerprint Recognition: A Large-Scale Empirical Study" (Lugini,
// Marasco, Cukic & Gashi, DSN 2013).
//
// The library synthesizes the study's entire measurement apparatus —
// master fingerprints, the five capture devices, a minutiae matcher, an
// NFIQ-like quality assessor, and the statistical machinery — and
// regenerates every table and figure of the paper's evaluation. See
// README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package intentionally exports nothing; the implementation
// lives under internal/ and is exercised through cmd/, examples/ and the
// benchmark harness in bench_test.go.
package fpinterop

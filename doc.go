// Package fpinterop is a from-scratch Go reproduction of "Interoperability
// in Fingerprint Recognition: A Large-Scale Empirical Study" (Lugini,
// Marasco, Cukic & Gashi, DSN 2013).
//
// The library synthesizes the study's entire measurement apparatus —
// master fingerprints, the five capture devices, a minutiae matcher, an
// NFIQ-like quality assessor, and the statistical machinery — and
// regenerates every table and figure of the paper's evaluation. See
// README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The public API lives in the fpis subpackage: one context-aware
// fpis.Service interface (Enroll, EnrollBatch, Remove, Verify,
// Identify, IdentifyDetailed, Stats, Close) served by three
// interchangeable implementations — a local in-process gallery
// (fpis.New), a sharded scatter-gather tier (fpis.New with
// fpis.WithLocalShards or fpis.WithShards), and a remote matchd
// connection (fpis.Dial). Every call takes a context.Context first;
// deadlines and cancellation propagate end to end, down to the
// parallel exhaustive scan and the wire round trip.
//
// This root package itself exports nothing: the measurement apparatus
// stays under internal/ and is exercised through fpis, cmd/, examples/
// and the benchmark harness in bench_test.go.
package fpinterop

// Quality-gated enrollment: NIST SP 800-76 (cited by the paper)
// recommends re-acquiring a fingerprint up to three times when the NFIQ
// quality of an index finger is worse than 3. This example measures what
// that recapture policy buys: the distribution of enrolled quality and
// the cross-device FNMR with and without the gate.
package main

import (
	"fmt"
	"log"

	"fpinterop/internal/match"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/stats"
)

const (
	cohortSize  = 150
	maxAttempts = 3
	threshold   = 7.0
)

func main() {
	log.SetFlags(0)
	cohort := population.NewCohort(rng.New(800), population.CohortOptions{Size: cohortSize})
	enroll, _ := sensor.ProfileByID("D1") // the noisier optical sensor
	verify, _ := sensor.ProfileByID("D0")
	matcher := &match.HoughMatcher{}

	// Enroll twice: once taking the first capture unconditionally, once
	// with the NIST recapture policy (retry while NFIQ > 3, up to 3
	// attempts, keeping the best).
	plain := make([]*sensor.Impression, cohortSize)
	gated := make([]*sensor.Impression, cohortSize)
	recaptures := 0
	for i, s := range cohort.Subjects {
		first, err := enroll.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		plain[i] = first
		best := first
		for attempt := 1; attempt < maxAttempts && nfiq.RecaptureRecommended(best.Quality); attempt++ {
			recaptures++
			// Habituation: each retry benefits from practice.
			retry, err := enroll.CaptureSubject(s, attempt, sensor.CaptureOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if retry.Quality < best.Quality {
				best = retry
			}
		}
		gated[i] = best
	}

	qualityHist := func(imps []*sensor.Impression) [5]int {
		var h [5]int
		for _, imp := range imps {
			h[imp.Quality-1]++
		}
		return h
	}
	fmt.Printf("Enrollment on %s, verification on %s\n\n", enroll.Model, verify.Model)
	fmt.Printf("NFIQ distribution      1    2    3    4    5\n")
	fmt.Printf("first capture:     %5d%5d%5d%5d%5d\n", splat(qualityHist(plain))...)
	fmt.Printf("with recapture:    %5d%5d%5d%5d%5d   (%d recaptures)\n",
		append(splat(qualityHist(gated)), recaptures)...)

	// Verify everyone cross-device.
	score := func(gallery []*sensor.Impression) []float64 {
		var out []float64
		for i, s := range cohort.Subjects {
			probe, err := verify.CaptureSubject(s, 1, sensor.CaptureOptions{SampleIndex: 1})
			if err != nil {
				log.Fatal(err)
			}
			res, err := matcher.Match(gallery[i].Template, probe.Template)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, res.Score)
		}
		return out
	}
	plainScores := score(plain)
	gatedScores := score(gated)
	fmt.Printf("\ncross-device genuine mean: %.2f -> %.2f\n",
		stats.Mean(plainScores), stats.Mean(gatedScores))
	fmt.Printf("cross-device FNMR @ %.0f:    %.3f -> %.3f\n",
		threshold, stats.FNMRAt(plainScores, threshold), stats.FNMRAt(gatedScores, threshold))
	fmt.Println("\nThe paper's Figure 5(b): with diverse devices, both images must be")
	fmt.Println("high quality to avoid low genuine scores — the recapture gate supplies that.")
}

func splat(h [5]int) []any {
	out := make([]any, 5)
	for i, v := range h {
		out[i] = v
	}
	return out
}

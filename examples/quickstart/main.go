// Quickstart: enroll a finger on one sensor, verify it on the same
// sensor, and inspect the similarity score — the minimal end-to-end use
// of the library's public surface (population → sensor → matcher).
package main

import (
	"fmt"
	"log"

	"fpinterop/internal/match"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func main() {
	log.SetFlags(0)

	// Every run of this program is identical: the cohort, every capture
	// and therefore every score derive from this one seed.
	cohort := population.NewCohort(rng.New(42), population.CohortOptions{Size: 2})
	alice := cohort.Subjects[0]
	mallory := cohort.Subjects[1]

	guardian, ok := sensor.ProfileByID("D0")
	if !ok {
		log.Fatal("device D0 missing")
	}

	// Enrollment: first interaction with the sensor produces the gallery
	// template.
	enrolled, err := guardian.CaptureSubject(alice, 0, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled alice on %s: %d minutiae, quality %s\n",
		guardian.Model, enrolled.Template.Count(), enrolled.Quality)

	// Verification: a later capture on the same device.
	probe, err := guardian.CaptureSubject(alice, 1, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}

	matcher := &match.HoughMatcher{} // zero value = production defaults
	genuine, err := matcher.Match(enrolled.Template, probe.Template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genuine attempt:  score %5.2f (matched %d minutiae)\n",
		genuine.Score, genuine.Matched)

	// An impostor attempt: someone else's finger on the same device.
	attack, err := guardian.CaptureSubject(mallory, 0, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	impostor, err := matcher.Match(enrolled.Template, attack.Template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impostor attempt: score %5.2f (matched %d minutiae)\n",
		impostor.Score, impostor.Matched)

	// The study found impostor scores never exceed 7 on this scale.
	const threshold = 7.0
	fmt.Printf("\ndecision at threshold %.0f: genuine=%v impostor=%v\n",
		threshold, genuine.Score >= threshold, impostor.Score >= threshold)
}

// Quickstart: enroll a finger on one sensor, verify it on the same
// sensor, run a 1:N identification, and inspect the similarity scores —
// the minimal end-to-end use of the library's public surface: the
// capture pipeline (population → sensor) feeding the fpis.Service
// identity facade.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fpinterop/fpis"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func main() {
	log.SetFlags(0)

	// Every run of this program is identical: the cohort, every capture
	// and therefore every score derive from this one seed.
	cohort := population.NewCohort(rng.New(42), population.CohortOptions{Size: 2})
	alice := cohort.Subjects[0]
	mallory := cohort.Subjects[1]

	guardian, ok := sensor.ProfileByID("D0")
	if !ok {
		log.Fatal("device D0 missing")
	}

	// The identity service: here a local in-process gallery; the same
	// fpis.Service interface serves sharded (fpis.WithLocalShards /
	// fpis.WithShards) and remote (fpis.Dial) deployments. Every call
	// takes a context, so callers can bound or cancel any operation.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	svc, err := fpis.New(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Enrollment: first interaction with the sensor produces the gallery
	// template.
	enrolled, err := guardian.CaptureSubject(alice, 0, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Enroll(ctx, "alice", guardian.ID, enrolled.Template); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled alice on %s: %d minutiae, quality %s\n",
		guardian.Model, enrolled.Template.Count(), enrolled.Quality)

	// Verification: a later capture on the same device, compared 1:1
	// against the claimed identity.
	probe, err := guardian.CaptureSubject(alice, 1, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	genuine, err := svc.Verify(ctx, "alice", probe.Template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genuine attempt:  score %5.2f (matched %d minutiae)\n",
		genuine.Score, genuine.Matched)

	// An impostor attempt: someone else's finger claiming alice's
	// identity on the same device.
	attack, err := guardian.CaptureSubject(mallory, 0, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	impostor, err := svc.Verify(ctx, "alice", attack.Template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impostor attempt: score %5.2f (matched %d minutiae)\n",
		impostor.Score, impostor.Matched)

	// Identification: who does this probe belong to, with no claimed
	// identity? (1:N over the whole gallery.)
	cands, err := svc.Identify(ctx, probe.Template, 1)
	if err != nil {
		log.Fatal(err)
	}
	top := "(none)"
	if len(cands) > 0 {
		top = fmt.Sprintf("%s (score %.2f)", cands[0].ID, cands[0].Score)
	}
	fmt.Printf("identification:   rank-1 %s\n", top)

	// The study found impostor scores never exceed 7 on this scale.
	const threshold = 7.0
	fmt.Printf("\ndecision at threshold %.0f: genuine=%v impostor=%v\n",
		threshold, genuine.Score >= threshold, impostor.Score >= threshold)
}

// Remote matching: the deployment shape the paper's discussion section
// contemplates — a central matcher and gallery behind a network service,
// with heterogeneous capture devices at the edge. This example starts the
// service in-process, enrolls travellers captured on one sensor, then
// verifies and identifies them from a *different* sensor over the wire.
// It then preloads a larger gallery into two services — one exhaustive,
// one with the minutia-triplet retrieval index — and contrasts their
// identification latency (p50/p99 over the wire).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// startServer serves a store in-process and returns a connected client
// plus a shutdown func.
func startServer(store *gallery.Store) (*matchsvc.Client, func()) {
	srv := matchsvc.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	cli, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	cli.SetRequestTimeout(time.Minute)
	return cli, func() {
		cli.Close()
		cancel()
		srv.Close()
		<-done
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// indexedIdentifyDemo preloads an exhaustive and an indexed service
// with the same gallery and compares 1:N latency over the wire.
func indexedIdentifyDemo(gallerySize, probeCount int) {
	fmt.Printf("\n--- indexed identification, %d enrollments ---\n", gallerySize)
	cohort := population.NewCohort(rng.New(366), population.CohortOptions{Size: gallerySize})
	enrollDev, _ := sensor.ProfileByID("D0")

	exhaustive := gallery.New(nil)
	indexed := gallery.New(nil)
	if err := indexed.EnableIndex(gallery.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	probes := make([]*minutiae.Template, 0, probeCount)
	for i, subj := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("subject-%05d", i)
		if err := exhaustive.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
		if err := indexed.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
		if i < probeCount {
			p, err := enrollDev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
			if err != nil {
				log.Fatal(err)
			}
			probes = append(probes, p.Template)
		}
	}
	if st, ok := indexed.IndexStats(); ok {
		fmt.Printf("index: %d templates, %d keys, %d postings\n",
			st.Templates, st.DistinctKeys, st.Postings)
	}

	fmt.Printf("%-12s %10s %10s %8s %10s\n", "path", "p50", "p99", "rank-1", "shortlist")
	for _, cfg := range []struct {
		name  string
		store *gallery.Store
	}{{"exhaustive", exhaustive}, {"indexed", indexed}} {
		cli, shutdown := startServer(cfg.store)
		lats := make([]time.Duration, 0, len(probes))
		hits := 0
		shortlistSum := 0
		for i, probe := range probes {
			start := time.Now()
			cands, stats, err := cli.IdentifyEx(probe, 1)
			if err != nil {
				log.Fatal(err)
			}
			lats = append(lats, time.Since(start))
			if len(cands) > 0 && cands[0].ID == fmt.Sprintf("subject-%05d", i) {
				hits++
			}
			shortlistSum += stats.Shortlist
		}
		shutdown()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("%-12s %10v %10v %5d/%-2d %10.1f\n",
			cfg.name,
			percentile(lats, 0.50).Round(100*time.Microsecond),
			percentile(lats, 0.99).Round(100*time.Microsecond),
			hits, len(probes),
			float64(shortlistSum)/float64(len(probes)))
	}
}

func main() {
	log.SetFlags(0)

	// Central service.
	srv := matchsvc.NewServer(gallery.New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	defer func() {
		srv.Close()
		<-done
	}()
	fmt.Printf("match service listening on %s\n", addr)

	// Edge station 1: enrollment desk with a Guardian R2.
	cohort := population.NewCohort(rng.New(365), population.CohortOptions{Size: 8})
	enrollDev, _ := sensor.ProfileByID("D0")
	enrollStation, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer enrollStation.Close()
	for i, subj := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("traveller-%02d", i)
		if err := enrollStation.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
	}
	n, err := enrollStation.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d travellers on %s\n\n", n, enrollDev.Model)

	// Edge station 2: verification kiosk with a different sensor.
	verifyDev, _ := sensor.ProfileByID("D3")
	kiosk, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer kiosk.Close()

	fmt.Printf("kiosk sensor: %s (cross-device verification)\n", verifyDev.Model)
	fmt.Printf("%-14s %10s %8s %14s\n", "claimed ID", "score", "match?", "identified as")
	hits := 0
	for i, subj := range cohort.Subjects {
		imp, err := verifyDev.CaptureSubject(subj, 1, sensor.CaptureOptions{SampleIndex: 1})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("traveller-%02d", i)
		res, err := kiosk.Verify(id, imp.Template)
		if err != nil {
			log.Fatal(err)
		}
		cands, err := kiosk.Identify(imp.Template, 1)
		if err != nil {
			log.Fatal(err)
		}
		top := "(none)"
		if len(cands) > 0 {
			top = cands[0].ID
			if top == id {
				hits++
			}
		}
		fmt.Printf("%-14s %10.2f %8v %14s\n", id, res.Score, res.Score >= 7, top)
	}
	fmt.Printf("\nrank-1 identification across devices: %d/%d\n", hits, len(cohort.Subjects))

	// Scale the gallery up and let the retrieval index earn its keep.
	indexedIdentifyDemo(400, 25)
}

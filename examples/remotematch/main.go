// Remote matching: the deployment shape the paper's discussion section
// contemplates — a central matcher and gallery behind a network service,
// with heterogeneous capture devices at the edge. This example starts the
// service in-process, then drives it purely through the public
// fpis.Service facade: an enrollment desk and a verification kiosk each
// hold an fpis.Dial connection, every request carries a context
// deadline, and a deliberately tight deadline shows an in-flight 1:N
// search being cancelled mid-scan. It then preloads a larger gallery
// into two services — one exhaustive, one with the minutia-triplet
// retrieval index — and contrasts their identification latency: each
// wire round trip is recorded into an obs histogram and the p50/p99
// read back with the same quantile estimator the /metrics.json
// endpoint uses in production.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"fpinterop/fpis"
	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// startServer serves a store in-process and returns its address plus a
// shutdown func. This is the serving side (what cmd/matchd runs);
// everything below it speaks fpis.
func startServer(store *gallery.Store) (string, func()) {
	srv := matchsvc.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	return addr, func() {
		cancel()
		srv.Close()
		<-done
	}
}

// indexedIdentifyDemo preloads an exhaustive and an indexed service
// with the same gallery and compares 1:N latency over the wire.
func indexedIdentifyDemo(gallerySize, probeCount int) {
	fmt.Printf("\n--- indexed identification, %d enrollments ---\n", gallerySize)
	cohort := population.NewCohort(rng.New(366), population.CohortOptions{Size: gallerySize})
	enrollDev, _ := sensor.ProfileByID("D0")

	exhaustive := gallery.New(nil)
	indexed := gallery.New(nil)
	if err := indexed.EnableIndex(gallery.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	probes := make([]*minutiae.Template, 0, probeCount)
	for i, subj := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("subject-%05d", i)
		if err := exhaustive.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
		if err := indexed.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
		if i < probeCount {
			p, err := enrollDev.CaptureSubject(subj, 1, sensor.CaptureOptions{})
			if err != nil {
				log.Fatal(err)
			}
			probes = append(probes, p.Template)
		}
	}
	if st, ok := indexed.IndexStats(); ok {
		fmt.Printf("index: %d templates, %d keys, %d postings\n",
			st.Templates, st.DistinctKeys, st.Postings)
	}

	// One latency histogram per search path, from the same obs package
	// matchd exposes on /metrics — Quantile replaces hand-sorted
	// percentile math.
	latency := obs.NewRegistry().HistogramVec("identify_latency_ns",
		"1:N search latency over the wire.", obs.LatencyBuckets(), "path")

	fmt.Printf("%-12s %10s %10s %8s %10s\n", "path", "p50", "p99", "rank-1", "shortlist")
	for _, cfg := range []struct {
		name  string
		store *gallery.Store
	}{{"exhaustive", exhaustive}, {"indexed", indexed}} {
		addr, shutdown := startServer(cfg.store)
		svc, err := fpis.Dial(context.Background(), addr, fpis.WithRequestTimeout(time.Minute))
		if err != nil {
			log.Fatal(err)
		}
		lat := latency.With(cfg.name)
		hits := 0
		shortlistSum := 0
		for i, probe := range probes {
			// Each search gets its own deadline — the per-request
			// control a central service needs under heavy traffic.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			start := time.Now()
			cands, stats, err := svc.IdentifyDetailed(ctx, probe, 1)
			cancel()
			if err != nil {
				log.Fatal(err)
			}
			lat.ObserveSince(start)
			if len(cands) > 0 && cands[0].ID == fmt.Sprintf("subject-%05d", i) {
				hits++
			}
			shortlistSum += stats.Shortlist
		}
		svc.Close()
		shutdown()
		fmt.Printf("%-12s %10v %10v %5d/%-2d %10.1f\n",
			cfg.name,
			time.Duration(lat.Quantile(0.50)).Round(100*time.Microsecond),
			time.Duration(lat.Quantile(0.99)).Round(100*time.Microsecond),
			hits, len(probes),
			float64(shortlistSum)/float64(len(probes)))
	}
}

func main() {
	log.SetFlags(0)

	// Central service.
	addr, shutdown := startServer(gallery.New(nil))
	defer shutdown()
	fmt.Printf("match service listening on %s\n", addr)

	// Edge station 1: enrollment desk with a Guardian R2, connected
	// through the public facade.
	cohort := population.NewCohort(rng.New(365), population.CohortOptions{Size: 8})
	enrollDev, _ := sensor.ProfileByID("D0")
	dialCtx, dialCancel := context.WithTimeout(context.Background(), 2*time.Second)
	enrollStation, err := fpis.Dial(dialCtx, addr, fpis.WithRequestTimeout(time.Minute))
	dialCancel()
	if err != nil {
		log.Fatal(err)
	}
	defer enrollStation.Close()
	items := make([]fpis.Enrollment, len(cohort.Subjects))
	for i, subj := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		items[i] = fpis.Enrollment{
			ID:       fmt.Sprintf("traveller-%02d", i),
			DeviceID: enrollDev.ID,
			Template: imp.Template,
		}
	}
	ctx := context.Background()
	if err := enrollStation.EnrollBatch(ctx, items); err != nil {
		log.Fatal(err)
	}
	st, err := enrollStation.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d travellers on %s\n\n", st.Enrollments, enrollDev.Model)

	// Edge station 2: verification kiosk with a different sensor.
	verifyDev, _ := sensor.ProfileByID("D3")
	kiosk, err := fpis.Dial(ctx, addr, fpis.WithRequestTimeout(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	defer kiosk.Close()

	fmt.Printf("kiosk sensor: %s (cross-device verification)\n", verifyDev.Model)
	fmt.Printf("%-14s %10s %8s %14s\n", "claimed ID", "score", "match?", "identified as")
	hits := 0
	for i, subj := range cohort.Subjects {
		imp, err := verifyDev.CaptureSubject(subj, 1, sensor.CaptureOptions{SampleIndex: 1})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("traveller-%02d", i)
		reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		res, err := kiosk.Verify(reqCtx, id, imp.Template)
		if err != nil {
			log.Fatal(err)
		}
		cands, err := kiosk.Identify(reqCtx, imp.Template, 1)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		top := "(none)"
		if len(cands) > 0 {
			top = cands[0].ID
			if top == id {
				hits++
			}
		}
		fmt.Printf("%-14s %10.2f %8v %14s\n", id, res.Score, res.Score >= 7, top)
	}
	fmt.Printf("\nrank-1 identification across devices: %d/%d\n", hits, len(cohort.Subjects))

	// Cancellation: an already-expired deadline unblocks immediately
	// with the context's error instead of paying for the search.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Millisecond))
	probe, err := verifyDev.CaptureSubject(cohort.Subjects[0], 1, sensor.CaptureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	_, err = kiosk.Identify(expired, probe.Template, 1)
	cancel()
	fmt.Printf("expired-deadline identify: err=%v (is deadline: %v) after %v\n",
		err, errors.Is(err, context.DeadlineExceeded), time.Since(start).Round(time.Millisecond))

	// Scale the gallery up and let the retrieval index earn its keep.
	indexedIdentifyDemo(400, 25)
}

// Remote matching: the deployment shape the paper's discussion section
// contemplates — a central matcher and gallery behind a network service,
// with heterogeneous capture devices at the edge. This example starts the
// service in-process, enrolls travellers captured on one sensor, then
// verifies and identifies them from a *different* sensor over the wire.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func main() {
	log.SetFlags(0)

	// Central service.
	srv := matchsvc.NewServer(gallery.New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	defer func() {
		srv.Close()
		<-done
	}()
	fmt.Printf("match service listening on %s\n", addr)

	// Edge station 1: enrollment desk with a Guardian R2.
	cohort := population.NewCohort(rng.New(365), population.CohortOptions{Size: 8})
	enrollDev, _ := sensor.ProfileByID("D0")
	enrollStation, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer enrollStation.Close()
	for i, subj := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("traveller-%02d", i)
		if err := enrollStation.Enroll(id, enrollDev.ID, imp.Template); err != nil {
			log.Fatal(err)
		}
	}
	n, err := enrollStation.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d travellers on %s\n\n", n, enrollDev.Model)

	// Edge station 2: verification kiosk with a different sensor.
	verifyDev, _ := sensor.ProfileByID("D3")
	kiosk, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer kiosk.Close()

	fmt.Printf("kiosk sensor: %s (cross-device verification)\n", verifyDev.Model)
	fmt.Printf("%-14s %10s %8s %14s\n", "claimed ID", "score", "match?", "identified as")
	hits := 0
	for i, subj := range cohort.Subjects {
		imp, err := verifyDev.CaptureSubject(subj, 1, sensor.CaptureOptions{SampleIndex: 1})
		if err != nil {
			log.Fatal(err)
		}
		id := fmt.Sprintf("traveller-%02d", i)
		res, err := kiosk.Verify(id, imp.Template)
		if err != nil {
			log.Fatal(err)
		}
		cands, err := kiosk.Identify(imp.Template, 1)
		if err != nil {
			log.Fatal(err)
		}
		top := "(none)"
		if len(cands) > 0 {
			top = cands[0].ID
			if top == id {
				hits++
			}
		}
		fmt.Printf("%-14s %10.2f %8v %14s\n", id, res.Score, res.Score >= 7, top)
	}
	fmt.Printf("\nrank-1 identification across devices: %d/%d\n", hits, len(cohort.Subjects))
}

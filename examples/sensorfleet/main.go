// Sensor-fleet operating points: an operator running a heterogeneous
// fleet must pick decision thresholds. This example contrasts a single
// global threshold (calibrated on pooled impostor scores at a target FMR)
// with per-device-pair thresholds, showing how per-pair calibration
// equalizes FNMR across the fleet — one of the architecture questions the
// paper's discussion section raises. It then enrolls the whole fleet
// into a sharded central gallery — the public fpis.Service facade over
// a consistent-hash router of three shards — and shows scatter-gather
// identification returning the same rank-1 answers as the same facade
// over one monolithic store.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fpinterop/fpis"
	"fpinterop/internal/match"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/stats"
)

const (
	cohortSize = 100
	targetFMR  = 0.01
)

func main() {
	log.SetFlags(0)
	cohort := population.NewCohort(rng.New(77), population.CohortOptions{Size: cohortSize})
	devices := sensor.LiveScanProfiles()
	matcher := &match.HoughMatcher{}

	// Capture two samples of everyone on every live-scan device.
	impressions := make(map[string][][]*sensor.Impression, len(devices))
	for _, dev := range devices {
		perSubject := make([][]*sensor.Impression, cohortSize)
		for i, s := range cohort.Subjects {
			for k := 0; k < 2; k++ {
				imp, err := dev.CaptureSubject(s, k, sensor.CaptureOptions{})
				if err != nil {
					log.Fatal(err)
				}
				perSubject[i] = append(perSubject[i], imp)
			}
		}
		impressions[dev.ID] = perSubject
	}

	// Score every ordered device pair: genuine (same subject) and
	// impostor (next subject, cyclically).
	type pair struct{ g, p string }
	genuine := map[pair][]float64{}
	impostor := map[pair][]float64{}
	for _, dg := range devices {
		for _, dp := range devices {
			k := pair{dg.ID, dp.ID}
			for i := 0; i < cohortSize; i++ {
				g := impressions[dg.ID][i][0]
				pr := impressions[dp.ID][i][1]
				res, err := matcher.Match(g.Template, pr.Template)
				if err != nil {
					log.Fatal(err)
				}
				genuine[k] = append(genuine[k], res.Score)
				o := impressions[dp.ID][(i+1)%cohortSize][1]
				res, err = matcher.Match(g.Template, o.Template)
				if err != nil {
					log.Fatal(err)
				}
				impostor[k] = append(impostor[k], res.Score)
			}
		}
	}

	// Global threshold from pooled impostors.
	var pooled []float64
	for _, xs := range impostor {
		pooled = append(pooled, xs...)
	}
	globalThr, err := stats.ThresholdForFMR(pooled, targetFMR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fleet of %d devices, target FMR %.2g, global threshold %.2f\n\n",
		len(devices), targetFMR, globalThr)
	fmt.Printf("%-10s %12s %12s %14s\n", "Pair", "global FNMR", "pair thr", "per-pair FNMR")

	var worstGlobal, worstPer float64
	for _, dg := range devices {
		for _, dp := range devices {
			k := pair{dg.ID, dp.ID}
			gFNMR := stats.FNMRAt(genuine[k], globalThr)
			thr, err := stats.ThresholdForFMR(impostor[k], targetFMR)
			if err != nil {
				log.Fatal(err)
			}
			pFNMR := stats.FNMRAt(genuine[k], thr)
			fmt.Printf("%-10s %12.3f %12.2f %14.3f\n",
				dg.ID+"->"+dp.ID, gFNMR, thr, pFNMR)
			if gFNMR > worstGlobal {
				worstGlobal = gFNMR
			}
			if pFNMR > worstPer {
				worstPer = pFNMR
			}
		}
	}
	fmt.Printf("\nworst-case FNMR: global threshold %.3f, per-pair thresholds %.3f\n",
		worstGlobal, worstPer)

	// --- Sharded central gallery -------------------------------------
	// The fleet's enrollment device is D0 (first sample of everyone);
	// the central gallery is the public fpis.Service facade, once over a
	// single store and once partitioned across three shards. EnrollBatch
	// groups the fleet's templates by owning shard, so a remote
	// deployment ships one batch per shard instead of one round trip per
	// subject; every call carries a context deadline.
	const shards = 3
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sharded, err := fpis.New(ctx, fpis.WithLocalShards(shards), fpis.WithShardTimeout(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()
	single, err := fpis.New(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()
	items := make([]fpis.Enrollment, cohortSize)
	for i := 0; i < cohortSize; i++ {
		tpl := impressions["D0"][i][0].Template
		id := fmt.Sprintf("subject-%04d", i)
		items[i] = fpis.Enrollment{ID: id, DeviceID: "D0", Template: tpl}
	}
	if err := single.EnrollBatch(ctx, items); err != nil {
		log.Fatal(err)
	}
	if err := sharded.EnrollBatch(ctx, items); err != nil {
		log.Fatal(err)
	}
	st, err := sharded.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSharded central gallery: %d subjects across %d shards\n", st.Enrollments, st.Shards)

	// Search cross-device probes (digID Mini second samples) through
	// both paths; scatter-gather must reproduce the single store's
	// rank-1 exactly.
	const probeN = 20
	agree, hits := 0, 0
	for i := 0; i < probeN; i++ {
		probe := impressions["D1"][i][1].Template
		want, err := single.Identify(ctx, probe, 1)
		if err != nil {
			log.Fatal(err)
		}
		got, stats, err := sharded.IdentifyDetailed(ctx, probe, 1)
		if err != nil {
			log.Fatal(err)
		}
		if stats.Partial {
			log.Fatalf("partial coverage: %+v", stats)
		}
		if len(got) > 0 && len(want) > 0 && got[0] == want[0] {
			agree++
		}
		if len(got) > 0 && got[0].ID == fmt.Sprintf("subject-%04d", i) {
			hits++
		}
	}
	fmt.Printf("scatter-gather vs single store: %d/%d rank-1 identical, %d/%d correct identifications\n",
		agree, probeN, hits, probeN)
}

// US-VISIT scenario: the paper motivates interoperability with the
// US-VISIT border program, where travellers enroll on one 500-dpi optical
// sensor but may be verified years later on a different device. This
// example enrolls a population on the Cross Match Guardian R2 (D0) and
// verifies everyone on each of the other devices, reporting how the
// genuine score distribution and the false-non-match rate degrade — and
// how much a Ross–Nadgir calibration recovers.
package main

import (
	"fmt"
	"log"

	"fpinterop/internal/calib"
	"fpinterop/internal/match"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/stats"
)

const (
	cohortSize = 120
	trainSize  = 40 // subjects used to fit inter-sensor calibrations
	threshold  = 7.0
)

func main() {
	log.SetFlags(0)
	cohort := population.NewCohort(rng.New(2004), population.CohortOptions{Size: cohortSize})
	enrollDev, _ := sensor.ProfileByID("D0")
	matcher := &match.HoughMatcher{}

	// Enroll everyone at the port of entry.
	gallery := make([]*sensor.Impression, cohortSize)
	for i, s := range cohort.Subjects {
		imp, err := enrollDev.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		gallery[i] = imp
	}

	fmt.Printf("US-VISIT scenario: %d travellers enrolled on %s\n\n", cohortSize, enrollDev.Model)
	fmt.Printf("%-6s %-42s %10s %10s %12s\n", "Probe", "Model", "mean score", "FNMR", "FNMR+calib")

	for _, dev := range sensor.Profiles() {
		probes := make([]*sensor.Impression, cohortSize)
		for i, s := range cohort.Subjects {
			imp, err := dev.CaptureSubject(s, 1, sensor.CaptureOptions{SampleIndex: 1})
			if err != nil {
				log.Fatal(err)
			}
			probes[i] = imp
		}

		// Plain verification on the evaluation split.
		var scores []float64
		for i := trainSize; i < cohortSize; i++ {
			res, err := matcher.Match(gallery[i].Template, probes[i].Template)
			if err != nil {
				log.Fatal(err)
			}
			scores = append(scores, res.Score)
		}
		fnmr := stats.FNMRAt(scores, threshold)

		// Calibrated verification (cross-device only): fit the
		// inter-sensor warp on the training split.
		calibFNMR := fnmr
		if dev.ID != enrollDev.ID {
			var pairs []calib.TemplatePair
			for i := 0; i < trainSize; i++ {
				pairs = append(pairs, calib.TemplatePair{
					Gallery: gallery[i].Template, Probe: probes[i].Template,
				})
			}
			cal, err := calib.FitCalibration(matcher, pairs, calib.CalibrationOptions{})
			if err != nil {
				log.Printf("%s: calibration failed: %v", dev.ID, err)
			} else {
				cm := &calib.CalibratedMatcher{Base: matcher, Cal: cal}
				var calScores []float64
				for i := trainSize; i < cohortSize; i++ {
					res, err := cm.Match(gallery[i].Template, probes[i].Template)
					if err != nil {
						log.Fatal(err)
					}
					calScores = append(calScores, res.Score)
				}
				calibFNMR = stats.FNMRAt(calScores, threshold)
			}
		}
		fmt.Printf("%-6s %-42s %10.2f %10.3f %12.3f\n",
			dev.ID, dev.Model, stats.Mean(scores), fnmr, calibFNMR)
	}
	fmt.Println("\nSame-device verification keeps FNMR lowest; ink cards are the")
	fmt.Println("worst probes, and calibration recovers part of the cross-device loss.")
}

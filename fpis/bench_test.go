package fpis

// Metrics-overhead benchmarks: the same local identify workload with
// instrumentation off and on. CI publishes both rows in
// BENCH_PR8.json so the metrics-on-vs-off delta is diffable across
// PRs; the acceptance bar is < 2% ns/op regression and identical
// allocs/op.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"fpinterop/internal/obs"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

const benchSubjects = 24

var (
	benchOnce   sync.Once
	benchGal    []*Template
	benchProbe  *Template
	benchFixErr error
)

func benchFixtures(b *testing.B) (gal []*Template, probe *Template) {
	b.Helper()
	benchOnce.Do(func() {
		cohort := population.NewCohort(rng.New(20130808), population.CohortOptions{Size: benchSubjects})
		dev, _ := sensor.ProfileByID("D0")
		for _, s := range cohort.Subjects {
			imp, err := dev.CaptureSubject(s, 0, sensor.CaptureOptions{})
			if err != nil {
				benchFixErr = err
				return
			}
			benchGal = append(benchGal, imp.Template)
		}
		p, err := dev.CaptureSubject(cohort.Subjects[0], 1, sensor.CaptureOptions{})
		if err != nil {
			benchFixErr = err
			return
		}
		benchProbe = p.Template
	})
	if benchFixErr != nil {
		b.Fatal(benchFixErr)
	}
	return benchGal, benchProbe
}

func benchService(b *testing.B, opts ...Option) Service {
	b.Helper()
	gal, _ := benchFixtures(b)
	ctx := context.Background()
	svc, err := New(ctx, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	for i := range gal {
		if err := svc.Enroll(ctx, fmt.Sprintf("subject-%04d", i), "D0", gal[i]); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

func benchIdentify(b *testing.B, svc Service) {
	b.Helper()
	_, probe := benchFixtures(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Identify(ctx, probe, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceIdentifyMetricsOff(b *testing.B) {
	benchIdentify(b, benchService(b))
}

func BenchmarkServiceIdentifyMetricsOn(b *testing.B) {
	reg := obs.NewRegistry()
	hooks := obs.NewHooks()
	hooks.OnAfter(func(obs.Event) {})
	benchIdentify(b, benchService(b, WithMetrics(reg), WithHooks(hooks)))
}

func BenchmarkServiceVerifyMetricsOff(b *testing.B) {
	svc := benchService(b)
	_, probe := benchFixtures(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Verify(ctx, "subject-0000", probe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceVerifyMetricsOn(b *testing.B) {
	svc := benchService(b, WithMetrics(obs.NewRegistry()))
	_, probe := benchFixtures(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Verify(ctx, "subject-0000", probe); err != nil {
			b.Fatal(err)
		}
	}
}

package fpis

// Mid-flight cancellation at the facade level: an in-flight Identify
// must unblock with ctx.Err() well before the search would complete,
// on every deployment shape, and the service must remain usable
// afterward.

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/shard"
)

// slowShard wraps a Backend and pins IdentifyDetailed until the
// configured delay elapses or the context is cancelled — a
// deterministic stand-in for a large gallery's scan time.
type slowShard struct {
	shard.Backend
	mu    sync.Mutex
	delay time.Duration
}

func (s *slowShard) setDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delay = d
}

func (s *slowShard) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, gallery.IdentifyStats, error) {
	s.mu.Lock()
	d := s.delay
	s.mu.Unlock()
	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, gallery.IdentifyStats{}, ctx.Err()
		}
	}
	return s.Backend.IdentifyDetailed(ctx, probe, k)
}

// TestShardedIdentifyCancellationMidFlight is the acceptance check for
// cancellation plumbing: with one shard pinned far beyond any
// plausible test budget, cancelling the caller's context unblocks the
// scatter within milliseconds, returns ctx.Err(), leaks no workers,
// and leaves the service healthy for the next search.
func TestShardedIdentifyCancellationMidFlight(t *testing.T) {
	gal, probes := confFixtures(t)
	slow := &slowShard{Backend: shard.NewLocal("slow", gallery.New(nil)), delay: 30 * time.Second}
	backends := []shard.Backend{shard.NewLocal("fast", gallery.New(nil)), slow}
	router, err := shard.New(backends, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := Service(&shardedService{router: router})
	defer svc.Close()
	ctx := context.Background()
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: confID(i), DeviceID: "D0", Template: tpl}
	}
	if err := svc.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = svc.IdentifyDetailed(cctx, probes[0], 3)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The slow shard would hold the search for 30s; cancellation must
	// beat that by orders of magnitude.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled identify returned after %v", elapsed)
	}
	// Abandoned scatter workers drain.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("worker leak: %d goroutines before, %d after", before, now)
	}
	// Cancellation is not a shard failure: nothing degraded, and the
	// service keeps serving once the slowdown clears.
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DegradedShards) != 0 {
		t.Fatalf("cancellation degraded shards: %+v", st)
	}
	slow.setDelay(0)
	got, stats, err := svc.IdentifyDetailed(ctx, probes[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial || stats.ShardsQueried != 2 || len(got) != 3 {
		t.Fatalf("service unhealthy after cancellation: %d candidates, stats %+v", len(got), stats)
	}
}

// TestLocalIdentifyDeadlineBoundsScan drives the local implementation
// with an already-expired deadline: the scan must not start.
func TestLocalIdentifyDeadlineBoundsScan(t *testing.T) {
	gal, probes := confFixtures(t)
	svc, err := New(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for i, tpl := range gal {
		if err := svc.Enroll(ctx, confID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := svc.Identify(dctx, probes[0], 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestRemoteIdentifyCancellationInterruptsWire cancels an identify
// blocked on a mute server: the wire round trip must unblock with
// ctx.Err() instead of hanging on the read.
func TestRemoteIdentifyCancellationInterruptsWire(t *testing.T) {
	_, probes := confFixtures(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	svc, err := Dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = svc.Identify(cctx, probes[0], 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled remote identify returned after %v", elapsed)
	}
}

// TestDialPreCancelledFailsFastWithoutDialing mirrors the matchsvc
// satellite at the facade level: a pre-cancelled construction context
// must not open a connection.
func TestDialPreCancelledFailsFastWithoutDialing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&accepts, 1)
			conn.Close()
		}
	}()
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Dial(pre, ln.Addr().String()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := New(pre, WithShards(ln.Addr().String())); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded new: want context.Canceled, got %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := atomic.LoadInt32(&accepts); n != 0 {
		t.Fatalf("pre-cancelled construction reached the listener %d times", n)
	}
}

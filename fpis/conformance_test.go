package fpis

// Conformance suite: one scenario matrix — enroll, batch enroll,
// verify, identify (including degenerate k), remove, stats, and
// pre-cancelled contexts — run against every Service implementation
// (local, sharded, remote), with the retrieval index on and off, to
// prove the facade behaves identically regardless of the deployment
// shape behind it.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

const confSubjects = 12

// Captured templates are the expensive fixture; build one shared,
// codec-normalized set (remote enrollment quantizes templates through
// the wire codec, so only normalized templates make local and remote
// scores bit-comparable).
var (
	confOnce   sync.Once
	confGal    []*Template // D0 sample 0, codec-normalized
	confProbes []*Template // D1 sample 1, codec-normalized
	confErr    error
)

func confFixtures(t *testing.T) (gal, probes []*Template) {
	t.Helper()
	confOnce.Do(func() {
		normalize := func(tpl *Template) (*Template, error) {
			data, err := MarshalTemplate(tpl)
			if err != nil {
				return nil, err
			}
			return UnmarshalTemplate(data)
		}
		cohort := population.NewCohort(rng.New(20130515), population.CohortOptions{Size: confSubjects})
		d0, _ := sensor.ProfileByID("D0")
		d1, _ := sensor.ProfileByID("D1")
		for _, s := range cohort.Subjects {
			g, err := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
			if err != nil {
				confErr = err
				return
			}
			p, err := d1.CaptureSubject(s, 1, sensor.CaptureOptions{})
			if err != nil {
				confErr = err
				return
			}
			gn, err := normalize(g.Template)
			if err != nil {
				confErr = err
				return
			}
			pn, err := normalize(p.Template)
			if err != nil {
				confErr = err
				return
			}
			confGal = append(confGal, gn)
			confProbes = append(confProbes, pn)
		}
	})
	if confErr != nil {
		t.Fatal(confErr)
	}
	return confGal, confProbes
}

func confID(i int) string { return fmt.Sprintf("subject-%04d", i) }

// bootMatchd runs an in-process matchsvc server over a fresh store
// (indexed on demand) and returns its address.
func bootMatchd(t *testing.T, indexed bool) string {
	t.Helper()
	store := gallery.New(nil)
	if indexed {
		if err := store.EnableIndex(gallery.IndexOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	srv := matchsvc.NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return addr
}

// implementations enumerates the conformance matrix: every Service
// construction path, with and without the retrieval index.
type implCase struct {
	name    string
	indexed bool
	shards  int // expected Stats.Shards
	build   func(t *testing.T) Service
}

func implementations(t *testing.T) []implCase {
	var cases []implCase
	for _, indexed := range []bool{false, true} {
		indexed := indexed
		suffix := "/exhaustive"
		if indexed {
			suffix = "/indexed"
		}
		cases = append(cases,
			implCase{
				name: "local" + suffix, indexed: indexed, shards: 1,
				build: func(t *testing.T) Service {
					var opts []Option
					if indexed {
						opts = append(opts, WithIndex(0))
					}
					svc, err := New(context.Background(), opts...)
					if err != nil {
						t.Fatal(err)
					}
					return svc
				},
			},
			implCase{
				name: "sharded" + suffix, indexed: indexed, shards: 3,
				build: func(t *testing.T) Service {
					opts := []Option{WithLocalShards(3), WithShardTimeout(time.Minute)}
					if indexed {
						opts = append(opts, WithIndex(0))
					}
					svc, err := New(context.Background(), opts...)
					if err != nil {
						t.Fatal(err)
					}
					return svc
				},
			},
			implCase{
				name: "remote" + suffix, indexed: indexed, shards: 1,
				build: func(t *testing.T) Service {
					addr := bootMatchd(t, indexed)
					svc, err := Dial(context.Background(), addr,
						WithRequestTimeout(time.Minute), WithDialTimeout(2*time.Second))
					if err != nil {
						t.Fatal(err)
					}
					return svc
				},
			},
		)
	}
	return cases
}

// golden computes the reference full ranking for a probe with a plain
// exhaustive local store over the fixture gallery minus the removed
// IDs.
func golden(t *testing.T, gal []*Template, probe *Template, removed map[string]bool) []Candidate {
	t.Helper()
	store := gallery.New(nil)
	for i, tpl := range gal {
		if removed[confID(i)] {
			continue
		}
		if err := store.Enroll(confID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	out, err := store.Identify(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameCandidates(t *testing.T, label string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: candidate %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestServiceConformance runs the full scenario matrix against every
// implementation.
func TestServiceConformance(t *testing.T) {
	gal, probes := confFixtures(t)
	ctx := context.Background()
	fullRank := golden(t, gal, probes[0], nil)
	afterRemove := golden(t, gal, probes[0], map[string]bool{confID(5): true})
	verifyWant := fullRankScoreOf(fullRank, confID(2))

	for _, ic := range implementations(t) {
		ic := ic
		t.Run(ic.name, func(t *testing.T) {
			svc := ic.build(t)
			defer func() {
				if err := svc.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()

			// Enrollment: half through the batch path, half one by one.
			items := make([]Enrollment, 0, confSubjects/2)
			for i := 0; i < confSubjects/2; i++ {
				items = append(items, Enrollment{ID: confID(i), DeviceID: "D0", Template: gal[i]})
			}
			if err := svc.EnrollBatch(ctx, items); err != nil {
				t.Fatal(err)
			}
			for i := confSubjects / 2; i < confSubjects; i++ {
				if err := svc.Enroll(ctx, confID(i), "D0", gal[i]); err != nil {
					t.Fatal(err)
				}
			}
			st, err := svc.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Enrollments != confSubjects || st.Shards != ic.shards || len(st.DegradedShards) != 0 {
				t.Fatalf("stats after enrollment: %+v", st)
			}
			// In-process services must report their index state; remote
			// servers own theirs and report false.
			wantIndexed := ic.indexed && !strings.HasPrefix(ic.name, "remote")
			if st.Indexed != wantIndexed {
				t.Fatalf("stats.Indexed = %v, want %v", st.Indexed, wantIndexed)
			}

			// Duplicate enrollment is ErrDuplicate on every path.
			if err := svc.Enroll(ctx, confID(0), "D0", gal[0]); !errors.Is(err, ErrDuplicate) {
				t.Fatalf("duplicate enroll: want ErrDuplicate, got %v", err)
			}

			// 1:1 verification: bit-identical scores everywhere.
			res, err := svc.Verify(ctx, confID(2), probes[0])
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != verifyWant {
				t.Fatalf("verify score %v, want %v", res.Score, verifyWant)
			}
			if _, err := svc.Verify(ctx, "nobody", probes[0]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("verify unknown: want ErrNotFound, got %v", err)
			}

			// Identification across the k matrix. Every k <= 0 and every
			// k >= gallery size is the full exhaustive ranking —
			// bit-identical to the golden list on all paths, indexed or
			// not (indexes only serve partial-k searches).
			for _, k := range []int{-3, 0, confSubjects, confSubjects + 8} {
				got, stats, err := svc.IdentifyDetailed(ctx, probes[0], k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				sameCandidates(t, fmt.Sprintf("k=%d", k), got, fullRank)
				if stats.GallerySize != confSubjects || stats.Partial {
					t.Fatalf("k=%d: implausible stats %+v", k, stats)
				}
				if stats.ShardsQueried != ic.shards {
					t.Fatalf("k=%d: queried %d shards, want %d", k, stats.ShardsQueried, ic.shards)
				}
			}
			// Partial-k searches: indexed paths may legitimately prune,
			// so the cross-implementation contract is the result length
			// and the rank-1 hit; exhaustive paths must stay
			// bit-identical.
			for _, k := range []int{1, 4} {
				got, stats, err := svc.IdentifyDetailed(ctx, probes[0], k)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if len(got) != k {
					t.Fatalf("k=%d: %d candidates", k, len(got))
				}
				if got[0].ID != fullRank[0].ID {
					t.Fatalf("k=%d: rank-1 %q, want %q", k, got[0].ID, fullRank[0].ID)
				}
				if !stats.Indexed {
					sameCandidates(t, fmt.Sprintf("k=%d", k), got, fullRank[:k])
				}
			}

			// Removal: gone from verification and from rankings,
			// ErrNotFound on the second attempt.
			if err := svc.Remove(ctx, confID(5)); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Verify(ctx, confID(5), probes[5]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("verify removed: want ErrNotFound, got %v", err)
			}
			if err := svc.Remove(ctx, confID(5)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double remove: want ErrNotFound, got %v", err)
			}
			got, err := svc.Identify(ctx, probes[0], 0)
			if err != nil {
				t.Fatal(err)
			}
			sameCandidates(t, "post-remove full ranking", got, afterRemove)
			if st, err := svc.Stats(ctx); err != nil || st.Enrollments != confSubjects-1 {
				t.Fatalf("stats after remove: %+v err=%v", st, err)
			}

			// Pre-cancelled contexts fail fast with ctx.Err() on every
			// method, and leave the service untouched.
			pre, cancel := context.WithCancel(context.Background())
			cancel()
			if err := svc.Enroll(pre, "late", "D0", gal[0]); !errors.Is(err, context.Canceled) {
				t.Fatalf("enroll pre-cancelled: %v", err)
			}
			if err := svc.EnrollBatch(pre, items); !errors.Is(err, context.Canceled) {
				t.Fatalf("enroll batch pre-cancelled: %v", err)
			}
			if err := svc.Remove(pre, confID(1)); !errors.Is(err, context.Canceled) {
				t.Fatalf("remove pre-cancelled: %v", err)
			}
			if _, err := svc.Verify(pre, confID(1), probes[1]); !errors.Is(err, context.Canceled) {
				t.Fatalf("verify pre-cancelled: %v", err)
			}
			if _, _, err := svc.IdentifyDetailed(pre, probes[0], 1); !errors.Is(err, context.Canceled) {
				t.Fatalf("identify pre-cancelled: %v", err)
			}
			if _, err := svc.Stats(pre); !errors.Is(err, context.Canceled) {
				t.Fatalf("stats pre-cancelled: %v", err)
			}
			// The cancelled calls changed nothing and the service still
			// serves.
			st2, err := svc.Stats(ctx)
			if err != nil || st2.Enrollments != confSubjects-1 {
				t.Fatalf("service unusable after cancelled calls: %+v err=%v", st2, err)
			}
		})
	}
}

// fullRankScoreOf extracts one candidate's score from the golden full
// ranking.
func fullRankScoreOf(rank []Candidate, id string) float64 {
	for _, c := range rank {
		if c.ID == id {
			return c.Score
		}
	}
	return -1
}

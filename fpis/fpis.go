// Package fpis is the public face of the fingerprint identity service:
// one context-aware Service interface over every deployment shape the
// library supports — a single in-process gallery, a sharded
// scatter-gather tier, or a remote matchd instance reached over the
// wire protocol.
//
// The three implementations are constructed from the same package:
//
//	svc, err := fpis.New(ctx)                                  // local store
//	svc, err := fpis.New(ctx, fpis.WithIndex(0))               // local + triplet index
//	svc, err := fpis.New(ctx, fpis.WithLocalShards(4))         // sharded, in-process
//	svc, err := fpis.New(ctx, fpis.WithShards("a:7070", ...))  // sharded, remote
//	svc, err := fpis.Dial(ctx, "127.0.0.1:7070")               // one remote matchd
//
// Every call takes a context.Context first. Deadlines bound the whole
// operation (including wire I/O on remote paths), and cancellation
// unblocks an in-flight 1:N identification promptly — the local
// exhaustive scan polls the context between matcher comparisons, the
// sharded scatter abandons and cancels its per-shard calls, and the
// remote client interrupts blocked I/O. All three implementations are
// behaviorally identical on the non-cancelled paths; the conformance
// suite in this package holds them to that.
package fpis

import (
	"context"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/shard"
)

// Template is a minutiae template — the unit of enrollment and search.
// Templates come from the capture pipeline (see internal/sensor) or
// the binary codec (minutiae.Unmarshal via UnmarshalTemplate).
type Template = minutiae.Template

// MarshalTemplate encodes a template with the library's binary codec —
// the same encoding the wire protocol and gallery persistence use.
func MarshalTemplate(t *Template) ([]byte, error) { return minutiae.Marshal(t) }

// UnmarshalTemplate decodes a template produced by MarshalTemplate.
func UnmarshalTemplate(data []byte) (*Template, error) { return minutiae.Unmarshal(data) }

// MatchResult is one 1:1 comparison outcome. Remote implementations
// carry only Score and Matched across the wire.
type MatchResult = match.Result

// Candidate is one identification hit: an enrollment ID, the device
// that produced its template, and the similarity score.
type Candidate = gallery.Candidate

// Enrollment is one batched enrollment item.
type Enrollment = shard.Enrollment

// Sentinel errors, matchable with errors.Is on every implementation —
// remote backends map the server's reported failure onto the same
// values.
var (
	// ErrNotFound reports an unknown enrollment ID.
	ErrNotFound = gallery.ErrNotFound
	// ErrDuplicate reports an already-used enrollment ID.
	ErrDuplicate = gallery.ErrDuplicate
)

// IdentifyStats describes how one identification was served,
// regardless of the serving path.
type IdentifyStats struct {
	// GallerySize is the number of enrollments searched (summed over
	// shards on the sharded path).
	GallerySize int
	// Shortlist is how many candidates retrieval indexes surfaced (0
	// when no index took part).
	Shortlist int
	// Scanned is how many full matcher comparisons ran.
	Scanned int
	// Indexed reports whether index shortlists served the search (on
	// the sharded path: every answering shard used its index).
	Indexed bool
	// ShardsQueried, ShardsSkipped, and ShardsFailed partition the
	// shard set (1/0/0 for local and remote implementations).
	ShardsQueried int
	ShardsSkipped int
	ShardsFailed  int
	// Partial reports incomplete coverage: a shard was skipped or
	// failed, so a mate enrolled there could be missing from the
	// candidates.
	Partial bool
}

// Stats is a point-in-time service summary.
type Stats struct {
	// Enrollments counts enrolled subjects (reachable shards only).
	Enrollments int
	// Shards is the number of backends serving the gallery (1 for
	// local and remote implementations).
	Shards int
	// DegradedShards names shards currently excluded from searches.
	DegradedShards []string
	// Indexed reports whether a retrieval index is enabled (local and
	// locally-sharded implementations; remote servers own their index
	// state and do not expose it).
	Indexed bool
	// WAL summarizes write-ahead-log durability for services built with
	// WithWAL; nil otherwise (including remote connections, whose
	// durability lives in the serving process).
	WAL *WALStats
}

// WALStats aggregates write-ahead-log state across every shard of a
// durable service: what the startup crash recovery found and how much
// un-compacted log currently sits on disk.
type WALStats struct {
	// SnapshotEntries is the number of enrollments restored from
	// compaction snapshots at startup.
	SnapshotEntries int
	// Replayed is the number of log records re-applied past the
	// snapshots during crash recovery.
	Replayed int
	// TruncatedBytes counts torn-tail bytes discarded during recovery —
	// the unreadable remainder of writes interrupted by the crash.
	TruncatedBytes int64
	// TornTails is how many shards' logs ended mid-record (each was
	// truncated back to its last intact record).
	TornTails int
	// LogBytes is the current total log size across shards; compaction
	// resets it.
	LogBytes int64
}

// Service is the identity-service facade. Every method takes a
// context.Context first: its deadline bounds the operation end to end
// and its cancellation unblocks in-flight work with ctx.Err().
// Implementations are safe for concurrent use.
type Service interface {
	// Enroll registers a template under id. Enrolling an existing id
	// fails with ErrDuplicate.
	Enroll(ctx context.Context, id, deviceID string, tpl *Template) error
	// EnrollBatch registers many templates, grouping work to minimize
	// round trips on sharded and remote paths. Not atomic: on failure
	// an arbitrary subset may remain enrolled — sharded services land
	// whole per-shard groups in parallel, so the survivors need not be
	// a prefix of items. Re-driving the same batch is safe to the
	// extent that duplicates surface as ErrDuplicate.
	EnrollBatch(ctx context.Context, items []Enrollment) error
	// Remove deletes an enrollment; an unknown id fails with
	// ErrNotFound.
	Remove(ctx context.Context, id string) error
	// Verify runs a 1:1 comparison of the probe against one
	// enrollment; an unknown id fails with ErrNotFound.
	Verify(ctx context.Context, id string, probe *Template) (MatchResult, error)
	// Identify searches the probe 1:N and returns the top-k candidates
	// by descending score with deterministic ID tie-breaks. Any k <= 0
	// requests the full ranking; k beyond the gallery size is clamped.
	Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error)
	// IdentifyDetailed is Identify plus retrieval statistics.
	IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error)
	// Stats summarizes the service (enrollment count, shard health,
	// index state).
	Stats(ctx context.Context) (Stats, error)
	// Close releases resources the constructor acquired (network
	// connections on remote paths). The service is unusable afterward.
	Close() error
}

// New builds an in-process Service from functional options: a single
// local gallery by default, a consistent-hash shard router over
// in-process stores with WithLocalShards, or a scatter-gather front
// over remote matchd shards with WithShards. The context bounds
// construction work (dialing remote shards); it does not outlive New.
func New(ctx context.Context, opts ...Option) (Service, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := checkNewConfig(cfg); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		svc     Service
		backend string
	)
	switch {
	case len(cfg.remoteShards) > 0:
		svc, err = newRemoteSharded(ctx, cfg)
		backend = "sharded"
	case cfg.localShards > 0:
		svc, err = newLocalSharded(cfg)
		backend = "sharded"
	default:
		svc, err = newLocal(cfg)
		backend = "local"
	}
	if err != nil {
		return nil, err
	}
	return instrument(svc, backend, cfg), nil
}

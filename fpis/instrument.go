package fpis

import (
	"context"
	"errors"
	"time"

	"fpinterop/internal/matchsvc"
	"fpinterop/internal/obs"
	"fpinterop/internal/shard"
)

// Facade operation indices: one latency histogram handle per op,
// resolved once at construction so the request path never touches the
// registry.
const (
	opEnroll = iota
	opEnrollBatch
	opRemove
	opVerify
	opIdentify
	opIdentifyDetailed
	opStats
	opClose
	opCount
)

var opNames = [opCount]string{
	"enroll", "enroll_batch", "remove", "verify",
	"identify", "identify_detailed", "stats", "close",
}

// instrumented decorates a Service with per-op latency histograms,
// error-class counters, and lifecycle-hook dispatch. It is only
// constructed when WithMetrics or WithHooks was given; a plain
// service carries no wrapper at all.
type instrumented struct {
	inner   Service
	backend string
	hooks   *obs.Hooks
	lat     [opCount]*obs.Histogram
	errs    *obs.CounterVec
}

// instrument wraps svc when cfg asks for observability. backend is
// the deployment-shape label ("local", "sharded", "remote").
func instrument(svc Service, backend string, cfg config) Service {
	if cfg.metrics == nil && cfg.hooks == nil {
		return svc
	}
	w := &instrumented{inner: svc, backend: backend, hooks: cfg.hooks}
	if cfg.metrics != nil {
		latVec := cfg.metrics.HistogramVec("fpis_op_latency_ns",
			"Facade operation latency in nanoseconds.",
			obs.LatencyBuckets(), "op", "backend")
		for i := range w.lat {
			w.lat[i] = latVec.With(opNames[i], backend)
		}
		w.errs = cfg.metrics.CounterVec("fpis_op_errors_total",
			"Facade operation failures by error class.",
			"op", "backend", "class")
	}
	return w
}

// errClass maps an operation error onto a low-cardinality label
// value. Sentinels are matched with errors.Is, so wrapped and
// remote-mapped failures classify identically to local ones.
func errClass(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrDuplicate):
		return "duplicate"
	case errors.Is(err, shard.ErrDegraded) || errors.Is(err, shard.ErrShardTimeout):
		return "degraded"
	case errors.Is(err, matchsvc.ErrRemote):
		return "remote"
	default:
		return "other"
	}
}

// finish records one completed operation: latency always, the error
// counter on failure, and the hook events. The success path is
// alloc-free — time.Since, atomic observes, and a by-value Event.
//
//fpvet:hotpath rides every facade operation, including zero-alloc identify
func (s *instrumented) finish(op int, t0 time.Time, err error) {
	d := time.Since(t0)
	s.lat[op].Observe(int64(d))
	var class string
	if err != nil {
		class = errClass(err)
		if s.errs != nil {
			s.errs.With(opNames[op], s.backend, class).Inc()
		}
	}
	s.hooks.After(obs.Event{Op: opNames[op], Backend: s.backend, Duration: d, Err: err, Class: class})
}

func (s *instrumented) Enroll(ctx context.Context, id, deviceID string, tpl *Template) error {
	s.hooks.Before(opNames[opEnroll], s.backend)
	t0 := time.Now()
	err := s.inner.Enroll(ctx, id, deviceID, tpl)
	s.finish(opEnroll, t0, err)
	return err
}

func (s *instrumented) EnrollBatch(ctx context.Context, items []Enrollment) error {
	s.hooks.Before(opNames[opEnrollBatch], s.backend)
	t0 := time.Now()
	err := s.inner.EnrollBatch(ctx, items)
	s.finish(opEnrollBatch, t0, err)
	return err
}

func (s *instrumented) Remove(ctx context.Context, id string) error {
	s.hooks.Before(opNames[opRemove], s.backend)
	t0 := time.Now()
	err := s.inner.Remove(ctx, id)
	s.finish(opRemove, t0, err)
	return err
}

func (s *instrumented) Verify(ctx context.Context, id string, probe *Template) (MatchResult, error) {
	s.hooks.Before(opNames[opVerify], s.backend)
	t0 := time.Now()
	res, err := s.inner.Verify(ctx, id, probe)
	s.finish(opVerify, t0, err)
	return res, err
}

func (s *instrumented) Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error) {
	s.hooks.Before(opNames[opIdentify], s.backend)
	t0 := time.Now()
	out, err := s.inner.Identify(ctx, probe, k)
	s.finish(opIdentify, t0, err)
	return out, err
}

func (s *instrumented) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error) {
	s.hooks.Before(opNames[opIdentifyDetailed], s.backend)
	t0 := time.Now()
	out, st, err := s.inner.IdentifyDetailed(ctx, probe, k)
	s.finish(opIdentifyDetailed, t0, err)
	return out, st, err
}

func (s *instrumented) Stats(ctx context.Context) (Stats, error) {
	s.hooks.Before(opNames[opStats], s.backend)
	t0 := time.Now()
	st, err := s.inner.Stats(ctx)
	s.finish(opStats, t0, err)
	return st, err
}

func (s *instrumented) Close() error {
	s.hooks.Before(opNames[opClose], s.backend)
	t0 := time.Now()
	err := s.inner.Close()
	s.finish(opClose, t0, err)
	return err
}

package fpis

import (
	"context"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"fpinterop/internal/obs"
)

// nopService is an inert Service: the instrumented wrapper around it
// measures pure instrumentation overhead.
type nopService struct{}

func (nopService) Enroll(context.Context, string, string, *Template) error { return nil }
func (nopService) EnrollBatch(context.Context, []Enrollment) error         { return nil }
func (nopService) Remove(context.Context, string) error                    { return nil }
func (nopService) Verify(context.Context, string, *Template) (MatchResult, error) {
	return MatchResult{}, nil
}
func (nopService) Identify(context.Context, *Template, int) ([]Candidate, error) {
	return nil, nil
}
func (nopService) IdentifyDetailed(context.Context, *Template, int) ([]Candidate, IdentifyStats, error) {
	return nil, IdentifyStats{}, nil
}
func (nopService) Stats(context.Context) (Stats, error) { return Stats{}, nil }
func (nopService) Close() error                         { return nil }

// TestInstrumentationZeroAllocOverhead pins the tentpole's
// non-negotiable: with metrics AND hooks enabled, the wrapper adds
// zero allocations per operation on the success path.
func TestInstrumentationZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg := obs.NewRegistry()
	hooks := obs.NewHooks()
	var afterCalls atomic.Int64
	hooks.OnBefore(func(op, backend string) {})
	hooks.OnAfter(func(e obs.Event) { afterCalls.Add(1) })
	svc := instrument(nopService{}, "local", config{metrics: reg, hooks: hooks})
	ctx := context.Background()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Identify", func() { svc.Identify(ctx, nil, 5) }},
		{"IdentifyDetailed", func() { svc.IdentifyDetailed(ctx, nil, 5) }},
		{"Verify", func() { svc.Verify(ctx, "id", nil) }},
		{"Enroll", func() { svc.Enroll(ctx, "id", "D0", nil) }},
		{"Remove", func() { svc.Remove(ctx, "id") }},
	}
	for _, tc := range cases {
		tc.fn() // warm: first call may resolve lazy runtime state
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: instrumentation added %v allocs/op, want 0", tc.name, n)
		}
	}
	if afterCalls.Load() == 0 {
		t.Fatal("after hooks never ran")
	}
}

func TestWithMetricsRecordsOps(t *testing.T) {
	gal, probes := confFixtures(t)
	reg := obs.NewRegistry()
	ctx := context.Background()
	svc, err := New(ctx, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := range gal {
		if err := svc.Enroll(ctx, confID(i), "D0", gal[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Identify(ctx, probes[0], 3); err != nil {
		t.Fatal(err)
	}
	if err := svc.Remove(ctx, "no-such-id"); err == nil {
		t.Fatal("expected ErrNotFound")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fpis_op_latency_ns_count{op="enroll",backend="local"} ` + strconv.Itoa(len(gal)),
		`fpis_op_latency_ns_count{op="identify",backend="local"} 1`,
		`fpis_op_errors_total{op="remove",backend="local",class="not_found"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestWithHooksSeesEventsAndClasses(t *testing.T) {
	gal, probes := confFixtures(t)
	hooks := obs.NewHooks()
	type seen struct {
		op, backend, class string
		hadErr             bool
	}
	var events []seen
	hooks.OnAfter(func(e obs.Event) {
		events = append(events, seen{e.Op, e.Backend, e.Class, e.Err != nil})
	})
	var errEvents []seen
	hooks.OnError(func(e obs.Event) {
		errEvents = append(errEvents, seen{e.Op, e.Backend, e.Class, e.Err != nil})
	})
	ctx := context.Background()
	svc, err := New(ctx, WithHooks(hooks), WithLocalShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Enroll(ctx, confID(0), "D0", gal[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Verify(ctx, confID(0), probes[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Enroll(ctx, confID(0), "D0", gal[0]); err == nil {
		t.Fatal("expected ErrDuplicate")
	}
	want := []seen{
		{"enroll", "sharded", "", false},
		{"verify", "sharded", "", false},
		{"enroll", "sharded", "duplicate", true},
	}
	if len(events) != len(want) {
		t.Fatalf("events %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	if len(errEvents) != 1 || errEvents[0].class != "duplicate" {
		t.Fatalf("error hooks saw %+v, want one duplicate", errEvents)
	}
}

func TestErrClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "deadline"},
		{ErrNotFound, "not_found"},
		{ErrDuplicate, "duplicate"},
	}
	for _, tc := range cases {
		if got := errClass(tc.err); got != tc.want {
			t.Errorf("errClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestOptionsRejectNilObservability(t *testing.T) {
	if _, err := New(context.Background(), WithMetrics(nil)); err == nil {
		t.Fatal("WithMetrics(nil) accepted")
	}
	if _, err := New(context.Background(), WithHooks(nil)); err == nil {
		t.Fatal("WithHooks(nil) accepted")
	}
}

package fpis

import (
	"context"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/wal"
)

// localService serves the facade from one in-process gallery store,
// optionally made durable by a write-ahead log.
type localService struct {
	store *gallery.Store
	// wal is non-nil when the service was built with WithWAL; every
	// mutation then routes through it so acknowledgements imply
	// durability. Reads go straight to the store either way.
	wal *wal.Store
}

// indexOptions translates the facade's index knobs to the store's.
func indexOptions(c config) gallery.IndexOptions {
	return gallery.IndexOptions{Index: index.Options{Fanout: c.indexFanout}}
}

func newLocal(cfg config) (Service, error) {
	store := gallery.New(nil)
	if cfg.setParallelism {
		store.SetParallelism(cfg.parallelism)
	}
	if cfg.index {
		// Enabled before recovery so the WAL replay's bulk load builds
		// the index once instead of record by record.
		if err := store.EnableIndex(indexOptions(cfg)); err != nil {
			return nil, err
		}
	}
	if cfg.metrics != nil {
		store.SetMetrics(cfg.metrics, "local")
	}
	svc := &localService{store: store}
	if cfg.walDir != "" {
		ws, err := wal.Open(cfg.walDir, store, wal.Options{
			CompactEvery: cfg.compactEvery,
			Metrics:      cfg.metrics,
			Shard:        "local",
		})
		if err != nil {
			return nil, err
		}
		svc.wal = ws
	}
	return svc, nil
}

func (s *localService) Enroll(ctx context.Context, id, deviceID string, tpl *Template) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.Enroll(id, deviceID, tpl)
	}
	return s.store.Enroll(id, deviceID, tpl)
}

func (s *localService) EnrollBatch(ctx context.Context, items []Enrollment) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.wal != nil {
		// The WAL's group commit makes the whole batch one fsync — and,
		// unlike the plain path, atomic.
		exports := make([]gallery.Export, len(items))
		for i, it := range items {
			exports[i] = gallery.Export{ID: it.ID, DeviceID: it.DeviceID, Template: it.Template}
		}
		return s.wal.EnrollBatch(exports)
	}
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
			return err
		}
	}
	return nil
}

func (s *localService) Remove(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.Remove(id)
	}
	return s.store.Remove(id)
}

func (s *localService) Verify(ctx context.Context, id string, probe *Template) (MatchResult, error) {
	return s.store.VerifyContext(ctx, id, probe)
}

func (s *localService) Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error) {
	return s.store.IdentifyContext(ctx, probe, k)
}

func (s *localService) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error) {
	cands, st, err := s.store.IdentifyDetailedContext(ctx, probe, k)
	if err != nil {
		return nil, IdentifyStats{}, err
	}
	return cands, foldGalleryStats(st), nil
}

// foldGalleryStats lifts single-store retrieval statistics into the
// facade shape (one shard, queried, full coverage).
func foldGalleryStats(st gallery.IdentifyStats) IdentifyStats {
	return IdentifyStats{
		GallerySize:   st.GallerySize,
		Shortlist:     st.Shortlist,
		Scanned:       st.Scanned,
		Indexed:       st.Indexed,
		ShardsQueried: 1,
	}
}

func (s *localService) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	_, indexed := s.store.IndexStats()
	st := Stats{
		Enrollments: s.store.Len(),
		Shards:      1,
		Indexed:     indexed,
	}
	if s.wal != nil {
		ws, err := foldWALStats([]*wal.Store{s.wal})
		if err != nil {
			return Stats{}, err
		}
		st.WAL = ws
	}
	return st, nil
}

// foldWALStats aggregates per-shard recovery and log state into the
// facade's WAL summary.
func foldWALStats(stores []*wal.Store) (*WALStats, error) {
	var out WALStats
	for _, ws := range stores {
		rec := ws.Recovery()
		out.SnapshotEntries += rec.SnapshotEntries
		out.Replayed += rec.Replayed
		out.TruncatedBytes += rec.TruncatedBytes
		if rec.TornTail {
			out.TornTails++
		}
		size, err := ws.LogSize()
		if err != nil {
			return nil, err
		}
		out.LogBytes += size
	}
	return &out, nil
}

func (s *localService) Close() error {
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

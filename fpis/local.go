package fpis

import (
	"context"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
)

// localService serves the facade from one in-process gallery store.
type localService struct {
	store *gallery.Store
}

// indexOptions translates the facade's index knobs to the store's.
func indexOptions(c config) gallery.IndexOptions {
	return gallery.IndexOptions{Index: index.Options{Fanout: c.indexFanout}}
}

func newLocal(cfg config) (Service, error) {
	store := gallery.New(nil)
	if cfg.setParallelism {
		store.SetParallelism(cfg.parallelism)
	}
	if cfg.index {
		if err := store.EnableIndex(indexOptions(cfg)); err != nil {
			return nil, err
		}
	}
	return &localService{store: store}, nil
}

func (s *localService) Enroll(ctx context.Context, id, deviceID string, tpl *Template) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.store.Enroll(id, deviceID, tpl)
}

func (s *localService) EnrollBatch(ctx context.Context, items []Enrollment) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.store.Enroll(it.ID, it.DeviceID, it.Template); err != nil {
			return err
		}
	}
	return nil
}

func (s *localService) Remove(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.store.Remove(id)
}

func (s *localService) Verify(ctx context.Context, id string, probe *Template) (MatchResult, error) {
	return s.store.VerifyContext(ctx, id, probe)
}

func (s *localService) Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error) {
	return s.store.IdentifyContext(ctx, probe, k)
}

func (s *localService) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error) {
	cands, st, err := s.store.IdentifyDetailedContext(ctx, probe, k)
	if err != nil {
		return nil, IdentifyStats{}, err
	}
	return cands, foldGalleryStats(st), nil
}

// foldGalleryStats lifts single-store retrieval statistics into the
// facade shape (one shard, queried, full coverage).
func foldGalleryStats(st gallery.IdentifyStats) IdentifyStats {
	return IdentifyStats{
		GallerySize:   st.GallerySize,
		Shortlist:     st.Shortlist,
		Scanned:       st.Scanned,
		Indexed:       st.Indexed,
		ShardsQueried: 1,
	}
}

func (s *localService) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	_, indexed := s.store.IndexStats()
	return Stats{
		Enrollments: s.store.Len(),
		Shards:      1,
		Indexed:     indexed,
	}, nil
}

func (s *localService) Close() error { return nil }

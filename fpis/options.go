package fpis

import (
	"errors"
	"fmt"
	"time"

	"fpinterop/internal/obs"
)

// Option configures Service construction (New and Dial). Options that
// do not apply to the requested deployment shape are rejected at
// construction time rather than silently ignored.
type Option func(*config) error

// config collects the functional options; set* flags distinguish "left
// at default" from "explicitly configured" for applicability checks.
type config struct {
	index       bool
	indexFanout int

	localShards    int
	remoteShards   []string
	remoteReplicas [][]string

	walDir          string
	compactEvery    int
	setCompactEvery bool

	parallelism    int
	setParallelism bool

	shardTimeout    time.Duration
	setShardTimeout bool

	requestTimeout    time.Duration
	setRequestTimeout bool

	dialTimeout    time.Duration
	setDialTimeout bool

	poolSize    int
	setPoolSize bool

	retry    RetryPolicy
	setRetry bool

	keepalive    time.Duration
	setKeepalive bool

	hedgeDelay time.Duration
	setHedge   bool

	failClosed bool

	metrics *obs.Registry
	hooks   *obs.Hooks
}

// WithIndex enables the minutia-triplet retrieval index, so 1:N
// identification searches a candidate shortlist instead of the whole
// gallery. fanout is the shortlist size (<= 0 for the library
// default). Applies to local stores — including each shard under
// WithLocalShards — not to remote connections, where the index lives
// in the serving process.
func WithIndex(fanout int) Option {
	return func(c *config) error {
		if fanout < 0 {
			return fmt.Errorf("fpis: WithIndex fanout must be >= 0, got %d", fanout)
		}
		c.index = true
		c.indexFanout = fanout
		return nil
	}
}

// WithWAL makes every mutation durable through a per-shard write-ahead
// log rooted at dir: an acknowledged Enroll or Remove survives a crash
// of the process, and construction replays the log (after restoring the
// latest compaction snapshot) before the service accepts its first
// request. Each shard of a WithLocalShards deployment logs into its own
// subdirectory of dir, so growing the shard count later reuses nothing
// stale. Applies to in-process galleries — a single local store or
// WithLocalShards — not to remote connections, where durability belongs
// to the serving process (run matchd with -wal-dir there).
func WithWAL(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return errors.New("fpis: WithWAL needs a directory")
		}
		c.walDir = dir
		return nil
	}
}

// WithWALCompactEvery compacts each shard's write-ahead log into a
// snapshot after every n logged mutations, bounding replay work on the
// next startup. n <= 0 disables automatic compaction (the log grows
// until the service is rebuilt). Requires WithWAL.
func WithWALCompactEvery(n int) Option {
	return func(c *config) error {
		if n < 0 {
			n = 0
		}
		c.compactEvery = n
		c.setCompactEvery = true
		return nil
	}
}

// WithLocalShards partitions the gallery across n in-process stores
// behind a consistent-hash router. Mutually exclusive with WithShards.
func WithLocalShards(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("fpis: WithLocalShards needs n > 0, got %d", n)
		}
		c.localShards = n
		return nil
	}
}

// WithShards scatter-gathers over remote matchd processes at the given
// addresses, routing enrollments by subject ID. Mutually exclusive
// with WithLocalShards and WithIndex (indexing belongs to the shard
// processes that own the data).
func WithShards(addrs ...string) Option {
	return func(c *config) error {
		if len(addrs) == 0 {
			return errors.New("fpis: WithShards needs at least one address")
		}
		c.remoteShards = append([]string(nil), addrs...)
		return nil
	}
}

// WithReplicas attaches read replicas to each WithShards slot: the
// i-th argument lists the replica addresses for the i-th shard address
// (run each replica as matchd -replica-of <primary>). Writes still go
// only to the primary; Verify and Identify balance across the slot's
// healthy members and fail over inside the slot, and hedged identifies
// are steered to a different member than the attempt they race. The
// argument count must match WithShards exactly — an empty (or nil)
// list is valid for a slot with no replicas. Requires WithShards.
func WithReplicas(replicas ...[]string) Option {
	return func(c *config) error {
		if len(replicas) == 0 {
			return errors.New("fpis: WithReplicas needs one replica list per shard slot")
		}
		out := make([][]string, len(replicas))
		for i, rs := range replicas {
			out[i] = append([]string(nil), rs...)
		}
		c.remoteReplicas = out
		return nil
	}
}

// WithParallelism bounds the worker goroutines used for parallel work:
// the exhaustive-scan fan-out inside each local store and the
// scatter-gather fan-out across shards. n <= 0 restores the defaults
// (GOMAXPROCS per store; one worker per shard).
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 0 {
			n = 0
		}
		c.parallelism = n
		c.setParallelism = true
		return nil
	}
}

// WithShardTimeout bounds each shard's share of an identification; a
// shard that misses the deadline is abandoned (and counts toward
// degradation) while the healthy shards' answers are merged. Requires
// a sharded deployment. 0 disables the per-shard deadline.
func WithShardTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("fpis: WithShardTimeout must be >= 0, got %v", d)
		}
		c.shardTimeout = d
		c.setShardTimeout = true
		return nil
	}
}

// WithRequestTimeout sets the fallback wire round-trip bound used when
// a call's context carries no deadline of its own. Applies to remote
// connections (Dial and WithShards). 0 disables the fallback.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("fpis: WithRequestTimeout must be >= 0, got %v", d)
		}
		c.requestTimeout = d
		c.setRequestTimeout = true
		return nil
	}
}

// WithDialTimeout bounds the transparent reconnects a remote
// connection performs after a transport failure (the initial dial is
// bounded by the constructor's context). Applies to remote
// connections. 0 leaves reconnects bounded only by the request
// context.
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("fpis: WithDialTimeout must be >= 0, got %v", d)
		}
		c.dialTimeout = d
		c.setDialTimeout = true
		return nil
	}
}

// RetryPolicy configures transparent retries of idempotent remote
// operations (Verify, Identify, Stats — never Enroll or Remove, which
// could double-apply) after transport failures: connection resets, torn
// frames, corrupt envelopes, a server restarting. Server-reported
// errors and context cancellation are never retried.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first; values
	// below 2 disable retries.
	Attempts int
	// BaseDelay seeds the capped exponential backoff before the second
	// attempt (default 5ms); each further attempt doubles it, jittered,
	// up to MaxDelay (default 500ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// WithPoolSize sets how many connections each remote endpoint may pool
// (default 1). Connections are dialed on demand; against a multiplexed
// server one connection already carries concurrent requests, so the
// pool is for spreading load and surviving per-connection stalls, not a
// per-request requirement. Applies to remote connections (Dial and
// WithShards).
func WithPoolSize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("fpis: WithPoolSize needs n >= 1, got %d", n)
		}
		c.poolSize = n
		c.setPoolSize = true
		return nil
	}
}

// WithRetry enables transparent retries of idempotent remote operations
// after transport failures, with capped jittered exponential backoff.
// Applies to remote connections (Dial and WithShards); retries are off
// by default.
func WithRetry(p RetryPolicy) Option {
	return func(c *config) error {
		if p.Attempts < 0 || p.BaseDelay < 0 || p.MaxDelay < 0 {
			return fmt.Errorf("fpis: WithRetry fields must be >= 0, got %+v", p)
		}
		c.retry = p
		c.setRetry = true
		return nil
	}
}

// WithKeepalive sets the interval at which idle pooled connections are
// pinged so a server's idle deadline never silently drops them (default
// 50s, under matchd's 2-minute default); d <= 0 disables keepalives.
// Applies to remote connections (Dial and WithShards).
func WithKeepalive(d time.Duration) Option {
	return func(c *config) error {
		c.keepalive = d
		c.setKeepalive = true
		return nil
	}
}

// WithHedging enables hedged identification: a shard's scatter leg
// still unanswered after d is re-sent to the same shard and the first
// answer wins, cutting the tail latency a single slow replica inflicts
// on every search. The delay adapts per shard to the observed p95
// identify latency once enough history accumulates (WithMetrics enables
// that); exactly one attempt's answer is used, so results are identical
// to the unhedged path. Requires a sharded deployment.
func WithHedging(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("fpis: WithHedging needs a positive delay, got %v", d)
		}
		c.hedgeDelay = d
		c.setHedge = true
		return nil
	}
}

// WithMetrics attaches an observability registry: the service records
// per-operation latency histograms and error-class counters into it
// (fpis_op_latency_ns and fpis_op_errors_total, labeled by op and
// backend kind), and the layers underneath — shard router, gallery
// stores, write-ahead logs, wire clients — register their own families
// there. Applies to every deployment shape, New and Dial alike. The
// same registry may back several services; families are shared.
// Metric recording is lock-free atomics on resolved handles, so the
// zero-allocation hot paths stay zero-allocation.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) error {
		if reg == nil {
			return errors.New("fpis: WithMetrics needs a non-nil registry")
		}
		c.metrics = reg
		return nil
	}
}

// WithHooks attaches a lifecycle-hook bus: registered callbacks run
// before and after every facade operation (and on errors) with the op
// name, backend kind, duration, and error class — the seam for custom
// logging, tracing, or caching without the service knowing. Applies
// to every deployment shape. Hooks run synchronously on the calling
// goroutine and must not block.
func WithHooks(h *obs.Hooks) Option {
	return func(c *config) error {
		if h == nil {
			return errors.New("fpis: WithHooks needs a non-nil bus")
		}
		c.hooks = h
		return nil
	}
}

// WithFailClosed makes sharded identification refuse to serve while
// any shard is degraded or failing, instead of returning reduced
// coverage flagged Partial — the integrity-first posture. Requires a
// sharded deployment.
func WithFailClosed() Option {
	return func(c *config) error {
		c.failClosed = true
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}

// checkNewConfig rejects option combinations meaningless for New's
// deployment shapes.
func checkNewConfig(c config) error {
	if c.localShards > 0 && len(c.remoteShards) > 0 {
		return errors.New("fpis: WithLocalShards and WithShards are mutually exclusive")
	}
	if len(c.remoteShards) > 0 && c.index {
		return errors.New("fpis: WithIndex belongs on the shard processes, not the WithShards front")
	}
	if len(c.remoteShards) > 0 && c.walDir != "" {
		return errors.New("fpis: WithWAL belongs on the shard processes, not the WithShards front")
	}
	if c.setCompactEvery && c.walDir == "" {
		return errors.New("fpis: WithWALCompactEvery requires WithWAL")
	}
	if c.localShards == 0 && len(c.remoteShards) == 0 {
		if c.setShardTimeout {
			return errors.New("fpis: WithShardTimeout requires WithLocalShards or WithShards")
		}
		if c.failClosed {
			return errors.New("fpis: WithFailClosed requires WithLocalShards or WithShards")
		}
	}
	if len(c.remoteShards) == 0 && (c.setRequestTimeout || c.setDialTimeout) {
		return errors.New("fpis: WithRequestTimeout/WithDialTimeout apply to remote connections only")
	}
	if len(c.remoteShards) == 0 && (c.setPoolSize || c.setRetry || c.setKeepalive) {
		return errors.New("fpis: WithPoolSize/WithRetry/WithKeepalive apply to remote connections only")
	}
	if c.setHedge && c.localShards == 0 && len(c.remoteShards) == 0 {
		return errors.New("fpis: WithHedging requires WithLocalShards or WithShards")
	}
	if c.remoteReplicas != nil {
		if len(c.remoteShards) == 0 {
			return errors.New("fpis: WithReplicas requires WithShards")
		}
		if len(c.remoteReplicas) != len(c.remoteShards) {
			return fmt.Errorf("fpis: WithReplicas lists replicas for %d slots, WithShards has %d",
				len(c.remoteReplicas), len(c.remoteShards))
		}
	}
	return nil
}

// checkDialConfig rejects options meaningless for a single remote
// connection.
func checkDialConfig(c config) error {
	if c.index {
		return errors.New("fpis: WithIndex belongs on the serving process, not a Dial client")
	}
	if c.localShards > 0 || len(c.remoteShards) > 0 {
		return errors.New("fpis: WithLocalShards/WithShards do not apply to Dial; use New")
	}
	if c.setShardTimeout {
		return errors.New("fpis: WithShardTimeout does not apply to Dial")
	}
	if c.walDir != "" || c.setCompactEvery {
		return errors.New("fpis: WithWAL applies to in-process galleries; run matchd with -wal-dir instead")
	}
	if c.failClosed {
		return errors.New("fpis: WithFailClosed does not apply to Dial")
	}
	if c.setParallelism {
		return errors.New("fpis: WithParallelism is a serving-side knob; it does not apply to Dial")
	}
	if c.setHedge {
		return errors.New("fpis: WithHedging requires a sharded deployment; a Dial client has no scatter to hedge")
	}
	if c.remoteReplicas != nil {
		return errors.New("fpis: WithReplicas requires WithShards; Dial connects to a single endpoint")
	}
	return nil
}

package fpis

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOptionValidation pins the construction-time rejection of
// inapplicable or contradictory options.
func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	rejected := []struct {
		name string
		do   func() error
	}{
		{"local shards and remote shards", func() error {
			_, err := New(ctx, WithLocalShards(2), WithShards("127.0.0.1:1"))
			return err
		}},
		{"index on remote-shard front", func() error {
			_, err := New(ctx, WithShards("127.0.0.1:1"), WithIndex(0))
			return err
		}},
		{"shard timeout without shards", func() error {
			_, err := New(ctx, WithShardTimeout(time.Second))
			return err
		}},
		{"fail-closed without shards", func() error {
			_, err := New(ctx, WithFailClosed())
			return err
		}},
		{"request timeout on local service", func() error {
			_, err := New(ctx, WithRequestTimeout(time.Second))
			return err
		}},
		{"zero local shards", func() error {
			_, err := New(ctx, WithLocalShards(0))
			return err
		}},
		{"empty shard list", func() error {
			_, err := New(ctx, WithShards())
			return err
		}},
		{"negative index fanout", func() error {
			_, err := New(ctx, WithIndex(-1))
			return err
		}},
		{"dial with shards", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithLocalShards(2))
			return err
		}},
		{"dial with index", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithIndex(0))
			return err
		}},
		{"dial with shard timeout", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithShardTimeout(time.Second))
			return err
		}},
		{"dial with parallelism", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithParallelism(2))
			return err
		}},
		{"pool size on local service", func() error {
			_, err := New(ctx, WithPoolSize(2))
			return err
		}},
		{"retry on local service", func() error {
			_, err := New(ctx, WithRetry(RetryPolicy{Attempts: 3}))
			return err
		}},
		{"keepalive on local service", func() error {
			_, err := New(ctx, WithKeepalive(time.Second))
			return err
		}},
		{"hedging without shards", func() error {
			_, err := New(ctx, WithHedging(time.Millisecond))
			return err
		}},
		{"dial with hedging", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithHedging(time.Millisecond))
			return err
		}},
		{"zero pool size", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithPoolSize(0))
			return err
		}},
		{"negative retry attempts", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithRetry(RetryPolicy{Attempts: -1}))
			return err
		}},
		{"non-positive hedge delay", func() error {
			_, err := New(ctx, WithLocalShards(2), WithHedging(0))
			return err
		}},
	}
	for _, tc := range rejected {
		if err := tc.do(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRemoteShardedService runs the facade's scatter-gather shape over
// real matchd servers end to end and checks it against the local
// golden ranking.
func TestRemoteShardedService(t *testing.T) {
	gal, probes := confFixtures(t)
	addrs := []string{bootMatchd(t, false), bootMatchd(t, false), bootMatchd(t, false)}
	svc, err := New(context.Background(),
		WithShards(addrs...),
		WithShardTimeout(time.Minute),
		WithRequestTimeout(time.Minute),
		WithDialTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: confID(i), DeviceID: "D0", Template: tpl}
	}
	if err := svc.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != len(gal) || st.Shards != 3 {
		t.Fatalf("stats: %+v", st)
	}
	want := golden(t, gal, probes[0], nil)
	got, stats, err := svc.IdentifyDetailed(ctx, probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial || stats.ShardsQueried != 3 {
		t.Fatalf("scatter stats: %+v", stats)
	}
	sameCandidates(t, "remote-sharded full ranking", got, want)
	if _, err := svc.Verify(ctx, "nobody", probes[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("verify unknown through remote shards: %v", err)
	}
}

// TestResilienceOptionsEndToEnd exercises the PR 9 knobs against a real
// in-process matchd: pooled connections, retries, keepalive, and hedged
// sharded identification all construct, serve traffic, and return the
// same answers as the plain paths.
func TestResilienceOptionsEndToEnd(t *testing.T) {
	ctx := context.Background()
	addr := bootMatchd(t, false)

	// Dial path: pool, retry, keepalive are remote-connection options.
	svc, err := Dial(ctx, addr,
		WithPoolSize(2),
		WithRetry(RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}),
		WithKeepalive(10*time.Second),
		WithRequestTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	gal, probes := confFixtures(t)
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: confID(i), DeviceID: "D0", Template: tpl}
	}
	if err := svc.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	want := golden(t, gal, probes[0], nil)
	got, err := svc.Identify(ctx, probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	sameCandidates(t, "pooled+retrying dial client", got, want)

	// Sharded path: hedging composes with local shards and stays
	// bit-identical to the unhedged ranking.
	hedged, err := New(ctx, WithLocalShards(3), WithHedging(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hedged.Close()
	if err := hedged.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	hgot, err := hedged.Identify(ctx, probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	sameCandidates(t, "hedged sharded identify", hgot, want)

	// Remote shards accept the full knob set at once.
	rs, err := New(ctx, WithShards(addr),
		WithPoolSize(2),
		WithRetry(RetryPolicy{Attempts: 2}),
		WithKeepalive(10*time.Second),
		WithHedging(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Identify(ctx, probes[0], 3); err != nil {
		t.Fatal(err)
	}
}

package fpis

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOptionValidation pins the construction-time rejection of
// inapplicable or contradictory options.
func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	rejected := []struct {
		name string
		do   func() error
	}{
		{"local shards and remote shards", func() error {
			_, err := New(ctx, WithLocalShards(2), WithShards("127.0.0.1:1"))
			return err
		}},
		{"index on remote-shard front", func() error {
			_, err := New(ctx, WithShards("127.0.0.1:1"), WithIndex(0))
			return err
		}},
		{"shard timeout without shards", func() error {
			_, err := New(ctx, WithShardTimeout(time.Second))
			return err
		}},
		{"fail-closed without shards", func() error {
			_, err := New(ctx, WithFailClosed())
			return err
		}},
		{"request timeout on local service", func() error {
			_, err := New(ctx, WithRequestTimeout(time.Second))
			return err
		}},
		{"zero local shards", func() error {
			_, err := New(ctx, WithLocalShards(0))
			return err
		}},
		{"empty shard list", func() error {
			_, err := New(ctx, WithShards())
			return err
		}},
		{"negative index fanout", func() error {
			_, err := New(ctx, WithIndex(-1))
			return err
		}},
		{"dial with shards", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithLocalShards(2))
			return err
		}},
		{"dial with index", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithIndex(0))
			return err
		}},
		{"dial with shard timeout", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithShardTimeout(time.Second))
			return err
		}},
		{"dial with parallelism", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithParallelism(2))
			return err
		}},
	}
	for _, tc := range rejected {
		if err := tc.do(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRemoteShardedService runs the facade's scatter-gather shape over
// real matchd servers end to end and checks it against the local
// golden ranking.
func TestRemoteShardedService(t *testing.T) {
	gal, probes := confFixtures(t)
	addrs := []string{bootMatchd(t, false), bootMatchd(t, false), bootMatchd(t, false)}
	svc, err := New(context.Background(),
		WithShards(addrs...),
		WithShardTimeout(time.Minute),
		WithRequestTimeout(time.Minute),
		WithDialTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: confID(i), DeviceID: "D0", Template: tpl}
	}
	if err := svc.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != len(gal) || st.Shards != 3 {
		t.Fatalf("stats: %+v", st)
	}
	want := golden(t, gal, probes[0], nil)
	got, stats, err := svc.IdentifyDetailed(ctx, probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial || stats.ShardsQueried != 3 {
		t.Fatalf("scatter stats: %+v", stats)
	}
	sameCandidates(t, "remote-sharded full ranking", got, want)
	if _, err := svc.Verify(ctx, "nobody", probes[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("verify unknown through remote shards: %v", err)
	}
}

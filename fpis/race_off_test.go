//go:build !race

package fpis

// raceEnabled reports whether the race detector instruments this
// build; allocation-count assertions are skipped under it because
// instrumentation allocates.
const raceEnabled = false

//go:build race

package fpis

// raceEnabled reports whether the race detector instruments this
// build.
const raceEnabled = true

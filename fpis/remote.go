package fpis

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"fpinterop/internal/matchsvc"
)

// Dial connects to one remote matchd instance and returns a Service
// speaking the wire protocol to it. The context bounds the connection
// establishment: a pre-cancelled context fails fast without dialing.
// Per-call deadlines derive from each call's own context (with the
// WithRequestTimeout fallback when a context has no deadline).
func Dial(ctx context.Context, addr string, opts ...Option) (Service, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := checkDialConfig(cfg); err != nil {
		return nil, err
	}
	cli, err := matchsvc.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	configureClient(cli, cfg)
	return instrument(&remoteService{cli: cli}, "remote", cfg), nil
}

// configureClient applies the remote-connection options shared by Dial
// and WithShards.
func configureClient(cli *matchsvc.Client, cfg config) {
	if cfg.setRequestTimeout {
		cli.SetRequestTimeout(cfg.requestTimeout)
	}
	if cfg.setDialTimeout {
		cli.SetRedialTimeout(cfg.dialTimeout)
	}
	if cfg.setPoolSize {
		cli.SetPoolSize(cfg.poolSize)
	}
	if cfg.setRetry {
		cli.SetRetry(matchsvc.Retry{
			Attempts:  cfg.retry.Attempts,
			BaseDelay: cfg.retry.BaseDelay,
			MaxDelay:  cfg.retry.MaxDelay,
		})
	}
	if cfg.setKeepalive {
		cli.SetKeepalive(cfg.keepalive)
	}
	if cfg.metrics != nil {
		cli.SetMetrics(cfg.metrics)
	}
}

// remoteService serves the facade over one matchsvc connection.
type remoteService struct {
	cli *matchsvc.Client
}

// mapRemoteErr lifts server-reported failures onto the facade's
// sentinel errors, so errors.Is(err, fpis.ErrNotFound) behaves
// identically across local and remote implementations. The server
// reports errors as strings; the gallery layer always wraps a sentinel
// as the final error in the chain, so the sentinel text is the message
// suffix — matched as such, because enrollment IDs (quoted mid-string)
// could embed sentinel text and fool a substring match.
func mapRemoteErr(err error) error {
	if err == nil || !errors.Is(err, matchsvc.ErrRemote) {
		return err
	}
	msg := err.Error()
	switch {
	case strings.HasSuffix(msg, ErrNotFound.Error()):
		return fmt.Errorf("%w (%w)", ErrNotFound, err)
	case strings.HasSuffix(msg, ErrDuplicate.Error()):
		return fmt.Errorf("%w (%w)", ErrDuplicate, err)
	}
	return err
}

func (s *remoteService) Enroll(ctx context.Context, id, deviceID string, tpl *Template) error {
	return mapRemoteErr(s.cli.Enroll(ctx, id, deviceID, tpl))
}

func (s *remoteService) EnrollBatch(ctx context.Context, items []Enrollment) error {
	_, err := s.cli.EnrollBatch(ctx, items)
	return mapRemoteErr(err)
}

func (s *remoteService) Remove(ctx context.Context, id string) error {
	return mapRemoteErr(s.cli.Remove(ctx, id))
}

func (s *remoteService) Verify(ctx context.Context, id string, probe *Template) (MatchResult, error) {
	res, err := s.cli.Verify(ctx, id, probe)
	if err != nil {
		return MatchResult{}, mapRemoteErr(err)
	}
	return MatchResult{Score: res.Score, Matched: res.Matched}, nil
}

func (s *remoteService) Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error) {
	out, _, err := s.IdentifyDetailed(ctx, probe, k)
	return out, err
}

func (s *remoteService) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error) {
	if k < 0 {
		// The facade's k <= 0 contract, applied before k crosses the
		// wire unsigned.
		k = 0
	}
	cands, st, err := s.cli.IdentifyEx(ctx, probe, k)
	if err != nil {
		return nil, IdentifyStats{}, mapRemoteErr(err)
	}
	return cands, foldGalleryStats(st), nil
}

func (s *remoteService) Stats(ctx context.Context) (Stats, error) {
	st, err := s.cli.ServiceStats(ctx)
	if err != nil {
		if errors.Is(err, matchsvc.ErrRemote) {
			// A server predating OpStats rejects the opcode; fall back to
			// the enrollment count it does understand.
			n, cerr := s.cli.Count(ctx)
			if cerr != nil {
				return Stats{}, mapRemoteErr(cerr)
			}
			return Stats{Enrollments: n, Shards: 1}, nil
		}
		return Stats{}, mapRemoteErr(err)
	}
	out := Stats{
		Enrollments:    st.Enrollments,
		Shards:         st.Shards,
		DegradedShards: st.DegradedShards,
		Indexed:        st.Indexed,
	}
	if st.WAL != nil {
		out.WAL = &WALStats{
			SnapshotEntries: st.WAL.SnapshotEntries,
			Replayed:        st.WAL.Replayed,
			TruncatedBytes:  st.WAL.TruncatedBytes,
			TornTails:       st.WAL.TornTails,
			LogBytes:        st.WAL.LogBytes,
		}
	}
	return out, nil
}

func (s *remoteService) Close() error { return s.cli.Close() }

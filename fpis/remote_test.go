package fpis

import (
	"errors"
	"fmt"
	"testing"

	"fpinterop/internal/matchsvc"
)

// remoteErr builds the error shape a client-side RPC failure has: the
// server-reported message wrapped in matchsvc.ErrRemote.
func remoteErr(msg string) error {
	return fmt.Errorf("%w: %s", matchsvc.ErrRemote, msg)
}

// TestMapRemoteErr pins the suffix→sentinel translation against the
// literal sentinel strings internal/gallery defines. The texts are
// spelled out rather than derived from ErrNotFound.Error() on purpose:
// if the gallery messages ever drift, this table breaks loudly instead
// of the translation silently matching a new suffix.
func TestMapRemoteErr(t *testing.T) {
	cases := []struct {
		name string
		msg  string
		want error // nil means the error passes through untranslated
	}{
		{
			name: "bare not-found",
			msg:  "gallery: enrollment not found",
			want: ErrNotFound,
		},
		{
			name: "wrapped not-found keeps the sentinel as suffix",
			msg:  `verify "alice": gallery: enrollment not found`,
			want: ErrNotFound,
		},
		{
			name: "bare duplicate",
			msg:  "gallery: enrollment ID already exists",
			want: ErrDuplicate,
		},
		{
			name: "wrapped duplicate",
			msg:  `enroll "alice": gallery: enrollment ID already exists`,
			want: ErrDuplicate,
		},
		{
			name: "sentinel text embedded mid-string must not map",
			msg:  `enroll "gallery: enrollment not found": invalid template`,
			want: nil,
		},
		{
			name: "duplicate text embedded mid-string must not map",
			msg:  `remove "gallery: enrollment ID already exists" failed: busy`,
			want: nil,
		},
		{
			name: "unrelated server error passes through",
			msg:  "matchsvc: malformed frame",
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := remoteErr(tc.msg)
			out := mapRemoteErr(in)
			if tc.want != nil {
				if !errors.Is(out, tc.want) {
					t.Fatalf("mapRemoteErr(%q) = %v; want errors.Is(..., %v)", tc.msg, out, tc.want)
				}
				// The original remote diagnostic must survive translation.
				if !errors.Is(out, matchsvc.ErrRemote) {
					t.Fatalf("mapRemoteErr(%q) dropped the ErrRemote chain: %v", tc.msg, out)
				}
				return
			}
			if !errors.Is(out, in) && out != in {
				t.Fatalf("mapRemoteErr(%q) = %v; want the input unchanged", tc.msg, out)
			}
			if errors.Is(out, ErrNotFound) || errors.Is(out, ErrDuplicate) {
				t.Fatalf("mapRemoteErr(%q) = %v; must not map to a sentinel", tc.msg, out)
			}
		})
	}
}

// TestMapRemoteErrPassthrough pins the guards around the translation:
// nil stays nil, and errors outside the ErrRemote chain are returned
// untouched even when their text ends in a sentinel message.
func TestMapRemoteErrPassthrough(t *testing.T) {
	if got := mapRemoteErr(nil); got != nil {
		t.Fatalf("mapRemoteErr(nil) = %v; want nil", got)
	}
	local := errors.New("local: gallery: enrollment not found")
	if got := mapRemoteErr(local); got != local {
		t.Fatalf("mapRemoteErr(non-remote) = %v; want the input unchanged", got)
	}
	if errors.Is(mapRemoteErr(local), ErrNotFound) {
		t.Fatal("non-remote error must not be lifted onto a sentinel")
	}
}

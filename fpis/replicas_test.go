package fpis

import (
	"context"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/replica"
	"fpinterop/internal/wal"
)

func TestWithReplicasValidation(t *testing.T) {
	ctx := context.Background()
	rejected := []struct {
		name string
		do   func() error
	}{
		{"replicas without shards", func() error {
			_, err := New(ctx, WithReplicas([]string{"127.0.0.1:1"}))
			return err
		}},
		{"replica slot count mismatch", func() error {
			_, err := New(ctx, WithShards("127.0.0.1:1", "127.0.0.1:2"),
				WithReplicas([]string{"127.0.0.1:3"}))
			return err
		}},
		{"replicas on dial", func() error {
			_, err := Dial(ctx, "127.0.0.1:1", WithReplicas(nil))
			return err
		}},
		{"empty replicas option", func() error {
			_, err := New(ctx, WithShards("127.0.0.1:1"), WithReplicas())
			return err
		}},
	}
	for _, tc := range rejected {
		if err := tc.do(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// bootWALMatchd boots a WAL-backed in-process matchd (a valid replica
// sync source) and returns its address plus the store.
func bootWALMatchd(t *testing.T) (string, *wal.Store) {
	t.Helper()
	ws, err := wal.Open(t.TempDir(), gallery.New(nil), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	srv := matchsvc.NewServer(ws, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return addr, ws
}

// bootReplicaOf boots a follower of primaryAddr serving a read-only
// gallery on its own listener.
func bootReplicaOf(t *testing.T, primaryAddr string) (string, *replica.Follower) {
	t.Helper()
	cli, err := matchsvc.Dial(primaryAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	store := gallery.New(nil)
	f := replica.NewFollower(store, cli, replica.FollowerOptions{Interval: 3 * time.Millisecond})
	srv := matchsvc.NewServer(replica.ReadOnlyGallery{Store: store}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx) }()
	go f.Run(sctx)
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return addr, f
}

// TestReplicatedShardedService runs the full WithShards+WithReplicas
// shape end to end: writes land on primaries, replicas catch up over
// the wire, and identification through the facade matches the local
// golden ranking exactly.
func TestReplicatedShardedService(t *testing.T) {
	ctx := context.Background()
	gal, probes := confFixtures(t)

	paddr, ws := bootWALMatchd(t)
	r1addr, f1 := bootReplicaOf(t, paddr)
	r2addr, f2 := bootReplicaOf(t, paddr)

	svc, err := New(ctx,
		WithShards(paddr),
		WithReplicas([]string{r1addr, r2addr}),
		WithShardTimeout(time.Minute),
		WithRequestTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	items := make([]Enrollment, len(gal))
	for i, tpl := range gal {
		items[i] = Enrollment{ID: confID(i), DeviceID: "D0", Template: tpl}
	}
	if err := svc.EnrollBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	// Writes bypass replicas entirely; the primary's WAL acked them.
	if got := ws.Len(); got != len(gal) {
		t.Fatalf("primary holds %d enrollments, want %d", got, len(gal))
	}
	// Replicas converge to the primary's LSN.
	deadline := time.Now().Add(5 * time.Second)
	for f1.LSN() != ws.LSN() || f2.LSN() != ws.LSN() {
		if time.Now().After(deadline) {
			t.Fatalf("replicas stuck at lsn %d/%d, primary at %d", f1.LSN(), f2.LSN(), ws.LSN())
		}
		time.Sleep(3 * time.Millisecond)
	}

	want := golden(t, gal, probes[0], nil)
	// Several identifies so the balancer spreads across members; every
	// answer must match the golden ranking regardless of which member
	// served it.
	for i := 0; i < 6; i++ {
		got, err := svc.Identify(ctx, probes[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		sameCandidates(t, "replicated sharded identify", got, want)
	}
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != len(gal) || st.Shards != 1 {
		t.Fatalf("stats over a replica set: %+v", st)
	}
}

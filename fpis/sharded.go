package fpis

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/replica"
	"fpinterop/internal/shard"
	"fpinterop/internal/wal"
)

// shardedService serves the facade from a consistent-hash router over
// local or remote shards.
type shardedService struct {
	router *shard.Router
	// indexed records whether every (local) shard carries a retrieval
	// index; remote shards own their index state, so a remote-sharded
	// service reports false.
	indexed bool
	// closers are the remote connections the constructor dialed; Close
	// owns their lifecycle.
	closers []io.Closer
	// walStores are the per-shard durable stores when the service was
	// built with WithWAL (local shards only); Close owns them, and Stats
	// aggregates their recovery and log state.
	walStores []*wal.Store
}

func routerOptions(cfg config) shard.Options {
	opt := shard.Options{ShardTimeout: cfg.shardTimeout, Registry: cfg.metrics, HedgeDelay: cfg.hedgeDelay}
	if cfg.setParallelism && cfg.parallelism > 0 {
		opt.Workers = cfg.parallelism
	}
	if cfg.failClosed {
		opt.Policy = shard.FailClosed
	}
	return opt
}

func newLocalSharded(cfg config) (Service, error) {
	backends := make([]shard.Backend, cfg.localShards)
	var walStores []*wal.Store
	closeWALs := func() {
		for _, ws := range walStores {
			ws.Close()
		}
	}
	for i := range backends {
		name := fmt.Sprintf("shard-%d", i)
		store := gallery.New(nil)
		if cfg.setParallelism {
			store.SetParallelism(cfg.parallelism)
		}
		if cfg.index {
			// Enabled before recovery so each shard's WAL replay builds
			// the index once in bulk.
			if err := store.EnableIndex(indexOptions(cfg)); err != nil {
				closeWALs()
				return nil, fmt.Errorf("fpis: enable index on shard %d: %w", i, err)
			}
		}
		if cfg.metrics != nil {
			store.SetMetrics(cfg.metrics, name)
		}
		if cfg.walDir != "" {
			ws, err := wal.Open(filepath.Join(cfg.walDir, name), store,
				wal.Options{CompactEvery: cfg.compactEvery, Metrics: cfg.metrics, Shard: name})
			if err != nil {
				closeWALs()
				return nil, fmt.Errorf("fpis: open WAL for shard %d: %w", i, err)
			}
			walStores = append(walStores, ws)
			backends[i] = shard.NewDurableLocal(name, ws)
			continue
		}
		backends[i] = shard.NewLocal(name, store)
	}
	router, err := shard.New(backends, routerOptions(cfg))
	if err != nil {
		closeWALs()
		return nil, err
	}
	return &shardedService{router: router, indexed: cfg.index, walStores: walStores}, nil
}

func newRemoteSharded(ctx context.Context, cfg config) (Service, error) {
	var closers []io.Closer
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	dialBackend := func(addr string) (shard.Backend, error) {
		cli, err := matchsvc.DialContext(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("fpis: dial shard %s: %w", addr, err)
		}
		configureClient(cli, cfg)
		closers = append(closers, cli)
		return shard.NewRemote(addr, cli), nil
	}
	backends := make([]shard.Backend, 0, len(cfg.remoteShards))
	for i, addr := range cfg.remoteShards {
		primary, err := dialBackend(addr)
		if err != nil {
			closeAll()
			return nil, err
		}
		// With replicas configured, the ring slot becomes a replica set:
		// still named by the primary's address so attaching replicas to
		// a running deployment moves no keys.
		if cfg.remoteReplicas != nil && len(cfg.remoteReplicas[i]) > 0 {
			members := make([]shard.Backend, 0, len(cfg.remoteReplicas[i]))
			for _, raddr := range cfg.remoteReplicas[i] {
				rep, err := dialBackend(raddr)
				if err != nil {
					closeAll()
					return nil, err
				}
				members = append(members, rep)
			}
			backends = append(backends, replica.NewSet(addr, primary, members,
				replica.SetOptions{Metrics: cfg.metrics}))
			continue
		}
		backends = append(backends, primary)
	}
	router, err := shard.New(backends, routerOptions(cfg))
	if err != nil {
		closeAll()
		return nil, err
	}
	return &shardedService{router: router, closers: closers}, nil
}

func (s *shardedService) Enroll(ctx context.Context, id, deviceID string, tpl *Template) error {
	return mapRemoteErr(s.router.Enroll(ctx, id, deviceID, tpl))
}

func (s *shardedService) EnrollBatch(ctx context.Context, items []Enrollment) error {
	return mapRemoteErr(s.router.EnrollBatch(ctx, items))
}

func (s *shardedService) Remove(ctx context.Context, id string) error {
	return mapRemoteErr(s.router.Remove(ctx, id))
}

func (s *shardedService) Verify(ctx context.Context, id string, probe *Template) (MatchResult, error) {
	res, err := s.router.Verify(ctx, id, probe)
	return res, mapRemoteErr(err)
}

func (s *shardedService) Identify(ctx context.Context, probe *Template, k int) ([]Candidate, error) {
	out, _, err := s.IdentifyDetailed(ctx, probe, k)
	return out, err
}

func (s *shardedService) IdentifyDetailed(ctx context.Context, probe *Template, k int) ([]Candidate, IdentifyStats, error) {
	cands, st, err := s.router.IdentifyDetailed(ctx, probe, k)
	if err != nil {
		return nil, IdentifyStats{}, mapRemoteErr(err)
	}
	return cands, foldShardStats(st), nil
}

// foldShardStats lifts scatter-gather statistics into the facade
// shape.
func foldShardStats(st shard.IdentifyStats) IdentifyStats {
	return IdentifyStats{
		GallerySize:   st.GallerySize,
		Shortlist:     st.Shortlist,
		Scanned:       st.Scanned,
		Indexed:       st.IndexedShards > 0 && st.FallbackShards == 0,
		ShardsQueried: st.ShardsQueried,
		ShardsSkipped: st.ShardsSkipped,
		ShardsFailed:  st.ShardsFailed,
		Partial:       st.Partial,
	}
}

func (s *shardedService) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	st := Stats{
		Enrollments: s.router.Len(ctx),
		Shards:      len(s.router.Backends()),
		Indexed:     s.indexed,
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	for _, i := range s.router.Degraded() {
		st.DegradedShards = append(st.DegradedShards, s.router.Backends()[i].Name())
	}
	if len(s.walStores) > 0 {
		ws, err := foldWALStats(s.walStores)
		if err != nil {
			return Stats{}, err
		}
		st.WAL = ws
	}
	return st, nil
}

func (s *shardedService) Close() error {
	var errs []error
	for _, c := range s.closers {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, ws := range s.walStores {
		if err := ws.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

package fpis

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpinterop/internal/matchsvc"
)

// enrollConf enrolls the first n conformance fixtures.
func enrollConf(t *testing.T, svc Service, n int) {
	t.Helper()
	gal, _ := confFixtures(t)
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := svc.Enroll(ctx, confID(i), "D0", gal[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsLocalWAL pins the local backend's WAL aggregation: a fresh
// durable service reports live log bytes, and reopening the same
// directory reports the crash-recovery replay.
func TestStatsLocalWAL(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	svc, err := New(ctx, WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	enrollConf(t, svc, 6)
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != 6 || st.Shards != 1 {
		t.Fatalf("stats = %+v, want 6 enrollments on 1 shard", st)
	}
	if st.WAL == nil {
		t.Fatal("durable service reported nil Stats.WAL")
	}
	if st.WAL.LogBytes <= 0 {
		t.Fatalf("LogBytes = %d after 6 logged enrollments", st.WAL.LogBytes)
	}
	if st.WAL.Replayed != 0 || st.WAL.SnapshotEntries != 0 {
		t.Fatalf("fresh WAL reported recovery %+v", st.WAL)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(ctx, WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st2, err := svc2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Enrollments != 6 {
		t.Fatalf("recovered %d enrollments, want 6", st2.Enrollments)
	}
	if st2.WAL == nil || st2.WAL.Replayed != 6 {
		t.Fatalf("recovery stats = %+v, want 6 replayed records", st2.WAL)
	}
}

// TestStatsShardedWAL pins the sharded backend's aggregation: WAL
// state sums across every shard's store.
func TestStatsShardedWAL(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	svc, err := New(ctx, WithLocalShards(3), WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	enrollConf(t, svc, 9)
	st, err := svc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != 9 || st.Shards != 3 {
		t.Fatalf("stats = %+v, want 9 enrollments on 3 shards", st)
	}
	if st.WAL == nil || st.WAL.LogBytes <= 0 {
		t.Fatalf("sharded durable service reported WAL %+v", st.WAL)
	}
	// The aggregate must equal the sum of the per-shard logs on disk.
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("found %d shard logs, want 3", len(matches))
	}
	var sum int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		sum += fi.Size()
	}
	if sum != st.WAL.LogBytes {
		t.Fatalf("on-disk log bytes %d != aggregated %d", sum, st.WAL.LogBytes)
	}
}

// TestStatsRemoteRoundTrip pins every Stats field — including the WAL
// summary — across the wire: the server's stats source is authoritative
// and the client must reconstruct it exactly.
func TestStatsRemoteRoundTrip(t *testing.T) {
	srv := matchsvc.NewServer(nil, nil)
	want := matchsvc.ServiceStats{
		Enrollments:    42,
		Shards:         4,
		DegradedShards: []string{"shard-1", "shard-3"},
		Indexed:        true,
		WAL: &matchsvc.WALServiceStats{
			SnapshotEntries: 30,
			Replayed:        12,
			TruncatedBytes:  257,
			TornTails:       1,
			LogBytes:        8192,
		},
	}
	srv.SetStatsFunc(func() matchsvc.ServiceStats { return want })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})

	svc, err := Dial(context.Background(), addr, WithRequestTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != want.Enrollments || st.Shards != want.Shards || !st.Indexed {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if len(st.DegradedShards) != 2 || st.DegradedShards[0] != "shard-1" || st.DegradedShards[1] != "shard-3" {
		t.Fatalf("degraded shards = %v", st.DegradedShards)
	}
	if st.WAL == nil {
		t.Fatal("WAL summary lost in the round trip")
	}
	got := *st.WAL
	if got.SnapshotEntries != 30 || got.Replayed != 12 || got.TruncatedBytes != 257 ||
		got.TornTails != 1 || got.LogBytes != 8192 {
		t.Fatalf("WAL = %+v, want %+v", got, *want.WAL)
	}
}

// TestStatsRemoteDefault pins the stats a plain server — no stats
// source installed — reports: its gallery's enrollment count on one
// shard, no WAL.
func TestStatsRemoteDefault(t *testing.T) {
	addr := bootMatchd(t, false)
	svc, err := Dial(context.Background(), addr, WithRequestTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	enrollConf(t, svc, 4)
	st, err := svc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != 4 || st.Shards != 1 || st.Indexed || st.WAL != nil {
		t.Fatalf("default server stats = %+v", st)
	}
}

// TestStatsRemoteLegacyFallback pins the compatibility path: against a
// server that rejects OpStats as unknown (the pre-OpStats protocol),
// Stats falls back to OpCount.
func TestStatsRemoteLegacyFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			var hdr [5]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return
			}
			payload := make([]byte, binary.BigEndian.Uint32(hdr[:4]))
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
			var resp []byte
			status := byte(matchsvc.StatusOK)
			switch hdr[4] {
			case matchsvc.OpCount:
				resp = binary.BigEndian.AppendUint32(nil, 42)
			default:
				// The pre-OpStats server's answer to an opcode it does
				// not know: a remote error string naming the opcode
				// (this exact shape is also what tells a muxed client
				// its hello was not understood, triggering the legacy
				// downgrade this test exercises).
				status = matchsvc.StatusError
				msg := fmt.Sprintf("matchsvc: unknown opcode 0x%02x", hdr[4])
				resp = binary.BigEndian.AppendUint16(nil, uint16(len(msg)))
				resp = append(resp, msg...)
			}
			binary.BigEndian.PutUint32(hdr[:4], uint32(len(resp)))
			hdr[4] = status
			if _, err := conn.Write(hdr[:]); err != nil {
				return
			}
			if _, err := conn.Write(resp); err != nil {
				return
			}
		}
	}()

	svc, err := Dial(context.Background(), ln.Addr().String(), WithRequestTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrollments != 42 || st.Shards != 1 || st.WAL != nil {
		t.Fatalf("fallback stats = %+v, want 42 enrollments on 1 shard", st)
	}
}

package fpis

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// TestWithWALSurvivesRestart proves the facade-level durability
// contract for both in-process deployment shapes: every mutation
// acknowledged before Close (or a crash — the log is synced per
// acknowledgement) is back after reconstruction, with the recovery
// visible in Stats.
func TestWithWALSurvivesRestart(t *testing.T) {
	gal, probes := confFixtures(t)
	ctx := context.Background()
	shapes := []struct {
		name string
		opts func(dir string) []Option
	}{
		{"local", func(dir string) []Option {
			return []Option{WithWAL(dir)}
		}},
		{"localSharded", func(dir string) []Option {
			return []Option{WithWAL(dir), WithLocalShards(3), WithWALCompactEvery(4)}
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			svc, err := New(ctx, shape.opts(dir)...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gal {
				if err := svc.Enroll(ctx, confID(i), "D0", gal[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := svc.Remove(ctx, confID(0)); err != nil {
				t.Fatal(err)
			}
			st, err := svc.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.WAL == nil {
				t.Fatal("Stats.WAL is nil on a WithWAL service")
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}

			svc, err = New(ctx, shape.opts(dir)...)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer svc.Close()
			st, err = svc.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Enrollments != len(gal)-1 {
				t.Fatalf("recovered %d enrollments, want %d", st.Enrollments, len(gal)-1)
			}
			if st.WAL == nil || st.WAL.Replayed+st.WAL.SnapshotEntries == 0 {
				t.Fatalf("recovery not reflected in Stats.WAL: %+v", st.WAL)
			}
			if _, err := svc.Verify(ctx, confID(0), probes[0]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("removed subject resurrected: err = %v", err)
			}
			res, err := svc.Verify(ctx, confID(1), probes[1])
			if err != nil {
				t.Fatal(err)
			}
			if res.Score <= 0 {
				t.Fatalf("recovered template does not match its probe: %+v", res)
			}
		})
	}
}

// TestWALOptionValidation pins the option applicability rules.
func TestWALOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := New(ctx, WithWAL("")); err == nil {
		t.Fatal("WithWAL(\"\") accepted")
	}
	if _, err := New(ctx, WithWALCompactEvery(8)); err == nil {
		t.Fatal("WithWALCompactEvery without WithWAL accepted")
	}
	if _, err := New(ctx, WithShards("127.0.0.1:1"), WithWAL(t.TempDir())); err == nil {
		t.Fatal("WithWAL on a WithShards front accepted")
	}
	if _, err := Dial(ctx, "127.0.0.1:1", WithWAL(t.TempDir())); err == nil {
		t.Fatal("WithWAL on Dial accepted")
	}
}

module fpinterop

go 1.24

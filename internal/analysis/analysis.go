// Package analysis is the driver core of fpvet, the repository's
// static-analysis suite. It loads packages with full type information
// using only the standard library (go/parser + go/types, with export
// data located via `go list -export`), defines the Analyzer and Finding
// vocabulary shared by the checkers under internal/analysis/..., and
// implements the //fpvet annotation grammar:
//
//	//fpvet:allow <analyzer> <reason>   silence one analyzer here
//	//fpvet:hotpath                     mark a function allocation-critical
//
// An allow comment applies to findings on its own line and the line
// directly below it (so it works both as a trailing comment and on the
// line preceding the flagged statement); an allow in a function's doc
// comment applies to the whole function. The reason is mandatory — a
// bare allow is itself reported as a finding, so silenced invariants
// always carry their justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	// Analyzer names the checker that produced the finding.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message states the violation and, where useful, the fix.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Implementations must be safe to
// run over any package: scoping (which packages or functions a rule
// applies to) is the analyzer's own responsibility.
type Analyzer interface {
	// Name is the identifier used in findings and allow annotations.
	Name() string
	// Check reports the package's violations. Allow filtering is done
	// by the driver; Check reports every raw finding.
	Check(p *Pkg) []Finding
}

// Pkg is one loaded, type-checked package.
type Pkg struct {
	// Path is the package import path.
	Path string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info

	annots *annotations // lazily built annotation index
}

// Position resolves a token.Pos against the package file set.
func (p *Pkg) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Findingf appends a finding at pos.
func Findingf(p *Pkg, a Analyzer, pos token.Pos, format string, args ...any) Finding {
	return Finding{Analyzer: a.Name(), Pos: p.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// Run executes the analyzers over the packages, drops findings
// silenced by well-formed //fpvet:allow annotations, appends findings
// for malformed annotations, and returns everything ordered by file,
// line, and analyzer.
func Run(pkgs []*Pkg, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		an := p.annotations()
		out = append(out, an.malformed...)
		for _, a := range analyzers {
			for _, f := range a.Check(p) {
				if an.allowed(a.Name(), f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowRange is one silenced region: an analyzer name and a line span
// (file-scoped; function-level allows span the function's lines).
type allowRange struct {
	analyzer  string
	file      string
	startLine int
	endLine   int
}

// annotations indexes a package's //fpvet comments.
type annotations struct {
	allows    []allowRange
	hotpaths  map[*ast.FuncDecl]bool
	malformed []Finding
}

const (
	allowPrefix   = "//fpvet:allow"
	hotpathMarker = "//fpvet:hotpath"
)

// annotations builds (once) the package's annotation index.
func (p *Pkg) annotations() *annotations {
	if p.annots != nil {
		return p.annots
	}
	an := &annotations{hotpaths: make(map[*ast.FuncDecl]bool)}
	for _, file := range p.Files {
		// Function-level annotations come from doc comments; they are
		// recorded first so the generic comment walk below can skip them
		// (a doc-comment allow covers the whole function, not two lines).
		docComments := make(map[*ast.Comment]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, hotpathMarker) {
					an.hotpaths[fd] = true
					docComments[c] = true
				}
				if strings.HasPrefix(c.Text, allowPrefix) {
					docComments[c] = true
					name, ok := parseAllow(c.Text)
					if !ok {
						an.malformed = append(an.malformed, malformedAllow(p, c.Pos()))
						continue
					}
					start := p.Position(fd.Pos())
					end := p.Position(fd.End())
					an.allows = append(an.allows, allowRange{
						analyzer:  name,
						file:      start.Filename,
						startLine: start.Line,
						endLine:   end.Line,
					})
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if docComments[c] {
					continue
				}
				if strings.HasPrefix(c.Text, allowPrefix) {
					pos := p.Position(c.Pos())
					name, ok := parseAllow(c.Text)
					if !ok {
						an.malformed = append(an.malformed, malformedAllow(p, c.Pos()))
						continue
					}
					an.allows = append(an.allows, allowRange{
						analyzer:  name,
						file:      pos.Filename,
						startLine: pos.Line,
						endLine:   pos.Line + 1,
					})
				} else if strings.HasPrefix(c.Text, hotpathMarker) {
					// A hotpath marker that is not a function doc comment
					// marks nothing; surface it instead of ignoring it.
					an.malformed = append(an.malformed, Finding{
						Analyzer: "annotation",
						Pos:      p.Position(c.Pos()),
						Message:  "//fpvet:hotpath must appear in a function's doc comment",
					})
				}
			}
		}
	}
	p.annots = an
	return an
}

func malformedAllow(p *Pkg, pos token.Pos) Finding {
	return Finding{
		Analyzer: "annotation",
		Pos:      p.Position(pos),
		Message:  "malformed allow: want //fpvet:allow <analyzer> <reason>",
	}
}

// parseAllow extracts the analyzer name from an allow comment,
// requiring a non-empty reason after it.
func parseAllow(text string) (analyzer string, ok bool) {
	rest := strings.TrimPrefix(text, allowPrefix)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", false
	}
	return fields[0], true
}

// allowed reports whether a finding by the named analyzer at pos is
// silenced by an allow annotation.
func (an *annotations) allowed(analyzer string, pos token.Position) bool {
	for _, a := range an.allows {
		if a.analyzer == analyzer && a.file == pos.Filename &&
			pos.Line >= a.startLine && pos.Line <= a.endLine {
			return true
		}
	}
	return false
}

// Hotpath reports whether fd carries a //fpvet:hotpath annotation.
func (p *Pkg) Hotpath(fd *ast.FuncDecl) bool { return p.annotations().hotpaths[fd] }

// HotpathFuncs returns the package's annotated hot-path functions.
func (p *Pkg) HotpathFuncs() []*ast.FuncDecl {
	an := p.annotations()
	var out []*ast.FuncDecl
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && an.hotpaths[fd] {
				out = append(out, fd)
			}
		}
	}
	return out
}

// --- shared type helpers ---

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CalleeObject resolves the object a call expression invokes (function,
// method, or builtin), or nil when it cannot be determined.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleePkgPath returns the import path of the package the call's
// callee belongs to ("" for builtins, locals whose package is unknown,
// and unresolvable callees).
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := CalleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// CalleeName returns the bare name of the call's callee ("" when
// unresolvable syntactically).
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ContainsLock reports whether t (after resolving named types) directly
// or transitively embeds a sync lock type by value. seen guards against
// recursive types; pass nil at the top level.
func ContainsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Pool", "WaitGroup", "Once", "Cond", "Map":
				return true
			}
		}
		return ContainsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if ContainsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return ContainsLock(u.Elem(), seen)
	}
	return false
}

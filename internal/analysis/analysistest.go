package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
)

// moduleRoot locates the repository root from this source file's
// location, so analyzer self-tests resolve testdata packages no matter
// which directory `go test` runs them from.
func moduleRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("analysis: cannot locate module root")
	}
	// file is <root>/internal/analysis/analysistest.go.
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// wantRe matches expectation markers in testdata sources:
//
//	// want ctxflow "context.Background"
//
// meaning: this line must produce a ctxflow finding whose message
// contains the quoted substring.
var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
}

// RunTestdata loads the given testdata package path (relative to the
// module root, e.g. "./internal/analysis/ctxflow/testdata/src/a"), runs
// the analyzers over it, and diffs the findings against the package's
// `// want <analyzer> "substr"` markers. It returns one error message
// per mismatch: a marker no finding satisfied, or a finding no marker
// expected. The marker-bearing line must produce the finding (allow
// annotations are honored first, exactly as in production runs).
func RunTestdata(pattern string, analyzers ...Analyzer) ([]string, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	pkgs, err := Load(root, pattern)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("analysis: pattern %q matched %d packages, want 1", pattern, len(pkgs))
	}
	p := pkgs[0]

	var wants []expectation
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Position(c.Pos())
					wants = append(wants, expectation{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: m[1],
						substr:   m[2],
					})
				}
			}
		}
	}

	findings := Run([]*Pkg{p}, analyzers)
	matchedF := make([]bool, len(findings))
	var problems []string
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matchedF[i] || f.Analyzer != w.analyzer || f.Pos.Filename != w.file ||
				f.Pos.Line != w.line || !strings.Contains(f.Message, w.substr) {
				continue
			}
			matchedF[i] = true
			found = true
			break
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s:%d: no %s finding containing %q",
				filepath.Base(w.file), w.line, w.analyzer, w.substr))
		}
	}
	for i, f := range findings {
		if !matchedF[i] {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	return problems, nil
}

// FuncScopes returns every function-shaped body in the file — declared
// functions and methods plus function literals — paired with the node
// that owns it. Analyzers that reason about defer or return semantics
// must treat each scope independently: a defer inside a function
// literal runs at the literal's exit, not the enclosing function's.
func FuncScopes(file *ast.File) []FuncScope {
	var out []FuncScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncScope{Decl: fn, Body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncScope{Lit: fn, Body: fn.Body})
		}
		return true
	})
	return out
}

// FuncScope is one function-shaped region (exactly one of Decl or Lit
// is set).
type FuncScope struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Name returns a human-readable label for the scope.
func (s FuncScope) Name() string {
	if s.Decl != nil {
		return s.Decl.Name.Name
	}
	return "func literal"
}

// InspectShallow walks the scope's body like ast.Inspect but does not
// descend into nested function literals, so defer/return reasoning
// stays within one function's semantics.
func (s FuncScope) InspectShallow(fn func(ast.Node) bool) {
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != s.Lit {
			return false
		}
		return fn(n)
	})
}

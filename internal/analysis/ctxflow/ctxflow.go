// Package ctxflow enforces the repository's context-discipline
// invariant: in the context-aware library packages (the fpis facade and
// the gallery, shard, and matchsvc layers under it), cancellation must
// flow from the caller. Concretely:
//
//  1. No call to context.Background() or context.TODO() — a library
//     function that fabricates its own root context breaks the
//     end-to-end cancellation chain PR 5 established. Sites that are
//     legitimately roots (deprecated non-ctx wrappers, wire fronts
//     where the protocol carries no deadline) must say so with
//     //fpvet:allow ctxflow <reason>.
//  2. Exported functions, methods, and interface methods that take a
//     context.Context must take it as the first parameter, matching
//     the fpis.Service convention.
//  3. No call to time.Sleep inside a function that takes a
//     context.Context — a bare sleep (a retry backoff, a poll
//     interval) ignores cancellation for its whole duration; the wait
//     must select on ctx.Done() against a timer. The rule stops at
//     function-literal boundaries, since a spawned goroutine owns its
//     own lifecycle.
package ctxflow

import (
	"go/ast"
	"go/types"

	"fpinterop/internal/analysis"
)

// DefaultPackages are the context-aware library packages the invariant
// governs.
var DefaultPackages = []string{
	"fpinterop/fpis",
	"fpinterop/internal/gallery",
	"fpinterop/internal/shard",
	"fpinterop/internal/matchsvc",
}

// Analyzer is the ctxflow checker.
type Analyzer struct {
	// Packages are the import paths in scope; empty means
	// DefaultPackages.
	Packages []string
}

// New returns the checker with the repository's default scope.
func New() *Analyzer { return &Analyzer{} }

func (a *Analyzer) Name() string { return "ctxflow" }

func (a *Analyzer) inScope(path string) bool {
	pkgs := a.Packages
	if len(pkgs) == 0 {
		pkgs = DefaultPackages
	}
	for _, p := range pkgs {
		if p == path {
			return true
		}
	}
	return false
}

// Check implements analysis.Analyzer.
func (a *Analyzer) Check(p *analysis.Pkg) []analysis.Finding {
	if !a.inScope(p.Path) {
		return nil
	}
	var out []analysis.Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if name, bad := rootContextCall(p.Info, node); bad {
					out = append(out, analysis.Findingf(p, a, node.Pos(),
						"library code fabricates a root context with context.%s; thread the caller's ctx (annotate genuine roots with //fpvet:allow ctxflow <reason>)", name))
				}
			case *ast.FuncDecl:
				if node.Name.IsExported() {
					out = append(out, a.checkSignature(p, node.Name.Name, node.Type)...)
				}
				out = append(out, a.checkSleep(p, node)...)
			case *ast.InterfaceType:
				for _, m := range node.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					for _, name := range m.Names {
						if name.IsExported() {
							out = append(out, a.checkSignature(p, name.Name, ft)...)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// checkSignature flags a context.Context parameter that is not first.
func (a *Analyzer) checkSignature(p *analysis.Pkg, name string, ft *ast.FuncType) []analysis.Finding {
	var out []analysis.Finding
	pos := 0
	for _, field := range ft.Params.List {
		t := p.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && analysis.IsContextType(t) && pos != 0 {
			out = append(out, analysis.Findingf(p, a, field.Pos(),
				"%s takes context.Context at parameter %d; the context must come first", name, pos))
		}
		pos += n
	}
	return out
}

// checkSleep flags time.Sleep inside a context-taking function: the
// wait blocks cancellation for its full duration, which is exactly the
// window retries and polls exist to bound.
func (a *Analyzer) checkSleep(p *analysis.Pkg, fn *ast.FuncDecl) []analysis.Finding {
	if fn.Body == nil || !takesContext(p.Info, fn.Type) {
		return nil
	}
	var out []analysis.Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A nested literal (usually a goroutine body) owns its own
			// lifecycle and may legitimately pace itself with sleeps.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := analysis.CalleeObject(p.Info, call)
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Sleep" {
			out = append(out, analysis.Findingf(p, a, call.Pos(),
				"time.Sleep in context-taking %s ignores cancellation; select on ctx.Done() against a timer (annotate deliberate waits with //fpvet:allow ctxflow <reason>)", fn.Name.Name))
		}
		return true
	})
	return out
}

// takesContext reports whether any parameter is a context.Context.
func takesContext(info *types.Info, ft *ast.FuncType) bool {
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

// rootContextCall reports a call to context.Background or context.TODO.
func rootContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := analysis.CalleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	switch obj.Name() {
	case "Background", "TODO":
		return obj.Name(), true
	}
	return "", false
}

package ctxflow

import (
	"testing"

	"fpinterop/internal/analysis"
)

// TestTestdataViolations proves the analyzer flags exactly the corpus's
// marked lines — no misses, no extras — with the testdata package
// force-scoped in.
func TestTestdataViolations(t *testing.T) {
	a := &Analyzer{Packages: []string{"fpinterop/internal/analysis/ctxflow/testdata/src/a"}}
	problems, err := analysis.RunTestdata("./internal/analysis/ctxflow/testdata/src/a", a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestOutOfScopePackageIgnored proves package scoping: the same corpus
// produces nothing when it is not in the analyzer's package list.
func TestOutOfScopePackageIgnored(t *testing.T) {
	a := New() // repository default scope; testdata path is not in it
	problems, err := analysis.RunTestdata("./internal/analysis/ctxflow/testdata/src/a", a)
	if err != nil {
		t.Fatal(err)
	}
	// Every want-marker should be reported missing, and no findings at all.
	for _, p := range problems {
		if len(p) >= len("unexpected") && p[:len("unexpected")] == "unexpected" {
			t.Errorf("out-of-scope package still produced: %s", p)
		}
	}
}

// Package a is the ctxflow violation corpus: every construct the
// analyzer must flag, next to the shapes it must leave alone.
package a

import (
	"context"
	"time"
)

// Bad fabricates a root context in library code.
func Bad() error {
	ctx := context.Background() // want ctxflow "context.Background"
	return ctx.Err()
}

// BadTODO fabricates a TODO context.
func BadTODO() error {
	return context.TODO().Err() // want ctxflow "context.TODO"
}

// Allowed is a genuine root; the annotation carries its reason.
func Allowed() error {
	ctx := context.Background() //fpvet:allow ctxflow deprecated wrapper kept for compatibility
	return ctx.Err()
}

// AllowedPrecedingLine is silenced from the line above.
func AllowedPrecedingLine() error {
	//fpvet:allow ctxflow testdata root
	ctx := context.Background()
	return ctx.Err()
}

// AllowedWholeFunc is silenced for its whole body.
//
//fpvet:allow ctxflow the entire function is a compatibility shim
func AllowedWholeFunc() error {
	a := context.Background()
	b := context.TODO()
	return errJoin(a.Err(), b.Err())
}

// MisplacedCtx takes a context, but not first.
func MisplacedCtx(id string, ctx context.Context) error { // want ctxflow "context must come first"
	return ctx.Err()
}

// CtxFirst is the required shape.
func CtxFirst(ctx context.Context, id string) error {
	return ctx.Err()
}

// Iface holds the interface-method variants.
type Iface interface {
	// Good takes ctx first.
	Good(ctx context.Context, id string) error
	// Misplaced takes ctx second.
	Misplaced(id string, ctx context.Context) error // want ctxflow "context must come first"
}

// unexportedMisplaced is not part of the public API surface; only
// exported signatures are held to the ctx-first convention.
func unexportedMisplaced(id string, ctx context.Context) error {
	return ctx.Err()
}

func errJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BadSleep blocks a context-carrying call chain with an uncancellable
// wait — the retry-backoff bug class.
func BadSleep(ctx context.Context) error {
	time.Sleep(time.Millisecond) // want ctxflow "time.Sleep"
	return ctx.Err()
}

// BadSleepMethodShape flags regardless of where ctx sits in the body.
func BadSleepLoop(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond) // want ctxflow "time.Sleep"
	}
	return nil
}

// GoodTimerSelect waits cancellably; the required replacement shape.
func GoodTimerSelect(ctx context.Context) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SleepWithoutCtx has no context to honor; sleeping is its business.
func SleepWithoutCtx() {
	time.Sleep(time.Millisecond)
}

// AllowedSleep documents a deliberate uncancellable wait.
func AllowedSleep(ctx context.Context) error {
	time.Sleep(time.Millisecond) //fpvet:allow ctxflow deliberate settle window in a shutdown path
	return ctx.Err()
}

// SleepInGoroutineLiteral is exempt: the spawned literal owns its own
// lifecycle, the enclosing function does not block on it.
func SleepInGoroutineLiteral(ctx context.Context) error {
	go func() {
		time.Sleep(time.Millisecond)
	}()
	return ctx.Err()
}

// Package a is the ctxflow violation corpus: every construct the
// analyzer must flag, next to the shapes it must leave alone.
package a

import "context"

// Bad fabricates a root context in library code.
func Bad() error {
	ctx := context.Background() // want ctxflow "context.Background"
	return ctx.Err()
}

// BadTODO fabricates a TODO context.
func BadTODO() error {
	return context.TODO().Err() // want ctxflow "context.TODO"
}

// Allowed is a genuine root; the annotation carries its reason.
func Allowed() error {
	ctx := context.Background() //fpvet:allow ctxflow deprecated wrapper kept for compatibility
	return ctx.Err()
}

// AllowedPrecedingLine is silenced from the line above.
func AllowedPrecedingLine() error {
	//fpvet:allow ctxflow testdata root
	ctx := context.Background()
	return ctx.Err()
}

// AllowedWholeFunc is silenced for its whole body.
//
//fpvet:allow ctxflow the entire function is a compatibility shim
func AllowedWholeFunc() error {
	a := context.Background()
	b := context.TODO()
	return errJoin(a.Err(), b.Err())
}

// MisplacedCtx takes a context, but not first.
func MisplacedCtx(id string, ctx context.Context) error { // want ctxflow "context must come first"
	return ctx.Err()
}

// CtxFirst is the required shape.
func CtxFirst(ctx context.Context, id string) error {
	return ctx.Err()
}

// Iface holds the interface-method variants.
type Iface interface {
	// Good takes ctx first.
	Good(ctx context.Context, id string) error
	// Misplaced takes ctx second.
	Misplaced(id string, ctx context.Context) error // want ctxflow "context must come first"
}

// unexportedMisplaced is not part of the public API surface; only
// exported signatures are held to the ctx-first convention.
func unexportedMisplaced(id string, ctx context.Context) error {
	return ctx.Err()
}

func errJoin(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

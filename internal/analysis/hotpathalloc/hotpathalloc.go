// Package hotpathalloc enforces the zero-allocation contract on
// functions annotated //fpvet:hotpath. The PR-4 matcher rebuild pays
// for its flat accumulators and pooled sessions only if the per-probe
// code stays off the heap, so annotated functions reject the
// allocating constructs that have crept back in before:
//
//   - any fmt.* call (Sprintf/Errorf always allocate);
//   - map literals and make(map[...]...);
//   - slice composite literals ([]T{...} — array literals are fine,
//     and make([]T, n) stays legal because guarded growth paths need
//     it);
//   - function literals that capture enclosing variables (the closure
//     context escapes to the heap);
//   - implicit interface boxing: passing, returning, or assigning a
//     concrete value where an interface is expected.
//
// The ban list is deliberately about constructs that *always* allocate
// or force escapes; it is not an escape analysis. A construct the
// repo's benchmarks prove harmless can be annotated
// //fpvet:allow hotpathalloc <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"fpinterop/internal/analysis"
)

// Analyzer is the hotpathalloc checker.
type Analyzer struct{}

// New returns the checker.
func New() *Analyzer { return &Analyzer{} }

func (a *Analyzer) Name() string { return "hotpathalloc" }

// Check implements analysis.Analyzer.
func (a *Analyzer) Check(p *analysis.Pkg) []analysis.Finding {
	var out []analysis.Finding
	for _, fd := range p.HotpathFuncs() {
		out = append(out, a.checkFunc(p, fd)...)
	}
	return out
}

func (a *Analyzer) checkFunc(p *analysis.Pkg, fd *ast.FuncDecl) []analysis.Finding {
	var out []analysis.Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			out = append(out, a.checkCall(p, fd, node)...)
		case *ast.CompositeLit:
			t := p.Info.TypeOf(node)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				out = append(out, analysis.Findingf(p, a, node.Pos(),
					"hot path %s allocates a map literal", fd.Name.Name))
			case *types.Slice:
				out = append(out, analysis.Findingf(p, a, node.Pos(),
					"hot path %s allocates a slice literal (use a caller-provided or pooled buffer)", fd.Name.Name))
			}
		case *ast.FuncLit:
			if captured := capturedVars(p.Info, node); len(captured) > 0 {
				out = append(out, analysis.Findingf(p, a, node.Pos(),
					"hot path %s creates a closure capturing %s (the context escapes to the heap); hoist it to a named function", fd.Name.Name, captured[0]))
			}
		case *ast.ReturnStmt:
			out = append(out, a.checkReturn(p, fd, node)...)
		case *ast.AssignStmt:
			out = append(out, a.checkAssign(p, fd, node)...)
		}
		return true
	})
	return out
}

func (a *Analyzer) checkCall(p *analysis.Pkg, fd *ast.FuncDecl, call *ast.CallExpr) []analysis.Finding {
	var out []analysis.Finding
	if analysis.CalleePkgPath(p.Info, call) == "fmt" {
		return append(out, analysis.Findingf(p, a, call.Pos(),
			"hot path %s calls fmt.%s, which allocates", fd.Name.Name, analysis.CalleeName(call)))
	}
	// make(map[...]...) allocates; make([]T, n) is deliberately legal.
	if obj := analysis.CalleeObject(p.Info, call); obj != nil {
		if b, ok := obj.(*types.Builtin); ok && b.Name() == "make" && len(call.Args) > 0 {
			if t := p.Info.TypeOf(call.Args[0]); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, analysis.Findingf(p, a, call.Pos(),
						"hot path %s allocates a map with make", fd.Name.Name))
				}
			}
		}
	}
	// Implicit boxing at call arguments: a concrete value passed where
	// the (instantiated) signature wants an interface.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return out // conversion, builtin, or unresolvable
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if boxes(p.Info.TypeOf(arg), pt) {
			out = append(out, analysis.Findingf(p, a, arg.Pos(),
				"hot path %s boxes a concrete %s into interface %s at a call argument", fd.Name.Name, p.Info.TypeOf(arg), pt))
		}
	}
	return out
}

func (a *Analyzer) checkReturn(p *analysis.Pkg, fd *ast.FuncDecl, ret *ast.ReturnStmt) []analysis.Finding {
	var out []analysis.Finding
	results := fd.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return nil
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		t := p.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return nil // multi-value call return; boxing happens at the callee
	}
	for i, res := range ret.Results {
		if boxes(p.Info.TypeOf(res), resultTypes[i]) {
			out = append(out, analysis.Findingf(p, a, res.Pos(),
				"hot path %s boxes a concrete %s into interface %s at return", fd.Name.Name, p.Info.TypeOf(res), resultTypes[i]))
		}
	}
	return out
}

func (a *Analyzer) checkAssign(p *analysis.Pkg, fd *ast.FuncDecl, assign *ast.AssignStmt) []analysis.Finding {
	var out []analysis.Finding
	if len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	for i := range assign.Lhs {
		lt := p.Info.TypeOf(assign.Lhs[i])
		rt := p.Info.TypeOf(assign.Rhs[i])
		// := defines the LHS with the RHS type, so only = can box.
		if assign.Tok.String() == "=" && boxes(rt, lt) {
			out = append(out, analysis.Findingf(p, a, assign.Rhs[i].Pos(),
				"hot path %s boxes a concrete %s into interface %s at assignment", fd.Name.Name, rt, lt))
		}
	}
	return out
}

// boxes reports whether assigning a value of type from to a slot of
// type to implicitly boxes: to is an interface and from is a concrete
// type the runtime cannot store directly in the interface word.
// Pointer-shaped types (pointers, channels, maps, funcs) convert
// without allocating, so handing a pooled *scratch to sync.Pool.Put
// stays legal.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface conversions do not re-box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // direct interface types: the data word is the value
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer:
			return false
		}
	}
	return true
}

// capturedVars returns the names of enclosing-function variables the
// literal captures (package-level objects and the literal's own
// parameters and locals do not count).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[ident]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared inside the literal (params or locals) — not captured.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		// Package-level variables live in static storage.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}

// Package a is the hotpathalloc violation corpus.
package a

import "fmt"

var global int

func sinkAny(v any)   { _ = v }
func sinkInt(v int)   { _ = v }
func sinkErr(e error) { _ = e }

type myErr struct{}

func (myErr) Error() string { return "my error" }

// FmtCall formats in a hot path.
//
//fpvet:hotpath
func FmtCall(n int) string {
	return fmt.Sprintf("%d", n) // want hotpathalloc "fmt.Sprintf"
}

// MapConstructs builds maps in a hot path.
//
//fpvet:hotpath
func MapConstructs() int {
	m := map[string]int{"a": 1} // want hotpathalloc "map literal"
	n := make(map[int]int)      // want hotpathalloc "map with make"
	return len(m) + len(n)
}

// SliceLiteral allocates a fresh backing array per call.
//
//fpvet:hotpath
func SliceLiteral() int {
	s := []int{1, 2, 3} // want hotpathalloc "slice literal"
	return len(s)
}

// ArrayAndMake shows the legal shapes: array literals live on the
// stack and make([]T, n) backs guarded growth paths.
//
//fpvet:hotpath
func ArrayAndMake(n int) int {
	a := [3]int{1, 2, 3}
	s := make([]int, n)
	return len(s) + a[0]
}

// CapturingClosure builds a closure over a local.
//
//fpvet:hotpath
func CapturingClosure(n int) func() int {
	return func() int { return n } // want hotpathalloc "closure capturing"
}

// FreeClosure captures nothing from the enclosing frame; its func
// value is static.
//
//fpvet:hotpath
func FreeClosure() func(int) int {
	return func(v int) int { return v + global }
}

// BoxArg passes a concrete int where an interface is expected.
//
//fpvet:hotpath
func BoxArg(n int) {
	sinkAny(n) // want hotpathalloc "call argument"
	sinkInt(n)
}

// BoxReturn returns a concrete error value through the error
// interface.
//
//fpvet:hotpath
func BoxReturn() error {
	return myErr{} // want hotpathalloc "at return"
}

// BoxAssign stores a concrete value into an interface variable.
//
//fpvet:hotpath
func BoxAssign(n int) {
	var v any
	v = n // want hotpathalloc "at assignment"
	_ = v
}

// InterfacePassthrough re-passes an interface value: no re-boxing.
//
//fpvet:hotpath
func InterfacePassthrough(e error) {
	sinkErr(e)
	sinkErr(nil)
}

// PointerShaped hands pointer-shaped values to interfaces: the runtime
// stores them directly in the interface word, no allocation.
//
//fpvet:hotpath
func PointerShaped(p *int, m map[int]int) {
	sinkAny(p)
	sinkAny(m)
}

// Allowed documents a benchmark-proven exception.
//
//fpvet:hotpath
func Allowed(n int) string {
	return fmt.Sprintf("%d", n) //fpvet:allow hotpathalloc cold error path, proven off the steady state
}

// Unannotated allocates freely; only annotated functions are checked.
func Unannotated(n int) string {
	m := map[int]int{n: n}
	return fmt.Sprint(len(m))
}

// Misplaced markers do not silently mark nothing.
func Misplaced() {
	//fpvet:hotpath // want annotation "doc comment"
	_ = global
}

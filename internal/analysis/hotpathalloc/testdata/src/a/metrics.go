package a

// Metric-recording shapes. The instrumented request paths record into
// pre-resolved handles with int64-only methods; these cases pin the
// shapes that reintroduce allocation at a record site: formatting a
// series key per call, building a label map, observing through a
// deferred closure, or reporting samples through a variadic logger.

import (
	"fmt"
	"time"
)

// Stub handles mirroring the real metric types: pointer receivers,
// int64-only record methods, nil-safe.
type statCounter struct{ v int64 }

func (c *statCounter) inc() {
	if c != nil {
		c.v++
	}
}

type statHistogram struct{ sum, n int64 }

func (h *statHistogram) observe(v int64) {
	if h != nil {
		h.sum += v
		h.n++
	}
}

type statVec struct{}

func (statVec) with(labels ...string) *statHistogram { return &statHistogram{} }

func emit(msg string, kv ...any) {}

// RecordPreResolved is the blessed record-site shape: handles resolved
// at setup time, one guarded timestamp, int64 all the way down.
//
//fpvet:hotpath
func RecordPreResolved(c *statCounter, h *statHistogram, t0 time.Time) {
	c.inc()
	h.observe(time.Since(t0).Nanoseconds())
}

// RecordLabelKey resolves the series per call with a formatted key —
// the classic metrics-in-the-hot-loop mistake.
//
//fpvet:hotpath
func RecordLabelKey(v statVec, shard int, d int64) {
	v.with(fmt.Sprintf("shard-%d", shard)).observe(d) // want hotpathalloc "fmt.Sprintf"
}

// RecordLabelMap builds a per-call label map.
//
//fpvet:hotpath
func RecordLabelMap(d int64) int {
	labels := map[string]string{"shard": "shard-0"} // want hotpathalloc "map literal"
	return len(labels)
}

// RecordDeferred observes through a deferred closure; the capture
// (handle plus timestamp) escapes to the heap on every call.
//
//fpvet:hotpath
func RecordDeferred(h *statHistogram) {
	t0 := time.Now()
	defer func() { h.observe(time.Since(t0).Nanoseconds()) }() // want hotpathalloc "closure capturing"
}

// RecordLogged reports the sample through a structured logger: the key
// and the value each box into the variadic any slot.
//
//fpvet:hotpath
func RecordLogged(d int64) {
	emit("observed", "latency_ns", d) // want hotpathalloc "call argument" // want hotpathalloc "call argument"
}

package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns (as the go tool would, relative to
// dir) and returns the matched packages parsed and fully type-checked.
// Dependencies — standard library and module siblings alike — are
// imported from compiler export data located via `go list -export`, so
// only the target packages themselves are parsed from source. Test
// files are not loaded: fpvet checks library invariants, and testdata
// trees are reachable only by explicit path, exactly like the go tool.
func Load(dir string, patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Pkg
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Pkg{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

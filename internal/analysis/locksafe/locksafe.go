// Package locksafe enforces the repository's lock-discipline
// invariant: mutexes guard memory, not time. The gallery store and the
// shard router serve concurrent identification traffic, so a blocking
// operation under one of their mutexes stalls every other caller.
// While a sync.Mutex/RWMutex is held, the checker rejects:
//
//   - channel sends, receives, and select statements;
//   - calls that take a context.Context argument (a ctx parameter
//     signals the callee may wait on it), except calls into package
//     context itself, which only derive or inspect;
//   - blocking net-package calls (Dial, DialContext, Accept, Read,
//     Write, ReadFrom, WriteTo, Listen — Close is non-blocking and
//     stays legal);
//   - time.Sleep and sync.WaitGroup.Wait;
//   - os.File.Sync — an fsync is disk I/O on the caller's thread, and
//     a replica topology or routing lock held across it turns every
//     durable append into a stall for every reader.
//
// It also rejects lock copies: methods or parameters that take a
// lock-bearing type by value.
//
// Regions are tracked lexically within one function scope: a Lock/
// RLock opens a region that the next Unlock/RUnlock on the same
// receiver closes; a deferred unlock holds to the end of the scope.
// Blocking work a design genuinely serializes under a lock needs an
// explicit //fpvet:allow locksafe <reason>.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"fpinterop/internal/analysis"
)

// blockingNetCalls are the net-package method/function names that can
// block on the network.
var blockingNetCalls = map[string]bool{
	"Dial": true, "DialContext": true, "Accept": true,
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Listen": true,
}

// Analyzer is the locksafe checker.
type Analyzer struct{}

// New returns the checker.
func New() *Analyzer { return &Analyzer{} }

func (a *Analyzer) Name() string { return "locksafe" }

// region is one lexical span during which a mutex is held.
type region struct {
	recv  string // receiver expression, e.g. "s.mu"
	start token.Pos
	end   token.Pos
}

// blockingOp is one operation that must not run under a lock.
type blockingOp struct {
	pos  token.Pos
	what string
}

// Check implements analysis.Analyzer.
func (a *Analyzer) Check(p *analysis.Pkg) []analysis.Finding {
	var out []analysis.Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, a.checkCopies(p, fd)...)
			}
		}
		for _, scope := range analysis.FuncScopes(file) {
			out = append(out, a.checkScope(p, scope)...)
		}
	}
	return out
}

// checkCopies flags value receivers and parameters of lock-bearing
// types.
func (a *Analyzer) checkCopies(p *analysis.Pkg, fd *ast.FuncDecl) []analysis.Finding {
	var out []analysis.Finding
	check := func(field *ast.Field, role string) {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if analysis.ContainsLock(t, nil) {
			out = append(out, analysis.Findingf(p, a, field.Pos(),
				"%s of %s copies lock-bearing %s by value; pass a pointer", role, fd.Name.Name, t))
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	for _, field := range fd.Type.Params.List {
		check(field, "parameter")
	}
	return out
}

func (a *Analyzer) checkScope(p *analysis.Pkg, scope analysis.FuncScope) []analysis.Finding {
	var (
		locks   []region // open at collection, end filled below
		unlocks []region // recv + position of each inline unlock
		ops     []blockingOp
	)
	scope.InspectShallow(func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock is not an inline release point (the lock
			// holds to scope end, which is the no-unlock default below),
			// and the deferred body runs at exit, outside the region walk.
			return false
		case *ast.SendStmt:
			ops = append(ops, blockingOp{node.Pos(), "a channel send"})
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				ops = append(ops, blockingOp{node.Pos(), "a channel receive"})
			}
		case *ast.SelectStmt:
			// The select is the blocking point; its comm clauses are not
			// separate findings.
			ops = append(ops, blockingOp{node.Pos(), "a select"})
			return false
		case *ast.CallExpr:
			recv, kind := mutexCall(p.Info, node)
			switch kind {
			case mutexLock:
				locks = append(locks, region{recv: recv, start: node.Pos()})
				return true
			case mutexUnlock:
				unlocks = append(unlocks, region{recv: recv, start: node.Pos()})
				return true
			}
			if what, blocking := blockingCall(p.Info, node); blocking {
				ops = append(ops, blockingOp{node.Pos(), what})
			}
		}
		return true
	})
	if len(locks) == 0 {
		return nil
	}

	// Close each region at the first same-receiver unlock after it; a
	// deferred unlock (or none at all) holds to the end of the scope.
	for i := range locks {
		locks[i].end = scope.Body.End()
		for _, u := range unlocks {
			if u.recv == locks[i].recv && u.start > locks[i].start && u.start < locks[i].end {
				locks[i].end = u.start
			}
		}
	}

	var out []analysis.Finding
	flagged := make(map[token.Pos]bool)
	for _, lk := range locks {
		for _, op := range ops {
			if op.pos > lk.start && op.pos < lk.end && !flagged[op.pos] {
				flagged[op.pos] = true
				out = append(out, analysis.Findingf(p, a, op.pos,
					"%s while holding %s blocks every other %s user", op.what, lk.recv, lk.recv))
			}
		}
	}
	return out
}

type mutexCallKind int

const (
	notMutex mutexCallKind = iota
	mutexLock
	mutexUnlock
)

// mutexCall classifies a call as a sync mutex Lock/RLock or
// Unlock/RUnlock and names its receiver expression.
func mutexCall(info *types.Info, call *ast.CallExpr) (string, mutexCallKind) {
	obj := analysis.CalleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", notMutex
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", notMutex
	}
	recv := exprString(sel.X)
	switch obj.Name() {
	case "Lock", "RLock":
		return recv, mutexLock
	case "Unlock", "RUnlock":
		return recv, mutexUnlock
	}
	return "", notMutex
}

// blockingCall classifies calls that can wait: sleeps, WaitGroup
// waits, blocking net I/O, and anything handed a context to wait on.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg := analysis.CalleePkgPath(info, call)
	name := analysis.CalleeName(call)
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && name == "Wait":
		return "WaitGroup.Wait", true
	case pkg == "os" && name == "Sync":
		return "a file fsync (Sync)", true
	case pkg == "net" && blockingNetCalls[name]:
		return fmt.Sprintf("network I/O (%s)", name), true
	case pkg != "context":
		for _, arg := range call.Args {
			if t := info.TypeOf(arg); t != nil && analysis.IsContextType(t) {
				return fmt.Sprintf("a call to %s with a cancellable context", name), true
			}
		}
	}
	return "", false
}

// exprString renders a receiver expression (identifiers, selectors,
// parens, derefs) for region matching and messages.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "?"
}

package locksafe

import (
	"testing"

	"fpinterop/internal/analysis"
)

// TestTestdataViolations proves the analyzer flags exactly the corpus's
// marked lines — no misses, no extras.
func TestTestdataViolations(t *testing.T) {
	problems, err := analysis.RunTestdata("./internal/analysis/locksafe/testdata/src/a", New())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// Package a is the locksafe violation corpus.
package a

import (
	"context"
	"net"
	"os"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	state sync.RWMutex
	wg    sync.WaitGroup
	ch    chan int
	conn  net.Conn
	f     *os.File
	n     int
}

func wait(ctx context.Context) { <-ctx.Done() }

// SendUnderLock performs a channel send while holding the mutex.
func (s *store) SendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want locksafe "channel send"
	s.mu.Unlock()
}

// ReceiveUnderDeferredLock holds to scope end via defer.
func (s *store) ReceiveUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want locksafe "channel receive"
}

// SelectUnderLock selects while holding a read lock.
func (s *store) SelectUnderLock() {
	s.state.RLock()
	select { // want locksafe "select"
	case v := <-s.ch:
		s.n = v
	default:
	}
	s.state.RUnlock()
}

// SleepUnderLock sleeps while holding the mutex.
func (s *store) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want locksafe "time.Sleep"
	s.mu.Unlock()
}

// WaitUnderLock parks on the WaitGroup while holding the mutex.
func (s *store) WaitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want locksafe "WaitGroup.Wait"
	s.mu.Unlock()
}

// NetUnderLock does network I/O while holding the mutex.
func (s *store) NetUnderLock(buf []byte) {
	s.mu.Lock()
	s.conn.Read(buf) // want locksafe "network I/O"
	s.mu.Unlock()
}

// FsyncUnderLock holds the topology lock across a disk flush — the
// replica-WAL shape locksafe exists to keep out of the tree.
func (s *store) FsyncUnderLock() {
	s.state.Lock()
	s.f.Sync() // want locksafe "file fsync"
	s.state.Unlock()
}

// FsyncUnderDeferredLock is the same stall via a deferred unlock.
func (s *store) FsyncUnderDeferredLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want locksafe "file fsync"
}

// FsyncAfterUnlock is the legal shape: stage under the lock, flush
// outside it.
func (s *store) FsyncAfterUnlock() error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.f.Sync()
}

// CtxCallUnderLock hands a cancellable context to a callee that may
// wait on it.
func (s *store) CtxCallUnderLock(ctx context.Context) {
	s.mu.Lock()
	wait(ctx) // want locksafe "cancellable context"
	s.mu.Unlock()
}

// AfterUnlock runs the blocking work outside the region.
func (s *store) AfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
	time.Sleep(time.Millisecond)
}

// DistinctMutexes tracks regions per receiver: the send happens after
// both locks are released, and neither region swallows the other's.
func (s *store) DistinctMutexes() {
	s.state.Lock()
	s.n++
	s.state.Unlock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}

// ContextDerivation is legal: package context only derives, it does
// not wait.
func (s *store) ContextDerivation(ctx context.Context) context.CancelFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, cancel := context.WithCancel(ctx)
	return cancel
}

// GoroutineUnderLock is legal in this model: the literal is its own
// scope and the go statement itself does not block.
func (s *store) GoroutineUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// Allowed documents deliberate serialization under the lock.
func (s *store) Allowed(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(buf) //fpvet:allow locksafe requests are serialized over one connection by design
}

// CopyReceiver takes the lock-bearing store by value.
func (s store) CopyReceiver() int { // want locksafe "copies lock-bearing"
	return s.n
}

// CopyParam takes a lock-bearing argument by value.
func CopyParam(s store) int { // want locksafe "copies lock-bearing"
	return s.n
}

// PointerParam is the legal shape.
func PointerParam(s *store) int {
	return s.n
}

// Package poolsafe enforces the repository's pooled-scratch invariant:
// every value borrowed from a pool goes back, on every return path, and
// is never touched after it does. The matcher sessions
// (match.AcquireSession), the frame scratch (framePool), the greedy and
// vote scratches, and the router's identify scratch all follow the same
// protocol, so the checker recognizes acquisition shapes generically:
//
//   - a call to a function named Acquire*/acquire* whose result is
//     bound to a variable,
//   - a call to a function named Checkout*/checkout* (the matchsvc
//     connection-pool protocol; its (value, error) form exempts
//     returns inside the error guard, where nothing was acquired), or
//   - a sync.Pool Get (with or without the usual type assertion).
//
// A matching release is a v.Release() call, a Release*/release*(v) or
// Checkin*/checkin*(v) helper, or a pool .Put(v) — directly, deferred,
// or inside a deferred function literal. Functions that return the
// acquired value are acquire-wrappers (ownership transfers to the
// caller) and are exempt.
//
// Return-path coverage is checked lexically: a return statement after
// the acquisition must have a release before it (or a deferred release
// anywhere in the function). This is a conservative approximation of
// dominance — good enough for the straight-line acquire/release
// protocol the repo uses, and wrong code it cannot prove clean needs an
// explicit //fpvet:allow poolsafe <reason>.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fpinterop/internal/analysis"
)

// Analyzer is the poolsafe checker. It runs over every package.
type Analyzer struct{}

// New returns the checker.
func New() *Analyzer { return &Analyzer{} }

func (a *Analyzer) Name() string { return "poolsafe" }

// acquisition is one pooled value bound to a variable.
type acquisition struct {
	obj    types.Object // the variable holding the pooled value
	errObj types.Object // error bound alongside it, if any (v, err := ...)
	pos    token.Pos    // acquisition site
	what   string       // human label of the acquire call
}

// Check implements analysis.Analyzer.
func (a *Analyzer) Check(p *analysis.Pkg) []analysis.Finding {
	var out []analysis.Finding
	for _, file := range p.Files {
		for _, scope := range analysis.FuncScopes(file) {
			out = append(out, a.checkScope(p, scope)...)
		}
	}
	return out
}

func (a *Analyzer) checkScope(p *analysis.Pkg, scope analysis.FuncScope) []analysis.Finding {
	var acquisitions []acquisition
	scope.InspectShallow(func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(assign.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		label, acquires := classifyAcquire(p.Info, call)
		if !acquires {
			return true
		}
		ident, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || ident.Name == "_" {
			return true
		}
		obj := p.Info.Defs[ident]
		if obj == nil {
			obj = p.Info.Uses[ident]
		}
		if obj == nil {
			return true
		}
		acq := acquisition{obj: obj, pos: assign.Pos(), what: label}
		if len(assign.Lhs) == 2 {
			if errIdent, ok := assign.Lhs[1].(*ast.Ident); ok && errIdent.Name != "_" {
				if eo := p.Info.Defs[errIdent]; eo != nil {
					acq.errObj = eo
				} else {
					acq.errObj = p.Info.Uses[errIdent]
				}
			}
		}
		acquisitions = append(acquisitions, acq)
		return true
	})
	if len(acquisitions) == 0 {
		return nil
	}

	var out []analysis.Finding
	for _, acq := range acquisitions {
		out = append(out, a.checkAcquisition(p, scope, acq)...)
	}
	return out
}

func (a *Analyzer) checkAcquisition(p *analysis.Pkg, scope analysis.FuncScope, acq acquisition) []analysis.Finding {
	var (
		deferred    bool
		releases    []token.Pos // non-deferred release sites (End positions)
		returns     []*ast.ReturnStmt
		escapes     bool
		lastRelease token.Pos      = token.NoPos
		errGuards   [][2]token.Pos // if-bodies guarded on the acquisition's error
	)
	scope.InspectShallow(func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IfStmt:
			// A return inside `if err != nil { ... }` on the acquire's
			// own error object is the acquisition-failed path: nothing
			// was checked out, so nothing needs checking in.
			if acq.errObj != nil && usesObj(p.Info, node.Cond, acq.errObj) {
				errGuards = append(errGuards, [2]token.Pos{node.Body.Pos(), node.Body.End()})
			}
		case *ast.DeferStmt:
			if releasesVar(p.Info, node.Call, acq.obj) {
				deferred = true
			} else if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && releasesVar(p.Info, call, acq.obj) {
						deferred = true
					}
					return true
				})
			}
			return false // a deferred call body is not a linear release site
		case *ast.CallExpr:
			if releasesVar(p.Info, node, acq.obj) {
				releases = append(releases, node.End())
				if node.End() > lastRelease {
					lastRelease = node.End()
				}
			}
		case *ast.ReturnStmt:
			if node.Pos() > acq.pos {
				returns = append(returns, node)
			}
			// Only returning the variable itself transfers ownership;
			// returning something derived from it (a length, a field) does
			// not.
			for _, res := range node.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && p.Info.Uses[id] == acq.obj {
					escapes = true
				}
			}
		}
		return true
	})
	if escapes {
		// Ownership transfers to the caller (acquire-wrapper shape).
		return nil
	}
	if deferred {
		// Deferred release covers every return path and runs last, so
		// neither the path check nor use-after-release applies.
		return nil
	}
	var out []analysis.Finding
	if len(releases) == 0 {
		return append(out, analysis.Findingf(p, a, acq.pos,
			"%s acquired in %s is never released", acq.what, scope.Name()))
	}
	for _, ret := range returns {
		covered := false
		for _, rel := range releases {
			if rel < ret.Pos() {
				covered = true
				break
			}
		}
		for _, g := range errGuards {
			if ret.Pos() >= g[0] && ret.Pos() < g[1] {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, analysis.Findingf(p, a, ret.Pos(),
				"return without releasing %s acquired in %s", acq.what, scope.Name()))
		}
	}
	// Use-after-release: any use of the variable after the last
	// non-deferred release (uses inside the release calls themselves sit
	// before each call's End and are excluded by construction).
	scope.InspectShallow(func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok || ident.Pos() <= lastRelease {
			return true
		}
		if p.Info.Uses[ident] == acq.obj {
			out = append(out, analysis.Findingf(p, a, ident.Pos(),
				"%s used after it was released", acq.what))
		}
		return true
	})
	return out
}

// classifyAcquire reports whether the call is a pool acquisition and
// labels it.
func classifyAcquire(info *types.Info, call *ast.CallExpr) (string, bool) {
	name := analysis.CalleeName(call)
	if strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "acquire") ||
		strings.HasPrefix(name, "Checkout") || strings.HasPrefix(name, "checkout") {
		return name, true
	}
	if name == "Get" && len(call.Args) == 0 && isPoolMethod(info, call) {
		return "sync.Pool value", true
	}
	return "", false
}

// usesObj reports whether any identifier under n refers to obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isPoolMethod reports whether the call's receiver is a sync.Pool.
func isPoolMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// releasesVar reports whether the call gives the acquired variable back:
// v.Release(), Release*(v)/release*(v)/Put-like helper taking v, or a
// sync.Pool Put(v).
func releasesVar(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	name := analysis.CalleeName(call)
	switch {
	case strings.HasPrefix(name, "Release") || strings.HasPrefix(name, "release") ||
		strings.HasPrefix(name, "Checkin") || strings.HasPrefix(name, "checkin"):
		// Method form: receiver is the variable.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
				return true
			}
		}
		// Helper form: the variable is an argument.
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				return true
			}
		}
	case name == "Put" && isPoolMethod(info, call):
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

// Package a is the poolsafe violation corpus.
package a

import "sync"

type scratch struct {
	buf []byte
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// acquireScratch is an acquire-wrapper: it returns the pooled value, so
// ownership transfers to the caller and the wrapper itself is exempt.
func acquireScratch() *scratch {
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	return sc
}

func releaseScratch(sc *scratch) { pool.Put(sc) }

// Leak gets a scratch and never gives it back.
func Leak() int {
	sc := pool.Get().(*scratch) // want poolsafe "never released"
	return len(sc.buf)
}

// LeakAcquire leaks through the acquire helper.
func LeakAcquire() int {
	sc := acquireScratch() // want poolsafe "never released"
	return len(sc.buf)
}

// EarlyReturn releases on the fall-through path but not the early one.
func EarlyReturn(fail bool) int {
	sc := pool.Get().(*scratch)
	if fail {
		return 0 // want poolsafe "return without releasing"
	}
	n := len(sc.buf)
	pool.Put(sc)
	return n
}

// UseAfterRelease touches the scratch after putting it back.
func UseAfterRelease() int {
	sc := pool.Get().(*scratch)
	pool.Put(sc)
	return len(sc.buf) // want poolsafe "used after it was released"
}

// DeferredRelease is the canonical clean shape.
func DeferredRelease() int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return len(sc.buf)
}

// DeferredHelper releases through the helper, deferred.
func DeferredHelper() int {
	sc := acquireScratch()
	defer releaseScratch(sc)
	return len(sc.buf)
}

// DeferredClosure releases inside a deferred function literal (the
// shard router's scratch recycling shape).
func DeferredClosure() int {
	sc := pool.Get().(*scratch)
	defer func() {
		sc.buf = sc.buf[:0]
		pool.Put(sc)
	}()
	return len(sc.buf)
}

// StraightLine releases before its only return.
func StraightLine() int {
	sc := pool.Get().(*scratch)
	n := len(sc.buf)
	pool.Put(sc)
	return n
}

// InnerLiteral holds its own acquire/release; the literal is checked as
// its own scope, independent of the enclosing function.
func InnerLiteral() func() int {
	return func() int {
		sc := pool.Get().(*scratch) // want poolsafe "never released"
		return len(sc.buf)
	}
}

var retained *scratch

// Allowed documents a deliberate protocol break with its reason.
func Allowed() {
	sc := pool.Get().(*scratch) //fpvet:allow poolsafe retained in a package cache by design
	retained = sc
}

// encodePage stands in for a sync-stream page encoder that can fail
// mid-frame.
func encodePage(sc *scratch, lsn uint64) error {
	if lsn == 0 {
		return errFailed
	}
	sc.buf = append(sc.buf, byte(lsn))
	return nil
}

var errFailed = err{}

type err struct{}

func (err) Error() string { return "encode failed" }

// SyncStreamLeaksOnError is the replica sync-stream bug shape: the
// frame scratch is released on the happy path, but the mid-encode error
// return strands it.
func SyncStreamLeaksOnError(lsns []uint64) error {
	sc := acquireScratch()
	for _, lsn := range lsns {
		if e := encodePage(sc, lsn); e != nil {
			return e // want poolsafe "return without releasing"
		}
	}
	releaseScratch(sc)
	return nil
}

// SyncStreamDeferred is the clean sync-stream shape: one deferred
// release covers every encode-error exit.
func SyncStreamDeferred(lsns []uint64) error {
	sc := acquireScratch()
	defer releaseScratch(sc)
	for _, lsn := range lsns {
		if e := encodePage(sc, lsn); e != nil {
			return e
		}
	}
	return nil
}

// SyncStreamReleaseBeforeError releases explicitly on both exits —
// legal, if easy to get wrong when the next error path is added.
func SyncStreamReleaseBeforeError(lsns []uint64) error {
	sc := acquireScratch()
	for _, lsn := range lsns {
		if e := encodePage(sc, lsn); e != nil {
			releaseScratch(sc)
			return e
		}
	}
	releaseScratch(sc)
	return nil
}

// conn and connPool model the matchsvc connection-pool protocol:
// Checkout hands out a connection (or an error), Checkin returns it.
type conn struct{ open bool }

type connPool struct{}

func (p *connPool) Checkout() (*conn, error) { return &conn{open: true}, nil }
func (p *connPool) Checkin(c *conn)          {}

var cpool connPool

// CheckoutBalanced pairs the checkout with a checkin; the return inside
// the error guard is exempt because nothing was acquired on that path.
func CheckoutBalanced(use func(*conn)) error {
	c, err := cpool.Checkout()
	if err != nil {
		return err
	}
	use(c)
	cpool.Checkin(c)
	return nil
}

// CheckoutLeaks never returns the connection to the pool.
func CheckoutLeaks() bool {
	c, _ := cpool.Checkout() // want poolsafe "never released"
	return c.open
}

// CheckoutEarlyReturn checks in on the fall-through path but not the
// early one — and the early return is not the error guard.
func CheckoutEarlyReturn(fail bool) error {
	c, err := cpool.Checkout()
	if err != nil {
		return err
	}
	if fail {
		return nil // want poolsafe "return without releasing"
	}
	cpool.Checkin(c)
	return nil
}

// CheckoutDeferred is the canonical clean shape for pooled conns.
func CheckoutDeferred(use func(*conn)) error {
	c, err := cpool.Checkout()
	if err != nil {
		return err
	}
	defer cpool.Checkin(c)
	use(c)
	return nil
}

// Package sentinelerr enforces the repository's error-identity
// invariant. The gallery sentinels (ErrNotFound, ErrDuplicate) cross a
// wire boundary, so values arriving back are wrapped reconstructions —
// identity comparison with == silently stops matching the moment a
// layer wraps. Concretely:
//
//   - sentinel comparisons use errors.Is, never ==/!= against a
//     package-level error variable;
//   - error text is not matched: no strings.Contains/HasPrefix/
//     HasSuffix/EqualFold/Index over .Error() output, and no
//     err.Error() == "..." comparisons;
//   - the legitimate text-matching sites — the remote suffix→sentinel
//     translations — stay centralized at the wire boundaries on the
//     AllowIn list (fpis/remote.go for the facade, matchsvc/sync.go
//     for the replica sync ops), so every other layer sees real
//     sentinel identity.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fpinterop/internal/analysis"
)

// DefaultAllowIn are the file suffixes where error-text matching is
// the designed translation mechanism.
var DefaultAllowIn = []string{"fpis/remote.go", "internal/matchsvc/sync.go"}

// textMatchers are the strings functions that constitute text matching
// when fed .Error() output.
var textMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
}

// DefaultSentinelModule scopes identity comparisons to sentinels this
// module defines. Stdlib sentinels like io.EOF are contractually
// returned unwrapped (the io.Reader interface promises EOF itself), so
// == against them is idiomatic and stays legal; only the module's own
// sentinels cross wrapping layers and wire boundaries.
const DefaultSentinelModule = "fpinterop"

// Analyzer is the sentinelerr checker.
type Analyzer struct {
	// AllowIn lists file-path suffixes exempt from the text-matching
	// rules (the centralized suffix→sentinel site); empty means
	// DefaultAllowIn. Identity (==) comparisons stay banned everywhere.
	AllowIn []string
	// SentinelModule is the module path whose package-level error
	// variables are governed sentinels; empty means
	// DefaultSentinelModule.
	SentinelModule string
}

// New returns the checker with the repository's default exemptions.
func New() *Analyzer { return &Analyzer{} }

func (a *Analyzer) Name() string { return "sentinelerr" }

func (a *Analyzer) textMatchingAllowed(filename string) bool {
	allow := a.AllowIn
	if len(allow) == 0 {
		allow = DefaultAllowIn
	}
	for _, suffix := range allow {
		if strings.HasSuffix(filename, suffix) {
			return true
		}
	}
	return false
}

// Check implements analysis.Analyzer.
func (a *Analyzer) Check(p *analysis.Pkg) []analysis.Finding {
	var out []analysis.Finding
	for _, file := range p.Files {
		textExempt := a.textMatchingAllowed(p.Position(file.Pos()).Filename)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				out = append(out, a.checkCompare(p, node, textExempt)...)
			case *ast.CallExpr:
				if textExempt {
					break
				}
				if name, bad := a.textMatchCall(p, node); bad {
					out = append(out, analysis.Findingf(p, a, node.Pos(),
						"matches error text with strings.%s; translate once at the wire boundary and compare with errors.Is", name))
				}
			}
			return true
		})
	}
	return out
}

func (a *Analyzer) checkCompare(p *analysis.Pkg, cmp *ast.BinaryExpr, textExempt bool) []analysis.Finding {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return nil
	}
	var out []analysis.Finding
	for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
		side, other := pair[0], pair[1]
		if obj := a.sentinelVar(p.Info, side); obj != nil && !isNil(p.Info, other) {
			out = append(out, analysis.Findingf(p, a, cmp.Pos(),
				"sentinel %s compared with %s; wrapped errors break identity — use errors.Is", obj.Name(), cmp.Op))
			break
		}
		if !textExempt && isErrorTextCall(p.Info, side) {
			out = append(out, analysis.Findingf(p, a, cmp.Pos(),
				"compares error text with %s; translate to a sentinel and use errors.Is", cmp.Op))
			break
		}
	}
	return out
}

// textMatchCall reports a strings.<matcher> call with a .Error() call
// among its arguments.
func (a *Analyzer) textMatchCall(p *analysis.Pkg, call *ast.CallExpr) (string, bool) {
	if analysis.CalleePkgPath(p.Info, call) != "strings" {
		return "", false
	}
	name := analysis.CalleeName(call)
	if !textMatchers[name] {
		return "", false
	}
	for _, arg := range call.Args {
		if isErrorTextCall(p.Info, ast.Unparen(arg)) {
			return name, true
		}
	}
	return "", false
}

// sentinelVar resolves expr to a governed sentinel: a package-level
// error variable defined inside the analyzer's module.
func (a *Analyzer) sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var ident *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[ident].(*types.Var)
	if !ok || v.Parent() == nil || v.Parent().Parent() != types.Universe {
		return nil // not package-level
	}
	module := a.SentinelModule
	if module == "" {
		module = DefaultSentinelModule
	}
	if v.Pkg() == nil {
		return nil
	}
	if path := v.Pkg().Path(); path != module && !strings.HasPrefix(path, module+"/") {
		return nil // stdlib or third-party sentinel; == is their contract
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

// isErrorTextCall reports whether expr is a no-argument .Error() call
// on an error value.
func isErrorTextCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && implementsError(t)
}

func isNil(info *types.Info, expr ast.Expr) bool {
	ident, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[ident].(*types.Nil)
	return isNilObj
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

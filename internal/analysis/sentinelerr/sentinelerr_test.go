package sentinelerr

import (
	"testing"

	"fpinterop/internal/analysis"
)

// TestTestdataViolations proves the analyzer flags exactly the corpus's
// marked lines, with translate.go on the AllowIn list standing in for
// the fpis/remote.go translation site.
func TestTestdataViolations(t *testing.T) {
	a := &Analyzer{AllowIn: []string{"testdata/src/a/translate.go"}}
	problems, err := analysis.RunTestdata("./internal/analysis/sentinelerr/testdata/src/a", a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestDefaultAllowInFlagsTestdata proves the exemption is the file
// list, not the construct: with the default AllowIn (which does not
// include translate.go), the translation site is flagged.
func TestDefaultAllowInFlagsTestdata(t *testing.T) {
	problems, err := analysis.RunTestdata("./internal/analysis/sentinelerr/testdata/src/a", New())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range problems {
		if len(p) >= len("unexpected") && p[:len("unexpected")] == "unexpected" {
			found = true
		}
	}
	if !found {
		t.Error("default AllowIn produced no finding for translate.go's text matching")
	}
}

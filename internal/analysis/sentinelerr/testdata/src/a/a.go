// Package a is the sentinelerr violation corpus.
package a

import (
	"errors"
	"io"
	"strings"
)

// ErrGone is a package-level sentinel, like gallery.ErrNotFound.
var ErrGone = errors.New("identity not enrolled")

// IdentityCompare uses == against the sentinel.
func IdentityCompare(err error) bool {
	return err == ErrGone // want sentinelerr "use errors.Is"
}

// IdentityCompareFlipped puts the sentinel on the left with !=.
func IdentityCompareFlipped(err error) bool {
	return ErrGone != err // want sentinelerr "use errors.Is"
}

// NilChecks are not sentinel comparisons.
func NilChecks(err error) bool {
	return err == nil || nil != err
}

// ProperIs is the required shape.
func ProperIs(err error) bool {
	return errors.Is(err, ErrGone)
}

// TextMatch greps the error text.
func TextMatch(err error) bool {
	return strings.Contains(err.Error(), "not enrolled") // want sentinelerr "strings.Contains"
}

// TextSuffix matches a sentinel's rendered text.
func TextSuffix(err error) bool {
	return strings.HasSuffix(err.Error(), ErrGone.Error()) // want sentinelerr "strings.HasSuffix"
}

// TextEquality compares rendered error text directly.
func TextEquality(err error) bool {
	return err.Error() == "identity not enrolled" // want sentinelerr "compares error text"
}

// PlainStrings leaves ordinary string work alone.
func PlainStrings(s string) bool {
	return strings.Contains(s, "x") || s == "y"
}

// StdlibSentinel is idiomatic: io.Reader contractually returns io.EOF
// unwrapped, so identity comparison against stdlib sentinels is legal.
func StdlibSentinel(err error) bool {
	return err == io.EOF
}

// LocalCompare compares a locally created error; only package-level
// sentinels are governed.
func LocalCompare(err error) bool {
	local := errors.New("scratch")
	return err == local
}

// Allowed documents a deliberate identity comparison.
func Allowed(err error) bool {
	return err == ErrGone //fpvet:allow sentinelerr pointer identity is the contract in this table
}

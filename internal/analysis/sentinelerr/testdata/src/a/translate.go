package a

import "strings"

// TranslateRemote mirrors the fpis/remote.go wire-boundary site: this
// file is on the analyzer's AllowIn list in the self-test, so its text
// matching is the sanctioned translation mechanism and produces no
// findings.
func TranslateRemote(err error) error {
	if err == nil {
		return nil
	}
	if strings.HasSuffix(err.Error(), ErrGone.Error()) {
		return ErrGone
	}
	return err
}

// Package atomicio provides crash-safe file replacement: content is
// staged in a temporary file in the destination's directory, flushed to
// stable storage, and renamed over the destination in one step. A crash
// at any point leaves either the old file or the new file — never a
// truncated hybrid. The gallery snapshot, the sharded-router container,
// and the WAL compaction snapshot all persist through this path, so no
// reader can ever observe a half-written store.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file lives in path's own directory (rename is only
// atomic within one filesystem), is fsynced before the rename, and the
// directory is fsynced after it so the new name itself is durable. On
// any failure the temporary file is removed and the destination is
// untouched.
func WriteFile(path string, perm os.FileMode, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some network mounts) degrade
// gracefully: the rename itself was still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bin")
	if err := WriteFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

func TestWriteFileFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bin")
	if err := WriteFile(path, 0o644, func(w io.Writer) error {
		_, err := w.Write([]byte("keep me"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFile(path, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the writer's error, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "keep me" {
		t.Fatalf("failed write clobbered the destination: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
}

// Package calib implements the interoperability mitigations the paper's
// related-work and further-work sections point at:
//
//   - Ross–Nadgir inter-sensor calibration: learn the average non-rigid
//     (thin-plate spline) deformation between a device pair from matched
//     minutiae correspondences, then undo it at verification time.
//   - Poh-style quality-conditioned score normalization: z-normalize
//     similarity scores against the impostor statistics of the observed
//     (gallery quality, probe quality) pair, so one global threshold
//     behaves consistently across quality conditions.
//   - Multi-sample fusion: combine scores from several samples of the
//     same finger (sum/max rule) to recover FNMR.
package calib

import (
	"fmt"

	"fpinterop/internal/geom"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

// TemplatePair is one training example for calibration: two impressions
// of the same finger, one per device.
type TemplatePair struct {
	Gallery, Probe *minutiae.Template
}

// Calibration is a learned inter-sensor deformation model mapping
// rigid-aligned probe coordinates onto the gallery device's frame.
type Calibration struct {
	warp *geom.TPS
	// TrainingPairs and ControlPoints record how the model was fitted.
	TrainingPairs, ControlPoints int
}

// CalibrationOptions tunes fitting.
type CalibrationOptions struct {
	// MinScore gates which training matches contribute correspondences
	// (default 8 — confident genuine matches only).
	MinScore float64
	// MaxControlPoints caps the TPS size (default 120; the solve is
	// O(n³)).
	MaxControlPoints int
	// Lambda is the TPS smoothing regularizer (default 0.5; the
	// correspondences are noisy).
	Lambda float64
}

func (o CalibrationOptions) withDefaults() CalibrationOptions {
	if o.MinScore == 0 {
		o.MinScore = 8
	}
	if o.MaxControlPoints == 0 {
		o.MaxControlPoints = 120
	}
	if o.Lambda == 0 {
		o.Lambda = 0.5
	}
	return o
}

// FitCalibration learns the average relative deformation between two
// devices from genuine template pairs. For each pair it matches the
// templates, rigid-aligns the probe onto the gallery, and treats the
// residual displacement of each matched minutia as a sample of the
// inter-sensor warp; a regularized TPS is fitted to a subsample of those
// correspondences (Ross & Nadgir's calibration model, fitted
// automatically instead of from manually selected control points).
func FitCalibration(m match.Matcher, pairs []TemplatePair, opts CalibrationOptions) (*Calibration, error) {
	opts = opts.withDefaults()
	if m == nil {
		return nil, fmt.Errorf("calib: nil matcher")
	}
	var src, dst []geom.Point
	used := 0
	for _, pair := range pairs {
		if pair.Gallery == nil || pair.Probe == nil {
			continue
		}
		res, err := m.Match(pair.Gallery, pair.Probe)
		if err != nil {
			return nil, fmt.Errorf("calib: training match: %w", err)
		}
		if res.Score < opts.MinScore || res.Matched < 4 {
			continue
		}
		used++
		for _, idx := range res.Pairs {
			g := pair.Gallery.Minutiae[idx[0]]
			q := pair.Probe.Minutiae[idx[1]]
			aligned := res.Transform.Apply(geom.Point{X: q.X, Y: q.Y})
			src = append(src, aligned)
			dst = append(dst, geom.Point{X: g.X, Y: g.Y})
		}
	}
	if len(src) < 8 {
		return nil, fmt.Errorf("calib: only %d correspondences from %d pairs; need >= 8", len(src), len(pairs))
	}
	// Deterministic subsample: evenly strided.
	if len(src) > opts.MaxControlPoints {
		stride := float64(len(src)) / float64(opts.MaxControlPoints)
		var ss, ds []geom.Point
		for i := 0; i < opts.MaxControlPoints; i++ {
			idx := int(float64(i) * stride)
			ss = append(ss, src[idx])
			ds = append(ds, dst[idx])
		}
		src, dst = ss, ds
	}
	warp, err := geom.FitTPS(src, dst, opts.Lambda)
	if err != nil {
		return nil, fmt.Errorf("calib: TPS fit: %w", err)
	}
	return &Calibration{warp: warp, TrainingPairs: used, ControlPoints: len(src)}, nil
}

// BendingEnergy exposes how non-affine the learned warp is.
func (c *Calibration) BendingEnergy() float64 { return c.warp.BendingEnergy() }

// CalibratedMatcher wraps a base matcher with an inter-sensor calibration:
// it matches once to find the rigid alignment, applies the learned
// deformation correction to the aligned probe, re-matches, and keeps the
// better score.
type CalibratedMatcher struct {
	// Base is the underlying matcher (required).
	Base match.Matcher
	// Cal is the learned deformation for this (gallery device, probe
	// device) pair (required).
	Cal *Calibration
}

var _ match.Matcher = (*CalibratedMatcher)(nil)

// Match implements match.Matcher.
func (cm *CalibratedMatcher) Match(gallery, probe *minutiae.Template) (match.Result, error) {
	if cm.Base == nil || cm.Cal == nil {
		return match.Result{}, fmt.Errorf("calib: CalibratedMatcher missing base or calibration")
	}
	base, err := cm.Base.Match(gallery, probe)
	if err != nil {
		return match.Result{}, err
	}
	if base.Matched < 3 {
		return base, nil
	}
	// Build the corrected probe: rigid-align into the gallery frame, then
	// undo the learned inter-sensor deformation.
	corrected := &minutiae.Template{Width: gallery.Width, Height: gallery.Height, DPI: gallery.DPI}
	for _, q := range probe.Minutiae {
		aligned := base.Transform.Apply(geom.Point{X: q.X, Y: q.Y})
		fixed := cm.Cal.warp.Apply(aligned)
		if fixed.X < 0 || fixed.X >= float64(gallery.Width) ||
			fixed.Y < 0 || fixed.Y >= float64(gallery.Height) {
			continue
		}
		corrected.Minutiae = append(corrected.Minutiae, minutiae.Minutia{
			X: fixed.X, Y: fixed.Y,
			Angle:   minutiae.NormalizeAngle(q.Angle + base.Transform.Theta),
			Kind:    q.Kind,
			Quality: q.Quality,
		})
	}
	second, err := cm.Base.Match(gallery, corrected)
	if err != nil {
		return match.Result{}, err
	}
	if second.Score > base.Score {
		return second, nil
	}
	return base, nil
}

package calib

import (
	"testing"

	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/stats"
)

// crossDevicePairs captures each subject once on each of two devices and
// returns the genuine cross-device template pairs.
func crossDevicePairs(t *testing.T, size int, galleryID, probeID string) []TemplatePair {
	t.Helper()
	cohort := population.NewCohort(rng.New(4242), population.CohortOptions{Size: size})
	g, _ := sensor.ProfileByID(galleryID)
	p, _ := sensor.ProfileByID(probeID)
	var out []TemplatePair
	for _, s := range cohort.Subjects {
		gi, err := g.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pi, err := p.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, TemplatePair{Gallery: gi.Template, Probe: pi.Template})
	}
	return out
}

func TestFitCalibration(t *testing.T) {
	pairs := crossDevicePairs(t, 40, "D0", "D1")
	cal, err := FitCalibration(&match.HoughMatcher{}, pairs[:25], CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cal.TrainingPairs < 10 {
		t.Fatalf("only %d training pairs matched", cal.TrainingPairs)
	}
	if cal.ControlPoints < 8 || cal.ControlPoints > 120 {
		t.Fatalf("control points %d outside bounds", cal.ControlPoints)
	}
	if cal.BendingEnergy() < 0 {
		t.Fatal("negative bending energy")
	}
}

func TestCalibrationImprovesCrossDeviceScores(t *testing.T) {
	// Train on the first 25 subjects, evaluate on the rest: the learned
	// warp correction should raise mean genuine cross-device scores —
	// the Ross–Nadgir result.
	pairs := crossDevicePairs(t, 60, "D0", "D1")
	base := &match.HoughMatcher{}
	cal, err := FitCalibration(base, pairs[:25], CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cm := &CalibratedMatcher{Base: base, Cal: cal}
	var plain, calibrated []float64
	for _, pair := range pairs[25:] {
		r1, err := base.Match(pair.Gallery, pair.Probe)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := cm.Match(pair.Gallery, pair.Probe)
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, r1.Score)
		calibrated = append(calibrated, r2.Score)
	}
	pm, cmn := stats.Mean(plain), stats.Mean(calibrated)
	if cmn <= pm {
		t.Fatalf("calibration did not help: %v vs %v", cmn, pm)
	}
}

func TestCalibrationDoesNotInflateImpostors(t *testing.T) {
	pairs := crossDevicePairs(t, 40, "D0", "D1")
	base := &match.HoughMatcher{}
	cal, err := FitCalibration(base, pairs[:25], CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cm := &CalibratedMatcher{Base: base, Cal: cal}
	// Impostor pairs: gallery of subject i vs probe of subject i+1.
	maxScore := 0.0
	for i := 25; i < len(pairs)-1; i++ {
		r, err := cm.Match(pairs[i].Gallery, pairs[i+1].Probe)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score > maxScore {
			maxScore = r.Score
		}
	}
	if maxScore >= 7 {
		t.Fatalf("calibrated impostor score %v reached genuine region", maxScore)
	}
}

func TestFitCalibrationErrors(t *testing.T) {
	if _, err := FitCalibration(nil, nil, CalibrationOptions{}); err == nil {
		t.Fatal("expected nil-matcher error")
	}
	if _, err := FitCalibration(&match.HoughMatcher{}, nil, CalibrationOptions{}); err == nil {
		t.Fatal("expected no-correspondence error")
	}
	// Pairs that never match well enough produce no correspondences.
	junk := []TemplatePair{{
		Gallery: &minutiae.Template{Width: 100, Height: 100, DPI: 500},
		Probe:   &minutiae.Template{Width: 100, Height: 100, DPI: 500},
	}}
	if _, err := FitCalibration(&match.HoughMatcher{}, junk, CalibrationOptions{}); err == nil {
		t.Fatal("expected insufficient-correspondence error")
	}
}

func TestCalibratedMatcherMissingParts(t *testing.T) {
	cm := &CalibratedMatcher{}
	if _, err := cm.Match(nil, nil); err == nil {
		t.Fatal("expected configuration error")
	}
}

func TestQualityNormFitAndApply(t *testing.T) {
	var training []ScoredComparison
	// Synthesize impostor scores whose location depends on quality:
	// poor-quality conditions produce slightly higher impostor scores.
	src := rng.New(7)
	for i := 0; i < 4000; i++ {
		qg := nfiq.Class(1 + src.Intn(5))
		qp := nfiq.Class(1 + src.Intn(5))
		base := 0.5 + 0.3*float64(qg+qp)
		training = append(training, ScoredComparison{
			Score:    base + src.NormMS(0, 0.4),
			QualityG: qg, QualityP: qp,
		})
	}
	qn, err := FitQualityNorm(training, 30)
	if err != nil {
		t.Fatal(err)
	}
	// A raw score of 2.0 is more alarming (higher z) under a good-quality
	// condition than under a poor-quality one.
	zGood := qn.Normalize(2.0, nfiq.Excellent, nfiq.Excellent)
	zPoor := qn.Normalize(2.0, nfiq.Poor, nfiq.Poor)
	if zGood <= zPoor {
		t.Fatalf("normalization ignores quality: %v vs %v", zGood, zPoor)
	}
	// Genuine training rows must be ignored.
	withGenuine := append(training, ScoredComparison{Score: 100, QualityG: 1, QualityP: 1, Genuine: true})
	qn2, err := FitQualityNorm(withGenuine, 30)
	if err != nil {
		t.Fatal(err)
	}
	if qn2.Normalize(2.0, 1, 1) != qn.Normalize(2.0, 1, 1) {
		t.Fatal("genuine rows leaked into impostor statistics")
	}
}

func TestQualityNormFallback(t *testing.T) {
	var training []ScoredComparison
	src := rng.New(9)
	for i := 0; i < 200; i++ {
		training = append(training, ScoredComparison{
			Score: src.NormMS(1, 0.3), QualityG: nfiq.Good, QualityP: nfiq.Good,
		})
	}
	qn, err := FitQualityNorm(training, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Unseen condition → global fallback, still finite.
	z := qn.Normalize(2, nfiq.Poor, nfiq.Poor)
	if z != qn.Normalize(2, nfiq.Fair, nfiq.Excellent) {
		t.Fatal("fallback should be condition-independent")
	}
	_ = z
}

func TestQualityNormErrors(t *testing.T) {
	if _, err := FitQualityNorm(nil, 30); err == nil {
		t.Fatal("expected insufficient-data error")
	}
}

func TestFusionRules(t *testing.T) {
	if FuseSum([]float64{4, 6}) != 5 {
		t.Fatal("sum rule wrong")
	}
	if FuseMax([]float64{4, 6}) != 6 {
		t.Fatal("max rule wrong")
	}
	if FuseSum(nil) != 0 || FuseMax(nil) != 0 {
		t.Fatal("empty fusion should be 0")
	}
}

func TestFusionReducesFNMR(t *testing.T) {
	// Two attempts per subject: fusing them should not reject more
	// genuine users than a single attempt at the same threshold.
	cohort := population.NewCohort(rng.New(11), population.CohortOptions{Size: 40})
	d0, _ := sensor.ProfileByID("D0")
	d1, _ := sensor.ProfileByID("D1")
	m := &match.HoughMatcher{}
	var single, fused []float64
	for _, s := range cohort.Subjects {
		g, _ := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
		p1, _ := d1.CaptureSubject(s, 0, sensor.CaptureOptions{})
		p2, _ := d1.CaptureSubject(s, 1, sensor.CaptureOptions{})
		r1, err := m.Match(g.Template, p1.Template)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m.Match(g.Template, p2.Template)
		if err != nil {
			t.Fatal(err)
		}
		single = append(single, r1.Score)
		fused = append(fused, FuseMax([]float64{r1.Score, r2.Score}))
	}
	const threshold = 7.0
	if stats.FNMRAt(fused, threshold) > stats.FNMRAt(single, threshold) {
		t.Fatalf("max-rule fusion raised FNMR: %v vs %v",
			stats.FNMRAt(fused, threshold), stats.FNMRAt(single, threshold))
	}
}

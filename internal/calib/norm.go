package calib

import (
	"fmt"
	"math"

	"fpinterop/internal/nfiq"
)

// ScoredComparison is one labelled training score for quality-conditioned
// normalization.
type ScoredComparison struct {
	Score              float64
	QualityG, QualityP nfiq.Class
	Genuine            bool
}

// QualityNorm is a Poh-style quality-conditioned score normalizer: it
// z-normalizes a raw similarity score against the impostor mean and
// standard deviation observed for the (gallery quality, probe quality)
// condition, falling back to global impostor statistics for unseen
// conditions.
type QualityNorm struct {
	mean, std     [5][5]float64
	count         [5][5]int
	globMean      float64
	globStd       float64
	globCount     int
	minConditionN int
}

// FitQualityNorm learns impostor statistics per quality condition.
// Conditions with fewer than minConditionN impostor samples (default 30)
// fall back to the global statistics.
func FitQualityNorm(training []ScoredComparison, minConditionN int) (*QualityNorm, error) {
	if minConditionN <= 0 {
		minConditionN = 30
	}
	qn := &QualityNorm{minConditionN: minConditionN}
	var sum, sumSq [5][5]float64
	var gSum, gSumSq float64
	for _, s := range training {
		if s.Genuine {
			continue // normalization is against impostor statistics
		}
		if !s.QualityG.Valid() || !s.QualityP.Valid() {
			continue
		}
		i, j := s.QualityG-1, s.QualityP-1
		sum[i][j] += s.Score
		sumSq[i][j] += s.Score * s.Score
		qn.count[i][j]++
		gSum += s.Score
		gSumSq += s.Score * s.Score
		qn.globCount++
	}
	if qn.globCount < minConditionN {
		return nil, fmt.Errorf("calib: only %d impostor scores; need >= %d", qn.globCount, minConditionN)
	}
	qn.globMean = gSum / float64(qn.globCount)
	qn.globStd = stddev(gSumSq, gSum, qn.globCount)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if qn.count[i][j] >= minConditionN {
				qn.mean[i][j] = sum[i][j] / float64(qn.count[i][j])
				qn.std[i][j] = stddev(sumSq[i][j], sum[i][j], qn.count[i][j])
			}
		}
	}
	return qn, nil
}

func stddev(sumSq, sum float64, n int) float64 {
	if n == 0 {
		return 1
	}
	m := sum / float64(n)
	v := sumSq/float64(n) - m*m
	if v < 1e-6 {
		return 1e-3
	}
	// Population standard deviation; floor avoids division blow-ups.
	return math.Sqrt(v)
}

// Normalize maps a raw score to its z-score under the impostor model of
// the observed quality condition. Thresholding the normalized score is
// equivalent to using a quality-dependent decision threshold on raw
// scores — Poh et al.'s device/quality-conditioned normalization.
func (qn *QualityNorm) Normalize(score float64, qg, qp nfiq.Class) float64 {
	if qg.Valid() && qp.Valid() && qn.count[qg-1][qp-1] >= qn.minConditionN {
		return (score - qn.mean[qg-1][qp-1]) / qn.std[qg-1][qp-1]
	}
	return (score - qn.globMean) / qn.globStd
}

// FuseSum combines multiple genuine-attempt scores with the sum rule
// (mean, so the scale stays comparable to single attempts).
func FuseSum(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range scores {
		s += x
	}
	return s / float64(len(scores))
}

// FuseMax combines multiple attempt scores with the max rule.
func FuseMax(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	best := scores[0]
	for _, x := range scores[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Package classify implements fingerprint pattern classification from
// orientation fields via the Poincaré index — the standard technique for
// locating singular points (cores and deltas) and assigning the Henry
// pattern class (arch, tented arch, left/right loop, whorl). The paper's
// feature-set discussion (Section II) notes that resolution, scanning
// area and sensing technology all perturb the extracted feature set;
// pattern class is the coarsest such feature and a prerequisite for
// classification-based gallery partitioning in large identification
// systems like US-VISIT.
package classify

import (
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/imgproc"
	"fpinterop/internal/ridge"
)

// SingularPoint is a detected core or delta.
type SingularPoint struct {
	// X, Y are pixel coordinates (block centres).
	X, Y int
	// Index is the Poincaré index: +1/2 for a core, −1/2 for a delta.
	Index float64
}

// IsCore reports whether the point is a core (+1/2).
func (s SingularPoint) IsCore() bool { return s.Index > 0 }

// poincareIndex computes the Poincaré index of the block at (bx, by) by
// summing orientation differences around its 8-neighbour ring. For a
// smooth field the sum is 0; around a core it is +π, around a delta −π.
func poincareIndex(of *imgproc.OrientationField, bx, by int) float64 {
	// Ring of 8 neighbours, counter-clockwise.
	ring := [8][2]int{
		{bx - 1, by - 1}, {bx, by - 1}, {bx + 1, by - 1}, {bx + 1, by},
		{bx + 1, by + 1}, {bx, by + 1}, {bx - 1, by + 1}, {bx - 1, by},
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		a := of.Theta[ring[i][1]][ring[i][0]]
		b := of.Theta[ring[(i+1)%8][1]][ring[(i+1)%8][0]]
		d := b - a
		// Orientation differences live in (−π/2, π/2].
		for d > math.Pi/2 {
			d -= math.Pi
		}
		for d <= -math.Pi/2 {
			d += math.Pi
		}
		sum += d
	}
	return sum / (2 * math.Pi)
}

// DetectSingularPoints scans an orientation field for cores and deltas.
// Blocks with coherence below minCoherence are skipped (singularities
// genuinely have low coherence at the exact centre, so the test applies
// to the ring's surroundings being real ridge structure — we use the mean
// coherence of the 8-ring).
func DetectSingularPoints(of *imgproc.OrientationField, minCoherence float64) []SingularPoint {
	var out []SingularPoint
	for by := 1; by < of.BH-1; by++ {
		for bx := 1; bx < of.BW-1; bx++ {
			// Mean ring coherence.
			ringCoh := 0.0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					ringCoh += of.Coherence[by+dy][bx+dx]
				}
			}
			if ringCoh/8 < minCoherence {
				continue
			}
			idx := poincareIndex(of, bx, by)
			if math.Abs(idx-0.5) < 0.1 {
				out = append(out, SingularPoint{
					X:     bx*of.BlockSize + of.BlockSize/2,
					Y:     by*of.BlockSize + of.BlockSize/2,
					Index: 0.5,
				})
			} else if math.Abs(idx+0.5) < 0.1 {
				out = append(out, SingularPoint{
					X:     bx*of.BlockSize + of.BlockSize/2,
					Y:     by*of.BlockSize + of.BlockSize/2,
					Index: -0.5,
				})
			}
		}
	}
	return mergeNearby(out, 2*max(1, of.BlockSize))
}

// mergeNearby collapses clusters of same-sign detections (a singularity
// often fires in adjacent blocks) into their centroid.
func mergeNearby(pts []SingularPoint, radius int) []SingularPoint {
	used := make([]bool, len(pts))
	var out []SingularPoint
	for i := range pts {
		if used[i] {
			continue
		}
		cluster := []int{i}
		used[i] = true
		for j := i + 1; j < len(pts); j++ {
			if used[j] || pts[j].Index != pts[i].Index {
				continue
			}
			dx := pts[j].X - pts[i].X
			dy := pts[j].Y - pts[i].Y
			if dx*dx+dy*dy <= radius*radius {
				cluster = append(cluster, j)
				used[j] = true
			}
		}
		var sx, sy int
		for _, k := range cluster {
			sx += pts[k].X
			sy += pts[k].Y
		}
		out = append(out, SingularPoint{
			X: sx / len(cluster), Y: sy / len(cluster), Index: pts[i].Index,
		})
	}
	return out
}

// ClassifyCounts assigns a Henry class from singular point counts and the
// core/delta geometry: whorls have two cores (or two deltas), loops one
// of each with lateral delta displacement deciding the side, tented
// arches a vertically aligned core/delta pair, and arches none.
func ClassifyCounts(points []SingularPoint) ridge.Class {
	var cores, deltas []SingularPoint
	for _, p := range points {
		if p.IsCore() {
			cores = append(cores, p)
		} else {
			deltas = append(deltas, p)
		}
	}
	switch {
	case len(cores) >= 2 || len(deltas) >= 2:
		return ridge.Whorl
	case len(cores) == 1 && len(deltas) == 1:
		dx := deltas[0].X - cores[0].X
		dy := deltas[0].Y - cores[0].Y
		if abs(dx) < abs(dy)/2 {
			return ridge.TentedArch
		}
		// Image coordinates: delta to the right of the core means ridges
		// loop in from the left.
		if dx > 0 {
			return ridge.LeftLoop
		}
		return ridge.RightLoop
	case len(cores) == 1 || len(deltas) == 1:
		// Partial view: one singularity visible. A lone core most often
		// belongs to a loop whose delta fell outside the capture window;
		// side unknown, so report tented arch as the conservative class.
		return ridge.TentedArch
	default:
		return ridge.Arch
	}
}

// ClassifyImage runs the full pipeline on a fingerprint image: estimate
// and smooth the orientation field, detect singular points, classify.
func ClassifyImage(img *imgproc.Image, minCoherence float64) (ridge.Class, []SingularPoint) {
	of := imgproc.EstimateOrientation(img, 16)
	of.Smooth(2)
	pts := DetectSingularPoints(of, minCoherence)
	return ClassifyCounts(pts), pts
}

// ClassifyMaster classifies directly from a master print's analytic
// orientation field, sampled over its pad — useful for validating the
// detector against ground truth.
func ClassifyMaster(m *ridge.Master, blockMM float64) (ridge.Class, []SingularPoint) {
	if blockMM <= 0 {
		blockMM = 1
	}
	bw := int(m.Pad.Width()/blockMM) + 1
	bh := int(m.Pad.Height()/blockMM) + 1
	of := &imgproc.OrientationField{BlockSize: 1, BW: bw, BH: bh}
	of.Theta = make([][]float64, bh)
	of.Coherence = make([][]float64, bh)
	for by := 0; by < bh; by++ {
		of.Theta[by] = make([]float64, bw)
		of.Coherence[by] = make([]float64, bw)
		for bx := 0; bx < bw; bx++ {
			// Master space is y-up; field rows go y-down.
			p := pointAt(m, bx, by, blockMM)
			// Image-space orientation flips the angle sign.
			th := math.Mod(-m.OrientationAt(p)+math.Pi, math.Pi)
			of.Theta[by][bx] = th
			if m.InPad(p) {
				of.Coherence[by][bx] = 1
			}
		}
	}
	pts := DetectSingularPoints(of, 0.5)
	return ClassifyCounts(pts), pts
}

func pointAt(m *ridge.Master, bx, by int, blockMM float64) geom.Point {
	return geom.Point{
		X: m.Pad.MinX + (float64(bx)+0.5)*blockMM,
		Y: m.Pad.MaxY - (float64(by)+0.5)*blockMM,
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package classify

import (
	"testing"

	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

func masterOf(seed uint64, class ridge.Class) *ridge.Master {
	return ridge.Generate("c", rng.New(seed).Child("m"),
		ridge.GenOptions{ForceClass: class, MeanMinutiae: 10})
}

func TestClassifyMasterRecoversGroundTruthClass(t *testing.T) {
	cases := []ridge.Class{ridge.LeftLoop, ridge.RightLoop, ridge.Whorl, ridge.TentedArch, ridge.Arch}
	for _, want := range cases {
		hits := 0
		const trials = 10
		for i := uint64(0); i < trials; i++ {
			m := masterOf(100+i, want)
			got, _ := ClassifyMaster(m, 0.8)
			if got == want {
				hits++
			}
		}
		// The detector runs on a sampled field; allow a small error rate
		// but demand clear majority recovery per class.
		if hits < 7 {
			t.Fatalf("%v: recovered only %d/%d", want, hits, trials)
		}
	}
}

func TestClassifyMasterSingularPointCounts(t *testing.T) {
	m := masterOf(7, ridge.Whorl)
	_, pts := ClassifyMaster(m, 0.8)
	cores, deltas := 0, 0
	for _, p := range pts {
		if p.IsCore() {
			cores++
		} else {
			deltas++
		}
	}
	if cores < 2 {
		t.Fatalf("whorl: %d cores detected, want >= 2 (deltas %d)", cores, deltas)
	}
	m2 := masterOf(8, ridge.Arch)
	_, pts2 := ClassifyMaster(m2, 0.8)
	if len(pts2) != 0 {
		t.Fatalf("arch: %d singular points detected, want 0", len(pts2))
	}
}

func TestClassifyLoopSide(t *testing.T) {
	// Left and right loops must not be confused with each other.
	for i := uint64(0); i < 6; i++ {
		l, _ := ClassifyMaster(masterOf(300+i, ridge.LeftLoop), 0.8)
		if l == ridge.RightLoop {
			t.Fatalf("left loop classified as right loop (seed %d)", 300+i)
		}
		r, _ := ClassifyMaster(masterOf(400+i, ridge.RightLoop), 0.8)
		if r == ridge.LeftLoop {
			t.Fatalf("right loop classified as left loop (seed %d)", 400+i)
		}
	}
}

func TestClassifyCountsRules(t *testing.T) {
	core := SingularPoint{X: 50, Y: 50, Index: 0.5}
	cases := []struct {
		name   string
		points []SingularPoint
		want   ridge.Class
	}{
		{"none", nil, ridge.Arch},
		{"two cores", []SingularPoint{core, {X: 80, Y: 60, Index: 0.5}}, ridge.Whorl},
		{"two deltas", []SingularPoint{
			{X: 20, Y: 90, Index: -0.5}, {X: 80, Y: 90, Index: -0.5},
		}, ridge.Whorl},
		{"core + delta right", []SingularPoint{core, {X: 110, Y: 80, Index: -0.5}}, ridge.LeftLoop},
		{"core + delta left", []SingularPoint{core, {X: -10, Y: 80, Index: -0.5}}, ridge.RightLoop},
		{"core + delta below", []SingularPoint{core, {X: 52, Y: 140, Index: -0.5}}, ridge.TentedArch},
		{"lone core", []SingularPoint{core}, ridge.TentedArch},
	}
	for _, c := range cases {
		if got := ClassifyCounts(c.points); got != c.want {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyImageOnSynthesizedPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("image synthesis is slow")
	}
	m := masterOf(55, ridge.Whorl)
	img, err := ridge.Synthesize(m, m.Pad, 250, ridge.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, pts := ClassifyImage(img, 0.3)
	// On rendered images the detector sees noise; accept whorl or a loop
	// (one core pair merged), reject arch (no structure found at all).
	if got == ridge.Arch {
		t.Fatalf("whorl image classified as arch (found %d points)", len(pts))
	}
}

func TestPoincareIndexSmoothFieldIsZero(t *testing.T) {
	m := masterOf(66, ridge.Arch)
	// Arch fields are singularity-free: every interior index ≈ 0.
	_, pts := ClassifyMaster(m, 0.8)
	if len(pts) != 0 {
		t.Fatalf("smooth field produced %d singular points", len(pts))
	}
}

func TestMergeNearby(t *testing.T) {
	pts := []SingularPoint{
		{X: 10, Y: 10, Index: 0.5},
		{X: 12, Y: 11, Index: 0.5},  // same cluster
		{X: 60, Y: 60, Index: 0.5},  // separate
		{X: 11, Y: 12, Index: -0.5}, // same spot, opposite sign: kept apart
	}
	out := mergeNearby(pts, 8)
	if len(out) != 3 {
		t.Fatalf("merged to %d points, want 3", len(out))
	}
}

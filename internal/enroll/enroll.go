// Package enroll implements the enrollment transaction policy of an
// operational fingerprint system, following the NIST SP 800-76 guidance
// the paper cites: acquire a sample; if its NFIQ quality is worse than 3,
// re-acquire up to a configured number of attempts; keep the best sample;
// declare failure-to-enroll (FTE) when even the best attempt is unusable.
// The study's Figure 5 is the empirical justification: low-quality
// enrollments are precisely the ones that later produce false non-matches,
// especially across devices.
package enroll

import (
	"errors"
	"fmt"

	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/sensor"
)

// ErrFailureToEnroll reports that no attempt produced a usable sample.
var ErrFailureToEnroll = errors.New("enroll: failure to enroll")

// Policy configures the enrollment transaction.
type Policy struct {
	// MaxAttempts bounds acquisitions per transaction (default 3, per
	// NIST SP 800-76).
	MaxAttempts int
	// RetryWorseThan triggers re-acquisition when quality is strictly
	// worse than this class (default nfiq.Good = 3, per SP 800-76).
	RetryWorseThan nfiq.Class
	// RejectWorseThan declares FTE when even the best sample is strictly
	// worse than this class (default nfiq.Poor = 5, i.e. only NFIQ-5
	// rejects; set to Fair to be stricter).
	RejectWorseThan nfiq.Class
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.RetryWorseThan == 0 {
		p.RetryWorseThan = nfiq.Good
	}
	if p.RejectWorseThan == 0 {
		p.RejectWorseThan = nfiq.Poor
	}
	return p
}

// Transaction is the outcome of one enrollment attempt sequence.
type Transaction struct {
	// Best is the selected impression (nil on FTE).
	Best *sensor.Impression
	// Attempts is how many acquisitions were made.
	Attempts int
	// Qualities records the NFIQ class of every attempt in order.
	Qualities []nfiq.Class
	// Enrolled reports whether the transaction succeeded.
	Enrolled bool
}

// Run executes the enrollment transaction for a subject on a device.
// Attempt k uses capture sample index k, so habituation applies naturally
// across retries.
func Run(dev *sensor.Profile, subj *population.Subject, policy Policy) (Transaction, error) {
	if dev == nil || subj == nil {
		return Transaction{}, fmt.Errorf("enroll: nil device or subject")
	}
	policy = policy.withDefaults()
	var tx Transaction
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		imp, err := dev.CaptureSubject(subj, attempt, sensor.CaptureOptions{})
		if err != nil {
			return Transaction{}, fmt.Errorf("enroll: attempt %d: %w", attempt, err)
		}
		tx.Attempts++
		tx.Qualities = append(tx.Qualities, imp.Quality)
		if tx.Best == nil || imp.Quality < tx.Best.Quality {
			tx.Best = imp
		}
		if imp.Quality <= policy.RetryWorseThan {
			break // good enough; stop re-acquiring
		}
	}
	if tx.Best == nil || tx.Best.Quality > policy.RejectWorseThan {
		tx.Best = nil
		tx.Enrolled = false
		return tx, ErrFailureToEnroll
	}
	tx.Enrolled = true
	return tx, nil
}

// Stats aggregates enrollment outcomes over a cohort.
type Stats struct {
	// Enrolled and FTE count transaction outcomes.
	Enrolled, FTE int
	// TotalAttempts counts acquisitions across all transactions.
	TotalAttempts int
	// QualityHistogram counts the final enrolled quality classes (index
	// class-1).
	QualityHistogram [5]int
}

// RunCohort executes the policy for every subject on one device.
func RunCohort(dev *sensor.Profile, cohort *population.Cohort, policy Policy) (Stats, error) {
	var st Stats
	for _, subj := range cohort.Subjects {
		tx, err := Run(dev, subj, policy)
		switch {
		case errors.Is(err, ErrFailureToEnroll):
			st.FTE++
		case err != nil:
			return Stats{}, err
		default:
			st.Enrolled++
			st.QualityHistogram[tx.Best.Quality-1]++
		}
		st.TotalAttempts += tx.Attempts
	}
	return st, nil
}

// MeanAttempts returns the average acquisitions per transaction.
func (s Stats) MeanAttempts() float64 {
	n := s.Enrolled + s.FTE
	if n == 0 {
		return 0
	}
	return float64(s.TotalAttempts) / float64(n)
}

// FTERate returns the failure-to-enroll fraction.
func (s Stats) FTERate() float64 {
	n := s.Enrolled + s.FTE
	if n == 0 {
		return 0
	}
	return float64(s.FTE) / float64(n)
}

package enroll

import (
	"errors"
	"testing"

	"fpinterop/internal/nfiq"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

func cohort(n int) *population.Cohort {
	return population.NewCohort(rng.New(606), population.CohortOptions{Size: n})
}

func TestRunStopsOnGoodQuality(t *testing.T) {
	c := cohort(60)
	d0, _ := sensor.ProfileByID("D0")
	for _, subj := range c.Subjects {
		tx, err := Run(d0, subj, Policy{})
		if err != nil && !errors.Is(err, ErrFailureToEnroll) {
			t.Fatal(err)
		}
		if tx.Attempts < 1 || tx.Attempts > 3 {
			t.Fatalf("attempts = %d", tx.Attempts)
		}
		// If the first sample was already NFIQ ≤ 3, exactly one attempt.
		if tx.Qualities[0] <= nfiq.Good && tx.Attempts != 1 {
			t.Fatalf("good first sample but %d attempts", tx.Attempts)
		}
		if tx.Enrolled && tx.Best == nil {
			t.Fatal("enrolled without a best sample")
		}
	}
}

func TestRunKeepsBestAttempt(t *testing.T) {
	c := cohort(100)
	d4, _ := sensor.ProfileByID("D4") // ink: retries frequent
	for _, subj := range c.Subjects {
		tx, err := Run(d4, subj, Policy{})
		if err != nil && !errors.Is(err, ErrFailureToEnroll) {
			t.Fatal(err)
		}
		if !tx.Enrolled {
			continue
		}
		for _, q := range tx.Qualities {
			if q < tx.Best.Quality {
				t.Fatalf("best quality %v worse than an attempt %v", tx.Best.Quality, q)
			}
		}
	}
}

func TestRunNilInputs(t *testing.T) {
	d0, _ := sensor.ProfileByID("D0")
	if _, err := Run(nil, cohort(1).Subjects[0], Policy{}); err == nil {
		t.Fatal("expected nil-device error")
	}
	if _, err := Run(d0, nil, Policy{}); err == nil {
		t.Fatal("expected nil-subject error")
	}
}

func TestStrictPolicyProducesFTE(t *testing.T) {
	c := cohort(150)
	d4, _ := sensor.ProfileByID("D4")
	// Reject anything worse than NFIQ-2: ink captures will often fail.
	strict := Policy{RejectWorseThan: nfiq.VeryGood}
	st, err := RunCohort(d4, c, strict)
	if err != nil {
		t.Fatal(err)
	}
	if st.FTE == 0 {
		t.Fatal("strict policy on ink produced no FTE")
	}
	if st.FTERate() <= 0 || st.FTERate() >= 1 {
		t.Fatalf("FTE rate %v implausible", st.FTERate())
	}
	// Everything enrolled must satisfy the policy bound.
	for class := int(nfiq.Good); class <= int(nfiq.Poor); class++ {
		if st.QualityHistogram[class-1] != 0 {
			t.Fatalf("enrolled quality %d violates strict policy", class)
		}
	}
}

func TestRecapturePolicyImprovesEnrolledQuality(t *testing.T) {
	c := cohort(150)
	d1, _ := sensor.ProfileByID("D1")
	single := Policy{MaxAttempts: 1}
	retry := Policy{MaxAttempts: 3}
	s1, err := RunCohort(d1, c, single)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := RunCohort(d1, c, retry)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(s Stats) float64 {
		total, n := 0, 0
		for i, c := range s.QualityHistogram {
			total += (i + 1) * c
			n += c
		}
		if n == 0 {
			return 0
		}
		return float64(total) / float64(n)
	}
	if mean(s3) > mean(s1) {
		t.Fatalf("recapture policy worsened mean quality: %v vs %v", mean(s3), mean(s1))
	}
	if s3.MeanAttempts() <= s1.MeanAttempts() {
		t.Fatal("retry policy did not increase attempts")
	}
}

func TestStatsZeroValues(t *testing.T) {
	var s Stats
	if s.MeanAttempts() != 0 || s.FTERate() != 0 {
		t.Fatal("zero stats should report 0")
	}
}

func TestRunCohortCountsAddUp(t *testing.T) {
	c := cohort(80)
	d2, _ := sensor.ProfileByID("D2")
	st, err := RunCohort(d2, c, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Enrolled+st.FTE != 80 {
		t.Fatalf("outcomes %d+%d != 80", st.Enrolled, st.FTE)
	}
	enrolledHist := 0
	for _, n := range st.QualityHistogram {
		enrolledHist += n
	}
	if enrolledHist != st.Enrolled {
		t.Fatal("quality histogram inconsistent with enrolled count")
	}
}

// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seed-driven fault injection so resilience tests can replay the exact
// failure schedule that broke (or must not break) the RPC layer. Every
// probability draw comes from a per-connection child of one seeded
// internal/rng source, keyed by accept order — the same seed always
// yields the same faults against the same traffic shape, independent of
// scheduler interleaving across connections.
//
// Injectable faults: latency spikes before I/O, connection resets mid
// stream, partial writes that tear a frame, single-byte corruption on
// reads or writes, transient accept failures, and blackholes (reads
// that never return data until the deadline or a close). Faults can be
// toggled at runtime with SetEnabled so a chaos phase can be followed
// by a clean recovery phase on the same listener.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fpinterop/internal/rng"
)

// Faults configures the injection probabilities; the zero value injects
// nothing. Probabilities are per I/O call (per Accept for AcceptFail),
// in [0, 1].
type Faults struct {
	// Seed drives every draw; the same seed replays the same schedule.
	Seed uint64

	// LatencyProb delays an I/O call by a uniform duration in
	// [LatencyMin, LatencyMax] before it proceeds.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// ResetProb closes the connection mid-call, tearing whatever frame
	// was in flight.
	ResetProb float64

	// PartialWriteProb writes only a prefix of the buffer, then resets
	// the connection — the canonical torn frame.
	PartialWriteProb float64

	// CorruptProb flips one byte of the data read or written, leaving
	// length and timing intact — only checksums can catch it.
	CorruptProb float64

	// AcceptFailProb fails an Accept with a transient (Temporary)
	// error instead of a connection.
	AcceptFailProb float64

	// BlackholeProb turns a read into a black hole: it blocks until the
	// read deadline expires or the connection closes, never returning
	// data.
	BlackholeProb float64

	// ResponseDropProb silently swallows a write: the caller sees full
	// success (len(b) bytes, nil error) but nothing reaches the peer.
	// Because reads stay untouched, this is a one-directional blackhole
	// — requests keep arriving, responses vanish — the half-dead-node
	// shape that retries-on-error alone cannot survive; only deadlines
	// and hedging do.
	ResponseDropProb float64
}

// errInjected tags every fault the wrapper injects.
var errInjected = errors.New("faultnet: injected fault")

// acceptError is a transient accept failure; Temporary lets servers
// with back-off-and-retry accept loops survive it.
type acceptError struct{}

func (acceptError) Error() string   { return "faultnet: injected accept failure" }
func (acceptError) Timeout() bool   { return false }
func (acceptError) Temporary() bool { return true }

// Listener wraps an inner listener, dressing every accepted connection
// in a fault-injecting wrapper.
type Listener struct {
	inner   net.Listener
	faults  Faults
	root    *rng.Source
	mu      sync.Mutex // guards root
	n       atomic.Int64
	enabled atomic.Bool
}

// Wrap dresses ln in fault injection driven by f. Injection starts
// enabled.
func Wrap(ln net.Listener, f Faults) *Listener {
	l := &Listener{inner: ln, faults: f, root: rng.New(f.Seed)}
	l.enabled.Store(true)
	return l
}

// SetEnabled toggles injection at runtime; connections already accepted
// honor the new setting on their next I/O call.
func (l *Listener) SetEnabled(on bool) { l.enabled.Store(on) }

// Accept accepts the next connection, possibly injecting a transient
// failure first.
func (l *Listener) Accept() (net.Conn, error) {
	seq := l.n.Add(1)
	l.mu.Lock()
	src := l.root.Child(fmt.Sprintf("conn/%d", seq))
	l.mu.Unlock()
	if l.enabled.Load() && l.faults.AcceptFailProb > 0 && src.Bool(l.faults.AcceptFailProb) {
		return nil, acceptError{}
	}
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c, l: l, src: src}, nil
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is one fault-injected connection. Draws come from its own rng
// child, so one connection's faults are independent of how the
// scheduler interleaves another's.
type Conn struct {
	net.Conn
	l   *Listener
	src *rng.Source

	mu       sync.Mutex // guards src and deadline shadow
	readDL   time.Time
	closed   atomic.Bool
	closeCh  chan struct{}
	closeOne sync.Once
}

func (c *Conn) active() bool { return c.l.enabled.Load() && !c.closed.Load() }

// draw runs fn under the rng mutex.
func (c *Conn) draw(fn func(s *rng.Source)) {
	c.mu.Lock()
	fn(c.src)
	c.mu.Unlock()
}

func (c *Conn) maybeLatency() {
	f := c.l.faults
	if f.LatencyProb <= 0 {
		return
	}
	var d time.Duration
	c.draw(func(s *rng.Source) {
		if !s.Bool(f.LatencyProb) {
			return
		}
		span := f.LatencyMax - f.LatencyMin
		d = f.LatencyMin
		if span > 0 {
			d += time.Duration(s.Float64() * float64(span))
		}
	})
	if d > 0 {
		time.Sleep(d)
	}
}

// reset closes the connection and reports the injected error.
func (c *Conn) reset() error {
	c.Close()
	return fmt.Errorf("%w: connection reset", errInjected)
}

func (c *Conn) closeChan() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeCh == nil {
		c.closeCh = make(chan struct{})
	}
	return c.closeCh
}

// Close closes the underlying connection and releases any blackholed
// reads.
func (c *Conn) Close() error {
	c.closed.Store(true)
	ch := c.closeChan()
	c.closeOne.Do(func() { close(ch) })
	return c.Conn.Close()
}

// SetReadDeadline shadows the deadline so a blackholed read can honor
// it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline shadows the read half like SetReadDeadline.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// blackhole blocks like a network that swallowed the packet: until the
// shadowed read deadline (reported as a timeout, as the kernel would)
// or the connection closes.
func (c *Conn) blackhole() (int, error) {
	c.mu.Lock()
	dl := c.readDL
	c.mu.Unlock()
	// With no deadline set, cap the hole at 10s so a proxy pipe that
	// never sets deadlines cannot strand its peer past any plausible
	// test timeout.
	wait := 10 * time.Second
	if !dl.IsZero() {
		wait = time.Until(dl)
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	timer := t.C
	select {
	case <-timer:
		return 0, &net.OpError{Op: "read", Net: "faultnet", Err: timeoutError{}}
	case <-c.closeChan():
		return 0, fmt.Errorf("%w: connection reset", errInjected)
	}
}

// timeoutError reports true from Timeout, matching os.ErrDeadlineExceeded
// semantics for deadline-aware callers.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: blackholed read timed out" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (c *Conn) Read(b []byte) (int, error) {
	if !c.active() {
		return c.Conn.Read(b)
	}
	f := c.l.faults
	var doReset, doBlackhole, doCorrupt bool
	c.draw(func(s *rng.Source) {
		doReset = f.ResetProb > 0 && s.Bool(f.ResetProb)
		doBlackhole = f.BlackholeProb > 0 && s.Bool(f.BlackholeProb)
		doCorrupt = f.CorruptProb > 0 && s.Bool(f.CorruptProb)
	})
	if doReset {
		return 0, c.reset()
	}
	if doBlackhole {
		return c.blackhole()
	}
	c.maybeLatency()
	n, err := c.Conn.Read(b)
	if n > 0 && doCorrupt {
		var i int
		c.draw(func(s *rng.Source) { i = s.Intn(n) })
		b[i] ^= 0xA5
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if !c.active() {
		return c.Conn.Write(b)
	}
	f := c.l.faults
	var doReset, doPartial, doCorrupt, doDrop bool
	c.draw(func(s *rng.Source) {
		doReset = f.ResetProb > 0 && s.Bool(f.ResetProb)
		doPartial = f.PartialWriteProb > 0 && s.Bool(f.PartialWriteProb)
		doCorrupt = f.CorruptProb > 0 && s.Bool(f.CorruptProb)
		doDrop = f.ResponseDropProb > 0 && s.Bool(f.ResponseDropProb)
	})
	if doReset {
		return 0, c.reset()
	}
	if doDrop {
		// Swallow the bytes with a clean success: the writer believes
		// the response left, the peer waits on a frame that never comes.
		return len(b), nil
	}
	c.maybeLatency()
	if doPartial && len(b) > 1 {
		var cut int
		c.draw(func(s *rng.Source) { cut = 1 + s.Intn(len(b)-1) })
		n, _ := c.Conn.Write(b[:cut])
		c.Close()
		return n, fmt.Errorf("%w: partial write (%d of %d bytes)", errInjected, n, len(b))
	}
	if doCorrupt && len(b) > 0 {
		// Corrupt a copy: the caller's buffer is not ours to mutate.
		cp := make([]byte, len(b))
		copy(cp, b)
		var i int
		c.draw(func(s *rng.Source) { i = s.Intn(len(cp)) })
		cp[i] ^= 0xA5
		return c.Conn.Write(cp)
	}
	return c.Conn.Write(b)
}

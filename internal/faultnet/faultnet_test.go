package faultnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// pair returns a fault-injected server-side conn (accepted through a
// wrapped listener) and the raw client side talking to it.
func pair(t *testing.T, f Faults) (server net.Conn, client net.Conn) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(inner, f)
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		accepted <- c
	}()
	client, err = net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server = <-accepted:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

// TestResponseDropIsOneDirectional proves the half-dead-node mode:
// requests (reads on the faulted side) arrive intact while some
// responses (writes) silently vanish — the writer sees success, the
// peer sees nothing.
func TestResponseDropIsOneDirectional(t *testing.T) {
	server, client := pair(t, Faults{Seed: 42, ResponseDropProb: 0.5})

	// Requests always deliver: the drop mode must not touch reads.
	for i := 0; i < 16; i++ {
		if _, err := client.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		server.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := server.Read(buf); err != nil {
			t.Fatalf("request %d did not arrive: %v", i, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("request %d corrupted: got %d", i, buf[0])
		}
	}

	// Responses: every write reports clean success, but only some bytes
	// reach the client.
	const writes = 64
	for i := 0; i < writes; i++ {
		n, err := server.Write([]byte{byte(i)})
		if err != nil || n != 1 {
			t.Fatalf("write %d: n=%d err=%v; drops must look like success", i, n, err)
		}
	}
	server.Close() // flush: client read ends at EOF
	var got []byte
	buf := make([]byte, 256)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := client.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if len(got) == 0 || len(got) >= writes {
		t.Fatalf("client received %d of %d response bytes; want some dropped, some delivered", len(got), writes)
	}
	// Delivered bytes are intact and in order — dropping is not tearing.
	last := -1
	for _, b := range got {
		if int(b) <= last {
			t.Fatalf("delivered responses out of order: %v", got)
		}
		last = int(b)
	}
}

// TestResponseDropDeterministic replays the same seed against the same
// traffic and demands the identical drop schedule.
func TestResponseDropDeterministic(t *testing.T) {
	run := func() []byte {
		server, client := pair(t, Faults{Seed: 7, ResponseDropProb: 0.5})
		for i := 0; i < 64; i++ {
			if n, err := server.Write([]byte{byte(i)}); err != nil || n != 1 {
				t.Fatalf("write %d: n=%d err=%v", i, n, err)
			}
		}
		server.Close()
		var got []byte
		buf := make([]byte, 256)
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := client.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		return got
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed, different drop schedule:\n a=%v\n b=%v", a, b)
	}
}

// TestResponseDropDisabled leaves writes untouched when the probability
// is zero or injection is toggled off.
func TestResponseDropDisabled(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(inner, Faults{Seed: 9, ResponseDropProb: 1})
	defer ln.Close()
	ln.SetEnabled(false)
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	client, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	defer server.Close()
	msg := []byte("response")
	if _, err := server.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("disabled injection still dropped the response: %v", err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("got %q, want %q", buf, msg)
	}
}

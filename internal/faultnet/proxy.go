package faultnet

import (
	"io"
	"net"
	"sync"
)

// Proxy forwards TCP traffic to a target address through fault-injected
// connections, so chaos tests can interpose on a real server process
// they did not build the listener for (e.g. a matchd started as a
// subprocess). Faults apply on the client-facing leg in both
// directions.
type Proxy struct {
	ln     *Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// target, injecting f on the accepted side. Close releases it.
func NewProxy(target string, f Faults) (*Proxy, error) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: Wrap(inner, f), target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetEnabled toggles fault injection on the client-facing leg.
func (p *Proxy) SetEnabled(on bool) { p.ln.SetEnabled(on) }

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			if _, ok := err.(acceptError); ok {
				continue
			}
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			upstream.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		pipe := func(dst, src net.Conn) {
			defer p.wg.Done()
			_, _ = io.Copy(dst, src)
			// Either side ending tears both down: half-open pairs would
			// otherwise strand the peer forever.
			dst.Close()
			src.Close()
			p.mu.Lock()
			delete(p.conns, dst)
			delete(p.conns, src)
			p.mu.Unlock()
		}
		go pipe(upstream, client)
		go pipe(client, upstream)
	}
}

// Close stops the proxy and severs every forwarded connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

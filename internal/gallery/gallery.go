// Package gallery implements the enrollment database of a fingerprint
// identification system: a concurrent-safe template store with 1:1
// verification and 1:N identification, plus the rank-based accuracy
// analysis (CMC) used to evaluate identification across heterogeneous
// sensors. The paper's motivating deployment — US-VISIT — is exactly
// this: a central gallery enrolled on one device family, searched with
// probes from whatever device a port of entry operates.
package gallery

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fpinterop/internal/index"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

var (
	// ErrNotFound reports an unknown enrollment ID.
	ErrNotFound = errors.New("gallery: enrollment not found")
	// ErrDuplicate reports an already-used enrollment ID.
	ErrDuplicate = errors.New("gallery: enrollment ID already exists")
)

// Entry is one enrolled subject record.
type Entry struct {
	// ID is the enrollment identifier (e.g. a subject or visa number).
	ID string
	// DeviceID records which sensor produced the enrollment template.
	DeviceID string
	// Template is the enrolled minutiae template.
	Template *minutiae.Template

	// prep is the template preprocessed for the primary matcher's hot
	// path (SoA layout + spatial grid), built once at enroll time so
	// every probe against this enrollment skips the rebuild. Nil when
	// the store runs a custom matcher.
	prep *match.Prepared
}

// Store is a concurrent-safe in-memory enrollment database.
// The zero value is NOT ready; use New.
type Store struct {
	mu      sync.RWMutex
	matcher match.Matcher
	// hough is non-nil when matcher is the primary HoughMatcher: the
	// store then caches per-entry preparations and scans with pooled
	// zero-allocation match sessions.
	hough   *match.HoughMatcher
	entries map[string]*Entry
	order   []string // insertion order for deterministic iteration

	// idx, when non-nil, serves Identify from a triplet-index shortlist
	// instead of an exhaustive scan (see EnableIndex).
	idx           *index.Index
	minCandidates int

	// parallelism bounds the workers fanning matcher calls during
	// identification (0 = GOMAXPROCS).
	parallelism int

	// met is non-nil after SetMetrics; record methods are nil-safe, so
	// unmetered stores pay one branch per touch point.
	met *storeMetrics
}

// New returns an empty store that searches with the given matcher.
// A nil matcher defaults to the primary HoughMatcher.
func New(m match.Matcher) *Store {
	if m == nil {
		m = &match.HoughMatcher{}
	}
	hough, _ := m.(*match.HoughMatcher)
	return &Store{matcher: m, hough: hough, entries: make(map[string]*Entry)}
}

// SetParallelism bounds the worker goroutines used to fan matcher
// calls during identification (the study.Config.Parallelism
// convention); n <= 0 restores the default of GOMAXPROCS.
func (s *Store) SetParallelism(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.parallelism = n
}

// Enroll adds a template under id. The template is cloned, so later
// mutation by the caller cannot corrupt the gallery.
func (s *Store) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	if tpl == nil {
		return fmt.Errorf("gallery: enroll %q: nil template", id)
	}
	if err := tpl.Validate(); err != nil {
		return fmt.Errorf("gallery: enroll %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; ok {
		return fmt.Errorf("enroll %q: %w", id, ErrDuplicate)
	}
	clone := tpl.Clone()
	var prep *match.Prepared
	if s.hough != nil {
		prep = s.hough.Prepare(clone)
	}
	if s.idx != nil {
		if err := s.idx.Add(id, clone); err != nil {
			return fmt.Errorf("gallery: enroll %q: %w", id, err)
		}
	}
	s.entries[id] = &Entry{ID: id, DeviceID: deviceID, Template: clone, prep: prep}
	s.order = append(s.order, id)
	s.met.setEnrollments(len(s.entries))
	return nil
}

// Has reports whether id is enrolled. Sharded routers use it as the
// duplicate guard on keys whose ownership is mid-migration, where the
// authoritative copy may still live on the outgoing shard.
func (s *Store) Has(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[id]
	return ok
}

// Get returns the enrollment stored under id. The returned template is
// the store's own; callers must not mutate it.
func (s *Store) Get(id string) (Export, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	if !ok {
		return Export{}, false
	}
	return Export{ID: e.ID, DeviceID: e.DeviceID, Template: e.Template}, true
}

// Export is one enrollment lifted out of the store: the bulk-transfer
// unit shared by persistence (ReadEntries/ReplaceAll), WAL recovery,
// and shard migration. The template is the store's own (or destined to
// become it); holders must not mutate it.
type Export struct {
	ID       string
	DeviceID string
	Template *minutiae.Template
}

// Scan returns up to max enrollments whose ID sorts strictly after
// afterID, in lexicographic ID order. The ID-based cursor is stable
// under concurrent mutation — an entry enrolled or removed mid-scan
// can be seen or missed, but never causes another entry to be skipped
// or repeated — which is what the shard rebalancer's streaming copy
// needs while the store keeps serving. max <= 0 returns nothing.
func (s *Store) Scan(afterID string, max int) []Export {
	if max <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.order))
	for _, id := range s.order {
		if id > afterID {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if len(ids) > max {
		ids = ids[:max]
	}
	out := make([]Export, len(ids))
	for i, id := range ids {
		e := s.entries[id]
		out[i] = Export{ID: e.ID, DeviceID: e.DeviceID, Template: e.Template}
	}
	return out
}

// Remove deletes an enrollment.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return fmt.Errorf("remove %q: %w", id, ErrNotFound)
	}
	if s.idx != nil {
		// The index holds exactly the enrolled set; a miss here would
		// mean they diverged, which Remove must not hide. It is checked
		// before mutating entries/order so a failure leaves the store
		// untouched.
		if err := s.idx.Remove(id); err != nil {
			return fmt.Errorf("gallery: remove %q from index: %w", id, err)
		}
	}
	delete(s.entries, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.met.setEnrollments(len(s.entries))
	return nil
}

// Len returns the number of enrollments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Verify performs a 1:1 comparison of the probe against one enrollment.
//
// Deprecated: use VerifyContext so cancellation reaches the matcher;
// this wrapper survives only for callers with no context to thread
// (the matchsvc wire protocol carries no deadline).
func (s *Store) Verify(id string, probe *minutiae.Template) (match.Result, error) {
	return s.VerifyContext(context.Background(), id, probe) //fpvet:allow ctxflow deprecated non-ctx wrapper is a genuine root
}

// VerifyContext is Verify honoring ctx: a cancelled or expired context
// fails fast with ctx.Err() before the comparison runs.
func (s *Store) VerifyContext(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	if err := ctx.Err(); err != nil {
		return match.Result{}, err
	}
	s.mu.RLock()
	e, ok := s.entries[id]
	s.mu.RUnlock()
	if !ok {
		return match.Result{}, fmt.Errorf("verify %q: %w", id, ErrNotFound)
	}
	if s.hough != nil && e.prep != nil {
		return match.MatchPreparedOnce(s.hough, e.prep, probe)
	}
	return s.matcher.Match(e.Template, probe)
}

// Candidate is one identification hit.
type Candidate struct {
	ID       string
	DeviceID string
	Score    float64
}

// IndexOptions configures indexed candidate retrieval on a Store.
type IndexOptions struct {
	// Index tunes the triplet index (zero value for defaults).
	Index index.Options
	// MinCandidates is the recall guard: when the index shortlist holds
	// fewer candidates than this (or than the requested top-k), Identify
	// falls back to the exhaustive scan rather than risk missing the
	// mate (default 8).
	MinCandidates int
}

// EnableIndex attaches a minutia-triplet retrieval index, building it
// from the current enrollments; subsequent Enroll/Remove calls keep it
// incrementally up to date, and LoadFrom rebuilds it. While enabled,
// Identify with k > 0 searches only the index shortlist unless the
// recall guard trips.
func (s *Store) EnableIndex(opt IndexOptions) error {
	if opt.MinCandidates <= 0 {
		opt.MinCandidates = 8
	}
	idx := index.New(opt.Index)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		if err := idx.Add(id, s.entries[id].Template); err != nil {
			return fmt.Errorf("gallery: index build: %w", err)
		}
	}
	s.idx = idx
	s.minCandidates = opt.MinCandidates
	return nil
}

// DisableIndex detaches the retrieval index; Identify reverts to the
// exhaustive scan.
func (s *Store) DisableIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx = nil
}

// IndexStats reports retrieval-index occupancy; ok is false when no
// index is enabled.
func (s *Store) IndexStats() (st index.Stats, ok bool) {
	s.mu.RLock()
	idx := s.idx
	s.mu.RUnlock()
	if idx == nil {
		return index.Stats{}, false
	}
	return idx.Stats(), true
}

// IdentifyStats describes how one identification was served.
type IdentifyStats struct {
	// GallerySize is the number of enrollments at search time.
	GallerySize int
	// Shortlist is how many candidates the index retrieved for this
	// search: 0 when no shortlist was attempted (index disabled or a
	// full ranking requested), and possibly non-zero even when Indexed
	// is false — a shortlist the recall guard rejected. Use Indexed,
	// not Shortlist, to tell which path served the query.
	Shortlist int
	// Scanned is how many full matcher comparisons ran.
	Scanned int
	// Indexed reports whether the shortlist path served the query.
	Indexed bool
}

// Identify searches the probe against the gallery and returns the top-k
// candidates by score (every negative or zero k requests the full
// ranking), ordered by descending score with deterministic ID
// tie-breaks. k larger than the gallery is clamped to the gallery size;
// an empty store yields an empty (non-nil) candidate list. With an
// index enabled and k > 0, only the retrieval shortlist is scored by
// the full matcher; pass k <= 0 (or disable the index) for an
// exhaustive ranking.
//
// Deprecated: use IdentifyContext so cancellation reaches the
// exhaustive scan; this wrapper survives only for callers with no
// context to thread (the matchsvc wire protocol carries no deadline).
func (s *Store) Identify(probe *minutiae.Template, k int) ([]Candidate, error) {
	out, _, err := s.IdentifyDetailed(probe, k)
	return out, err
}

// IdentifyContext is Identify honoring ctx (see
// IdentifyDetailedContext).
func (s *Store) IdentifyContext(ctx context.Context, probe *minutiae.Template, k int) ([]Candidate, error) {
	out, _, err := s.IdentifyDetailedContext(ctx, probe, k)
	return out, err
}

// IdentifyDetailed is Identify plus retrieval statistics.
//
// Deprecated: use IdentifyDetailedContext so cancellation reaches the
// exhaustive scan; this wrapper survives only for callers with no
// context to thread (the matchsvc wire protocol carries no deadline).
func (s *Store) IdentifyDetailed(probe *minutiae.Template, k int) ([]Candidate, IdentifyStats, error) {
	return s.IdentifyDetailedContext(context.Background(), probe, k) //fpvet:allow ctxflow deprecated non-ctx wrapper is a genuine root
}

// IdentifyDetailedContext is IdentifyDetailed honoring ctx: the
// exhaustive scan polls the context between matcher comparisons, so a
// cancelled or expired context unblocks an in-flight search within one
// comparison's latency and returns ctx.Err().
func (s *Store) IdentifyDetailedContext(ctx context.Context, probe *minutiae.Template, k int) ([]Candidate, IdentifyStats, error) {
	if probe == nil {
		return nil, IdentifyStats{}, match.ErrNilTemplate
	}
	if err := ctx.Err(); err != nil {
		return nil, IdentifyStats{}, err
	}
	if k < 0 {
		// Every degenerate k means the same thing — a full ranking — so
		// local, sharded, and remote searches agree on the wire (where k
		// travels unsigned) and in the merge math.
		k = 0
	}
	s.mu.RLock()
	idx := s.idx
	minCand := s.minCandidates
	size := len(s.order)
	met := s.met
	s.mu.RUnlock()

	if k > size {
		// Asking for more candidates than enrollments is a full ranking;
		// clamping here keeps the indexed path's shortlist-covers-k guard
		// meaningful instead of tripping it on every oversized k.
		k = size
	}
	stats := IdentifyStats{GallerySize: size}
	if idx != nil && k > 0 {
		fanout := idx.Options().Fanout
		if k > fanout {
			fanout = k
		}
		shortlist := idx.Candidates(probe, fanout)
		stats.Shortlist = len(shortlist)
		if len(shortlist) >= minCand && len(shortlist) >= k {
			entries := make([]*Entry, 0, len(shortlist))
			s.mu.RLock()
			for _, c := range shortlist {
				// An entry may have been removed between the index
				// lookup and this snapshot; skip it.
				if e, ok := s.entries[c.ID]; ok {
					entries = append(entries, e)
				}
			}
			stats.GallerySize = len(s.order)
			s.mu.RUnlock()
			out, err := s.scoreEntries(ctx, entries, probe)
			if err != nil {
				return nil, stats, err
			}
			stats.Scanned = len(entries)
			stats.Indexed = true
			if k < len(out) {
				out = out[:k]
			}
			met.recordIdentify(stats, true, false)
			return out, stats, nil
		}
		// Recall guard tripped: too few candidates retrieved to trust
		// the shortlist — fall through to the exhaustive scan.
	}

	s.mu.RLock()
	entries := make([]*Entry, len(s.order))
	for i, id := range s.order {
		entries[i] = s.entries[id]
	}
	stats.GallerySize = len(entries)
	s.mu.RUnlock()
	out, err := s.scoreEntries(ctx, entries, probe)
	if err != nil {
		return nil, stats, err
	}
	stats.Scanned = len(entries)
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	met.recordIdentify(stats, idx != nil && k > 0, idx != nil && k > 0)
	return out, stats, nil
}

// scoreEntries runs the full matcher for the probe against every entry
// across a bounded worker pool and returns candidates ordered by
// descending score with ID tie-breaks. Workers write only their own
// result slot, so the output is deterministic regardless of scheduling;
// on matcher failure the error from the lowest entry index wins.
func (s *Store) scoreEntries(ctx context.Context, entries []*Entry, probe *minutiae.Template) ([]Candidate, error) {
	scores, err := s.matchAll(ctx, entries, probe)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, len(entries))
	for i, e := range entries {
		out[i] = Candidate{ID: e.ID, DeviceID: e.DeviceID, Score: scores[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// matchAll computes the matcher score of the probe against every entry
// on at most s.parallelism workers. Workers poll ctx between
// comparisons: a cancelled context stops the scan within one matcher
// call's latency and matchAll returns ctx.Err(), which outranks any
// matcher error (a half-cancelled scan's failures are not meaningful).
func (s *Store) matchAll(ctx context.Context, entries []*Entry, probe *minutiae.Template) ([]float64, error) {
	s.mu.RLock()
	workers := s.parallelism
	s.mu.RUnlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	// Each worker holds one pooled match session for its whole slice of
	// the scan: the matcher hot path then runs with zero steady-state
	// allocations against the preparations cached at enroll time.
	matchOne := func(sess *match.Session, e *Entry) (match.Result, error) {
		if sess != nil && e.prep != nil {
			return sess.MatchPrepared(e.prep, probe)
		}
		return s.matcher.Match(e.Template, probe)
	}
	done := ctx.Done()
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	scores := make([]float64, len(entries))
	if workers <= 1 {
		var sess *match.Session
		if s.hough != nil {
			sess = match.AcquireSession(s.hough)
			defer sess.Release()
		}
		for i, e := range entries {
			if cancelled() {
				return nil, ctx.Err()
			}
			res, err := matchOne(sess, e)
			if err != nil {
				return nil, fmt.Errorf("identify against %q: %w", e.ID, err)
			}
			scores[i] = res.Score
		}
		return scores, nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		next   int
		errIdx = -1
		first  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess *match.Session
			if s.hough != nil {
				sess = match.AcquireSession(s.hough)
				defer sess.Release()
			}
			for {
				if cancelled() {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(entries) {
					return
				}
				res, err := matchOne(sess, entries[i])
				if err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx = i
						first = fmt.Errorf("identify against %q: %w", entries[i].ID, err)
					}
					mu.Unlock()
					continue
				}
				scores[i] = res.Score
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if first != nil {
		return nil, first
	}
	return scores, nil
}

// Rank returns the 1-based rank at which trueID appears in a full
// (exhaustive) identification of the probe, or 0 when it is not
// enrolled.
//
// Deprecated: use RankContext so cancellation reaches the exhaustive
// scan; this wrapper survives only for callers with no context to
// thread.
func (s *Store) Rank(probe *minutiae.Template, trueID string) (int, error) {
	return s.RankContext(context.Background(), probe, trueID) //fpvet:allow ctxflow deprecated non-ctx wrapper is a genuine root
}

// RankContext is Rank honoring ctx. The rank is computed in one pass —
// count the enrollments scoring strictly better, with the ID tie-break
// — without sorting the candidate list; cancellation unblocks the scan
// within one comparison's latency.
func (s *Store) RankContext(ctx context.Context, probe *minutiae.Template, trueID string) (int, error) {
	if probe == nil {
		return 0, match.ErrNilTemplate
	}
	s.mu.RLock()
	if _, ok := s.entries[trueID]; !ok {
		s.mu.RUnlock()
		return 0, nil
	}
	entries := make([]*Entry, len(s.order))
	trueIdx := -1
	for i, id := range s.order {
		entries[i] = s.entries[id]
		if id == trueID {
			trueIdx = i
		}
	}
	s.mu.RUnlock()
	scores, err := s.matchAll(ctx, entries, probe)
	if err != nil {
		return 0, err
	}
	trueScore := scores[trueIdx]
	rank := 1
	for i, sc := range scores {
		if sc > trueScore || (sc == trueScore && entries[i].ID < trueID) {
			rank++
		}
	}
	return rank, nil
}

// CMC is a cumulative match characteristic: CMC[k-1] is the fraction of
// probes whose true identity appeared at rank ≤ k.
type CMC []float64

// ComputeCMC runs identification for every (probe, trueID) pair and
// accumulates the rank histogram up to maxRank.
//
// Deprecated: use ComputeCMCContext so a long study sweep can be
// cancelled between probes; this wrapper survives only for callers
// with no context to thread.
func ComputeCMC(s *Store, probes []*minutiae.Template, trueIDs []string, maxRank int) (CMC, error) {
	return ComputeCMCContext(context.Background(), s, probes, trueIDs, maxRank) //fpvet:allow ctxflow deprecated non-ctx wrapper is a genuine root
}

// ComputeCMCContext is ComputeCMC honoring ctx: the context is checked
// on every probe, so cancellation stops a sweep within one
// identification's latency.
func ComputeCMCContext(ctx context.Context, s *Store, probes []*minutiae.Template, trueIDs []string, maxRank int) (CMC, error) {
	if len(probes) != len(trueIDs) {
		return nil, fmt.Errorf("gallery: %d probes vs %d labels", len(probes), len(trueIDs))
	}
	if maxRank <= 0 {
		return nil, fmt.Errorf("gallery: maxRank must be positive")
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("gallery: no probes")
	}
	hits := make([]int, maxRank)
	for i, probe := range probes {
		rank, err := s.RankContext(ctx, probe, trueIDs[i])
		if err != nil {
			return nil, err
		}
		if rank >= 1 && rank <= maxRank {
			hits[rank-1]++
		}
	}
	out := make(CMC, maxRank)
	cum := 0
	for k := 0; k < maxRank; k++ {
		cum += hits[k]
		out[k] = float64(cum) / float64(len(probes))
	}
	return out, nil
}

// RankOne returns the rank-1 identification rate.
func (c CMC) RankOne() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[0]
}

// Package gallery implements the enrollment database of a fingerprint
// identification system: a concurrent-safe template store with 1:1
// verification and 1:N identification, plus the rank-based accuracy
// analysis (CMC) used to evaluate identification across heterogeneous
// sensors. The paper's motivating deployment — US-VISIT — is exactly
// this: a central gallery enrolled on one device family, searched with
// probes from whatever device a port of entry operates.
package gallery

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
)

var (
	// ErrNotFound reports an unknown enrollment ID.
	ErrNotFound = errors.New("gallery: enrollment not found")
	// ErrDuplicate reports an already-used enrollment ID.
	ErrDuplicate = errors.New("gallery: enrollment ID already exists")
)

// Entry is one enrolled subject record.
type Entry struct {
	// ID is the enrollment identifier (e.g. a subject or visa number).
	ID string
	// DeviceID records which sensor produced the enrollment template.
	DeviceID string
	// Template is the enrolled minutiae template.
	Template *minutiae.Template
}

// Store is a concurrent-safe in-memory enrollment database.
// The zero value is NOT ready; use New.
type Store struct {
	mu      sync.RWMutex
	matcher match.Matcher
	entries map[string]*Entry
	order   []string // insertion order for deterministic iteration
}

// New returns an empty store that searches with the given matcher.
// A nil matcher defaults to the primary HoughMatcher.
func New(m match.Matcher) *Store {
	if m == nil {
		m = &match.HoughMatcher{}
	}
	return &Store{matcher: m, entries: make(map[string]*Entry)}
}

// Enroll adds a template under id. The template is cloned, so later
// mutation by the caller cannot corrupt the gallery.
func (s *Store) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	if tpl == nil {
		return fmt.Errorf("gallery: enroll %q: nil template", id)
	}
	if err := tpl.Validate(); err != nil {
		return fmt.Errorf("gallery: enroll %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; ok {
		return fmt.Errorf("enroll %q: %w", id, ErrDuplicate)
	}
	s.entries[id] = &Entry{ID: id, DeviceID: deviceID, Template: tpl.Clone()}
	s.order = append(s.order, id)
	return nil
}

// Remove deletes an enrollment.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return fmt.Errorf("remove %q: %w", id, ErrNotFound)
	}
	delete(s.entries, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of enrollments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Verify performs a 1:1 comparison of the probe against one enrollment.
func (s *Store) Verify(id string, probe *minutiae.Template) (match.Result, error) {
	s.mu.RLock()
	e, ok := s.entries[id]
	s.mu.RUnlock()
	if !ok {
		return match.Result{}, fmt.Errorf("verify %q: %w", id, ErrNotFound)
	}
	return s.matcher.Match(e.Template, probe)
}

// Candidate is one identification hit.
type Candidate struct {
	ID       string
	DeviceID string
	Score    float64
}

// Identify searches the probe against every enrollment and returns the
// top-k candidates by score (all of them when k <= 0), ordered by
// descending score with deterministic ID tie-breaks.
func (s *Store) Identify(probe *minutiae.Template, k int) ([]Candidate, error) {
	if probe == nil {
		return nil, match.ErrNilTemplate
	}
	s.mu.RLock()
	ids := append([]string(nil), s.order...)
	entries := make([]*Entry, len(ids))
	for i, id := range ids {
		entries[i] = s.entries[id]
	}
	s.mu.RUnlock()

	out := make([]Candidate, 0, len(entries))
	for _, e := range entries {
		res, err := s.matcher.Match(e.Template, probe)
		if err != nil {
			return nil, fmt.Errorf("identify against %q: %w", e.ID, err)
		}
		out = append(out, Candidate{ID: e.ID, DeviceID: e.DeviceID, Score: res.Score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Rank returns the 1-based rank at which trueID appears in an
// identification of the probe, or 0 when it is not enrolled.
func (s *Store) Rank(probe *minutiae.Template, trueID string) (int, error) {
	cands, err := s.Identify(probe, 0)
	if err != nil {
		return 0, err
	}
	for i, c := range cands {
		if c.ID == trueID {
			return i + 1, nil
		}
	}
	return 0, nil
}

// CMC is a cumulative match characteristic: CMC[k-1] is the fraction of
// probes whose true identity appeared at rank ≤ k.
type CMC []float64

// ComputeCMC runs identification for every (probe, trueID) pair and
// accumulates the rank histogram up to maxRank.
func ComputeCMC(s *Store, probes []*minutiae.Template, trueIDs []string, maxRank int) (CMC, error) {
	if len(probes) != len(trueIDs) {
		return nil, fmt.Errorf("gallery: %d probes vs %d labels", len(probes), len(trueIDs))
	}
	if maxRank <= 0 {
		return nil, fmt.Errorf("gallery: maxRank must be positive")
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("gallery: no probes")
	}
	hits := make([]int, maxRank)
	for i, probe := range probes {
		rank, err := s.Rank(probe, trueIDs[i])
		if err != nil {
			return nil, err
		}
		if rank >= 1 && rank <= maxRank {
			hits[rank-1]++
		}
	}
	out := make(CMC, maxRank)
	cum := 0
	for k := 0; k < maxRank; k++ {
		cum += hits[k]
		out[k] = float64(cum) / float64(len(probes))
	}
	return out, nil
}

// RankOne returns the rank-1 identification rate.
func (c CMC) RankOne() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[0]
}

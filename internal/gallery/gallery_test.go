package gallery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/index"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// enrolledStore builds a store with n subjects enrolled on enrollDev and
// returns matching probes captured on probeDev.
func enrolledStore(t *testing.T, n int, enrollDev, probeDev string) (*Store, []*minutiae.Template, []string) {
	t.Helper()
	cohort := population.NewCohort(rng.New(31337), population.CohortOptions{Size: n})
	ed, ok := sensor.ProfileByID(enrollDev)
	if !ok {
		t.Fatalf("unknown device %s", enrollDev)
	}
	pd, _ := sensor.ProfileByID(probeDev)
	s := New(nil)
	var probes []*minutiae.Template
	var ids []string
	for i, subj := range cohort.Subjects {
		g, err := ed.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		id := "subject-" + string(rune('A'+i))
		if err := s.Enroll(id, enrollDev, g.Template); err != nil {
			t.Fatal(err)
		}
		p, err := pd.CaptureSubject(subj, 1, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, p.Template)
		ids = append(ids, id)
	}
	return s, probes, ids
}

func TestEnrollAndLen(t *testing.T) {
	s, _, _ := enrolledStore(t, 5, "D0", "D0")
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestEnrollValidation(t *testing.T) {
	s := New(nil)
	if err := s.Enroll("x", "D0", nil); err == nil {
		t.Fatal("expected nil-template error")
	}
	bad := &minutiae.Template{Width: -1}
	if err := s.Enroll("x", "D0", bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEnrollDuplicate(t *testing.T) {
	s := New(nil)
	tpl := &minutiae.Template{Width: 100, Height: 100, DPI: 500}
	if err := s.Enroll("a", "D0", tpl); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll("a", "D0", tpl); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestEnrollClonesTemplate(t *testing.T) {
	s := New(nil)
	tpl := &minutiae.Template{Width: 100, Height: 100, DPI: 500,
		Minutiae: []minutiae.Minutia{{X: 10, Y: 10, Angle: 1, Kind: minutiae.Ending}}}
	if err := s.Enroll("a", "D0", tpl); err != nil {
		t.Fatal(err)
	}
	tpl.Minutiae[0].X = 99 // caller mutation must not corrupt the store
	res, err := s.Verify("a", &minutiae.Template{Width: 100, Height: 100, DPI: 500,
		Minutiae: []minutiae.Minutia{{X: 10, Y: 10, Angle: 1, Kind: minutiae.Ending}}})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // the verify itself succeeding on the original data is the point
}

func TestRemove(t *testing.T) {
	s, _, ids := enrolledStore(t, 3, "D0", "D0")
	if err := s.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
	if err := s.Remove(ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestVerifyGenuineAndUnknown(t *testing.T) {
	s, probes, ids := enrolledStore(t, 4, "D0", "D0")
	res, err := s.Verify(ids[0], probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 7 {
		t.Fatalf("genuine verify score %v", res.Score)
	}
	if _, err := s.Verify("ghost", probes[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestIdentifyFindsTrueIdentityAtRankOne(t *testing.T) {
	s, probes, ids := enrolledStore(t, 8, "D0", "D0")
	hits := 0
	for i, p := range probes {
		cands, err := s.Identify(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 3 {
			t.Fatalf("top-k size %d", len(cands))
		}
		if cands[0].ID == ids[i] {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("rank-1 hits %d/8 on same-device identification", hits)
	}
}

func TestIdentifyKZeroReturnsAll(t *testing.T) {
	s, probes, _ := enrolledStore(t, 4, "D0", "D0")
	cands, err := s.Identify(probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want all 4", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestIdentifyNilProbe(t *testing.T) {
	s, _, _ := enrolledStore(t, 2, "D0", "D0")
	if _, err := s.Identify(nil, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRank(t *testing.T) {
	s, probes, ids := enrolledStore(t, 6, "D0", "D0")
	r, err := s.Rank(probes[2], ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 || r > 6 {
		t.Fatalf("rank %d out of range", r)
	}
	r, err = s.Rank(probes[2], "not-enrolled")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("missing identity rank %d, want 0", r)
	}
}

func TestCMCMonotoneAndCrossDeviceLower(t *testing.T) {
	same, sameProbes, sameIDs := enrolledStore(t, 10, "D0", "D0")
	cmcSame, err := ComputeCMC(same, sameProbes, sameIDs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(cmcSame); k++ {
		if cmcSame[k] < cmcSame[k-1] {
			t.Fatal("CMC not monotone")
		}
	}
	if cmcSame.RankOne() < 0.7 {
		t.Fatalf("same-device rank-1 rate %v too low", cmcSame.RankOne())
	}
	// Cross-device identification (probe from the ink cards) cannot beat
	// same-device.
	cross, crossProbes, crossIDs := enrolledStore(t, 10, "D0", "D4")
	cmcCross, err := ComputeCMC(cross, crossProbes, crossIDs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmcCross.RankOne() > cmcSame.RankOne() {
		t.Fatalf("ink probes identified better (%v) than same-device (%v)",
			cmcCross.RankOne(), cmcSame.RankOne())
	}
}

func TestComputeCMCErrors(t *testing.T) {
	s, probes, ids := enrolledStore(t, 2, "D0", "D0")
	if _, err := ComputeCMC(s, probes, ids[:1], 3); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := ComputeCMC(s, probes, ids, 0); err == nil {
		t.Fatal("expected maxRank error")
	}
	if _, err := ComputeCMC(s, nil, nil, 3); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	s, probes, ids := enrolledStore(t, 4, "D0", "D0")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.Identify(probes[w%len(probes)], 2); err != nil {
					panic(err)
				}
				if _, err := s.Verify(ids[w%len(ids)], probes[w%len(probes)]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNewDefaultsMatcher(t *testing.T) {
	s := New(nil)
	if s.matcher == nil {
		t.Fatal("nil matcher not defaulted")
	}
	custom := New(&match.GreedyMatcher{})
	if _, ok := custom.matcher.(*match.GreedyMatcher); !ok {
		t.Fatal("custom matcher not kept")
	}
}

func TestEmptyCMCRankOne(t *testing.T) {
	var c CMC
	if c.RankOne() != 0 {
		t.Fatal("empty CMC rank-1 should be 0")
	}
}

// errAfterMatcher fails every comparison once the counter trips,
// exercising error propagation through the parallel scan.
type errAfterMatcher struct {
	mu    sync.Mutex
	calls int
	after int
}

func (m *errAfterMatcher) Match(g, p *minutiae.Template) (match.Result, error) {
	m.mu.Lock()
	m.calls++
	trip := m.calls > m.after
	m.mu.Unlock()
	if trip {
		return match.Result{}, errors.New("matcher budget exceeded")
	}
	return (&match.HoughMatcher{}).Match(g, p)
}

func TestIdentifyParallelMatchesSerial(t *testing.T) {
	s, probes, _ := enrolledStore(t, 10, "D0", "D1")
	s.SetParallelism(1)
	serial, err := s.Identify(probes[3], 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(4)
	parallel, err := s.Identify(probes[3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestIdentifyParallelErrorPropagates(t *testing.T) {
	cohort := population.NewCohort(rng.New(31337), population.CohortOptions{Size: 6})
	d0, _ := sensor.ProfileByID("D0")
	s := New(&errAfterMatcher{after: 3})
	for i, subj := range cohort.Subjects {
		imp, err := d0.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Enroll("subject-"+string(rune('A'+i)), "D0", imp.Template); err != nil {
			t.Fatal(err)
		}
	}
	s.SetParallelism(3)
	probe, err := d0.CaptureSubject(cohort.Subjects[0], 1, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Identify(probe.Template, 0); err == nil {
		t.Fatal("matcher failure swallowed by parallel scan")
	}
}

// TestIdentifyConcurrentMutationRace exercises the parallel scan and
// the incremental index under concurrent enrollment churn; run with
// -race.
func TestIdentifyConcurrentMutationRace(t *testing.T) {
	s, probes, _ := enrolledStore(t, 12, "D0", "D0")
	if err := s.EnableIndex(IndexOptions{MinCandidates: 2}); err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(4)
	extra := &minutiae.Template{Width: 400, Height: 400, DPI: 500}
	cohort := population.NewCohort(rng.New(777), population.CohortOptions{Size: 8})
	d0, _ := sensor.ProfileByID("D0")
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := s.Identify(probes[(w+i)%len(probes)], 3); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, subj := range cohort.Subjects {
			imp, err := d0.CaptureSubject(subj, 0, sensor.CaptureOptions{})
			if err != nil {
				panic(err)
			}
			id := "churn-" + string(rune('a'+i))
			if err := s.Enroll(id, "D0", imp.Template); err != nil {
				panic(err)
			}
			if err := s.Remove(id); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	_ = extra
	if s.Len() != 12 {
		t.Fatalf("Len after churn = %d", s.Len())
	}
}

func TestRankMatchesIdentifyOrdering(t *testing.T) {
	s, probes, ids := enrolledStore(t, 8, "D0", "D1")
	for p := range probes {
		cands, err := s.Identify(probes[p], 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, trueID := range ids {
			want := 0
			for i, c := range cands {
				if c.ID == trueID {
					want = i + 1
					break
				}
			}
			got, err := s.Rank(probes[p], trueID)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("probe %d trueID %s: direct rank %d, sorted rank %d", p, trueID, got, want)
			}
		}
	}
	if r, err := s.Rank(probes[0], "not-enrolled"); err != nil || r != 0 {
		t.Fatalf("missing identity rank %d err %v", r, err)
	}
	if _, err := s.Rank(nil, ids[0]); err == nil {
		t.Fatal("nil probe accepted")
	}
}

func TestIndexedIdentifyAgreesOnTopCandidate(t *testing.T) {
	s, probes, ids := enrolledStore(t, 30, "D0", "D0")
	exhaustive := make([]Candidate, len(probes))
	for i, p := range probes {
		cands, err := s.Identify(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive[i] = cands[0]
	}
	if err := s.EnableIndex(IndexOptions{Index: index.Options{Fanout: 12}}); err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, p := range probes {
		cands, stats, err := s.IdentifyDetailed(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Indexed {
			t.Fatalf("probe %d not served by the index (shortlist %d)", i, stats.Shortlist)
		}
		if stats.Scanned >= stats.GallerySize {
			t.Fatalf("probe %d: indexed path scanned the whole gallery (%d/%d)",
				i, stats.Scanned, stats.GallerySize)
		}
		if len(cands) == 1 && cands[0] == exhaustive[i] {
			agree++
		}
	}
	if agree < len(probes)-1 {
		t.Fatalf("indexed top-1 agrees on only %d/%d probes", agree, len(probes))
	}
	_ = ids
}

func TestIndexedIdentifyRecallGuardFallsBack(t *testing.T) {
	s, probes, _ := enrolledStore(t, 4, "D0", "D0")
	if err := s.EnableIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	// Gallery smaller than MinCandidates: the guard must force the
	// exhaustive path, and results must still be complete.
	cands, stats, err := s.IdentifyDetailed(probes[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Indexed {
		t.Fatal("recall guard did not trip on a tiny gallery")
	}
	if len(cands) != 2 || stats.Scanned != 4 {
		t.Fatalf("fallback scan incomplete: %d candidates, %d scanned", len(cands), stats.Scanned)
	}
	// k <= 0 always takes the exhaustive path (full ranking requested).
	_, stats, err = s.IdentifyDetailed(probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Indexed {
		t.Fatal("full ranking served from the shortlist")
	}
	// Disabling the index restores plain behavior.
	s.DisableIndex()
	if _, ok := s.IndexStats(); ok {
		t.Fatal("IndexStats ok after DisableIndex")
	}
}

func TestEnrollRemoveKeepIndexInSync(t *testing.T) {
	s, probes, ids := enrolledStore(t, 12, "D0", "D0")
	if err := s.EnableIndex(IndexOptions{MinCandidates: 2}); err != nil {
		t.Fatal(err)
	}
	st, ok := s.IndexStats()
	if !ok || st.Templates != 12 {
		t.Fatalf("index stats after enable: %+v ok=%v", st, ok)
	}
	if err := s.Remove(ids[5]); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.IndexStats(); st.Templates != 11 {
		t.Fatalf("index stats after remove: %+v", st)
	}
	// The removed identity must no longer be retrievable at top-1.
	cands, _, err := s.IdentifyDetailed(probes[5], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 0 && cands[0].ID == ids[5] {
		t.Fatal("removed enrollment still identified")
	}
	// Re-enrolling restores it.
	d0, _ := sensor.ProfileByID("D0")
	cohort := population.NewCohort(rng.New(31337), population.CohortOptions{Size: 12})
	imp, err := d0.CaptureSubject(cohort.Subjects[5], 0, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll(ids[5], "D0", imp.Template); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.IndexStats(); st.Templates != 12 {
		t.Fatalf("index stats after re-enroll: %+v", st)
	}
	cands, err = s.Identify(probes[5], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].ID != ids[5] {
		t.Fatalf("re-enrolled identity not found: %+v", cands)
	}
}

func TestIdentifyKEdgeCases(t *testing.T) {
	s, probes, _ := enrolledStore(t, 4, "D0", "D0")
	// k equal to the gallery size is a full ranking.
	atLen, err := s.Identify(probes[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(atLen) != 4 {
		t.Fatalf("k=len returned %d candidates", len(atLen))
	}
	// k beyond the gallery size clamps to a full ranking rather than
	// erroring or padding.
	beyond, err := s.Identify(probes[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(beyond) != 4 {
		t.Fatalf("k>len returned %d candidates", len(beyond))
	}
	for i := range atLen {
		if beyond[i] != atLen[i] {
			t.Fatalf("k>len ranking diverged at %d: %+v vs %+v", i, beyond[i], atLen[i])
		}
	}
	// k=0 is the documented full-ranking path.
	all, err := s.Identify(probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("k=0 returned %d candidates", len(all))
	}
}

func TestIdentifyEmptyStore(t *testing.T) {
	cohort := population.NewCohort(rng.New(7), population.CohortOptions{Size: 1})
	dev, _ := sensor.ProfileByID("D0")
	imp, err := dev.CaptureSubject(cohort.Subjects[0], 0, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := imp.Template
	for _, idx := range []bool{false, true} {
		s := New(nil)
		if idx {
			if err := s.EnableIndex(IndexOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range []int{0, 1, 5} {
			cands, stats, err := s.IdentifyDetailed(probe, k)
			if err != nil {
				t.Fatalf("indexed=%v k=%d: %v", idx, k, err)
			}
			if cands == nil {
				t.Fatalf("indexed=%v k=%d: nil candidate list from empty store", idx, k)
			}
			if len(cands) != 0 {
				t.Fatalf("indexed=%v k=%d: %d candidates from empty store", idx, k, len(cands))
			}
			if stats.GallerySize != 0 || stats.Scanned != 0 {
				t.Fatalf("indexed=%v k=%d: implausible stats %+v", idx, k, stats)
			}
		}
	}
}

// TestIdentifyClampedKStillIndexed checks that an oversized k on an
// indexed store degrades to the exhaustive full ranking (shortlists
// cannot cover the whole gallery) without error.
func TestIdentifyClampedKOnIndexedStore(t *testing.T) {
	s, probes, _ := enrolledStore(t, 6, "D0", "D0")
	if err := s.EnableIndex(IndexOptions{MinCandidates: 1}); err != nil {
		t.Fatal(err)
	}
	cands, stats, err := s.IdentifyDetailed(probes[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 6 {
		t.Fatalf("clamped k returned %d of 6 candidates", len(cands))
	}
	if stats.Scanned != 6 {
		t.Fatalf("full ranking must scan the whole gallery: %+v", stats)
	}
}

// TestIdentifyNegativeKMatchesZero pins the degenerate-k contract:
// every k <= 0 requests the same full ranking, on plain and indexed
// stores alike.
func TestIdentifyNegativeKMatchesZero(t *testing.T) {
	s, probes, _ := enrolledStore(t, 5, "D0", "D0")
	for _, indexed := range []bool{false, true} {
		if indexed {
			if err := s.EnableIndex(IndexOptions{MinCandidates: 1}); err != nil {
				t.Fatal(err)
			}
		}
		want, wantStats, err := s.IdentifyDetailed(probes[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{-1, -5, -1000} {
			got, stats, err := s.IdentifyDetailed(probes[0], k)
			if err != nil {
				t.Fatalf("indexed=%v k=%d: %v", indexed, k, err)
			}
			if len(got) != len(want) {
				t.Fatalf("indexed=%v k=%d: %d candidates, want %d", indexed, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("indexed=%v k=%d: candidate %d = %+v, want %+v", indexed, k, i, got[i], want[i])
				}
			}
			if stats != wantStats {
				t.Fatalf("indexed=%v k=%d: stats %+v, want %+v", indexed, k, stats, wantStats)
			}
		}
	}
}

// slowMatcher blocks each comparison until the delay elapses, making
// scan latency deterministic for cancellation tests.
type slowMatcher struct {
	delay time.Duration
}

func (m *slowMatcher) Match(g, p *minutiae.Template) (match.Result, error) {
	time.Sleep(m.delay)
	return match.Result{Score: 1}, nil
}

// TestIdentifyContextCancellationUnblocksScan proves a cancelled
// context stops the parallel exhaustive scan within one comparison's
// latency rather than running the gallery to completion, and that the
// store stays usable afterward.
func TestIdentifyContextCancellationUnblocksScan(t *testing.T) {
	cohort := population.NewCohort(rng.New(515), population.CohortOptions{Size: 1})
	d0, _ := sensor.ProfileByID("D0")
	imp, err := d0.CaptureSubject(cohort.Subjects[0], 0, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	perMatch := 20 * time.Millisecond
	s := New(&slowMatcher{delay: perMatch})
	s.SetParallelism(2)
	for i := 0; i < n; i++ {
		if err := s.Enroll(fmt.Sprintf("subject-%03d", i), "D0", imp.Template); err != nil {
			t.Fatal(err)
		}
	}
	// Uncancelled, the scan costs n/workers * perMatch = 640ms; cancel
	// at 50ms and require the return well under the full-scan cost.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = s.IdentifyDetailedContext(ctx, imp.Template, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("cancelled scan returned after %v", elapsed)
	}
	// Pre-cancelled contexts fail fast on every context-aware entry
	// point.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, _, err := s.IdentifyDetailedContext(pre, imp.Template, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("IdentifyDetailedContext pre-cancelled: %v", err)
	}
	if _, err := s.VerifyContext(pre, "subject-000", imp.Template); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyContext pre-cancelled: %v", err)
	}
	// The store remains fully usable after a cancelled scan.
	cands, err := s.IdentifyContext(context.Background(), imp.Template, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("post-cancel identify returned %d candidates", len(cands))
	}
}

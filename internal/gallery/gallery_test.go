package gallery

import (
	"errors"
	"sync"
	"testing"

	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// enrolledStore builds a store with n subjects enrolled on enrollDev and
// returns matching probes captured on probeDev.
func enrolledStore(t *testing.T, n int, enrollDev, probeDev string) (*Store, []*minutiae.Template, []string) {
	t.Helper()
	cohort := population.NewCohort(rng.New(31337), population.CohortOptions{Size: n})
	ed, ok := sensor.ProfileByID(enrollDev)
	if !ok {
		t.Fatalf("unknown device %s", enrollDev)
	}
	pd, _ := sensor.ProfileByID(probeDev)
	s := New(nil)
	var probes []*minutiae.Template
	var ids []string
	for i, subj := range cohort.Subjects {
		g, err := ed.CaptureSubject(subj, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		id := "subject-" + string(rune('A'+i))
		if err := s.Enroll(id, enrollDev, g.Template); err != nil {
			t.Fatal(err)
		}
		p, err := pd.CaptureSubject(subj, 1, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, p.Template)
		ids = append(ids, id)
	}
	return s, probes, ids
}

func TestEnrollAndLen(t *testing.T) {
	s, _, _ := enrolledStore(t, 5, "D0", "D0")
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestEnrollValidation(t *testing.T) {
	s := New(nil)
	if err := s.Enroll("x", "D0", nil); err == nil {
		t.Fatal("expected nil-template error")
	}
	bad := &minutiae.Template{Width: -1}
	if err := s.Enroll("x", "D0", bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEnrollDuplicate(t *testing.T) {
	s := New(nil)
	tpl := &minutiae.Template{Width: 100, Height: 100, DPI: 500}
	if err := s.Enroll("a", "D0", tpl); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll("a", "D0", tpl); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestEnrollClonesTemplate(t *testing.T) {
	s := New(nil)
	tpl := &minutiae.Template{Width: 100, Height: 100, DPI: 500,
		Minutiae: []minutiae.Minutia{{X: 10, Y: 10, Angle: 1, Kind: minutiae.Ending}}}
	if err := s.Enroll("a", "D0", tpl); err != nil {
		t.Fatal(err)
	}
	tpl.Minutiae[0].X = 99 // caller mutation must not corrupt the store
	res, err := s.Verify("a", &minutiae.Template{Width: 100, Height: 100, DPI: 500,
		Minutiae: []minutiae.Minutia{{X: 10, Y: 10, Angle: 1, Kind: minutiae.Ending}}})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // the verify itself succeeding on the original data is the point
}

func TestRemove(t *testing.T) {
	s, _, ids := enrolledStore(t, 3, "D0", "D0")
	if err := s.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
	if err := s.Remove(ids[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestVerifyGenuineAndUnknown(t *testing.T) {
	s, probes, ids := enrolledStore(t, 4, "D0", "D0")
	res, err := s.Verify(ids[0], probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 7 {
		t.Fatalf("genuine verify score %v", res.Score)
	}
	if _, err := s.Verify("ghost", probes[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestIdentifyFindsTrueIdentityAtRankOne(t *testing.T) {
	s, probes, ids := enrolledStore(t, 8, "D0", "D0")
	hits := 0
	for i, p := range probes {
		cands, err := s.Identify(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 3 {
			t.Fatalf("top-k size %d", len(cands))
		}
		if cands[0].ID == ids[i] {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("rank-1 hits %d/8 on same-device identification", hits)
	}
}

func TestIdentifyKZeroReturnsAll(t *testing.T) {
	s, probes, _ := enrolledStore(t, 4, "D0", "D0")
	cands, err := s.Identify(probes[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want all 4", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestIdentifyNilProbe(t *testing.T) {
	s, _, _ := enrolledStore(t, 2, "D0", "D0")
	if _, err := s.Identify(nil, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRank(t *testing.T) {
	s, probes, ids := enrolledStore(t, 6, "D0", "D0")
	r, err := s.Rank(probes[2], ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 || r > 6 {
		t.Fatalf("rank %d out of range", r)
	}
	r, err = s.Rank(probes[2], "not-enrolled")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("missing identity rank %d, want 0", r)
	}
}

func TestCMCMonotoneAndCrossDeviceLower(t *testing.T) {
	same, sameProbes, sameIDs := enrolledStore(t, 10, "D0", "D0")
	cmcSame, err := ComputeCMC(same, sameProbes, sameIDs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(cmcSame); k++ {
		if cmcSame[k] < cmcSame[k-1] {
			t.Fatal("CMC not monotone")
		}
	}
	if cmcSame.RankOne() < 0.7 {
		t.Fatalf("same-device rank-1 rate %v too low", cmcSame.RankOne())
	}
	// Cross-device identification (probe from the ink cards) cannot beat
	// same-device.
	cross, crossProbes, crossIDs := enrolledStore(t, 10, "D0", "D4")
	cmcCross, err := ComputeCMC(cross, crossProbes, crossIDs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmcCross.RankOne() > cmcSame.RankOne() {
		t.Fatalf("ink probes identified better (%v) than same-device (%v)",
			cmcCross.RankOne(), cmcSame.RankOne())
	}
}

func TestComputeCMCErrors(t *testing.T) {
	s, probes, ids := enrolledStore(t, 2, "D0", "D0")
	if _, err := ComputeCMC(s, probes, ids[:1], 3); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := ComputeCMC(s, probes, ids, 0); err == nil {
		t.Fatal("expected maxRank error")
	}
	if _, err := ComputeCMC(s, nil, nil, 3); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	s, probes, ids := enrolledStore(t, 4, "D0", "D0")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.Identify(probes[w%len(probes)], 2); err != nil {
					panic(err)
				}
				if _, err := s.Verify(ids[w%len(ids)], probes[w%len(probes)]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNewDefaultsMatcher(t *testing.T) {
	s := New(nil)
	if s.matcher == nil {
		t.Fatal("nil matcher not defaulted")
	}
	custom := New(&match.GreedyMatcher{})
	if _, ok := custom.matcher.(*match.GreedyMatcher); !ok {
		t.Fatal("custom matcher not kept")
	}
}

func TestEmptyCMCRankOne(t *testing.T) {
	var c CMC
	if c.RankOne() != 0 {
		t.Fatal("empty CMC rank-1 should be 0")
	}
}

package gallery

import "fpinterop/internal/obs"

// storeMetrics holds the store's metric handles, resolved once in
// SetMetrics so the identify hot path records through plain atomics.
// All record methods are nil-receiver safe: a store without metrics
// pays one branch.
type storeMetrics struct {
	identifies  *obs.Counter   // gallery_identify_total
	scanned     *obs.Counter   // gallery_scanned_total
	shortlist   *obs.Histogram // gallery_shortlist_size
	fallbacks   *obs.Counter   // gallery_index_fallback_total
	enrollments *obs.Gauge     // gallery_enrollments
}

// SetMetrics registers this store's metric families in reg, labeled
// by shard (use the shard name, or a fixed value like "gallery" for
// single-store deployments), and starts recording. Call it at setup
// time, before traffic; a nil registry leaves the store unmetered.
func (s *Store) SetMetrics(reg *obs.Registry, shard string) {
	if reg == nil {
		return
	}
	m := &storeMetrics{
		identifies: reg.CounterVec("gallery_identify_total",
			"Identification searches served.", "shard").With(shard),
		scanned: reg.CounterVec("gallery_scanned_total",
			"Full matcher comparisons run by identification searches.", "shard").With(shard),
		shortlist: reg.HistogramVec("gallery_shortlist_size",
			"Index shortlist size per identification that attempted retrieval.",
			obs.SizeBuckets(), "shard").With(shard),
		fallbacks: reg.CounterVec("gallery_index_fallback_total",
			"Identifications that fell back to the exhaustive scan after the recall guard rejected the shortlist.",
			"shard").With(shard),
		enrollments: reg.GaugeVec("gallery_enrollments",
			"Currently enrolled subjects.", "shard").With(shard),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	m.enrollments.Set(int64(len(s.entries)))
}

// setEnrollments refreshes the enrollment gauge; callers hold s.mu.
func (m *storeMetrics) setEnrollments(n int) {
	if m == nil {
		return
	}
	m.enrollments.Set(int64(n))
}

// recordIdentify accounts one successful identification. attempted
// reports whether the index shortlist path was tried; fellBack that
// the recall guard rejected it.
//
//fpvet:hotpath rides the zero-alloc identify path; atomics only
func (m *storeMetrics) recordIdentify(st IdentifyStats, attempted, fellBack bool) {
	if m == nil {
		return
	}
	m.identifies.Inc()
	m.scanned.Add(int64(st.Scanned))
	if attempted {
		m.shortlist.Observe(int64(st.Shortlist))
	}
	if fellBack {
		m.fallbacks.Inc()
	}
}

package gallery

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"fpinterop/internal/atomicio"
	"fpinterop/internal/minutiae"
)

// Persistence container format:
//
//	0   4  magic "FPGD"
//	4   2  version (1)
//	6   4  entry count
//	then per entry:
//	    2  id length, id bytes
//	    2  device-id length, device-id bytes
//	    4  template length, template bytes (minutiae codec)
var (
	storeMagic = [4]byte{'F', 'P', 'G', 'D'}

	// ErrBadStoreFormat reports a stream that is not a serialized gallery.
	ErrBadStoreFormat = errors.New("gallery: bad store format")
)

const storeVersion = 1

// SaveTo serializes every enrollment to w in insertion order.
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return fmt.Errorf("gallery: write magic: %w", err)
	}
	var u16 [2]byte
	var u32 [4]byte
	binary.BigEndian.PutUint16(u16[:], storeVersion)
	if _, err := bw.Write(u16[:]); err != nil {
		return fmt.Errorf("gallery: write version: %w", err)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(s.order)))
	if _, err := bw.Write(u32[:]); err != nil {
		return fmt.Errorf("gallery: write count: %w", err)
	}
	writeStr := func(v string) error {
		if len(v) > 1<<16-1 {
			return fmt.Errorf("gallery: string too long (%d bytes)", len(v))
		}
		binary.BigEndian.PutUint16(u16[:], uint16(len(v)))
		if _, err := bw.Write(u16[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	}
	for _, id := range s.order {
		e := s.entries[id]
		if err := writeStr(e.ID); err != nil {
			return fmt.Errorf("gallery: write id: %w", err)
		}
		if err := writeStr(e.DeviceID); err != nil {
			return fmt.Errorf("gallery: write device: %w", err)
		}
		data, err := minutiae.Marshal(e.Template)
		if err != nil {
			return fmt.Errorf("gallery: marshal %q: %w", e.ID, err)
		}
		binary.BigEndian.PutUint32(u32[:], uint32(len(data)))
		if _, err := bw.Write(u32[:]); err != nil {
			return fmt.Errorf("gallery: write template length: %w", err)
		}
		if _, err := bw.Write(data); err != nil {
			return fmt.Errorf("gallery: write template: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("gallery: flush: %w", err)
	}
	return nil
}

// SaveFile serializes the store to path crash-safely: the stream is
// staged in a temporary file in the same directory and atomically
// renamed into place, so a crash mid-snapshot can never leave a
// truncated gallery on disk.
func (s *Store) SaveFile(path string) error {
	return atomicio.WriteFile(path, 0o644, s.SaveTo)
}

// ReadEntries decodes a serialized gallery stream (the SaveTo format)
// into its entries without touching any store — the decode half of
// LoadFrom, split out so WAL recovery can merge a snapshot with
// replayed log records before building a store from the survivors in
// one pass.
func ReadEntries(r io.Reader) ([]Export, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gallery: read magic: %w", err)
	}
	if magic != storeMagic {
		return nil, ErrBadStoreFormat
	}
	var u16 [2]byte
	var u32 [4]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("gallery: read version: %w", err)
	}
	if v := binary.BigEndian.Uint16(u16[:]); v != storeVersion {
		return nil, fmt.Errorf("gallery: unsupported store version %d", v)
	}
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("gallery: read count: %w", err)
	}
	count := binary.BigEndian.Uint32(u32[:])
	readStr := func() (string, error) {
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.BigEndian.Uint16(u16[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	out := make([]Export, 0, count)
	for i := uint32(0); i < count; i++ {
		id, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("gallery: read entry %d id: %w", i, err)
		}
		dev, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("gallery: read entry %d device: %w", i, err)
		}
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, fmt.Errorf("gallery: read entry %d length: %w", i, err)
		}
		n := binary.BigEndian.Uint32(u32[:])
		if n > 1<<20 {
			return nil, fmt.Errorf("gallery: entry %d template of %d bytes exceeds cap", i, n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("gallery: read entry %d template: %w", i, err)
		}
		tpl, err := minutiae.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("gallery: decode entry %d (%q): %w", i, id, err)
		}
		out = append(out, Export{ID: id, DeviceID: dev, Template: tpl})
	}
	return out, nil
}

// LoadFrom replaces the store's contents with the serialized gallery
// read from r.
func (s *Store) LoadFrom(r io.Reader) error {
	entries, err := ReadEntries(r)
	if err != nil {
		return err
	}
	if err := s.ReplaceAll(entries); err != nil {
		return fmt.Errorf("gallery: load: %w", err)
	}
	return nil
}

// ReplaceAll swaps the store's contents for the given entries in one
// bulk pass: matcher preparations are rebuilt across all CPUs and the
// retrieval index (when enabled) is rebuilt exactly once, instead of
// re-deriving both per record the way replaying a log through Enroll
// would. The store takes ownership of the templates — they come from a
// decode or a migration stream, so the defensive clone Enroll performs
// is skipped. On error the store is left untouched.
func (s *Store) ReplaceAll(entries []Export) error {
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.Template == nil {
			return fmt.Errorf("gallery: replace %q: nil template", e.ID)
		}
		if seen[e.ID] {
			return fmt.Errorf("gallery: duplicate id %q in store", e.ID)
		}
		seen[e.ID] = true
	}
	built := make([]*Entry, len(entries))
	for i, e := range entries {
		built[i] = &Entry{ID: e.ID, DeviceID: e.DeviceID, Template: e.Template}
	}
	if s.hough != nil && len(built) > 0 {
		// One parallel preparation pass over the whole load — the bulk
		// analogue of the per-enrollment Prepare cache.
		workers := runtime.GOMAXPROCS(0)
		if workers > len(built) {
			workers = len(built)
		}
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next int
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(built) {
						return
					}
					built[i].prep = s.hough.Prepare(built[i].Template)
				}
			}()
		}
		wg.Wait()
	}
	byID := make(map[string]*Entry, len(built))
	order := make([]string, len(built))
	for i, e := range built {
		byID[e.ID] = e
		order[i] = e.ID
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx != nil {
		// The retrieval index must mirror the enrolled set exactly;
		// rebuild it once from the new entries.
		s.idx.Reset()
		for _, id := range order {
			if err := s.idx.Add(id, byID[id].Template); err != nil {
				return fmt.Errorf("gallery: index rebuild: %w", err)
			}
		}
	}
	s.entries = byID
	s.order = order
	s.met.setEnrollments(len(s.entries))
	return nil
}

// LoadFile loads a gallery snapshot from path (a file written by
// SaveFile or SaveTo).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("gallery: open %s: %w", path, err)
	}
	defer f.Close()
	return s.LoadFrom(f)
}

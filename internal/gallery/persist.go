package gallery

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fpinterop/internal/minutiae"
)

// Persistence container format:
//
//	0   4  magic "FPGD"
//	4   2  version (1)
//	6   4  entry count
//	then per entry:
//	    2  id length, id bytes
//	    2  device-id length, device-id bytes
//	    4  template length, template bytes (minutiae codec)
var (
	storeMagic = [4]byte{'F', 'P', 'G', 'D'}

	// ErrBadStoreFormat reports a stream that is not a serialized gallery.
	ErrBadStoreFormat = errors.New("gallery: bad store format")
)

const storeVersion = 1

// SaveTo serializes every enrollment to w in insertion order.
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return fmt.Errorf("gallery: write magic: %w", err)
	}
	var u16 [2]byte
	var u32 [4]byte
	binary.BigEndian.PutUint16(u16[:], storeVersion)
	if _, err := bw.Write(u16[:]); err != nil {
		return fmt.Errorf("gallery: write version: %w", err)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(s.order)))
	if _, err := bw.Write(u32[:]); err != nil {
		return fmt.Errorf("gallery: write count: %w", err)
	}
	writeStr := func(v string) error {
		if len(v) > 1<<16-1 {
			return fmt.Errorf("gallery: string too long (%d bytes)", len(v))
		}
		binary.BigEndian.PutUint16(u16[:], uint16(len(v)))
		if _, err := bw.Write(u16[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(v)
		return err
	}
	for _, id := range s.order {
		e := s.entries[id]
		if err := writeStr(e.ID); err != nil {
			return fmt.Errorf("gallery: write id: %w", err)
		}
		if err := writeStr(e.DeviceID); err != nil {
			return fmt.Errorf("gallery: write device: %w", err)
		}
		data, err := minutiae.Marshal(e.Template)
		if err != nil {
			return fmt.Errorf("gallery: marshal %q: %w", e.ID, err)
		}
		binary.BigEndian.PutUint32(u32[:], uint32(len(data)))
		if _, err := bw.Write(u32[:]); err != nil {
			return fmt.Errorf("gallery: write template length: %w", err)
		}
		if _, err := bw.Write(data); err != nil {
			return fmt.Errorf("gallery: write template: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("gallery: flush: %w", err)
	}
	return nil
}

// LoadFrom replaces the store's contents with the serialized gallery
// read from r.
func (s *Store) LoadFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("gallery: read magic: %w", err)
	}
	if magic != storeMagic {
		return ErrBadStoreFormat
	}
	var u16 [2]byte
	var u32 [4]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return fmt.Errorf("gallery: read version: %w", err)
	}
	if v := binary.BigEndian.Uint16(u16[:]); v != storeVersion {
		return fmt.Errorf("gallery: unsupported store version %d", v)
	}
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return fmt.Errorf("gallery: read count: %w", err)
	}
	count := binary.BigEndian.Uint32(u32[:])
	readStr := func() (string, error) {
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.BigEndian.Uint16(u16[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	entries := make(map[string]*Entry, count)
	order := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		id, err := readStr()
		if err != nil {
			return fmt.Errorf("gallery: read entry %d id: %w", i, err)
		}
		dev, err := readStr()
		if err != nil {
			return fmt.Errorf("gallery: read entry %d device: %w", i, err)
		}
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return fmt.Errorf("gallery: read entry %d length: %w", i, err)
		}
		n := binary.BigEndian.Uint32(u32[:])
		if n > 1<<20 {
			return fmt.Errorf("gallery: entry %d template of %d bytes exceeds cap", i, n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(br, data); err != nil {
			return fmt.Errorf("gallery: read entry %d template: %w", i, err)
		}
		tpl, err := minutiae.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("gallery: decode entry %d (%q): %w", i, id, err)
		}
		if _, dup := entries[id]; dup {
			return fmt.Errorf("gallery: duplicate id %q in store", id)
		}
		e := &Entry{ID: id, DeviceID: dev, Template: tpl}
		if s.hough != nil {
			// Rebuild the hot-path preparation Enroll would have cached.
			e.prep = s.hough.Prepare(tpl)
		}
		entries[id] = e
		order = append(order, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = entries
	s.order = order
	if s.idx != nil {
		// The retrieval index must mirror the enrolled set exactly;
		// rebuild it from the loaded entries.
		s.idx.Reset()
		for _, id := range order {
			if err := s.idx.Add(id, entries[id].Template); err != nil {
				return fmt.Errorf("gallery: index rebuild: %w", err)
			}
		}
	}
	return nil
}

package gallery

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s, probes, ids := enrolledStore(t, 5, "D0", "D0")
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(nil)
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d of %d entries", restored.Len(), s.Len())
	}
	// Identification behaves identically after the round trip.
	orig, err := s.Identify(probes[2], 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := restored.Identify(probes[2], 1)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0].ID != back[0].ID {
		t.Fatalf("identification changed after round trip: %+v vs %+v", orig[0], back[0])
	}
	// The template codec quantizes coordinates to whole pixels and angles
	// to 16 bits, so scores may drift slightly — but not materially.
	if d := orig[0].Score - back[0].Score; d > 1.5 || d < -1.5 {
		t.Fatalf("score drift %v too large after round trip", d)
	}
	// Device metadata survives.
	cands, _ := restored.Identify(probes[0], 1)
	if cands[0].DeviceID != "D0" {
		t.Fatal("device metadata lost")
	}
	_ = ids
}

func TestLoadFromRejectsGarbage(t *testing.T) {
	s := New(nil)
	if err := s.LoadFrom(strings.NewReader("not a gallery")); !errors.Is(err, ErrBadStoreFormat) {
		t.Fatalf("want ErrBadStoreFormat, got %v", err)
	}
}

func TestLoadFromTruncated(t *testing.T) {
	s, _, _ := enrolledStore(t, 3, "D0", "D0")
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{3, 6, 10, len(data) / 2, len(data) - 1} {
		fresh := New(nil)
		if err := fresh.LoadFrom(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func TestLoadFromBadVersion(t *testing.T) {
	s, _, _ := enrolledStore(t, 1, "D0", "D0")
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] = 99
	if err := New(nil).LoadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSaveEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New(nil).SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(nil)
	if err := restored.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatal("empty store grew entries")
	}
}

func TestLoadFromRebuildsIndex(t *testing.T) {
	s, probes, _ := enrolledStore(t, 20, "D0", "D0")
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(nil)
	if err := restored.EnableIndex(IndexOptions{MinCandidates: 2}); err != nil {
		t.Fatal(err)
	}
	if st, _ := restored.IndexStats(); st.Templates != 0 {
		t.Fatalf("fresh index not empty: %+v", st)
	}
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st, ok := restored.IndexStats()
	if !ok || st.Templates != 20 || st.Postings == 0 {
		t.Fatalf("index not rebuilt by LoadFrom: %+v ok=%v", st, ok)
	}
	// Indexed and exhaustive identification agree on top-1 for the
	// round-tripped population.
	for i, p := range probes {
		indexed, stats, err := restored.IdentifyDetailed(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Indexed {
			t.Fatalf("probe %d not served by the rebuilt index", i)
		}
		restored.DisableIndex()
		exhaustive, err := restored.Identify(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.EnableIndex(IndexOptions{MinCandidates: 2}); err != nil {
			t.Fatal(err)
		}
		if indexed[0].ID != exhaustive[0].ID {
			t.Fatalf("probe %d: indexed top-1 %q, exhaustive top-1 %q",
				i, indexed[0].ID, exhaustive[0].ID)
		}
	}
	// A second load (e.g. restoring a different snapshot) replaces the
	// index contents instead of accumulating duplicates.
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st, _ := restored.IndexStats(); st.Templates != 20 {
		t.Fatalf("index accumulated across loads: %+v", st)
	}
}

package gallery

// Scan cursor pagination under mutation. The cursor is an ID, not an
// offset, so entries removed mid-scan must never shift, repeat, or
// skip the survivors — the properties the shard rebalancer and the
// replica bootstrap both lean on.

import (
	"fmt"
	"sync"
	"testing"

	"fpinterop/internal/minutiae"
)

func scanFixtureStore(t *testing.T, n int) (*Store, []string) {
	t.Helper()
	s := New(nil)
	tpl := &minutiae.Template{Width: 100, Height: 100, DPI: 500}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("scan-%03d", i)
		if err := s.Enroll(ids[i], "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	return s, ids
}

func TestScanCursorPastDeletedSubject(t *testing.T) {
	s, ids := scanFixtureStore(t, 10)
	page := s.Scan("", 3)
	if len(page) != 3 || page[2].ID != ids[2] {
		t.Fatalf("first page %v", page)
	}
	// Delete the exact entry the cursor points at. The next page must
	// resume right after where it *was*: no skip to ids[4], no repeat of
	// ids[0..1].
	cursor := page[2].ID
	if err := s.Remove(cursor); err != nil {
		t.Fatal(err)
	}
	next := s.Scan(cursor, 3)
	if len(next) != 3 {
		t.Fatalf("page after deleted cursor: %v", next)
	}
	for i, want := range ids[3:6] {
		if next[i].ID != want {
			t.Fatalf("page after deleted cursor: entry %d is %q, want %q", i, next[i].ID, want)
		}
	}
	// Deleting an entry *behind* the cursor must not make survivors
	// reappear either.
	if err := s.Remove(ids[0]); err != nil {
		t.Fatal(err)
	}
	again := s.Scan(next[2].ID, 100)
	for _, e := range again {
		if e.ID <= next[2].ID {
			t.Fatalf("entry %q repeated after a behind-cursor delete", e.ID)
		}
	}
}

func TestScanEmptyFinalPage(t *testing.T) {
	s, ids := scanFixtureStore(t, 4)
	// A cursor at the last ID yields the canonical empty terminator.
	if page := s.Scan(ids[3], 10); len(page) != 0 {
		t.Fatalf("page past the end: %v", page)
	}
	// A full page that consumes the remainder exactly still terminates
	// with an empty page, not an error or a repeat.
	page := s.Scan(ids[1], 2)
	if len(page) != 2 || page[1].ID != ids[3] {
		t.Fatalf("exact-fit page: %v", page)
	}
	if tail := s.Scan(page[1].ID, 2); len(tail) != 0 {
		t.Fatalf("terminator after exact fit: %v", tail)
	}
	// Everything after the cursor removed mid-scan: the final page is
	// empty instead of erroring on the vanished range.
	if err := s.Remove(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}
	if tail := s.Scan(ids[1], 5); len(tail) != 0 {
		t.Fatalf("final page over a removed range: %v", tail)
	}
}

func TestScanUnderConcurrentRemove(t *testing.T) {
	const n = 200
	s, ids := scanFixtureStore(t, n)

	// Remover: deletes every third entry while the scanner pages.
	var wg sync.WaitGroup
	wg.Add(1)
	removed := make(map[string]bool, n/3)
	for i := 0; i < n; i += 3 {
		removed[ids[i]] = true
	}
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 3 {
			if err := s.Remove(ids[i]); err != nil {
				t.Errorf("remove %s: %v", ids[i], err)
			}
		}
	}()

	seen := make(map[string]int)
	var order []string
	cursor := ""
	for {
		page := s.Scan(cursor, 7)
		if len(page) == 0 {
			break
		}
		for _, e := range page {
			seen[e.ID]++
			order = append(order, e.ID)
		}
		cursor = page[len(page)-1].ID
	}
	wg.Wait()

	for id, count := range seen {
		if count > 1 {
			t.Errorf("entry %q returned %d times", id, count)
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("scan went backwards: %q after %q", order[i], order[i-1])
		}
	}
	// Entries never removed must all be seen exactly once; removed ones
	// may appear at most once depending on timing.
	for _, id := range ids {
		if removed[id] {
			continue
		}
		if seen[id] != 1 {
			t.Errorf("surviving entry %q seen %d times, want exactly 1", id, seen[id])
		}
	}
}

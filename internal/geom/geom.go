// Package geom provides the 2-D geometry used throughout the fingerprint
// pipeline: points, rigid and affine transforms, angle arithmetic on the
// half-open circle, and thin-plate splines for smooth non-rigid warps.
//
// Coordinates are in millimetres at the physical layer and in pixels at the
// image layer; geom is unit-agnostic.
package geom

import (
	"math"
)

// Point is a 2-D point or vector.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the inner product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Angle returns atan2(Y, X) in (−π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	c, s := math.Cos(theta), math.Sin(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// NormalizeAngle wraps theta into (−π, π].
func NormalizeAngle(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the signed smallest difference a−b wrapped into
// (−π, π].
func AngleDiff(a, b float64) float64 {
	return NormalizeAngle(a - b)
}

// OrientationDiff returns the smallest absolute difference between two
// ridge orientations, which live on the half-circle [0, π) (an orientation
// of θ is indistinguishable from θ+π).
func OrientationDiff(a, b float64) float64 {
	d := math.Mod(a-b, math.Pi)
	if d < 0 {
		d += math.Pi
	}
	if d > math.Pi/2 {
		d = math.Pi - d
	}
	return d
}

// Rigid is a rigid-body transform: rotation by Theta about the origin,
// then translation by T, with optional isotropic scale S (S=1 is a true
// rigid motion; the capture models use small scale factors for dpi error).
type Rigid struct {
	Theta float64
	T     Point
	S     float64
}

// IdentityRigid returns the identity transform.
func IdentityRigid() Rigid { return Rigid{S: 1} }

// Apply maps p through r.
func (r Rigid) Apply(p Point) Point {
	s := r.S
	if s == 0 {
		s = 1
	}
	return p.Rotate(r.Theta).Scale(s).Add(r.T)
}

// ApplyAngle maps a direction through the rotation component of r.
func (r Rigid) ApplyAngle(theta float64) float64 {
	return NormalizeAngle(theta + r.Theta)
}

// Invert returns the inverse transform.
func (r Rigid) Invert() Rigid {
	s := r.S
	if s == 0 {
		s = 1
	}
	inv := Rigid{Theta: -r.Theta, S: 1 / s}
	inv.T = r.T.Scale(-1 / s).Rotate(-r.Theta)
	return inv
}

// Compose returns the transform equivalent to applying r first, then o.
func (r Rigid) Compose(o Rigid) Rigid {
	rs := r.S
	if rs == 0 {
		rs = 1
	}
	os := o.S
	if os == 0 {
		os = 1
	}
	return Rigid{
		Theta: NormalizeAngle(r.Theta + o.Theta),
		S:     rs * os,
		T:     o.Apply(r.T),
	}
}

// Affine is a general 2-D affine transform:
//
//	x' = A·x + B·y + C
//	y' = D·x + E·y + F
type Affine struct {
	A, B, C float64
	D, E, F float64
}

// IdentityAffine returns the identity affine transform.
func IdentityAffine() Affine { return Affine{A: 1, E: 1} }

// Apply maps p through a.
func (a Affine) Apply(p Point) Point {
	return Point{
		X: a.A*p.X + a.B*p.Y + a.C,
		Y: a.D*p.X + a.E*p.Y + a.F,
	}
}

// Det returns the determinant of the linear part.
func (a Affine) Det() float64 { return a.A*a.E - a.B*a.D }

// Invert returns the inverse affine transform and whether it exists.
func (a Affine) Invert() (Affine, bool) {
	det := a.Det()
	if math.Abs(det) < 1e-12 {
		return Affine{}, false
	}
	inv := Affine{
		A: a.E / det, B: -a.B / det,
		D: -a.D / det, E: a.A / det,
	}
	inv.C = -(inv.A*a.C + inv.B*a.F)
	inv.F = -(inv.D*a.C + inv.E*a.F)
	return inv, true
}

// FromRigid converts a rigid transform to its affine representation.
func FromRigid(r Rigid) Affine {
	s := r.S
	if s == 0 {
		s = 1
	}
	c, sn := math.Cos(r.Theta)*s, math.Sin(r.Theta)*s
	return Affine{A: c, B: -sn, C: r.T.X, D: sn, E: c, F: r.T.Y}
}

// Rect is an axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside (or on the border of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Intersect returns the intersection of two rectangles and whether it is
// non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.MinX >= out.MaxX || out.MinY >= out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// CenteredRect returns a rectangle of the given width and height centred
// on c.
func CenteredRect(c Point, width, height float64) Rect {
	return Rect{
		MinX: c.X - width/2, MaxX: c.X + width/2,
		MinY: c.Y - height/2, MaxY: c.Y + height/2,
	}
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pointNear(a, b Point, tol float64) bool {
	return near(a.X, b.X, tol) && near(a.Y, b.Y, tol)
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("Dot = %v", got)
	}
	if !near(Point{3, 4}.Norm(), 5, 1e-12) {
		t.Fatal("Norm wrong")
	}
	if !near(Point{0, 0}.Dist(Point{3, 4}), 5, 1e-12) {
		t.Fatal("Dist wrong")
	}
}

func TestRotate(t *testing.T) {
	got := Point{1, 0}.Rotate(math.Pi / 2)
	if !pointNear(got, Point{0, 1}, 1e-12) {
		t.Fatalf("Rotate = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !near(got, c.want, 1e-12) {
			t.Fatalf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) || math.Abs(theta) > 1e6 {
			return true
		}
		got := NormalizeAngle(theta)
		if got <= -math.Pi || got > math.Pi {
			return false
		}
		// Same point on the circle.
		return near(math.Sin(got), math.Sin(theta), 1e-6) && near(math.Cos(got), math.Cos(theta), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !near(got, 0.2, 1e-12) {
		t.Fatalf("AngleDiff = %v", got)
	}
	// Wraparound: 179° vs -179° differ by 2°, not 358°.
	a, b := math.Pi-0.01, -math.Pi+0.01
	if got := AngleDiff(a, b); !near(math.Abs(got), 0.02, 1e-9) {
		t.Fatalf("AngleDiff wrap = %v", got)
	}
}

func TestOrientationDiff(t *testing.T) {
	// Orientations are mod π: 0 and π are the same orientation.
	if got := OrientationDiff(0, math.Pi); !near(got, 0, 1e-12) {
		t.Fatalf("OrientationDiff(0, π) = %v", got)
	}
	if got := OrientationDiff(0, math.Pi/2); !near(got, math.Pi/2, 1e-12) {
		t.Fatalf("OrientationDiff(0, π/2) = %v", got)
	}
	if got := OrientationDiff(0.1, math.Pi-0.1); !near(got, 0.2, 1e-9) {
		t.Fatalf("OrientationDiff near-wrap = %v", got)
	}
}

func TestRigidApplyInvertRoundTrip(t *testing.T) {
	f := func(theta, tx, ty, px, py float64) bool {
		if bad(theta) || bad(tx) || bad(ty) || bad(px) || bad(py) {
			return true
		}
		r := Rigid{Theta: theta, T: Point{tx, ty}, S: 1}
		p := Point{px, py}
		back := r.Invert().Apply(r.Apply(p))
		return pointNear(back, p, 1e-6*(1+p.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func bad(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e4
}

func TestRigidZeroScaleActsAsIdentityScale(t *testing.T) {
	r := Rigid{Theta: 0, T: Point{1, 1}} // S == 0 ⇒ treated as 1
	if got := r.Apply(Point{2, 3}); !pointNear(got, Point{3, 4}, 1e-12) {
		t.Fatalf("zero-scale Apply = %v", got)
	}
}

func TestRigidCompose(t *testing.T) {
	r1 := Rigid{Theta: math.Pi / 2, T: Point{1, 0}, S: 1}
	r2 := Rigid{Theta: math.Pi / 2, T: Point{0, 1}, S: 1}
	comp := r1.Compose(r2)
	p := Point{1, 1}
	want := r2.Apply(r1.Apply(p))
	if got := comp.Apply(p); !pointNear(got, want, 1e-9) {
		t.Fatalf("Compose: got %v, want %v", got, want)
	}
}

func TestRigidApplyAngle(t *testing.T) {
	r := Rigid{Theta: math.Pi, S: 1}
	if got := r.ApplyAngle(math.Pi / 2); !near(got, -math.Pi/2, 1e-12) {
		t.Fatalf("ApplyAngle = %v", got)
	}
}

func TestAffineIdentity(t *testing.T) {
	a := IdentityAffine()
	p := Point{3.5, -2}
	if got := a.Apply(p); got != p {
		t.Fatalf("identity moved point: %v", got)
	}
	if a.Det() != 1 {
		t.Fatal("identity determinant != 1")
	}
}

func TestAffineInvert(t *testing.T) {
	a := Affine{A: 2, B: 1, C: 3, D: 0, E: 1, F: -2}
	inv, ok := a.Invert()
	if !ok {
		t.Fatal("expected invertible")
	}
	p := Point{1.5, 2.5}
	if got := inv.Apply(a.Apply(p)); !pointNear(got, p, 1e-9) {
		t.Fatalf("Invert round trip = %v", got)
	}
}

func TestAffineSingular(t *testing.T) {
	a := Affine{A: 1, B: 2, D: 2, E: 4}
	if _, ok := a.Invert(); ok {
		t.Fatal("singular affine reported invertible")
	}
}

func TestFromRigidMatchesRigidApply(t *testing.T) {
	r := Rigid{Theta: 0.3, T: Point{2, -1}, S: 1.05}
	a := FromRigid(r)
	p := Point{4, 5}
	if got, want := a.Apply(p), r.Apply(p); !pointNear(got, want, 1e-9) {
		t.Fatalf("FromRigid mismatch: %v vs %v", got, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Fatal("rect dims wrong")
	}
	if r.Center() != (Point{2, 1}) {
		t.Fatal("center wrong")
	}
	if !r.Contains(Point{4, 2}) || r.Contains(Point{4.01, 1}) {
		t.Fatal("contains wrong")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got, ok := a.Intersect(b)
	if !ok || got != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersect = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersect(Rect{5, 5, 6, 6}); ok {
		t.Fatal("disjoint rects intersected")
	}
}

func TestCenteredRect(t *testing.T) {
	r := CenteredRect(Point{1, 1}, 2, 4)
	if r != (Rect{0, -1, 2, 3}) {
		t.Fatalf("CenteredRect = %v", r)
	}
}

func TestTPSInterpolatesControlPoints(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	dst := []Point{{0.5, 0.2}, {10.1, -0.3}, {-0.2, 10.4}, {9.8, 9.9}, {5.5, 4.7}}
	tps, err := FitTPS(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got := tps.Apply(src[i]); !pointNear(got, dst[i], 1e-6) {
			t.Fatalf("control point %d: got %v, want %v", i, got, dst[i])
		}
	}
}

func TestTPSIdentityWarpIsIdentityEverywhere(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	tps, err := FitTPS(src, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{{3, 7}, {5, 5}, {-2, 4}, {12, 12}} {
		if got := tps.Apply(p); !pointNear(got, p, 1e-6) {
			t.Fatalf("identity TPS moved %v to %v", p, got)
		}
	}
	if e := tps.BendingEnergy(); math.Abs(e) > 1e-9 {
		t.Fatalf("identity warp has bending energy %v", e)
	}
}

func TestTPSAffineWarpHasZeroBendingEnergy(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {3, 4}}
	aff := Affine{A: 1.1, B: 0.1, C: 2, D: -0.05, E: 0.95, F: -1}
	dst := make([]Point, len(src))
	for i, p := range src {
		dst[i] = aff.Apply(p)
	}
	tps, err := FitTPS(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := tps.BendingEnergy(); math.Abs(e) > 1e-6 {
		t.Fatalf("affine warp bending energy = %v, want ~0", e)
	}
	// And it should reproduce the affine map away from control points.
	p := Point{7, 2}
	if got := tps.Apply(p); !pointNear(got, aff.Apply(p), 1e-6) {
		t.Fatalf("affine TPS extrapolation wrong: %v", got)
	}
}

func TestTPSNonAffineHasPositiveBendingEnergy(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	dst := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 8}} // bump the middle
	tps, err := FitTPS(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := tps.BendingEnergy(); e <= 0 {
		t.Fatalf("non-affine warp bending energy = %v, want > 0", e)
	}
}

func TestTPSRegularizationSmooths(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	dst := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 9}}
	exact, err := FitTPS(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := FitTPS(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smooth.BendingEnergy() >= exact.BendingEnergy() {
		t.Fatalf("regularized energy %v not below exact %v",
			smooth.BendingEnergy(), exact.BendingEnergy())
	}
	// The regularized fit should NOT interpolate the bumped point exactly.
	if got := smooth.Apply(Point{5, 5}); near(got.Y, 9, 1e-6) {
		t.Fatal("regularized spline interpolated exactly; lambda had no effect")
	}
}

func TestTPSErrors(t *testing.T) {
	if _, err := FitTPS([]Point{{0, 0}}, []Point{{0, 0}, {1, 1}}, 0); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := FitTPS([]Point{{0, 0}, {1, 1}}, []Point{{0, 0}, {1, 1}}, 0); err == nil {
		t.Fatal("expected too-few-points error")
	}
	// Collinear control points make the system singular.
	col := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if _, err := FitTPS(col, col, 0); err == nil {
		t.Fatal("expected singular error for collinear points")
	}
}

func TestGridWarp(t *testing.T) {
	bounds := Rect{0, 0, 20, 20}
	warp, err := GridWarp(bounds, 4, 4, func(p Point) Point {
		return Point{0.5 * math.Sin(p.Y/5), 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The warp should displace interior points horizontally by roughly the
	// displacement function.
	p := Point{10, 10}
	got := warp.Apply(p)
	want := p.Add(Point{0.5 * math.Sin(2.0), 0})
	if !pointNear(got, want, 0.2) {
		t.Fatalf("GridWarp(%v) = %v, want ≈ %v", p, got, want)
	}
}

func TestGridWarpTooSmall(t *testing.T) {
	if _, err := GridWarp(Rect{0, 0, 1, 1}, 1, 4, func(p Point) Point { return Point{} }); err == nil {
		t.Fatal("expected grid-size error")
	}
}

func TestTPSControlPointsCopied(t *testing.T) {
	src := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	tps, err := FitTPS(src, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp := tps.ControlPoints()
	cp[0] = Point{99, 99}
	if tps.ControlPoints()[0] == (Point{99, 99}) {
		t.Fatal("ControlPoints exposes internal storage")
	}
}

package geom

import (
	"fmt"
	"math"

	"fpinterop/internal/linalg"
)

// TPS is a 2-D thin-plate spline mapping fitted from control point
// correspondences. Thin-plate splines are the standard model for the smooth
// non-rigid distortion introduced by fingerprint sensors (Ross & Nadgir,
// "A calibration model for fingerprint sensor interoperability", SPIE 2006),
// and are used here both to *generate* device-characteristic distortion and
// to *compensate* for it in the calibration extension.
type TPS struct {
	src    []Point    // control points in the source frame
	wx, wy []float64  // radial basis weights for x and y
	ax, ay [3]float64 // affine part: a0 + a1·x + a2·y
	lambda float64
}

// tpsKernel is the thin-plate radial basis U(r) = r² log r².
func tpsKernel(r2 float64) float64 {
	if r2 <= 0 {
		return 0
	}
	return r2 * math.Log(r2)
}

// FitTPS fits a thin-plate spline that maps src[i] → dst[i]. lambda ≥ 0 is
// the bending-energy regularizer: 0 interpolates exactly, larger values
// produce smoother, approximate warps (useful when correspondences are
// noisy, as in inter-sensor calibration from matched minutiae).
//
// At least 3 non-collinear control points are required.
func FitTPS(src, dst []Point, lambda float64) (*TPS, error) {
	n := len(src)
	if n != len(dst) {
		return nil, fmt.Errorf("geom: FitTPS point count mismatch %d != %d", n, len(dst))
	}
	if n < 3 {
		return nil, fmt.Errorf("geom: FitTPS needs >= 3 control points, got %d", n)
	}
	// Build the (n+3)×(n+3) system:
	//   [K+λI  P] [w]   [v]
	//   [Pᵀ    0] [a] = [0]
	size := n + 3
	m := linalg.NewMatrix(size, size)
	// Mean squared distance normalizes lambda so its effect is scale-free.
	alpha := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			alpha += src[i].Dist(src[j])
		}
	}
	if pairs := float64(n*(n-1)) / 2; pairs > 0 {
		alpha /= pairs
	}
	reg := lambda * alpha * alpha
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := src[i].Sub(src[j])
			m.Set(i, j, tpsKernel(d.Dot(d)))
		}
		m.Set(i, i, m.At(i, i)+reg)
		m.Set(i, n, 1)
		m.Set(i, n+1, src[i].X)
		m.Set(i, n+2, src[i].Y)
		m.Set(n, i, 1)
		m.Set(n+1, i, src[i].X)
		m.Set(n+2, i, src[i].Y)
	}
	bx := make([]float64, size)
	by := make([]float64, size)
	for i := 0; i < n; i++ {
		bx[i] = dst[i].X
		by[i] = dst[i].Y
	}
	solX, err := linalg.Solve(m, bx)
	if err != nil {
		return nil, fmt.Errorf("geom: TPS x solve: %w", err)
	}
	solY, err := linalg.Solve(m, by)
	if err != nil {
		return nil, fmt.Errorf("geom: TPS y solve: %w", err)
	}
	t := &TPS{
		src:    append([]Point(nil), src...),
		wx:     solX[:n],
		wy:     solY[:n],
		lambda: lambda,
	}
	copy(t.ax[:], solX[n:])
	copy(t.ay[:], solY[n:])
	return t, nil
}

// Apply maps p through the fitted spline.
func (t *TPS) Apply(p Point) Point {
	x := t.ax[0] + t.ax[1]*p.X + t.ax[2]*p.Y
	y := t.ay[0] + t.ay[1]*p.X + t.ay[2]*p.Y
	for i, c := range t.src {
		d := p.Sub(c)
		u := tpsKernel(d.Dot(d))
		x += t.wx[i] * u
		y += t.wy[i] * u
	}
	return Point{x, y}
}

// BendingEnergy returns a scalar proportional to the integral bending
// energy of the spline — a measure of how non-affine the warp is. Identity
// and pure affine warps have zero bending energy.
func (t *TPS) BendingEnergy() float64 {
	// E = wᵀ K w for each coordinate.
	n := len(t.src)
	e := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := t.src[i].Sub(t.src[j])
			u := tpsKernel(d.Dot(d))
			e += u * (t.wx[i]*t.wx[j] + t.wy[i]*t.wy[j])
		}
	}
	return e
}

// ControlPoints returns a copy of the source control points.
func (t *TPS) ControlPoints() []Point {
	return append([]Point(nil), t.src...)
}

// GridWarp builds a TPS from a regular grid of control points over bounds,
// displaced by the provided function. It is the generator used to give each
// synthetic sensor its characteristic smooth distortion field.
func GridWarp(bounds Rect, nx, ny int, displace func(p Point) Point) (*TPS, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("geom: GridWarp needs at least a 2x2 grid, got %dx%d", nx, ny)
	}
	src := make([]Point, 0, nx*ny)
	dst := make([]Point, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			p := Point{
				X: bounds.MinX + bounds.Width()*float64(ix)/float64(nx-1),
				Y: bounds.MinY + bounds.Height()*float64(iy)/float64(ny-1),
			}
			src = append(src, p)
			dst = append(dst, p.Add(displace(p)))
		}
	}
	return FitTPS(src, dst, 0)
}

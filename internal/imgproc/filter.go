package imgproc

import (
	"fmt"
	"math"
)

// ConvolveSeparable applies a separable filter: kx along rows, then ky
// along columns, with replicate border padding. Kernel lengths must be odd.
func ConvolveSeparable(im *Image, kx, ky []float64) (*Image, error) {
	if len(kx)%2 == 0 || len(ky)%2 == 0 {
		return nil, fmt.Errorf("imgproc: separable kernels must have odd length, got %d and %d", len(kx), len(ky))
	}
	rx := len(kx) / 2
	tmp := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sum := 0.0
			for k := -rx; k <= rx; k++ {
				sum += kx[k+rx] * im.At(x+k, y)
			}
			tmp.Pix[y*im.W+x] = sum
		}
	}
	ry := len(ky) / 2
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sum := 0.0
			for k := -ry; k <= ry; k++ {
				sum += ky[k+ry] * tmp.At(x, y+k)
			}
			out.Pix[y*im.W+x] = sum
		}
	}
	return out, nil
}

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// sigma; the radius is ceil(3σ).
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	sum := 0.0
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur returns the image smoothed with an isotropic Gaussian.
func GaussianBlur(im *Image, sigma float64) *Image {
	k := GaussianKernel(sigma)
	out, err := ConvolveSeparable(im, k, k)
	if err != nil {
		// Kernel construction guarantees odd length; this cannot happen.
		return im.Clone()
	}
	return out
}

// Sobel computes horizontal and vertical gradients with the 3×3 Sobel
// operator.
func Sobel(im *Image) (gx, gy *Image) {
	gx = NewImage(im.W, im.H)
	gy = NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p00, p10, p20 := im.At(x-1, y-1), im.At(x, y-1), im.At(x+1, y-1)
			p01, p21 := im.At(x-1, y), im.At(x+1, y)
			p02, p12, p22 := im.At(x-1, y+1), im.At(x, y+1), im.At(x+1, y+1)
			gx.Pix[y*im.W+x] = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
			gy.Pix[y*im.W+x] = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
		}
	}
	return gx, gy
}

// OtsuThreshold returns the threshold in [0,1] that maximizes inter-class
// variance of the pixel histogram — the standard global binarization
// threshold.
func OtsuThreshold(im *Image) float64 {
	const bins = 256
	hist := im.Histogram(bins)
	total := len(im.Pix)
	if total == 0 {
		return 0.5
	}
	sum := 0.0
	for i, c := range hist {
		sum += float64(i) * float64(c)
	}
	var sumB, wB float64
	bestVar, bestT := -1.0, 127
	for t := 0; t < bins; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar, bestT = v, t
		}
	}
	return (float64(bestT) + 0.5) / bins
}

// Binarize thresholds the image: pixels darker than t become foreground
// (ridges are dark in fingerprint convention).
func Binarize(im *Image, t float64) *Binary {
	out := NewBinary(im.W, im.H)
	for i, v := range im.Pix {
		out.Pix[i] = v < t
	}
	return out
}

// GaborKernel builds a 2-D Gabor filter tuned to ridge orientation theta
// (radians, direction of the ridge flow) and ridge frequency freq
// (cycles/pixel). sigmaX and sigmaY control the envelope along and across
// the ridge direction.
func GaborKernel(theta, freq, sigmaX, sigmaY float64) [][]float64 {
	r := int(math.Ceil(3 * math.Max(sigmaX, sigmaY)))
	if r < 1 {
		r = 1
	}
	n := 2*r + 1
	k := make([][]float64, n)
	c, s := math.Cos(theta), math.Sin(theta)
	sum := 0.0
	for dy := -r; dy <= r; dy++ {
		row := make([]float64, n)
		for dx := -r; dx <= r; dx++ {
			// Rotate into the ridge frame: u along ridge, v across.
			u := c*float64(dx) + s*float64(dy)
			v := -s*float64(dx) + c*float64(dy)
			env := math.Exp(-(u*u/(2*sigmaX*sigmaX) + v*v/(2*sigmaY*sigmaY)))
			row[dx+r] = env * math.Cos(2*math.Pi*freq*v)
			sum += row[dx+r]
		}
		k[dy+r] = row
	}
	// Zero the DC component so flat regions map to zero response.
	mean := sum / float64(n*n)
	for _, row := range k {
		for i := range row {
			row[i] -= mean
		}
	}
	return k
}

// ApplyKernelAt evaluates a dense 2-D kernel centred at (x, y). The kernel
// must be square with odd side length (as produced by GaborKernel).
func ApplyKernelAt(im *Image, k [][]float64, x, y int) float64 {
	r := len(k) / 2
	sum := 0.0
	for dy := -r; dy <= r; dy++ {
		row := k[dy+r]
		for dx := -r; dx <= r; dx++ {
			sum += row[dx+r] * im.At(x+dx, y+dy)
		}
	}
	return sum
}

package imgproc

import (
	"math"
	"testing"
)

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel(sigma)
		if len(k)%2 == 0 {
			t.Fatalf("kernel length even: %d", len(k))
		}
		sum := 0.0
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sigma %v kernel sum = %v", sigma, sum)
		}
		// Symmetry.
		for i := range k {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Fatal("kernel not symmetric")
			}
		}
	}
}

func TestGaussianKernelDegenerateSigma(t *testing.T) {
	k := GaussianKernel(0)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("zero-sigma kernel = %v", k)
	}
}

func TestConvolveSeparableIdentity(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(2, 1, 0.8)
	out, err := ConvolveSeparable(im, []float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if out.Pix[i] != im.Pix[i] {
			t.Fatal("identity convolution changed image")
		}
	}
}

func TestConvolveSeparableRejectsEvenKernels(t *testing.T) {
	im := NewImage(2, 2)
	if _, err := ConvolveSeparable(im, []float64{1, 1}, []float64{1}); err == nil {
		t.Fatal("expected error for even kernel")
	}
}

func TestGaussianBlurPreservesConstant(t *testing.T) {
	im := NewImageFilled(8, 8, 0.37)
	out := GaussianBlur(im, 1.5)
	for _, v := range out.Pix {
		if math.Abs(v-0.37) > 1e-9 {
			t.Fatalf("blur changed constant image: %v", v)
		}
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	im := NewImage(9, 9)
	im.Set(4, 4, 1)
	out := GaussianBlur(im, 1)
	if out.At(4, 4) >= 1 {
		t.Fatal("peak not reduced")
	}
	if out.At(3, 4) <= 0 {
		t.Fatal("energy not spread")
	}
	// Total mass approximately preserved in the interior.
	sum := 0.0
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("blur mass = %v", sum)
	}
}

func TestSobelDetectsVerticalEdge(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			im.Set(x, y, 1)
		}
	}
	gx, gy := Sobel(im)
	// Strong horizontal gradient at the edge, no vertical gradient.
	if gx.At(4, 4) <= 0.5 {
		t.Fatalf("gx at edge = %v", gx.At(4, 4))
	}
	if math.Abs(gy.At(4, 4)) > 1e-9 {
		t.Fatalf("gy at vertical edge = %v", gy.At(4, 4))
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	im := NewImage(10, 10)
	for i := range im.Pix {
		if i%2 == 0 {
			im.Pix[i] = 0.2
		} else {
			im.Pix[i] = 0.8
		}
	}
	thr := OtsuThreshold(im)
	if thr <= 0.2 || thr >= 0.8 {
		t.Fatalf("Otsu threshold %v not between modes", thr)
	}
}

func TestOtsuEmptyImage(t *testing.T) {
	if thr := OtsuThreshold(NewImage(0, 0)); thr != 0.5 {
		t.Fatalf("empty Otsu = %v", thr)
	}
}

func TestBinarize(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = 0.1 // dark = ridge = foreground
	im.Pix[1] = 0.9
	b := Binarize(im, 0.5)
	if !b.Pix[0] || b.Pix[1] {
		t.Fatal("Binarize convention wrong")
	}
}

func TestGaborKernelZeroDC(t *testing.T) {
	k := GaborKernel(0.3, 0.1, 4, 4)
	sum := 0.0
	for _, row := range k {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("Gabor DC component = %v", sum)
	}
}

func TestGaborRespondsToMatchingFrequency(t *testing.T) {
	// Build a vertical-ridge image (ridges along y, varying along x) with
	// period 8 px and check a Gabor tuned to it responds much more than an
	// orthogonal one.
	const period = 8.0
	im := NewImage(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			im.Set(x, y, 0.5+0.5*math.Cos(2*math.Pi*float64(x)/period))
		}
	}
	// Ridge direction is along y: theta = π/2.
	matched := GaborKernel(math.Pi/2, 1/period, 4, 4)
	orthogonal := GaborKernel(0, 1/period, 4, 4)
	rm := math.Abs(ApplyKernelAt(im, matched, 32, 32))
	ro := math.Abs(ApplyKernelAt(im, orthogonal, 32, 32))
	if rm < 4*ro {
		t.Fatalf("matched response %v not dominant over orthogonal %v", rm, ro)
	}
}

func TestApplyKernelAtBorder(t *testing.T) {
	im := NewImageFilled(4, 4, 1)
	k := [][]float64{
		{0, 0.25, 0},
		{0.25, 0, 0.25},
		{0, 0.25, 0},
	}
	// Replicate padding means the corner sees the same constant value.
	v := ApplyKernelAt(im, k, 0, 0)
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("border kernel value = %v, want 1", v)
	}
}

package imgproc

import (
	"bytes"
	"testing"
	"testing/quick"
)

// ReadPGM must never panic on arbitrary bytes.
func TestReadPGMNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadPGM panicked: %v", r)
			}
		}()
		_, _ = ReadPGM(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// A hostile header must not cause huge allocations or panics.
func TestReadPGMHostileHeader(t *testing.T) {
	for _, src := range []string{
		"P5\n65535 65535\n255\n",            // huge dims, no data
		"P5\n2 2\n999999\n\x00\x00\x00\x00", // oversized maxval
		"P2\n3 1\n255\n1 2",                 // missing pixel
	} {
		if _, err := ReadPGM(bytes.NewReader([]byte(src))); err == nil {
			t.Fatalf("hostile PGM %q accepted", src)
		}
	}
}

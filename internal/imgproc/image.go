// Package imgproc implements the grayscale image processing substrate the
// fingerprint pipeline is built on: convolution, gradients, normalization,
// Otsu binarization, Zhang–Suen thinning, Gabor enhancement, and block-wise
// ridge orientation/frequency estimation. Everything operates on float64
// images in [0,1] (0 = black ridge, 1 = white background) to avoid repeated
// quantization.
package imgproc

import (
	"fmt"
	"math"
)

// Image is a dense grayscale image with float64 pixels, row-major.
// Pixel values are nominally in [0, 1] but intermediates may exceed the
// range; Clamp restores it.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a zero (black) image of the given size.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// NewImageFilled returns an image with every pixel set to v.
func NewImageFilled(w, h int, v float64) *Image {
	img := NewImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = v
	}
	return img
}

// At returns the pixel at (x, y). Out-of-bounds coordinates are clamped to
// the border (replicate padding), which is the boundary condition every
// filter in this package wants.
func (im *Image) At(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Clamp limits all pixels to [0, 1] in place and returns the image.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Fill sets every pixel to v.
func (im *Image) Fill(v float64) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// MeanStd returns the mean and standard deviation of all pixels.
func (im *Image) MeanStd() (mean, std float64) {
	if len(im.Pix) == 0 {
		return 0, 0
	}
	for _, v := range im.Pix {
		mean += v
	}
	mean /= float64(len(im.Pix))
	for _, v := range im.Pix {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(im.Pix)))
	return mean, std
}

// Normalize rescales the image in place to the target mean and standard
// deviation (the classic Hong–Wan–Jain pre-enhancement normalization) and
// returns it. A flat image is set to the target mean.
func (im *Image) Normalize(targetMean, targetStd float64) *Image {
	mean, std := im.MeanStd()
	if std < 1e-9 {
		im.Fill(targetMean)
		return im
	}
	for i, v := range im.Pix {
		im.Pix[i] = targetMean + (v-mean)*targetStd/std
	}
	return im
}

// Histogram returns an n-bin histogram of pixel values assumed in [0, 1].
func (im *Image) Histogram(n int) []int {
	h := make([]int, n)
	for _, v := range im.Pix {
		b := int(v * float64(n))
		if b < 0 {
			b = 0
		} else if b >= n {
			b = n - 1
		}
		h[b]++
	}
	return h
}

// SubImage copies the rectangle [x0,x0+w)×[y0,y0+h) into a new image,
// replicating border pixels where the rectangle exceeds the source.
func (im *Image) SubImage(x0, y0, w, h int) *Image {
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.At(x0+x, y0+y)
		}
	}
	return out
}

// Bilinear samples the image at a fractional coordinate with bilinear
// interpolation and replicate padding.
func (im *Image) Bilinear(x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := im.At(x0, y0)
	v10 := im.At(x0+1, y0)
	v01 := im.At(x0, y0+1)
	v11 := im.At(x0+1, y0+1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Resize returns the image resampled to (w, h) with bilinear interpolation.
func (im *Image) Resize(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgproc: invalid resize target %dx%d", w, h)
	}
	out := NewImage(w, h)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
		}
	}
	return out, nil
}

// Invert maps every pixel v to 1−v in place and returns the image.
func (im *Image) Invert() *Image {
	for i, v := range im.Pix {
		im.Pix[i] = 1 - v
	}
	return im
}

// Binary is a 1-bit image; true marks foreground (ridge) pixels.
type Binary struct {
	W, H int
	Pix  []bool
}

// NewBinary returns an all-false binary image.
func NewBinary(w, h int) *Binary {
	return &Binary{W: w, H: h, Pix: make([]bool, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads are false.
func (b *Binary) At(x, y int) bool {
	if x < 0 || x >= b.W || y < 0 || y >= b.H {
		return false
	}
	return b.Pix[y*b.W+x]
}

// Set assigns the pixel at (x, y); out-of-bounds writes are ignored.
func (b *Binary) Set(x, y int, v bool) {
	if x < 0 || x >= b.W || y < 0 || y >= b.H {
		return
	}
	b.Pix[y*b.W+x] = v
}

// Clone returns a deep copy.
func (b *Binary) Clone() *Binary {
	out := NewBinary(b.W, b.H)
	copy(out.Pix, b.Pix)
	return out
}

// Count returns the number of true pixels.
func (b *Binary) Count() int {
	n := 0
	for _, v := range b.Pix {
		if v {
			n++
		}
	}
	return n
}

// ToImage renders the binary image as grayscale: foreground 0 (black),
// background 1 (white) — fingerprint convention.
func (b *Binary) ToImage() *Image {
	im := NewImage(b.W, b.H)
	for i, v := range b.Pix {
		if v {
			im.Pix[i] = 0
		} else {
			im.Pix[i] = 1
		}
	}
	return im
}

package imgproc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewImageZero(t *testing.T) {
	im := NewImage(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad shape: %+v", im)
	}
	for _, v := range im.Pix {
		if v != 0 {
			t.Fatal("not zero-initialized")
		}
	}
}

func TestAtClampsBorders(t *testing.T) {
	im := NewImage(3, 3)
	im.Set(0, 0, 0.5)
	im.Set(2, 2, 0.9)
	if im.At(-5, -5) != 0.5 {
		t.Fatalf("top-left clamp: %v", im.At(-5, -5))
	}
	if im.At(10, 10) != 0.9 {
		t.Fatalf("bottom-right clamp: %v", im.At(10, 10))
	}
}

func TestSetOutOfBoundsIgnored(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(-1, 0, 1)
	im.Set(0, 5, 1)
	for _, v := range im.Pix {
		if v != 0 {
			t.Fatal("out-of-bounds Set wrote a pixel")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	im := NewImageFilled(2, 2, 0.5)
	c := im.Clone()
	c.Set(0, 0, 1)
	if im.At(0, 0) != 0.5 {
		t.Fatal("Clone shares storage")
	}
}

func TestClamp(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = -0.5
	im.Pix[1] = 1.5
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatalf("Clamp = %v", im.Pix)
	}
}

func TestMeanStd(t *testing.T) {
	im := NewImage(2, 2)
	copy(im.Pix, []float64{0, 0, 1, 1})
	mean, std := im.MeanStd()
	if mean != 0.5 || math.Abs(std-0.5) > 1e-12 {
		t.Fatalf("mean=%v std=%v", mean, std)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	im := NewImage(0, 0)
	if m, s := im.MeanStd(); m != 0 || s != 0 {
		t.Fatal("empty image stats should be zero")
	}
}

func TestNormalize(t *testing.T) {
	im := NewImage(2, 2)
	copy(im.Pix, []float64{0, 0.2, 0.8, 1})
	im.Normalize(0.5, 0.1)
	mean, std := im.MeanStd()
	if math.Abs(mean-0.5) > 1e-9 || math.Abs(std-0.1) > 1e-9 {
		t.Fatalf("Normalize → mean=%v std=%v", mean, std)
	}
}

func TestNormalizeFlatImage(t *testing.T) {
	im := NewImageFilled(3, 3, 0.7)
	im.Normalize(0.4, 0.1)
	for _, v := range im.Pix {
		if v != 0.4 {
			t.Fatalf("flat normalize pixel = %v", v)
		}
	}
}

func TestHistogram(t *testing.T) {
	im := NewImage(1, 4)
	copy(im.Pix, []float64{0, 0.49, 0.51, 1.2})
	h := im.Histogram(2)
	if h[0] != 2 || h[1] != 2 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestSubImage(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(2, 2, 0.7)
	sub := im.SubImage(1, 1, 3, 3)
	if sub.At(1, 1) != 0.7 {
		t.Fatalf("SubImage content: %v", sub.At(1, 1))
	}
	if sub.W != 3 || sub.H != 3 {
		t.Fatal("SubImage shape wrong")
	}
}

func TestBilinearInterpolation(t *testing.T) {
	im := NewImage(2, 2)
	copy(im.Pix, []float64{0, 1, 0, 1})
	if got := im.Bilinear(0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Bilinear mid = %v", got)
	}
	if got := im.Bilinear(0, 0); got != 0 {
		t.Fatalf("Bilinear corner = %v", got)
	}
}

func TestResize(t *testing.T) {
	im := NewImageFilled(4, 4, 0.6)
	out, err := im.Resize(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 8 || out.H != 2 {
		t.Fatal("resize shape wrong")
	}
	for _, v := range out.Pix {
		if math.Abs(v-0.6) > 1e-12 {
			t.Fatalf("constant image resize changed value: %v", v)
		}
	}
	if _, err := im.Resize(0, 5); err == nil {
		t.Fatal("expected error for zero width")
	}
}

func TestInvert(t *testing.T) {
	im := NewImageFilled(2, 2, 0.25)
	im.Invert()
	if im.At(0, 0) != 0.75 {
		t.Fatalf("Invert = %v", im.At(0, 0))
	}
}

func TestBinaryBasics(t *testing.T) {
	b := NewBinary(3, 3)
	b.Set(1, 1, true)
	if !b.At(1, 1) || b.At(0, 0) {
		t.Fatal("binary get/set wrong")
	}
	if b.At(-1, 0) || b.At(5, 5) {
		t.Fatal("out of bounds should be false")
	}
	if b.Count() != 1 {
		t.Fatal("Count wrong")
	}
	im := b.ToImage()
	if im.At(1, 1) != 0 || im.At(0, 0) != 1 {
		t.Fatal("ToImage convention wrong (ridge must be black)")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im := NewImage(5, 3)
	for i := range im.Pix {
		im.Pix[i] = float64(i) / float64(len(im.Pix)-1)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 5 || back.H != 3 {
		t.Fatal("round-trip shape wrong")
	}
	for i := range im.Pix {
		if math.Abs(back.Pix[i]-im.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, back.Pix[i], im.Pix[i])
		}
	}
}

func TestReadPGMAscii(t *testing.T) {
	src := "P2\n# a comment\n2 2\n255\n0 255\n128 64\n"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[0] != 0 || im.Pix[1] != 1 {
		t.Fatalf("ascii pixels: %v", im.Pix)
	}
	if math.Abs(im.Pix[2]-128.0/255) > 1e-9 {
		t.Fatalf("mid pixel: %v", im.Pix[2])
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := []string{
		"",
		"P6\n2 2\n255\n",
		"P5\n0 2\n255\n",
		"P5\n2 2\n255\nxx", // truncated pixels
	}
	for _, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestPGMWriteClampsRange(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0] = -1
	im.Pix[1] = 2
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pix[0] != 0 || back.Pix[1] != 1 {
		t.Fatalf("clamped write = %v", back.Pix)
	}
}

func TestPGMPropertyRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		w := len(raw)
		if w > 32 {
			w = 32
		}
		im := NewImage(w, 1)
		for i := 0; i < w; i++ {
			im.Pix[i] = float64(raw[i]) / 255
		}
		var buf bytes.Buffer
		if err := WritePGM(&buf, im); err != nil {
			return false
		}
		back, err := ReadPGM(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < w; i++ {
			if math.Abs(back.Pix[i]-im.Pix[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package imgproc

import "sort"

// Median3 applies a 3×3 median filter — the standard despeckling step for
// scanned ink imagery (salt-and-pepper noise from paper grain and dust).
func Median3(im *Image) *Image {
	out := NewImage(im.W, im.H)
	var window [9]float64
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					window[k] = im.At(x+dx, y+dy)
					k++
				}
			}
			w := window
			sort.Float64s(w[:])
			out.Pix[y*im.W+x] = w[4]
		}
	}
	return out
}

// Erode shrinks foreground regions of a binary image: a pixel survives
// only if all 4-neighbours are foreground.
func Erode(b *Binary) *Binary {
	out := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) && b.At(x-1, y) && b.At(x+1, y) && b.At(x, y-1) && b.At(x, y+1) {
				out.Set(x, y, true)
			}
		}
	}
	return out
}

// Dilate grows foreground regions: a pixel becomes foreground if any
// 4-neighbour (or itself) is foreground.
func Dilate(b *Binary) *Binary {
	out := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.At(x, y) || b.At(x-1, y) || b.At(x+1, y) || b.At(x, y-1) || b.At(x, y+1) {
				out.Set(x, y, true)
			}
		}
	}
	return out
}

// Open is erosion followed by dilation: removes isolated foreground
// specks while approximately preserving larger structures.
func Open(b *Binary) *Binary {
	return Dilate(Erode(b))
}

// Close is dilation followed by erosion: fills small holes and hairline
// breaks.
func Close(b *Binary) *Binary {
	return Erode(Dilate(b))
}

package imgproc

import "testing"

func TestMedian3RemovesSaltNoise(t *testing.T) {
	im := NewImageFilled(9, 9, 0.8)
	im.Set(4, 4, 0) // isolated speck
	out := Median3(im)
	if out.At(4, 4) != 0.8 {
		t.Fatalf("speck survived: %v", out.At(4, 4))
	}
	// Constant regions unchanged.
	if out.At(1, 1) != 0.8 {
		t.Fatal("median changed flat region")
	}
}

func TestMedian3PreservesEdges(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			im.Set(x, y, 1)
		}
	}
	out := Median3(im)
	if out.At(2, 4) != 0 || out.At(6, 4) != 1 {
		t.Fatal("median destroyed a step edge")
	}
}

func TestErodeDilateInverseOnLargeBlock(t *testing.T) {
	b := NewBinary(12, 12)
	for y := 3; y < 9; y++ {
		for x := 3; x < 9; x++ {
			b.Set(x, y, true)
		}
	}
	opened := Open(b)
	// The 6x6 block survives opening with only its boundary eroded and
	// re-dilated; the centre must be intact.
	if !opened.At(5, 5) {
		t.Fatal("opening destroyed block interior")
	}
}

func TestOpenRemovesSpeck(t *testing.T) {
	b := NewBinary(8, 8)
	b.Set(4, 4, true) // isolated pixel
	if Open(b).Count() != 0 {
		t.Fatal("opening kept an isolated speck")
	}
}

func TestCloseFillsHole(t *testing.T) {
	b := NewBinary(9, 9)
	for y := 2; y < 7; y++ {
		for x := 2; x < 7; x++ {
			b.Set(x, y, true)
		}
	}
	b.Set(4, 4, false) // pinhole
	if !Close(b).At(4, 4) {
		t.Fatal("closing left the pinhole")
	}
}

func TestErodeEmptyAndFull(t *testing.T) {
	empty := NewBinary(5, 5)
	if Erode(empty).Count() != 0 {
		t.Fatal("eroding empty image grew pixels")
	}
	full := NewBinary(5, 5)
	for i := range full.Pix {
		full.Pix[i] = true
	}
	// Border pixels die (outside is background), interior survives.
	e := Erode(full)
	if !e.At(2, 2) || e.At(0, 0) {
		t.Fatal("erode of full image wrong")
	}
}

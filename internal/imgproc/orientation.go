package imgproc

import (
	"math"
)

// OrientationField holds block-wise ridge orientation estimates.
// Theta[by][bx] is the ridge orientation in [0, π) for the block at block
// coordinates (bx, by); Coherence in [0,1] measures how strongly the local
// gradients agree (1 = perfectly parallel ridges). BlockSize is in pixels.
type OrientationField struct {
	BlockSize int
	BW, BH    int
	Theta     [][]float64
	Coherence [][]float64
}

// EstimateOrientation computes the block-wise ridge orientation field with
// the gradient-based least-squares method (Rao's algorithm): within each
// block the dominant orientation is perpendicular to the principal gradient
// direction, recovered from the doubled-angle gradient moments.
func EstimateOrientation(im *Image, blockSize int) *OrientationField {
	if blockSize < 2 {
		blockSize = 2
	}
	gx, gy := Sobel(im)
	bw := (im.W + blockSize - 1) / blockSize
	bh := (im.H + blockSize - 1) / blockSize
	of := &OrientationField{BlockSize: blockSize, BW: bw, BH: bh}
	of.Theta = make([][]float64, bh)
	of.Coherence = make([][]float64, bh)
	for by := 0; by < bh; by++ {
		of.Theta[by] = make([]float64, bw)
		of.Coherence[by] = make([]float64, bw)
		for bx := 0; bx < bw; bx++ {
			var gxx, gyy, gxy float64
			x0, y0 := bx*blockSize, by*blockSize
			for y := y0; y < y0+blockSize && y < im.H; y++ {
				for x := x0; x < x0+blockSize && x < im.W; x++ {
					dx := gx.Pix[y*im.W+x]
					dy := gy.Pix[y*im.W+x]
					gxx += dx * dx
					gyy += dy * dy
					gxy += dx * dy
				}
			}
			// Doubled-angle average; gradient direction is perpendicular to
			// the ridge orientation.
			theta := 0.5 * math.Atan2(2*gxy, gxx-gyy)
			ridge := theta + math.Pi/2
			for ridge >= math.Pi {
				ridge -= math.Pi
			}
			for ridge < 0 {
				ridge += math.Pi
			}
			of.Theta[by][bx] = ridge
			denom := gxx + gyy
			if denom > 1e-12 {
				num := math.Hypot(gxx-gyy, 2*gxy)
				of.Coherence[by][bx] = num / denom
			}
		}
	}
	return of
}

// Smooth regularizes the orientation field by vector-averaging the doubled
// angles over a (2r+1)² block neighbourhood, weighted by coherence.
func (of *OrientationField) Smooth(r int) {
	if r <= 0 {
		return
	}
	newTheta := make([][]float64, of.BH)
	for by := 0; by < of.BH; by++ {
		newTheta[by] = make([]float64, of.BW)
		for bx := 0; bx < of.BW; bx++ {
			var sx, sy float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					nx, ny := bx+dx, by+dy
					if nx < 0 || nx >= of.BW || ny < 0 || ny >= of.BH {
						continue
					}
					w := of.Coherence[ny][nx] + 1e-3
					sx += w * math.Cos(2*of.Theta[ny][nx])
					sy += w * math.Sin(2*of.Theta[ny][nx])
				}
			}
			th := 0.5 * math.Atan2(sy, sx)
			for th < 0 {
				th += math.Pi
			}
			for th >= math.Pi {
				th -= math.Pi
			}
			newTheta[by][bx] = th
		}
	}
	of.Theta = newTheta
}

// ThetaAt returns the orientation for the pixel (x, y), clamping to the
// nearest block.
func (of *OrientationField) ThetaAt(x, y int) float64 {
	bx := x / of.BlockSize
	by := y / of.BlockSize
	if bx < 0 {
		bx = 0
	} else if bx >= of.BW {
		bx = of.BW - 1
	}
	if by < 0 {
		by = 0
	} else if by >= of.BH {
		by = of.BH - 1
	}
	return of.Theta[by][bx]
}

// CoherenceAt returns the coherence for the pixel (x, y).
func (of *OrientationField) CoherenceAt(x, y int) float64 {
	bx := x / of.BlockSize
	by := y / of.BlockSize
	if bx < 0 {
		bx = 0
	} else if bx >= of.BW {
		bx = of.BW - 1
	}
	if by < 0 {
		by = 0
	} else if by >= of.BH {
		by = of.BH - 1
	}
	return of.Coherence[by][bx]
}

// MeanCoherence returns the average coherence over all blocks — a global
// measure of ridge clarity used by the quality assessor.
func (of *OrientationField) MeanCoherence() float64 {
	sum, n := 0.0, 0
	for by := 0; by < of.BH; by++ {
		for bx := 0; bx < of.BW; bx++ {
			sum += of.Coherence[by][bx]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EstimateFrequency estimates the dominant ridge frequency (cycles/pixel)
// in the block containing (x0, y0) by projecting pixel intensities onto the
// axis perpendicular to the local orientation and counting signature peaks
// (the Hong–Wan–Jain x-signature method).
func EstimateFrequency(im *Image, of *OrientationField, x0, y0, window int) float64 {
	theta := of.ThetaAt(x0, y0)
	// Direction across the ridges.
	c, s := math.Cos(theta+math.Pi/2), math.Sin(theta+math.Pi/2)
	n := window
	sig := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i - n/2)
		// Average a short segment along the ridge direction for robustness.
		sum := 0.0
		const along = 5
		for j := -along; j <= along; j++ {
			u := float64(j)
			x := float64(x0) + t*c - u*s
			y := float64(y0) + t*s + u*c
			sum += im.Bilinear(x, y)
		}
		sig[i] = sum / (2*along + 1)
	}
	// Count mean crossings; each ridge period has two.
	mean := 0.0
	for _, v := range sig {
		mean += v
	}
	mean /= float64(n)
	crossings := 0
	for i := 1; i < n; i++ {
		if (sig[i-1] < mean) != (sig[i] < mean) {
			crossings++
		}
	}
	if crossings < 2 {
		return 0
	}
	periods := float64(crossings) / 2
	return periods / float64(n)
}

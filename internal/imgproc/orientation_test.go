package imgproc

import (
	"math"
	"testing"
)

// ridgePattern builds a sinusoidal ridge image with ridge direction theta
// (ridges run along theta) and the given period in pixels.
func ridgePattern(w, h int, theta, period float64) *Image {
	im := NewImage(w, h)
	// Variation is perpendicular to the ridge direction.
	c, s := math.Cos(theta+math.Pi/2), math.Sin(theta+math.Pi/2)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := float64(x)*c + float64(y)*s
			im.Set(x, y, 0.5+0.5*math.Cos(2*math.Pi*d/period))
		}
	}
	return im
}

func orientationClose(a, b, tol float64) bool {
	d := math.Mod(a-b, math.Pi)
	if d < 0 {
		d += math.Pi
	}
	if d > math.Pi/2 {
		d = math.Pi - d
	}
	return d <= tol
}

func TestEstimateOrientationHorizontalRidges(t *testing.T) {
	// Ridges along x → orientation ~0.
	im := ridgePattern(64, 64, 0, 8)
	of := EstimateOrientation(im, 16)
	theta := of.ThetaAt(32, 32)
	if !orientationClose(theta, 0, 0.1) {
		t.Fatalf("horizontal ridge orientation = %v", theta)
	}
	if of.CoherenceAt(32, 32) < 0.8 {
		t.Fatalf("coherence %v too low for clean ridges", of.CoherenceAt(32, 32))
	}
}

func TestEstimateOrientationDiagonalRidges(t *testing.T) {
	im := ridgePattern(64, 64, math.Pi/4, 8)
	of := EstimateOrientation(im, 16)
	if theta := of.ThetaAt(32, 32); !orientationClose(theta, math.Pi/4, 0.1) {
		t.Fatalf("diagonal ridge orientation = %v", theta)
	}
}

func TestEstimateOrientationVerticalRidges(t *testing.T) {
	im := ridgePattern(64, 64, math.Pi/2, 8)
	of := EstimateOrientation(im, 16)
	if theta := of.ThetaAt(32, 32); !orientationClose(theta, math.Pi/2, 0.1) {
		t.Fatalf("vertical ridge orientation = %v", theta)
	}
}

func TestCoherenceLowOnNoise(t *testing.T) {
	im := NewImage(64, 64)
	// Deterministic pseudo-noise.
	seed := uint64(12345)
	for i := range im.Pix {
		seed = seed*6364136223846793005 + 1442695040888963407
		im.Pix[i] = float64(seed>>40) / float64(1<<24)
	}
	of := EstimateOrientation(im, 16)
	clean := ridgePattern(64, 64, 0, 8)
	ofClean := EstimateOrientation(clean, 16)
	if of.MeanCoherence() >= ofClean.MeanCoherence() {
		t.Fatalf("noise coherence %v not below clean %v",
			of.MeanCoherence(), ofClean.MeanCoherence())
	}
}

func TestSmoothRegularizesOutlierBlock(t *testing.T) {
	im := ridgePattern(96, 96, 0, 8)
	of := EstimateOrientation(im, 16)
	// Corrupt the centre block.
	of.Theta[3][3] = math.Pi / 2
	of.Smooth(1)
	if !orientationClose(of.Theta[3][3], 0, 0.2) {
		t.Fatalf("smoothing left outlier at %v", of.Theta[3][3])
	}
}

func TestThetaAtClampsOutOfRange(t *testing.T) {
	im := ridgePattern(32, 32, 0, 8)
	of := EstimateOrientation(im, 16)
	// Should not panic and should return valid orientations.
	for _, xy := range [][2]int{{-5, -5}, {100, 100}, {0, 100}} {
		th := of.ThetaAt(xy[0], xy[1])
		if th < 0 || th >= math.Pi+1e-9 {
			t.Fatalf("clamped ThetaAt out of range: %v", th)
		}
		_ = of.CoherenceAt(xy[0], xy[1])
	}
}

func TestEstimateFrequencyRecoversPeriod(t *testing.T) {
	const period = 8.0
	im := ridgePattern(96, 96, 0, period)
	of := EstimateOrientation(im, 16)
	f := EstimateFrequency(im, of, 48, 48, 48)
	if f <= 0 {
		t.Fatal("frequency estimation failed")
	}
	got := 1 / f
	if math.Abs(got-period) > 2 {
		t.Fatalf("estimated period %v, want ≈ %v", got, period)
	}
}

func TestEstimateFrequencyFlatRegion(t *testing.T) {
	im := NewImageFilled(64, 64, 0.5)
	of := EstimateOrientation(im, 16)
	if f := EstimateFrequency(im, of, 32, 32, 32); f != 0 {
		t.Fatalf("flat region frequency = %v, want 0", f)
	}
}

func TestEstimateOrientationTinyBlockSizeClamped(t *testing.T) {
	im := ridgePattern(16, 16, 0, 6)
	of := EstimateOrientation(im, 1) // clamped to 2
	if of.BlockSize != 2 {
		t.Fatalf("block size = %d, want clamp to 2", of.BlockSize)
	}
}

package imgproc

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM encodes the image as binary PGM (P5, 8-bit), the format NBIS
// tooling consumes, so synthetic impressions can be inspected with any
// image viewer.
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("imgproc: write PGM header: %w", err)
	}
	row := make([]byte, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.Pix[y*im.W+x]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[x] = byte(v*255 + 0.5)
		}
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("imgproc: write PGM row %d: %w", y, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("imgproc: flush PGM: %w", err)
	}
	return nil
}

// ReadPGM decodes a binary (P5) or ASCII (P2) PGM stream into an Image with
// pixels scaled to [0, 1].
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgproc: read PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("imgproc: unsupported PGM magic %q", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("imgproc: read PGM header: %w", err)
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("imgproc: parse PGM header token %q: %w", tok, err)
		}
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("imgproc: invalid PGM dimensions %dx%d max %d", w, h, maxv)
	}
	// Cap the pixel count before allocating: a hostile header must not be
	// able to demand gigabytes. 16 Mpx comfortably covers ten-print cards
	// at 1000 dpi.
	const maxPixels = 1 << 24
	if w > maxPixels/h {
		return nil, fmt.Errorf("imgproc: PGM %dx%d exceeds %d-pixel cap", w, h, maxPixels)
	}
	im := NewImage(w, h)
	scale := 1 / float64(maxv)
	switch magic {
	case "P5":
		if maxv > 255 {
			return nil, fmt.Errorf("imgproc: 16-bit binary PGM not supported")
		}
		buf := make([]byte, w*h)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imgproc: read PGM pixels: %w", err)
		}
		for i, b := range buf {
			im.Pix[i] = float64(b) * scale
		}
	case "P2":
		for i := 0; i < w*h; i++ {
			tok, err := pgmToken(br)
			if err != nil {
				return nil, fmt.Errorf("imgproc: read PGM pixel %d: %w", i, err)
			}
			var v int
			if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
				return nil, fmt.Errorf("imgproc: parse PGM pixel %q: %w", tok, err)
			}
			im.Pix[i] = float64(v) * scale
		}
	}
	return im, nil
}

// pgmToken reads the next whitespace-delimited token, skipping '#' comment
// lines per the PGM specification.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

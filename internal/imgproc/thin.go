package imgproc

// Thin skeletonizes a binary image with the Zhang–Suen algorithm, reducing
// ridges to 1-pixel-wide skeletons while preserving connectivity — the
// representation minutiae extraction runs on.
func Thin(b *Binary) *Binary {
	img := b.Clone()
	// Neighbour order P2..P9 clockwise from north, per the original paper.
	offs := [8][2]int{
		{0, -1}, {1, -1}, {1, 0}, {1, 1},
		{0, 1}, {-1, 1}, {-1, 0}, {-1, -1},
	}
	subPass := func(sub int) int {
		var toClear []int
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				if !img.Pix[y*img.W+x] {
					continue
				}
				var p [8]bool
				n := 0
				for i, o := range offs {
					p[i] = img.At(x+o[0], y+o[1])
					if p[i] {
						n++
					}
				}
				if n < 2 || n > 6 {
					continue
				}
				// Transitions false→true around the ring.
				a := 0
				for i := 0; i < 8; i++ {
					if !p[i] && p[(i+1)%8] {
						a++
					}
				}
				if a != 1 {
					continue
				}
				// Sub-iteration conditions: P2·P4·P6 = 0 and P4·P6·P8 = 0
				// for the first pass, mirrored for the second.
				if sub == 0 {
					if (p[0] && p[2] && p[4]) || (p[2] && p[4] && p[6]) {
						continue
					}
				} else {
					if (p[0] && p[2] && p[6]) || (p[0] && p[4] && p[6]) {
						continue
					}
				}
				toClear = append(toClear, y*img.W+x)
			}
		}
		for _, idx := range toClear {
			img.Pix[idx] = false
		}
		return len(toClear)
	}
	for {
		if subPass(0)+subPass(1) == 0 {
			break
		}
	}
	return img
}

// NeighborCount returns the number of true 8-neighbours of (x, y).
func NeighborCount(b *Binary, x, y int) int {
	n := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if b.At(x+dx, y+dy) {
				n++
			}
		}
	}
	return n
}

// CrossingNumber returns the Rutovitz crossing number at (x, y): half the
// number of 0↔1 transitions around the 8-neighbour ring. On a skeleton,
// CN=1 marks a ridge ending, CN=2 a ridge continuation, CN≥3 a bifurcation.
func CrossingNumber(b *Binary, x, y int) int {
	offs := [8][2]int{
		{0, -1}, {1, -1}, {1, 0}, {1, 1},
		{0, 1}, {-1, 1}, {-1, 0}, {-1, -1},
	}
	trans := 0
	for i := 0; i < 8; i++ {
		cur := b.At(x+offs[i][0], y+offs[i][1])
		next := b.At(x+offs[(i+1)%8][0], y+offs[(i+1)%8][1])
		if cur != next {
			trans++
		}
	}
	return trans / 2
}

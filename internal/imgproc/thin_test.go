package imgproc

import (
	"testing"
)

// thickLine draws a thick horizontal bar into a fresh binary image.
func thickLine(w, h, y0, thickness int) *Binary {
	b := NewBinary(w, h)
	for y := y0; y < y0+thickness; y++ {
		for x := 2; x < w-2; x++ {
			b.Set(x, y, true)
		}
	}
	return b
}

func TestThinReducesThickLineToSkeleton(t *testing.T) {
	b := thickLine(32, 16, 5, 5)
	sk := Thin(b)
	if sk.Count() >= b.Count() {
		t.Fatal("thinning did not reduce pixel count")
	}
	// Every column in the interior should have exactly one skeleton pixel.
	for x := 6; x < 26; x++ {
		n := 0
		for y := 0; y < 16; y++ {
			if sk.At(x, y) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("column %d has %d skeleton pixels, want 1", x, n)
		}
	}
}

func TestThinPreservesConnectivity(t *testing.T) {
	b := thickLine(32, 16, 5, 5)
	sk := Thin(b)
	// Flood fill from any skeleton pixel must reach all skeleton pixels.
	var start [2]int
	found := false
	for y := 0; y < sk.H && !found; y++ {
		for x := 0; x < sk.W && !found; x++ {
			if sk.At(x, y) {
				start = [2]int{x, y}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("skeleton vanished entirely")
	}
	seen := NewBinary(sk.W, sk.H)
	stack := [][2]int{start}
	seen.Set(start[0], start[1], true)
	count := 1
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := p[0]+dx, p[1]+dy
				if sk.At(nx, ny) && !seen.At(nx, ny) {
					seen.Set(nx, ny, true)
					count++
					stack = append(stack, [2]int{nx, ny})
				}
			}
		}
	}
	if count != sk.Count() {
		t.Fatalf("skeleton disconnected: reached %d of %d", count, sk.Count())
	}
}

func TestThinIdempotent(t *testing.T) {
	b := thickLine(32, 16, 5, 5)
	once := Thin(b)
	twice := Thin(once)
	for i := range once.Pix {
		if once.Pix[i] != twice.Pix[i] {
			t.Fatal("thinning not idempotent")
		}
	}
}

func TestThinEmptyImage(t *testing.T) {
	b := NewBinary(8, 8)
	sk := Thin(b)
	if sk.Count() != 0 {
		t.Fatal("empty image grew pixels")
	}
}

func TestThinDoesNotMutateInput(t *testing.T) {
	b := thickLine(16, 16, 5, 4)
	before := b.Count()
	Thin(b)
	if b.Count() != before {
		t.Fatal("Thin mutated its input")
	}
}

func TestCrossingNumberLineEnd(t *testing.T) {
	b := NewBinary(8, 8)
	// Horizontal line from (2,4)..(5,4).
	for x := 2; x <= 5; x++ {
		b.Set(x, 4, true)
	}
	if cn := CrossingNumber(b, 2, 4); cn != 1 {
		t.Fatalf("line end CN = %d, want 1", cn)
	}
	if cn := CrossingNumber(b, 3, 4); cn != 2 {
		t.Fatalf("line interior CN = %d, want 2", cn)
	}
}

func TestCrossingNumberBifurcation(t *testing.T) {
	b := NewBinary(9, 9)
	// A 'Y': vertical stem up to (4,4), two diagonal branches.
	for y := 4; y <= 7; y++ {
		b.Set(4, y, true)
	}
	b.Set(3, 3, true)
	b.Set(2, 2, true)
	b.Set(5, 3, true)
	b.Set(6, 2, true)
	if cn := CrossingNumber(b, 4, 4); cn != 3 {
		t.Fatalf("bifurcation CN = %d, want 3", cn)
	}
}

func TestCrossingNumberIsolatedPixel(t *testing.T) {
	b := NewBinary(5, 5)
	b.Set(2, 2, true)
	if cn := CrossingNumber(b, 2, 2); cn != 0 {
		t.Fatalf("isolated CN = %d, want 0", cn)
	}
}

func TestNeighborCount(t *testing.T) {
	b := NewBinary(3, 3)
	b.Set(0, 0, true)
	b.Set(1, 0, true)
	b.Set(2, 2, true)
	if n := NeighborCount(b, 1, 1); n != 3 {
		t.Fatalf("NeighborCount = %d, want 3", n)
	}
}

package index

import (
	"testing"

	"fpinterop/internal/population"
	"fpinterop/internal/rng"
)

// TestCandidatesAppendZeroAllocs is the asserting form of the PR-4 vote
// benchmarks: once the pooled accumulators and the caller's candidate
// buffer are warm, one full vote accumulation — probe key extraction,
// dense voting, shortlist collection, and the final sort — performs
// zero heap allocations. Candidate IDs are string headers copied out of
// the index's id table, not fresh strings, so the collection pass is
// covered too.
func TestCandidatesAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; asserted in non-race builds")
	}
	cohort := population.NewCohort(rng.New(21), population.CohortOptions{Size: 12})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	probe := tpls[0]
	dst := make([]Candidate, 0, 32)

	lookup := func() {
		dst = ix.CandidatesAppend(dst[:0], probe, 8)
		if len(dst) == 0 {
			t.Fatal("probe retrieved no candidates")
		}
	}

	// Warm the vote pool and let dst reach its steady-state capacity.
	for i := 0; i < 10; i++ {
		lookup()
	}
	if allocs := testing.AllocsPerRun(100, lookup); allocs != 0 {
		t.Fatalf("vote accumulation allocates %.1f times per run; want 0", allocs)
	}
}

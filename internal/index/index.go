// Package index implements candidate retrieval for 1:N fingerprint
// identification: a geometric-hashing index over minutia triplets that
// maps a probe template to a scored shortlist of enrolled templates in
// time sub-linear in the gallery size, so the full matcher only runs on
// the shortlist. This is the retrieval stage a central matching service
// (the deployment the paper's discussion section contemplates) needs
// before a million-user gallery becomes searchable at interactive
// latency.
//
// Each template is reduced to a set of local minutia triplets (every
// minutia with pairs of its nearest neighbours). A triplet is described
// by features invariant to rotation and translation of the capture
// window: the three side lengths of the triangle, and at each vertex
// the angle between the minutia ridge direction and the direction to
// the triangle centroid. Quantizing those six features yields a hash
// key; the index is a multimap from key to the templates containing
// such a triplet. A probe votes with its own triplet keys — probing
// neighbouring quantization bins near bin boundaries to absorb sensor
// noise — and the most-voted templates form the candidate shortlist.
// Votes are weighted by key rarity (1/bucket size): a triplet shape
// shared by thousands of templates carries almost no identity signal,
// while a rare one is strong evidence, and without the weighting the
// random-collision vote floor grows with the gallery and drowns the
// genuine signal.
package index

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"fpinterop/internal/minutiae"
)

var (
	// ErrDuplicate reports an already-indexed template ID.
	ErrDuplicate = errors.New("index: template ID already indexed")
	// ErrNotFound reports an unknown template ID.
	ErrNotFound = errors.New("index: template ID not indexed")
)

// Options tunes triplet extraction, quantization, and retrieval. The
// zero value gives production defaults calibrated for 500-dpi templates
// (≈50–70 minutiae) from the study's sensor models.
type Options struct {
	// NeighborK is how many nearest neighbours each minutia pairs with
	// to form triplets (default 6 → up to C(6,2)=15 triplets seeded per
	// minutia before deduplication).
	NeighborK int
	// MaxTriplets caps the triplets indexed per template (default 800).
	MaxTriplets int
	// MinSide rejects near-degenerate triangles whose shortest side is
	// below this many pixels (default 10).
	MinSide float64
	// MaxSide rejects spread-out triangles whose longest side exceeds
	// this many pixels (default 200); local triplets survive the
	// device-characteristic distortion fields far better than global
	// structure.
	MaxSide float64
	// SideBin is the side-length quantization step in pixels
	// (default 16).
	SideBin float64
	// AngleBins is how many bins the vertex angle features quantize
	// into over [0, 2π) (default 8, i.e. 45° bins).
	AngleBins int
	// BoundaryMargin is the fraction of a bin within which a probe
	// feature also votes into the neighbouring bin (default 0.3).
	// Larger margins raise recall and lookup cost.
	BoundaryMargin float64
	// Fanout is the default shortlist size returned by Candidates when
	// the caller passes fanout <= 0 (default 64).
	Fanout int
	// MinVotes drops templates with fewer raw bucket hits than this
	// from the shortlist (default 1; rarity weighting already pushes
	// incidental collisions to the bottom of the ranking).
	MinVotes int
	// MaxBucket skips buckets holding more postings than this during
	// lookup (default 4096): keys shared by that many templates carry
	// almost no identity information but dominate voting cost.
	MaxBucket int
}

func (o Options) withDefaults() Options {
	if o.NeighborK == 0 {
		o.NeighborK = 6
	}
	if o.MaxTriplets == 0 {
		o.MaxTriplets = 800
	}
	if o.MinSide == 0 {
		o.MinSide = 10
	}
	if o.MaxSide == 0 {
		o.MaxSide = 200
	}
	if o.SideBin == 0 {
		o.SideBin = 16
	}
	if o.AngleBins == 0 {
		o.AngleBins = 8
	}
	if o.BoundaryMargin == 0 {
		o.BoundaryMargin = 0.3
	}
	if o.Fanout == 0 {
		o.Fanout = 64
	}
	if o.MinVotes == 0 {
		o.MinVotes = 1
	}
	if o.MaxBucket == 0 {
		o.MaxBucket = 4096
	}
	// Keep packed fields in range: 8 bits per side bin, 6 per angle bin.
	if o.AngleBins > 64 {
		o.AngleBins = 64
	}
	if max := 255 * o.SideBin; o.MaxSide > max {
		o.MaxSide = max
	}
	return o
}

// posting records that a template (by dense ref) contains count
// triplets quantizing to a bucket's key.
type posting struct {
	ref   uint32
	count uint32
}

// Index is a concurrent-safe triplet index. The zero value is NOT
// ready; use New.
type Index struct {
	mu  sync.RWMutex
	opt Options
	// buckets maps a quantized triplet key to the templates containing
	// such a triplet, each bucket sorted by ref for deterministic scans.
	buckets map[uint64][]posting
	// ids maps dense refs to template IDs ("" = free slot).
	ids []string
	// refs maps template IDs back to their dense ref.
	refs map[string]uint32
	// keys holds, per ref, every key the template was inserted under
	// (with multiplicity), so Remove can unwind its postings.
	keys [][]uint64
	// free lists reusable ref slots.
	free []uint32
	// postings counts live (key, template) pairs across all buckets.
	postings int
}

// New returns an empty index with the given options (zero value for
// defaults).
func New(opt Options) *Index {
	return &Index{
		opt:     opt.withDefaults(),
		buckets: make(map[uint64][]posting),
		refs:    make(map[string]uint32),
	}
}

// Options returns the resolved option set the index runs with.
func (ix *Index) Options() Options { return ix.opt }

// Len returns the number of indexed templates.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.refs)
}

// Add indexes a template under id. Templates with fewer than three
// usable minutiae index no triplets; they are still registered (and can
// be Removed) but will never be retrieved — callers relying on a recall
// guard fall back to exhaustive search for such galleries.
func (ix *Index) Add(id string, tpl *minutiae.Template) error {
	if tpl == nil {
		return fmt.Errorf("index: add %q: nil template", id)
	}
	tripletKeys := ix.opt.templateKeys(tpl.Minutiae)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.refs[id]; ok {
		return fmt.Errorf("add %q: %w", id, ErrDuplicate)
	}
	var ref uint32
	if n := len(ix.free); n > 0 {
		ref = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.ids[ref] = id
		ix.keys[ref] = tripletKeys
	} else {
		ref = uint32(len(ix.ids))
		ix.ids = append(ix.ids, id)
		ix.keys = append(ix.keys, tripletKeys)
	}
	ix.refs[id] = ref
	for _, key := range tripletKeys {
		ix.insertPosting(key, ref)
	}
	return nil
}

// insertPosting merges one (key, ref) occurrence into its bucket,
// keeping the bucket sorted by ref.
func (ix *Index) insertPosting(key uint64, ref uint32) {
	bucket := ix.buckets[key]
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i].ref >= ref })
	if i < len(bucket) && bucket[i].ref == ref {
		bucket[i].count++
		return
	}
	bucket = append(bucket, posting{})
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = posting{ref: ref, count: 1}
	ix.buckets[key] = bucket
	ix.postings++
}

// Remove drops a template from the index.
func (ix *Index) Remove(id string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ref, ok := ix.refs[id]
	if !ok {
		return fmt.Errorf("remove %q: %w", id, ErrNotFound)
	}
	for _, key := range ix.keys[ref] {
		bucket := ix.buckets[key]
		i := sort.Search(len(bucket), func(i int) bool { return bucket[i].ref >= ref })
		if i >= len(bucket) || bucket[i].ref != ref {
			continue // defensive; every inserted key has a posting
		}
		if bucket[i].count--; bucket[i].count > 0 {
			continue
		}
		if len(bucket) == 1 {
			delete(ix.buckets, key)
		} else {
			ix.buckets[key] = append(bucket[:i], bucket[i+1:]...)
		}
		ix.postings--
	}
	delete(ix.refs, id)
	ix.ids[ref] = ""
	ix.keys[ref] = nil
	ix.free = append(ix.free, ref)
	return nil
}

// Reset empties the index, keeping its options.
func (ix *Index) Reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buckets = make(map[uint64][]posting)
	ix.ids = ix.ids[:0]
	ix.keys = ix.keys[:0]
	ix.free = ix.free[:0]
	ix.refs = make(map[string]uint32)
	ix.postings = 0
}

// Candidate is one retrieved template.
type Candidate struct {
	// ID is the template identifier passed to Add.
	ID string
	// Score is the rarity-weighted vote mass: each (probe triplet,
	// bucket) hit contributes 1/bucketSize, so matching a rare triplet
	// shape counts for far more than a generic one.
	Score float64
	// Hits is the raw number of bucket hits behind the score.
	Hits int
}

// voteScratch recycles the dense per-lookup vote accumulators, which
// are sized by the gallery, not the probe: without pooling a 50k-
// template index allocates (and zeroes) ~600 KiB per identification.
// The all-zero invariant is restored via the touched list before a
// scratch returns to the pool.
type voteScratch struct {
	scores  []float64
	hits    []int32
	touched []uint32
	keys    []uint64       // probe key scratch, reused across lookups
	trip    tripletScratch // triplet enumeration scratch, reused likewise
}

var votePool = sync.Pool{New: func() any { return new(voteScratch) }}

// Candidates retrieves the shortlist for a probe: the fanout
// highest-scoring templates (Options.Fanout when fanout <= 0), ordered
// by descending score with deterministic ID tie-breaks. Safe for
// concurrent use with other lookups; a nil or tiny probe returns no
// candidates.
func (ix *Index) Candidates(probe *minutiae.Template, fanout int) []Candidate {
	if probe == nil {
		return nil
	}
	if fanout <= 0 {
		fanout = ix.opt.Fanout
	}
	return ix.CandidatesAppend(make([]Candidate, 0, fanout), probe, fanout)
}

// CandidatesAppend is Candidates appending into dst, so hot loops that
// reuse a caller-owned buffer accumulate votes with zero steady-state
// allocations: the dense accumulators and the probe key scratch come
// from the shared pool, and dst grows only when its capacity is short.
//
//fpvet:hotpath
func (ix *Index) CandidatesAppend(dst []Candidate, probe *minutiae.Template, fanout int) []Candidate {
	if probe == nil {
		return dst
	}
	vs := votePool.Get().(*voteScratch)
	vs.keys = ix.opt.appendProbeKeysScratch(vs.keys[:0], probe.Minutiae, &vs.trip)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if fanout <= 0 {
		fanout = ix.opt.Fanout
	}
	// Dense accumulators keep the hot voting loop branch-free; the
	// touched list bounds the collection pass by the number of
	// templates actually hit, not the gallery size.
	if cap(vs.scores) < len(ix.ids) {
		vs.scores = make([]float64, len(ix.ids))
		vs.hits = make([]int32, len(ix.ids))
	}
	scores := vs.scores[:cap(vs.scores)]
	hits := vs.hits[:cap(vs.hits)]
	touched := vs.touched[:0]
	for _, key := range vs.keys {
		bucket := ix.buckets[key]
		if len(bucket) == 0 || len(bucket) > ix.opt.MaxBucket {
			continue
		}
		w := 1 / float64(len(bucket))
		for _, p := range bucket {
			if hits[p.ref] == 0 {
				touched = append(touched, p.ref)
			}
			scores[p.ref] += w
			hits[p.ref]++
		}
	}
	start := len(dst)
	for _, ref := range touched {
		if int(hits[ref]) >= ix.opt.MinVotes {
			dst = append(dst, Candidate{ID: ix.ids[ref], Score: scores[ref], Hits: int(hits[ref])})
		}
		scores[ref] = 0
		hits[ref] = 0
	}
	vs.touched = touched[:0]
	votePool.Put(vs)
	out := dst[start:]
	slices.SortFunc(out, compareCandidates)
	if len(out) > fanout {
		dst = dst[:start+fanout]
	}
	return dst
}

// compareCandidates orders by descending score with deterministic ID
// tie-breaks — the shortlist order Candidates has always produced.
//
//fpvet:hotpath
func compareCandidates(a, b Candidate) int {
	if a.Score != b.Score {
		if a.Score > b.Score {
			return -1
		}
		return 1
	}
	if a.ID < b.ID {
		return -1
	}
	if a.ID > b.ID {
		return 1
	}
	return 0
}

// Stats summarizes index occupancy (for logging and benchmarks).
type Stats struct {
	// Templates is the number of indexed templates.
	Templates int
	// DistinctKeys is the number of occupied hash buckets.
	DistinctKeys int
	// Postings is the number of live (key, template) pairs.
	Postings int
}

// Stats returns current occupancy.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{
		Templates:    len(ix.refs),
		DistinctKeys: len(ix.buckets),
		Postings:     ix.postings,
	}
}

// --- Triplet extraction and quantization -------------------------------

// triplet holds the canonical invariant features of one minutia
// triangle: side lengths in descending order and, per canonical vertex,
// the angle between the ridge direction and the direction to the
// triangle centroid.
type triplet struct {
	sides [3]float64
	betas [3]float64
}

// features computes the canonical triplet features, rejecting
// degenerate or over-spread triangles. Vertices are ordered by the
// length of their opposite side (descending), which is invariant to
// rotation, translation, and input order.
// vertexBefore reports whether vertex x sorts before vertex y under
// the canonical triplet order: descending opposite side, ascending
// vertex index on ties.
//
//fpvet:hotpath
func vertexBefore(opp [3]float64, x, y int) bool {
	if opp[x] != opp[y] {
		return opp[x] > opp[y]
	}
	return x < y
}

func (o Options) features(a, b, c minutiae.Minutia) (triplet, bool) {
	dab := a.Dist(b)
	dac := a.Dist(c)
	dbc := b.Dist(c)
	// opp[i] is the side opposite vertex i of (a, b, c).
	v := [3]minutiae.Minutia{a, b, c}
	opp := [3]float64{dbc, dac, dab}
	// Descending opposite side with index tie-breaks, via a fixed
	// three-element sorting network: sort.Slice here would put its
	// reflect machinery on the heap once per enumerated triplet.
	order := [3]int{0, 1, 2}
	if vertexBefore(opp, order[1], order[0]) {
		order[0], order[1] = order[1], order[0]
	}
	if vertexBefore(opp, order[2], order[1]) {
		order[1], order[2] = order[2], order[1]
		if vertexBefore(opp, order[1], order[0]) {
			order[0], order[1] = order[1], order[0]
		}
	}
	var t triplet
	for i, vi := range order {
		t.sides[i] = opp[vi]
	}
	if t.sides[2] < o.MinSide || t.sides[0] > o.MaxSide {
		return triplet{}, false
	}
	cx := (a.X + b.X + c.X) / 3
	cy := (a.Y + b.Y + c.Y) / 3
	for i, vi := range order {
		m := v[vi]
		dir := math.Atan2(cy-m.Y, cx-m.X)
		t.betas[i] = minutiae.NormalizeAngle(m.Angle - dir)
	}
	return t, true
}

// packKey packs six quantized features into one uint64: three 8-bit
// side bins and three 6-bit angle bins.
func packKey(qs [3]int, qb [3]int) uint64 {
	return uint64(qs[0])<<34 | uint64(qs[1])<<26 | uint64(qs[2])<<18 |
		uint64(qb[0])<<12 | uint64(qb[1])<<6 | uint64(qb[2])
}

// key quantizes a triplet to its primary hash key.
func (o Options) key(t triplet) uint64 {
	var qs, qb [3]int
	angleStep := 2 * math.Pi / float64(o.AngleBins)
	for i := 0; i < 3; i++ {
		qs[i] = clampInt(int(t.sides[i]/o.SideBin), 0, 255)
		qb[i] = clampInt(int(t.betas[i]/angleStep), 0, o.AngleBins-1)
	}
	return packKey(qs, qb)
}

// probeKeysFor expands one probe triplet into its multi-probed key set:
// each feature near a bin boundary (within BoundaryMargin of it) also
// tries the neighbouring bin, so quantization noise between enrollment
// and probe does not silently drop the vote. At most 2⁶ keys; typically
// a handful.
func (o Options) probeKeysFor(t triplet, dst []uint64) []uint64 {
	var sideOpts, angleOpts [3][2]int
	var sideN, angleN [3]int
	angleStep := 2 * math.Pi / float64(o.AngleBins)
	for i := 0; i < 3; i++ {
		sideN[i] = binOptions(t.sides[i], o.SideBin, o.BoundaryMargin, &sideOpts[i])
		for j := 0; j < sideN[i]; j++ {
			sideOpts[i][j] = clampInt(sideOpts[i][j], 0, 255)
		}
		angleN[i] = binOptions(t.betas[i], angleStep, o.BoundaryMargin, &angleOpts[i])
		for j := 0; j < angleN[i]; j++ {
			// Angle bins wrap around.
			angleOpts[i][j] = (angleOpts[i][j] + o.AngleBins) % o.AngleBins
		}
	}
	for a := 0; a < sideN[0]; a++ {
		for b := 0; b < sideN[1]; b++ {
			for c := 0; c < sideN[2]; c++ {
				qs := [3]int{sideOpts[0][a], sideOpts[1][b], sideOpts[2][c]}
				for d := 0; d < angleN[0]; d++ {
					for e := 0; e < angleN[1]; e++ {
						for f := 0; f < angleN[2]; f++ {
							dst = append(dst, packKey(qs,
								[3]int{angleOpts[0][d], angleOpts[1][e], angleOpts[2][f]}))
						}
					}
				}
			}
		}
	}
	return dst
}

// binOptions quantizes v by step and, when the value sits within
// margin·step of a bin boundary, adds the neighbouring bin. It returns
// the number of options written (1 or 2); options may be negative
// (callers clamp or wrap).
func binOptions(v, step, margin float64, out *[2]int) int {
	scaled := v / step
	bin := int(math.Floor(scaled))
	out[0] = bin
	frac := scaled - math.Floor(scaled)
	switch {
	case frac < margin:
		out[1] = bin - 1
		return 2
	case frac > 1-margin:
		out[1] = bin + 1
		return 2
	default:
		return 1
	}
}

// triplets enumerates the template's local triplets in deterministic
// order: each minutia combined with pairs of its NeighborK nearest
// neighbours, deduplicated, capped at MaxTriplets.
// tripletScratch holds the buffers one triplet enumeration needs, so
// hot probe paths can reuse them across calls instead of reallocating
// the neighbor table and the dedup set per probe.
type tripletScratch struct {
	neigh []tripletNeighbor
	seen  map[uint64]struct{}
}

// tripletNeighbor is one candidate neighbor in the K-nearest scan.
type tripletNeighbor struct {
	d   float64
	idx int
}

// compareNeighbors orders by ascending distance with index tie-breaks.
//
//fpvet:hotpath
func compareNeighbors(a, b tripletNeighbor) int {
	if a.d != b.d {
		if a.d < b.d {
			return -1
		}
		return 1
	}
	return a.idx - b.idx
}

func (o Options) triplets(ms []minutiae.Minutia, ts *tripletScratch, visit func(a, b, c minutiae.Minutia) bool) {
	o = o.withDefaults()
	n := len(ms)
	if n < 3 {
		return
	}
	k := o.NeighborK
	if ts == nil {
		ts = &tripletScratch{}
	}
	neigh := ts.neigh[:0]
	if ts.seen == nil {
		ts.seen = make(map[uint64]struct{}, n*k*(k-1)/2)
	} else {
		clear(ts.seen)
	}
	seen := ts.seen
	emitted := 0
	for i := 0; i < n && emitted < o.MaxTriplets; i++ {
		neigh = neigh[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := ms[i].X - ms[j].X
			dy := ms[i].Y - ms[j].Y
			neigh = append(neigh, tripletNeighbor{d: dx*dx + dy*dy, idx: j})
		}
		slices.SortFunc(neigh, compareNeighbors)
		kk := k
		if kk > len(neigh) {
			kk = len(neigh)
		}
		for x := 0; x < kk && emitted < o.MaxTriplets; x++ {
			for y := x + 1; y < kk && emitted < o.MaxTriplets; y++ {
				a, b, c := i, neigh[x].idx, neigh[y].idx
				// Canonical sorted indices for deduplication.
				if a > b {
					a, b = b, a
				}
				if b > c {
					b, c = c, b
				}
				if a > b {
					a, b = b, a
				}
				id := uint64(a)<<32 | uint64(b)<<16 | uint64(c)
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				if visit(ms[a], ms[b], ms[c]) {
					emitted++
				}
			}
		}
	}
	ts.neigh = neigh
}

// templateKeys computes the primary keys a template is indexed under.
func (o Options) templateKeys(ms []minutiae.Minutia) []uint64 {
	o = o.withDefaults()
	keys := make([]uint64, 0, o.MaxTriplets)
	o.triplets(ms, nil, func(a, b, c minutiae.Minutia) bool {
		t, ok := o.features(a, b, c)
		if !ok {
			return false
		}
		keys = append(keys, o.key(t))
		return true
	})
	return keys
}

// probeKeys computes the multi-probed key set a probe votes with.
func (o Options) probeKeys(ms []minutiae.Minutia) []uint64 {
	return o.appendProbeKeys(nil, ms)
}

// appendProbeKeys appends the probe's lookup keys to dst, reusing its
// capacity; CandidatesAppend feeds it the pooled key scratch so the
// enumeration stays off the heap in the steady state.
func (o Options) appendProbeKeys(dst []uint64, ms []minutiae.Minutia) []uint64 {
	return o.appendProbeKeysScratch(dst, ms, nil)
}

// appendProbeKeysScratch is appendProbeKeys reusing a caller-owned
// triplet enumeration scratch, so pooled lookup paths stay
// allocation-free.
func (o Options) appendProbeKeysScratch(dst []uint64, ms []minutiae.Minutia, ts *tripletScratch) []uint64 {
	o = o.withDefaults()
	if dst == nil {
		dst = make([]uint64, 0, 4*o.MaxTriplets)
	}
	o.triplets(ms, ts, func(a, b, c minutiae.Minutia) bool {
		t, ok := o.features(a, b, c)
		if !ok {
			return false
		}
		dst = o.probeKeysFor(t, dst)
		return true
	})
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package index

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// captureGallery builds n gallery impressions on deviceID (sample 0).
func captureGallery(t testing.TB, cohort *population.Cohort, deviceID string) []*minutiae.Template {
	t.Helper()
	dev, ok := sensor.ProfileByID(deviceID)
	if !ok {
		t.Fatalf("unknown device %s", deviceID)
	}
	out := make([]*minutiae.Template, len(cohort.Subjects))
	for i, s := range cohort.Subjects {
		imp, err := dev.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = imp.Template
	}
	return out
}

func subjectID(i int) string { return fmt.Sprintf("subject-%04d", i) }

// transformTemplate applies a rigid rotation about the origin plus a
// translation to every minutia, without clipping to any window.
func transformTemplate(tpl *minutiae.Template, theta, tx, ty float64) *minutiae.Template {
	out := tpl.Clone()
	c, s := math.Cos(theta), math.Sin(theta)
	for i, m := range out.Minutiae {
		out.Minutiae[i].X = m.X*c - m.Y*s + tx
		out.Minutiae[i].Y = m.X*s + m.Y*c + ty
		out.Minutiae[i].Angle = minutiae.NormalizeAngle(m.Angle + theta)
	}
	return out
}

func TestTripletFeaturesRigidInvariance(t *testing.T) {
	cohort := population.NewCohort(rng.New(11), population.CohortOptions{Size: 1})
	tpl := captureGallery(t, cohort, "D0")[0]
	if tpl.Count() < 10 {
		t.Fatalf("capture produced only %d minutiae", tpl.Count())
	}
	moved := transformTemplate(tpl, 0.7, 31.5, -12.25)
	opt := Options{}.withDefaults()
	ms, mt := tpl.Minutiae, moved.Minutiae
	checked := 0
	for i := 0; i+2 < len(ms) && checked < 50; i += 3 {
		f1, ok1 := opt.features(ms[i], ms[i+1], ms[i+2])
		f2, ok2 := opt.features(mt[i], mt[i+1], mt[i+2])
		if ok1 != ok2 {
			t.Fatalf("triplet %d validity changed under rigid motion", i)
		}
		if !ok1 {
			continue
		}
		checked++
		for k := 0; k < 3; k++ {
			if d := math.Abs(f1.sides[k] - f2.sides[k]); d > 1e-6 {
				t.Fatalf("side %d drifted by %v under rigid motion", k, d)
			}
			db := math.Abs(f1.betas[k] - f2.betas[k])
			if db > math.Pi {
				db = 2*math.Pi - db
			}
			if db > 1e-6 {
				t.Fatalf("vertex angle %d drifted by %v under rigid motion", k, db)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no valid triplets checked")
	}
}

func TestFeaturesInputOrderInvariance(t *testing.T) {
	opt := Options{}.withDefaults()
	a := minutiae.Minutia{X: 10, Y: 20, Angle: 1, Kind: minutiae.Ending}
	b := minutiae.Minutia{X: 60, Y: 25, Angle: 2, Kind: minutiae.Ending}
	c := minutiae.Minutia{X: 30, Y: 70, Angle: 3, Kind: minutiae.Ending}
	ref, ok := opt.features(a, b, c)
	if !ok {
		t.Fatal("reference triplet rejected")
	}
	for _, perm := range [][3]minutiae.Minutia{{a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a}} {
		f, ok := opt.features(perm[0], perm[1], perm[2])
		if !ok {
			t.Fatal("permuted triplet rejected")
		}
		if f != ref {
			t.Fatalf("features depend on input order: %+v vs %+v", f, ref)
		}
	}
}

func TestFeaturesRejectDegenerate(t *testing.T) {
	opt := Options{}.withDefaults()
	a := minutiae.Minutia{X: 10, Y: 10, Angle: 1}
	near := minutiae.Minutia{X: 11, Y: 10, Angle: 1} // 1px away: under MinSide
	far := minutiae.Minutia{X: 500, Y: 500, Angle: 1}
	ok1 := false
	if _, ok1 = opt.features(a, near, minutiae.Minutia{X: 60, Y: 60, Angle: 2}); ok1 {
		t.Fatal("near-degenerate triangle accepted")
	}
	if _, ok := opt.features(a, far, minutiae.Minutia{X: 60, Y: 60, Angle: 2}); ok {
		t.Fatal("over-spread triangle accepted")
	}
}

func TestAddRemoveLifecycle(t *testing.T) {
	cohort := population.NewCohort(rng.New(12), population.CohortOptions{Size: 6})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 6 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if err := ix.Add(subjectID(0), tpls[0]); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := ix.Add("nil", nil); err == nil {
		t.Fatal("nil template accepted")
	}
	for i := range tpls {
		if err := ix.Remove(subjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Remove(subjectID(0)); err == nil {
		t.Fatal("double Remove accepted")
	}
	st := ix.Stats()
	if st.Templates != 0 || st.Postings != 0 || st.DistinctKeys != 0 {
		t.Fatalf("index not empty after removing everything: %+v", st)
	}
	if got := ix.Candidates(tpls[0], 5); len(got) != 0 {
		t.Fatalf("empty index returned %d candidates", len(got))
	}
	// Slots are reusable after removal.
	if err := ix.Add(subjectID(0), tpls[0]); err != nil {
		t.Fatal(err)
	}
	cands := ix.Candidates(tpls[0], 5)
	if len(cands) != 1 || cands[0].ID != subjectID(0) {
		t.Fatalf("re-added template not retrieved: %+v", cands)
	}
}

func TestRemoveRestoresBuckets(t *testing.T) {
	cohort := population.NewCohort(rng.New(13), population.CohortOptions{Size: 4})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i := 0; i < 3; i++ {
		if err := ix.Add(subjectID(i), tpls[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Stats()
	if err := ix.Add(subjectID(3), tpls[3]); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove(subjectID(3)); err != nil {
		t.Fatal(err)
	}
	after := ix.Stats()
	if before != after {
		t.Fatalf("Add+Remove not a no-op on stats: %+v vs %+v", before, after)
	}
}

func TestResetEmpties(t *testing.T) {
	cohort := population.NewCohort(rng.New(14), population.CohortOptions{Size: 2})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	ix.Reset()
	if st := ix.Stats(); st.Templates != 0 || st.Postings != 0 {
		t.Fatalf("Reset left %+v", st)
	}
	// Reusable after Reset.
	if err := ix.Add(subjectID(0), tpls[0]); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesDeterministicAcrossAddOrder(t *testing.T) {
	cohort := population.NewCohort(rng.New(15), population.CohortOptions{Size: 30})
	tpls := captureGallery(t, cohort, "D0")
	fwd := New(Options{})
	rev := New(Options{})
	for i := range tpls {
		if err := fwd.Add(subjectID(i), tpls[i]); err != nil {
			t.Fatal(err)
		}
		j := len(tpls) - 1 - i
		if err := rev.Add(subjectID(j), tpls[j]); err != nil {
			t.Fatal(err)
		}
	}
	d1, _ := sensor.ProfileByID("D1")
	for i := 0; i < 5; i++ {
		imp, err := d1.CaptureSubject(cohort.Subjects[i], 1, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a := fwd.Candidates(imp.Template, 10)
		b := rev.Candidates(imp.Template, 10)
		if len(a) != len(b) {
			t.Fatalf("shortlist length differs across insertion order: %d vs %d", len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("candidate %d differs across insertion order: %+v vs %+v", k, a[k], b[k])
			}
		}
	}
}

func TestCandidatesTinyProbe(t *testing.T) {
	cohort := population.NewCohort(rng.New(16), population.CohortOptions{Size: 3})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	tiny := &minutiae.Template{Width: 100, Height: 100, DPI: 500,
		Minutiae: []minutiae.Minutia{{X: 10, Y: 10, Angle: 1, Kind: minutiae.Ending},
			{X: 40, Y: 40, Angle: 2, Kind: minutiae.Ending}}}
	if got := ix.Candidates(tiny, 5); len(got) != 0 {
		t.Fatalf("two-minutiae probe retrieved %d candidates", len(got))
	}
	if got := ix.Candidates(nil, 5); got != nil {
		t.Fatal("nil probe retrieved candidates")
	}
	// A template with <3 minutiae can still be indexed and removed.
	if err := ix.Add("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove("tiny"); err != nil {
		t.Fatal(err)
	}
}

func TestShortlistRecallSyntheticPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("recall experiment needs a few hundred captures")
	}
	const n = 300
	const probes = 100
	cohort := population.NewCohort(rng.New(17), population.CohortOptions{Size: n})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	for _, probeDev := range []string{"D0", "D1"} {
		dev, _ := sensor.ProfileByID(probeDev)
		hits := 0
		for i := 0; i < probes; i++ {
			imp, err := dev.CaptureSubject(cohort.Subjects[i], 1, sensor.CaptureOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range ix.Candidates(imp.Template, 0) {
				if c.ID == subjectID(i) {
					hits++
					break
				}
			}
		}
		recall := float64(hits) / float64(probes)
		t.Logf("%s probes: shortlist recall %.3f", probeDev, recall)
		min := 0.95
		if probeDev != "D0" {
			min = 0.90 // cross-device capture suffers the relative warp
		}
		if recall < min {
			t.Fatalf("%s shortlist recall %.3f below %.2f", probeDev, recall, min)
		}
	}
}

func TestConcurrentLookupsAndMutation(t *testing.T) {
	cohort := population.NewCohort(rng.New(18), population.CohortOptions{Size: 24})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i := 0; i < 12; i++ {
		if err := ix.Add(subjectID(i), tpls[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				ix.Candidates(tpls[(w+rep)%12], 8)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 12; i < 24; i++ {
			if err := ix.Add(subjectID(i), tpls[i]); err != nil {
				panic(err)
			}
		}
		for i := 12; i < 24; i++ {
			if err := ix.Remove(subjectID(i)); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	if ix.Len() != 12 {
		t.Fatalf("Len after churn = %d", ix.Len())
	}
}

func TestOptionsDefaultsClamped(t *testing.T) {
	o := Options{AngleBins: 1000, SideBin: 1, MaxSide: 1e6}.withDefaults()
	if o.AngleBins > 64 {
		t.Fatalf("AngleBins %d exceeds packed field", o.AngleBins)
	}
	if o.MaxSide > 255*o.SideBin {
		t.Fatalf("MaxSide %v exceeds packed side bins", o.MaxSide)
	}
	if New(Options{}).Options().Fanout == 0 {
		t.Fatal("defaults not resolved at construction")
	}
}

func TestFanoutTruncation(t *testing.T) {
	cohort := population.NewCohort(rng.New(19), population.CohortOptions{Size: 20})
	tpls := captureGallery(t, cohort, "D0")
	ix := New(Options{})
	for i, tpl := range tpls {
		if err := ix.Add(subjectID(i), tpl); err != nil {
			t.Fatal(err)
		}
	}
	d0, _ := sensor.ProfileByID("D0")
	imp, err := d0.CaptureSubject(cohort.Subjects[0], 1, sensor.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Candidates(imp.Template, 3); len(got) > 3 {
		t.Fatalf("fanout 3 returned %d candidates", len(got))
	}
	full := ix.Candidates(imp.Template, 0)
	if len(full) > ix.Options().Fanout {
		t.Fatalf("default fanout exceeded: %d", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].Score > full[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
}

// Package linalg implements the small dense linear algebra needed by the
// geometric models in this repository: thin-plate-spline solves, least
// squares alignment, and covariance computations. It is intentionally a
// minimal, allocation-conscious implementation rather than a general BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged row %d: %d != %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			row := b.Data[k*b.Cols : (k+1)*b.Cols]
			dst := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range row {
				dst[j] += a * v
			}
		}
	}
	return out, nil
}

// MulVec returns m × v as a new slice.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: mulvec shape mismatch %dx%d × %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		sum := 0.0
		for j, a := range row {
			sum += a * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Solve solves A·x = b for x using Gaussian elimination with partial
// pivoting. A must be square; b's length must equal A.Rows. A and b are not
// modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				w.Data[col*n+j], w.Data[pivot*n+j] = w.Data[pivot*n+j], w.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			w.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				w.Data[r*n+j] -= f * w.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= w.At(i, j) * x[j]
		}
		x[i] = sum / w.At(i, i)
	}
	return x, nil
}

// SolveMulti solves A·X = B column-by-column where B has one column per
// right-hand side. Returns X with the same shape as B.
func SolveMulti(a *Matrix, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("linalg: SolveMulti shape mismatch %d != %d", a.Rows, b.Rows)
	}
	out := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := Solve(a, col)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", j, err)
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// LeastSquares solves the overdetermined system A·x ≈ b in the least-squares
// sense via the normal equations AᵀA·x = Aᵀb. Adequate for the small,
// well-conditioned systems in this repository.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: LeastSquares rhs length %d != %d", len(b), a.Rows)
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	x, err := Solve(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("normal equations: %w", err)
	}
	return x, nil
}

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a symmetric
// positive-definite matrix.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAt(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents: %+v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("expected 0x0, got %dx%d", m.Rows, m.Cols)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestMulVecShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveRhsMismatch(t *testing.T) {
	a := Identity(3)
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Fatal("expected error for wrong rhs length")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 5, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != 1 || b[0] != 1 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	// Property: for random well-conditioned A and x, Solve(A, A·x) ≈ x.
	f := func(seed int64) bool {
		n := 5
		a := Identity(n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>33%2000)-1000) / 500.0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+next()/4)
			}
			a.Set(i, i, a.At(i, i)+3) // diagonal dominance keeps it well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = next()
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMulti(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 0}, {0, 4}})
	b, _ := FromRows([][]float64{{2, 4}, {8, 12}})
	x, err := SolveMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2}, {2, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(x.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("X[%d][%d] = %v", i, j, x.At(i, j))
			}
		}
	}
}

func TestSolveMultiShapeMismatch(t *testing.T) {
	if _, err := SolveMulti(Identity(2), NewMatrix(3, 1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2x + 1 sampled at 4 points.
	a, _ := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	x, err := LeastSquares(a, []float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-9) || !almostEq(x[1], 1, 1e-9) {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	// Minimizer of a noisy linear fit must reduce residual vs zero vector.
	a, _ := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}})
	b := []float64{0.9, 3.2, 4.8, 7.1, 9.05}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := a.MulVec(x)
	res := 0.0
	for i := range b {
		res += (pred[i] - b[i]) * (pred[i] - b[i])
	}
	if res > 0.2 {
		t.Fatalf("residual %v too large for near-linear data", res)
	}
}

func TestLeastSquaresRhsMismatch(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(3, 2), []float64{1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(l.At(i, j), want.At(i, j), 1e-9) {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Identity(2)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

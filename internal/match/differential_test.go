package match

// Differential tests: the optimized Session path (flat accumulator,
// spatial grid, bounded heap, pair arena) must return results
// bit-identical to the reference matcher on arbitrary inputs — same
// score, pair list, transform, and residual. Any divergence is a bug in
// the optimization, never an acceptable approximation.

import (
	"math"
	"testing"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// offsetTemplate builds a template whose minutiae cluster far from the
// origin inside a huge capture window, pushing translation bins toward
// the edges of packKey's offset 16-bit range.
func offsetTemplate(seed uint64, n int, winPx int, offX, offY float64) *minutiae.Template {
	src := rng.New(seed)
	tpl := &minutiae.Template{Width: winPx, Height: winPx, DPI: 500}
	for i := 0; i < n; i++ {
		tpl.Minutiae = append(tpl.Minutiae, minutiae.Minutia{
			X:       offX + src.Float64()*300,
			Y:       offY + src.Float64()*300,
			Angle:   src.Float64() * 2 * math.Pi,
			Kind:    minutiae.Ending,
			Quality: 50,
		})
	}
	return tpl
}

// feq is bit-equality except that NaN equals NaN (non-finite inputs
// legitimately produce NaN scores on both paths).
func feq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func sameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !feq(want.Score, got.Score) {
		t.Fatalf("%s: score %v != reference %v", label, got.Score, want.Score)
	}
	if want.Matched != got.Matched {
		t.Fatalf("%s: matched %d != reference %d", label, got.Matched, want.Matched)
	}
	if !feq(want.MeanResidual, got.MeanResidual) {
		t.Fatalf("%s: residual %v != reference %v", label, got.MeanResidual, want.MeanResidual)
	}
	if !feq(want.Transform.Theta, got.Transform.Theta) || !feq(want.Transform.T.X, got.Transform.T.X) ||
		!feq(want.Transform.T.Y, got.Transform.T.Y) || want.Transform.S != got.Transform.S {
		t.Fatalf("%s: transform %+v != reference %+v", label, got.Transform, want.Transform)
	}
	if len(want.Pairs) != len(got.Pairs) {
		t.Fatalf("%s: %d pairs != reference %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if want.Pairs[i] != got.Pairs[i] {
			t.Fatalf("%s: pair %d = %v != reference %v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
}

// diffCorpus returns (gallery, probe) pairs spanning the edge cases the
// hot path has to survive: empty and single-minutia templates, genuine
// transformed pairs, impostors, identical templates, and offset
// clusters that stress the packed-key translation range.
func diffCorpus() [][2]*minutiae.Template {
	var corpus [][2]*minutiae.Template
	empty := &minutiae.Template{Width: 300, Height: 300, DPI: 500}
	one := syntheticTemplate(901, 1)
	two := syntheticTemplate(902, 2)
	corpus = append(corpus,
		[2]*minutiae.Template{empty, syntheticTemplate(1, 20)},
		[2]*minutiae.Template{syntheticTemplate(2, 20), empty},
		[2]*minutiae.Template{one, one},
		[2]*minutiae.Template{one, syntheticTemplate(903, 30)},
		[2]*minutiae.Template{two, two},
	)
	// Random impostor pairs at several sizes.
	for i := 0; i < 25; i++ {
		a := syntheticTemplate(uint64(100+i), 5+i*2)
		b := syntheticTemplate(uint64(500+i), 60-i*2)
		corpus = append(corpus, [2]*minutiae.Template{a, b})
	}
	// Genuine pairs: rigid motions of the same template.
	for i := 0; i < 15; i++ {
		base := syntheticTemplate(uint64(700+i), 35)
		tr := geom.Rigid{
			Theta: float64(i-7) * 0.12,
			T:     geom.Point{X: float64(i*4 - 30), Y: float64(25 - i*3)},
			S:     1,
		}
		corpus = append(corpus, [2]*minutiae.Template{base, transformTemplate(base, tr)})
	}
	// Self matches.
	for i := 0; i < 5; i++ {
		tpl := syntheticTemplate(uint64(800+i), 10+i*12)
		corpus = append(corpus, [2]*minutiae.Template{tpl, tpl})
	}
	// Large windows with far-offset clusters: translation bins in the
	// thousands, exercising packKey's signed-offset packing well past
	// the small-template regime.
	for i := 0; i < 4; i++ {
		g := offsetTemplate(uint64(950+i), 25, 6000, 5500, 200)
		p := offsetTemplate(uint64(960+i), 25, 6000, 100, 5400)
		corpus = append(corpus, [2]*minutiae.Template{g, p})
	}
	// Genuine pair across a big offset (tests negative translation bins).
	far := offsetTemplate(970, 30, 6000, 5000, 5000)
	corpus = append(corpus, [2]*minutiae.Template{far, transformTemplate(far, geom.Rigid{Theta: 0.3, T: geom.Point{X: -40, Y: 25}, S: 1})})
	return corpus
}

func TestSessionMatchesReferenceBitForBit(t *testing.T) {
	m := &HoughMatcher{}
	sess := NewSession(m)
	for ci, pair := range diffCorpus() {
		g, p := pair[0], pair[1]
		want, err := m.referenceMatch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Match(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "session", want, got)

		// The prepared path and the public pooled path must agree too.
		prep := m.Prepare(g)
		gotPrep, err := sess.MatchPrepared(prep, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "prepared", want, gotPrep)

		gotPub, err := m.Match(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "pooled", want, gotPub)
		_ = ci
	}
}

func TestSessionMatchesReferenceNonDefaultParams(t *testing.T) {
	// Non-default tolerances change bin geometry; identity must hold for
	// any parameterization, including ones that make every pair vote
	// into few cells.
	for _, m := range []*HoughMatcher{
		{DistTol: 7, AngleTol: 0.2, RotBins: 48, ShiftBin: 8, Candidates: 3},
		{DistTol: 30, RotBins: 8, ShiftBin: 40, Candidates: 10},
		{DistTol: 2, ShiftBin: 2},
		// Pathological parameterizations: a negative ShiftBin flips the
		// window arithmetic (must fall back to the reference), a
		// negative DistTol still admits pairs within its magnitude
		// (grid cells must be sized by |DistTol|).
		{ShiftBin: -16},
		{DistTol: -100, ShiftBin: 4},
	} {
		sess := NewSession(m)
		for i := 0; i < 10; i++ {
			g := syntheticTemplate(uint64(40+i), 30)
			p := syntheticTemplate(uint64(60+i), 30)
			want, _ := m.referenceMatch(g, p)
			got, _ := sess.Match(g, p)
			sameResult(t, "params", want, got)
		}
	}
}

func TestSessionScratchSurvivesReuse(t *testing.T) {
	// Reusing one session across wildly different template sizes must
	// not leak state between matches (stale votes, grid, or used-sets).
	m := &HoughMatcher{}
	sess := NewSession(m)
	corpus := diffCorpus()
	// Interleave: big, small, empty, big — twice — and verify against a
	// fresh reference every time.
	order := []int{5, 0, 40, 2, 6, 1, 41, 5, 40}
	for _, idx := range order {
		if idx >= len(corpus) {
			continue
		}
		g, p := corpus[idx][0], corpus[idx][1]
		want, _ := m.referenceMatch(g, p)
		got, err := sess.Match(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "reuse", want, got)
	}
}

func TestPreparedParamsMismatchRebuilds(t *testing.T) {
	// A Prepared built for one parameterization used under another must
	// produce the session's parameterization, not the preparation's.
	base := &HoughMatcher{}
	other := &HoughMatcher{DistTol: 5, ShiftBin: 4}
	g := syntheticTemplate(11, 30)
	p := syntheticTemplate(12, 30)
	prep := base.Prepare(g)
	sess := NewSession(other)
	want, _ := other.referenceMatch(g, p)
	got, err := sess.MatchPrepared(prep, p)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "mismatched prep", want, got)
}

func TestSessionSteadyStateZeroAllocs(t *testing.T) {
	// The acceptance bar: a warmed session performs zero heap
	// allocations per match, prepared or not.
	m := &HoughMatcher{}
	sess := NewSession(m)
	g := syntheticTemplate(21, 45)
	p := transformTemplate(g, geom.Rigid{Theta: 0.2, T: geom.Point{X: 12, Y: -9}, S: 1})
	prep := m.Prepare(g)
	imp := syntheticTemplate(99, 40)
	// Warm the scratch across the shapes the loop will see.
	for _, probe := range []*minutiae.Template{p, imp} {
		if _, err := sess.Match(g, probe); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.MatchPrepared(prep, probe); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := sess.Match(g, p); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Session.Match allocates %v per op in steady state", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, err := sess.MatchPrepared(prep, imp); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Session.MatchPrepared allocates %v per op in steady state", avg)
	}
}

func TestAccumulatorOverflowFallsBackToReference(t *testing.T) {
	// A window too large for the flat accumulator must still match (via
	// the reference fallback), not panic or truncate.
	g := offsetTemplate(31, 15, 1<<20, 1000000, 1000000)
	p := offsetTemplate(32, 15, 1<<20, 100, 100)
	m := &HoughMatcher{}
	sess := NewSession(m)
	want, err := m.referenceMatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Match(g, p)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "fallback", want, got)
}

func TestPrepareNilAndEmpty(t *testing.T) {
	m := &HoughMatcher{}
	if m.Prepare(nil) != nil {
		t.Fatal("Prepare(nil) should return nil")
	}
	empty := &minutiae.Template{Width: 100, Height: 100, DPI: 500}
	prep := m.Prepare(empty)
	if prep == nil || prep.Template() != empty {
		t.Fatal("Prepare(empty) should return a usable preparation")
	}
	sess := NewSession(m)
	res, err := sess.MatchPrepared(prep, syntheticTemplate(1, 10))
	if err != nil || res.Score != 0 {
		t.Fatalf("empty prepared match: %v %v", res.Score, err)
	}
	if _, err := sess.MatchPrepared(nil, syntheticTemplate(1, 10)); err == nil {
		t.Fatal("nil prepared should error")
	}
}

func FuzzSessionMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(20), uint8(30), int16(0), int16(0))
	f.Add(uint64(3), uint64(3), uint8(1), uint8(1), int16(500), int16(-500))
	f.Add(uint64(7), uint64(11), uint8(0), uint8(45), int16(3000), int16(3000))
	f.Add(uint64(13), uint64(17), uint8(64), uint8(64), int16(-200), int16(2500))
	f.Fuzz(func(t *testing.T, seedA, seedB uint64, nA, nB uint8, offX, offY int16) {
		// Bounded geometry: coordinates stay small enough for the flat
		// accumulator path (the regime the fuzz is meant to stress).
		ox := float64(offX) + 4000
		oy := float64(offY) + 4000
		g := offsetTemplate(seedA, int(nA%70), 9000, ox, oy)
		p := offsetTemplate(seedB, int(nB%70), 9000, 8000-ox, 8000-oy)
		m := &HoughMatcher{}
		want, err1 := m.referenceMatch(g, p)
		sess := NewSession(m)
		got, err2 := sess.Match(g, p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error divergence: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		sameResult(t, "fuzz", want, got)
	})
}

// sensorPair captures a realistic cross-device genuine pair (the same
// workload as the top-level BenchmarkHoughMatch).
func sensorPair(tb testing.TB) (g, p *minutiae.Template) {
	tb.Helper()
	cohort := population.NewCohort(rng.New(2013), population.CohortOptions{Size: 1})
	d0, _ := sensor.ProfileByID("D0")
	d1, _ := sensor.ProfileByID("D1")
	gi, err := d0.CaptureSubject(cohort.Subjects[0], 0, sensor.CaptureOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	pi, err := d1.CaptureSubject(cohort.Subjects[0], 0, sensor.CaptureOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	return gi.Template, pi.Template
}

// BenchmarkReferenceMatch times the pre-optimization algorithm on a
// cross-device genuine pair — the before side of the hot-path rewrite.
func BenchmarkReferenceMatch(b *testing.B) {
	g, p := sensorPair(b)
	m := &HoughMatcher{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.referenceMatch(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionMatchSensor times the optimized session path on the
// same pair — the after side.
func BenchmarkSessionMatchSensor(b *testing.B) {
	g, p := sensorPair(b)
	m := &HoughMatcher{}
	sess := NewSession(m)
	prep := m.Prepare(g)
	if _, err := sess.MatchPrepared(prep, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.MatchPrepared(prep, p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNonFiniteCoordinatesStayTotal(t *testing.T) {
	// NaN passes Template.Validate (its comparisons are all false), so
	// the optimized path must stay total over non-finite geometry by
	// falling back to the reference matcher instead of panicking.
	m := &HoughMatcher{}
	sess := NewSession(m)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		g := syntheticTemplate(61, 20)
		p := syntheticTemplate(62, 20)
		g.Minutiae[3].X = bad
		p.Minutiae[5].Angle = bad
		want, err := m.referenceMatch(g, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Match(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "non-finite", want, got)
		prep := m.Prepare(g)
		gotPrep, err := sess.MatchPrepared(prep, p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "non-finite prepared", want, gotPrep)
		// A clean pair afterwards proves no scratch corruption.
		clean := syntheticTemplate(63, 20)
		want2, _ := m.referenceMatch(clean, p)
		_ = want2
		got2, err := sess.Match(clean, syntheticTemplate(64, 20))
		if err != nil {
			t.Fatal(err)
		}
		want3, _ := m.referenceMatch(clean, syntheticTemplate(64, 20))
		sameResult(t, "after non-finite", want3, got2)
	}
}

func TestWideWindowPackKeyWrapFallsBack(t *testing.T) {
	// Two gallery clusters whose translation bins differ by 2^16: the
	// reference map merges their votes under one wrapped packKey while a
	// flat accumulator would keep them distinct, so windows over 2^16
	// bins per axis must take the reference path. x-span 2^16*16 px with
	// a tiny y-span keeps the cell count under maxAccCells, exercising
	// exactly the wrap guard rather than the size guard.
	g := &minutiae.Template{Width: 1 << 21, Height: 400, DPI: 500}
	p := &minutiae.Template{Width: 400, Height: 400, DPI: 500}
	src := rng.New(7)
	for i := 0; i < 6; i++ {
		x := 50 + src.Float64()*100
		y := 50 + src.Float64()*100
		a := src.Float64() * 2 * math.Pi
		g.Minutiae = append(g.Minutiae,
			minutiae.Minutia{X: x, Y: y, Angle: a, Kind: minutiae.Ending, Quality: 50},
			minutiae.Minutia{X: x + float64(1<<16)*16, Y: y, Angle: a, Kind: minutiae.Ending, Quality: 50})
		p.Minutiae = append(p.Minutiae,
			minutiae.Minutia{X: x, Y: y, Angle: a, Kind: minutiae.Ending, Quality: 50})
	}
	m := &HoughMatcher{}
	sess := NewSession(m)
	want, err := m.referenceMatch(g, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Match(g, p)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "wide window", want, got)
}

package match

import (
	"math"
	"sync"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// GreedyMatcher is a deliberately simpler matcher used as the "diverse
// matcher" in matcher-diversity analyses: it aligns templates by centroid
// and dominant minutia direction only (no Hough search), then pairs
// greedily. It is cheaper and measurably weaker than HoughMatcher —
// exactly the asymmetry diversity studies need.
type GreedyMatcher struct {
	// DistTol is the pairing distance tolerance in px (default 16).
	DistTol float64
	// AngleTol is the pairing angle tolerance in radians (default 35°).
	AngleTol float64
}

var _ Matcher = (*GreedyMatcher)(nil)

// greedyScratch follows the hot-path candidate-scratch convention:
// slice-backed candidate and used-set buffers pooled across calls, with
// distances kept squared until selection.
type greedyScratch struct {
	cands        []pairCand
	usedG, usedQ []bool
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// Match implements Matcher. It is safe for concurrent use.
func (m *GreedyMatcher) Match(gallery, probe *minutiae.Template) (Result, error) {
	if gallery == nil || probe == nil {
		return Result{}, ErrNilTemplate
	}
	distTol := m.DistTol
	if distTol == 0 {
		distTol = 16
	}
	angleTol := m.AngleTol
	if angleTol == 0 {
		angleTol = 35 * math.Pi / 180
	}
	ga, pr := gallery.Minutiae, probe.Minutiae
	if len(ga) == 0 || len(pr) == 0 {
		return Result{}, nil
	}

	// Alignment: rotation from the circular-mean direction difference,
	// translation from centroids.
	theta := circularMeanDiff(ga, pr)
	gcx, gcy := gallery.Centroid()
	pcx, pcy := probe.Centroid()
	c, s := math.Cos(theta), math.Sin(theta)
	tr := geom.Rigid{
		Theta: theta,
		T: geom.Point{
			X: gcx - (pcx*c - pcy*s),
			Y: gcy - (pcx*s + pcy*c),
		},
		S: 1,
	}

	sc := greedyPool.Get().(*greedyScratch)
	cands := sc.cands[:0]
	tol2 := distTol * distTol
	for j, b := range pr {
		tx := b.X*c - b.Y*s + tr.T.X
		ty := b.X*s + b.Y*c + tr.T.Y
		ta := b.Angle + theta
		for i, a := range ga {
			dx := tx - a.X
			dy := ty - a.Y
			d2 := dx*dx + dy*dy
			if d2 > tol2 || angleDiff(ta, a.Angle) > angleTol {
				continue
			}
			cands = append(cands, pairCand{d2: d2, g: int32(i), q: int32(j)})
		}
	}
	sc.cands = cands
	sortPairCands(cands)
	if cap(sc.usedG) < len(ga) {
		sc.usedG = make([]bool, len(ga))
	}
	if cap(sc.usedQ) < len(pr) {
		sc.usedQ = make([]bool, len(pr))
	}
	usedG := sc.usedG[:len(ga)]
	usedQ := sc.usedQ[:len(pr)]
	clear(usedG)
	clear(usedQ)
	var pairs [][2]int
	sumD := 0.0
	for _, cd := range cands {
		if usedG[cd.g] || usedQ[cd.q] {
			continue
		}
		usedG[cd.g] = true
		usedQ[cd.q] = true
		pairs = append(pairs, [2]int{int(cd.g), int(cd.q)})
		sumD += math.Sqrt(cd.d2)
	}
	greedyPool.Put(sc)
	res := Result{Matched: len(pairs), Transform: tr, Pairs: pairs}
	if len(pairs) > 0 {
		res.MeanResidual = sumD / float64(len(pairs))
	}
	res.Score = scoreFromPairing(len(pairs), res.MeanResidual, distTol, overlapDenom(gallery, probe, tr))
	return res, nil
}

// circularMeanDiff estimates the rotation between two minutia sets from
// the difference of their circular mean directions.
func circularMeanDiff(ga, pr []minutiae.Minutia) float64 {
	mean := func(ms []minutiae.Minutia) float64 {
		var sx, sy float64
		for _, m := range ms {
			sx += math.Cos(m.Angle)
			sy += math.Sin(m.Angle)
		}
		return math.Atan2(sy, sx)
	}
	return geom.NormalizeAngle(mean(ga) - mean(pr))
}

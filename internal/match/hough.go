package match

import (
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// HoughMatcher is the primary minutiae matcher: a generalized Hough
// transform over candidate rigid alignments followed by tolerance-gated
// greedy pairing and one least-squares refinement pass. The zero value is
// ready to use with production defaults.
//
// Match borrows scratch from a shared session pool, so ad-hoc calls stay
// allocation-light; hot loops that need zero steady-state allocations
// (gallery scans, study workers, benchmarks) should hold a Session and
// call Session.Match or Session.MatchPrepared directly.
type HoughMatcher struct {
	// DistTol is the pairing distance tolerance in pixels (default 14,
	// ≈0.7 mm at 500 dpi — under two ridge periods).
	DistTol float64
	// AngleTol is the pairing angle tolerance in radians (default 30°).
	AngleTol float64
	// RotBins quantizes candidate rotations (default 24 → 15° bins).
	RotBins int
	// ShiftBin is the translation accumulator bin size in px (default 16).
	ShiftBin float64
	// Candidates is how many top accumulator cells to refine (default 6).
	Candidates int
}

var _ Matcher = (*HoughMatcher)(nil)

func (m *HoughMatcher) params() HoughMatcher {
	p := *m
	if p.DistTol == 0 {
		p.DistTol = 14
	}
	if p.AngleTol == 0 {
		p.AngleTol = math.Pi / 6
	}
	if p.RotBins == 0 {
		p.RotBins = 24
	}
	if p.ShiftBin == 0 {
		p.ShiftBin = 16
	}
	if p.Candidates == 0 {
		p.Candidates = 6
	}
	return p
}

// packKey packs accumulator cell coordinates into one uint64. Translation
// bins are offset by 2^15 so negative shifts pack cleanly; templates are
// far smaller than the 16-bit bin range.
func packKey(rot, tx, ty int32) uint64 {
	return uint64(uint32(rot))<<32 | uint64(uint16(tx+1<<15))<<16 | uint64(uint16(ty+1<<15))
}

func unpackKey(k uint64) (rot, tx, ty int32) {
	rot = int32(k >> 32)
	tx = int32(uint16(k>>16)) - 1<<15
	ty = int32(uint16(k)) - 1<<15
	return rot, tx, ty
}

// Match implements Matcher. It is safe for concurrent use; scratch
// comes from the shared session pool and the returned pairs are copied
// out, so the Result stays valid indefinitely.
func (m *HoughMatcher) Match(gallery, probe *minutiae.Template) (Result, error) {
	s := AcquireSession(m)
	res, err := s.Match(gallery, probe)
	res = detachResult(res)
	s.Release()
	return res, err
}

// estimateRigid computes the least-squares rigid transform (rotation +
// translation, no scale) mapping probe minutiae onto their paired gallery
// minutiae — the classic Procrustes/Kabsch solution in 2-D.
func estimateRigid(ga, pr []minutiae.Minutia, pairs [][2]int) (geom.Rigid, bool) {
	n := len(pairs)
	if n < 2 {
		return geom.Rigid{}, false
	}
	var gcx, gcy, pcx, pcy float64
	for _, pair := range pairs {
		g, q := ga[pair[0]], pr[pair[1]]
		gcx += g.X
		gcy += g.Y
		pcx += q.X
		pcy += q.Y
	}
	fn := float64(n)
	gcx /= fn
	gcy /= fn
	pcx /= fn
	pcy /= fn
	// Cross-covariance terms.
	var sxx, sxy, syx, syy float64
	for _, pair := range pairs {
		g, q := ga[pair[0]], pr[pair[1]]
		px, py := q.X-pcx, q.Y-pcy
		gx, gy := g.X-gcx, g.Y-gcy
		sxx += px * gx
		sxy += px * gy
		syx += py * gx
		syy += py * gy
	}
	theta := math.Atan2(sxy-syx, sxx+syy)
	c, s := math.Cos(theta), math.Sin(theta)
	tx := gcx - (pcx*c - pcy*s)
	ty := gcy - (pcx*s + pcy*c)
	return geom.Rigid{Theta: theta, T: geom.Point{X: tx, Y: ty}, S: 1}, true
}

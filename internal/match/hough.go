package match

import (
	"math"
	"sort"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// HoughMatcher is the primary minutiae matcher: a generalized Hough
// transform over candidate rigid alignments followed by tolerance-gated
// greedy pairing and one least-squares refinement pass. The zero value is
// ready to use with production defaults.
type HoughMatcher struct {
	// DistTol is the pairing distance tolerance in pixels (default 14,
	// ≈0.7 mm at 500 dpi — under two ridge periods).
	DistTol float64
	// AngleTol is the pairing angle tolerance in radians (default 30°).
	AngleTol float64
	// RotBins quantizes candidate rotations (default 24 → 15° bins).
	RotBins int
	// ShiftBin is the translation accumulator bin size in px (default 16).
	ShiftBin float64
	// Candidates is how many top accumulator cells to refine (default 6).
	Candidates int
}

var _ Matcher = (*HoughMatcher)(nil)

func (m *HoughMatcher) params() HoughMatcher {
	p := *m
	if p.DistTol == 0 {
		p.DistTol = 14
	}
	if p.AngleTol == 0 {
		p.AngleTol = math.Pi / 6
	}
	if p.RotBins == 0 {
		p.RotBins = 24
	}
	if p.ShiftBin == 0 {
		p.ShiftBin = 16
	}
	if p.Candidates == 0 {
		p.Candidates = 6
	}
	return p
}

// packKey packs accumulator cell coordinates into one uint64. Translation
// bins are offset by 2^15 so negative shifts pack cleanly; templates are
// far smaller than the 16-bit bin range.
func packKey(rot, tx, ty int32) uint64 {
	return uint64(uint32(rot))<<32 | uint64(uint16(tx+1<<15))<<16 | uint64(uint16(ty+1<<15))
}

func unpackKey(k uint64) (rot, tx, ty int32) {
	rot = int32(k >> 32)
	tx = int32(uint16(k>>16)) - 1<<15
	ty = int32(uint16(k)) - 1<<15
	return rot, tx, ty
}

// Match implements Matcher.
func (m *HoughMatcher) Match(gallery, probe *minutiae.Template) (Result, error) {
	if gallery == nil || probe == nil {
		return Result{}, ErrNilTemplate
	}
	p := m.params()
	ga := gallery.Minutiae
	pr := probe.Minutiae
	if len(ga) == 0 || len(pr) == 0 {
		return Result{}, nil
	}

	// --- Vote: every (probe, gallery) pair proposes the rigid transform
	// that would map the probe minutia exactly onto the gallery one.
	acc := make(map[uint64]int32, len(ga)*len(pr)/2)
	rotStep := 2 * math.Pi / float64(p.RotBins)
	// Precompute per-rotation-bin sin/cos once.
	cosTab := make([]float64, p.RotBins)
	sinTab := make([]float64, p.RotBins)
	for b := 0; b < p.RotBins; b++ {
		theta := (float64(b) + 0.5) * rotStep
		cosTab[b] = math.Cos(theta)
		sinTab[b] = math.Sin(theta)
	}
	invShift := 1 / p.ShiftBin
	for _, b := range pr {
		for _, a := range ga {
			dTheta := a.Angle - b.Angle
			// Normalize into [0, 2π).
			if dTheta < 0 {
				dTheta += 2 * math.Pi
			}
			if dTheta >= 2*math.Pi {
				dTheta -= 2 * math.Pi
			}
			rotBin := int32(dTheta / rotStep)
			if rotBin >= int32(p.RotBins) {
				rotBin = int32(p.RotBins) - 1
			}
			c, s := cosTab[rotBin], sinTab[rotBin]
			rx := b.X*c - b.Y*s
			ry := b.X*s + b.Y*c
			key := packKey(rotBin,
				int32(math.Floor((a.X-rx)*invShift)),
				int32(math.Floor((a.Y-ry)*invShift)))
			acc[key]++
		}
	}

	// --- Select the top-K most-voted cells with a single linear scan.
	nCand := p.Candidates
	topKeys := make([]uint64, 0, nCand)
	topVotes := make([]int32, 0, nCand)
	for k, v := range acc {
		pos := -1
		for i := range topVotes {
			if v > topVotes[i] || (v == topVotes[i] && k < topKeys[i]) {
				pos = i
				break
			}
		}
		switch {
		case pos == -1 && len(topVotes) < nCand:
			topKeys = append(topKeys, k)
			topVotes = append(topVotes, v)
		case pos >= 0:
			if len(topVotes) < nCand {
				topKeys = append(topKeys, 0)
				topVotes = append(topVotes, 0)
			}
			copy(topKeys[pos+1:], topKeys[pos:])
			copy(topVotes[pos+1:], topVotes[pos:])
			topKeys[pos] = k
			topVotes[pos] = v
		}
	}

	best := Result{}
	var scratch pairScratch
	scratch.init(len(ga), len(pr))
	for i := 0; i < len(topKeys); i++ {
		rot, tx, ty := unpackKey(topKeys[i])
		theta := (float64(rot) + 0.5) * rotStep
		tr := geom.Rigid{
			Theta: theta,
			T: geom.Point{
				X: (float64(tx) + 0.5) * p.ShiftBin,
				Y: (float64(ty) + 0.5) * p.ShiftBin,
			},
			S: 1,
		}
		res := m.scorePairing(gallery, probe, tr, p, &scratch)
		// One refinement round: re-estimate the transform from the pairs
		// and re-pair. Helps recover from coarse accumulator bins.
		if res.Matched >= 3 {
			if refined, ok := estimateRigid(ga, pr, res.Pairs); ok {
				res2 := m.scorePairing(gallery, probe, refined, p, &scratch)
				if res2.Score > res.Score {
					res = res2
				}
			}
		}
		if res.Score > best.Score || (best.Matched == 0 && res.Matched > 0) {
			best = res
		}
	}
	return best, nil
}

// pairScratch holds reusable buffers for the pairing inner loop.
type pairScratch struct {
	cands []pairCand
	usedG []bool
	usedQ []bool
}

type pairCand struct {
	d    float64
	g, q int32
}

func (s *pairScratch) init(ng, nq int) {
	s.usedG = make([]bool, ng)
	s.usedQ = make([]bool, nq)
	s.cands = make([]pairCand, 0, ng+nq)
}

// scorePairing pairs minutiae under the transform and scores the pairing.
func (m *HoughMatcher) scorePairing(gallery, probe *minutiae.Template, tr geom.Rigid, p HoughMatcher, scratch *pairScratch) Result {
	ga, pr := gallery.Minutiae, probe.Minutiae
	cands := scratch.cands[:0]
	c0, s0 := math.Cos(tr.Theta), math.Sin(tr.Theta)
	tol2 := p.DistTol * p.DistTol
	for j, b := range pr {
		tx := b.X*c0 - b.Y*s0 + tr.T.X
		ty := b.X*s0 + b.Y*c0 + tr.T.Y
		ta := b.Angle + tr.Theta
		for i, a := range ga {
			dx := tx - a.X
			dy := ty - a.Y
			d2 := dx*dx + dy*dy
			if d2 > tol2 {
				continue
			}
			if angleDiff(ta, a.Angle) > p.AngleTol {
				continue
			}
			cands = append(cands, pairCand{d: math.Sqrt(d2), g: int32(i), q: int32(j)})
		}
	}
	scratch.cands = cands
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		if cands[i].g != cands[j].g {
			return cands[i].g < cands[j].g
		}
		return cands[i].q < cands[j].q
	})
	usedG := scratch.usedG
	usedQ := scratch.usedQ
	for i := range usedG {
		usedG[i] = false
	}
	for i := range usedQ {
		usedQ[i] = false
	}
	var pairs [][2]int
	sumD := 0.0
	for _, c := range cands {
		if usedG[c.g] || usedQ[c.q] {
			continue
		}
		usedG[c.g] = true
		usedQ[c.q] = true
		pairs = append(pairs, [2]int{int(c.g), int(c.q)})
		sumD += c.d
	}
	res := Result{Matched: len(pairs), Transform: tr, Pairs: pairs}
	if len(pairs) > 0 {
		res.MeanResidual = sumD / float64(len(pairs))
	}
	res.Score = scoreFromPairing(len(pairs), res.MeanResidual, p.DistTol, overlapDenom(gallery, probe, tr))
	return res
}

// estimateRigid computes the least-squares rigid transform (rotation +
// translation, no scale) mapping probe minutiae onto their paired gallery
// minutiae — the classic Procrustes/Kabsch solution in 2-D.
func estimateRigid(ga, pr []minutiae.Minutia, pairs [][2]int) (geom.Rigid, bool) {
	n := len(pairs)
	if n < 2 {
		return geom.Rigid{}, false
	}
	var gcx, gcy, pcx, pcy float64
	for _, pair := range pairs {
		g, q := ga[pair[0]], pr[pair[1]]
		gcx += g.X
		gcy += g.Y
		pcx += q.X
		pcy += q.Y
	}
	fn := float64(n)
	gcx /= fn
	gcy /= fn
	pcx /= fn
	pcy /= fn
	// Cross-covariance terms.
	var sxx, sxy, syx, syy float64
	for _, pair := range pairs {
		g, q := ga[pair[0]], pr[pair[1]]
		px, py := q.X-pcx, q.Y-pcy
		gx, gy := g.X-gcx, g.Y-gcy
		sxx += px * gx
		sxy += px * gy
		syx += py * gx
		syy += py * gy
	}
	theta := math.Atan2(sxy-syx, sxx+syy)
	c, s := math.Cos(theta), math.Sin(theta)
	tx := gcx - (pcx*c - pcy*s)
	ty := gcy - (pcx*s + pcy*c)
	return geom.Rigid{Theta: theta, T: geom.Point{X: tx, Y: ty}, S: 1}, true
}

// Package match implements fingerprint minutiae matching. The primary
// matcher (HoughMatcher) stands in for the commercial Identix BioEngine
// SDK the paper used: it estimates the rigid alignment between two
// templates with a generalized Hough transform, pairs minutiae under
// distance/angle tolerances, and maps the pairing onto a BioEngine-like
// similarity score scale where impostor comparisons essentially never
// exceed 7 and well-captured genuine pairs score well above it.
//
// A deliberately simpler second matcher (GreedyMatcher) provides the
// "diverse matchers" axis the paper lists as further work.
package match

import (
	"errors"
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// ErrNilTemplate reports a nil gallery or probe.
var ErrNilTemplate = errors.New("match: nil template")

// Result is the outcome of one comparison.
type Result struct {
	// Score is the similarity on the BioEngine-like scale [0, ~30].
	// Higher means more likely the same finger.
	Score float64
	// Matched is the number of paired minutiae.
	Matched int
	// MeanResidual is the mean distance (px) between paired minutiae
	// after alignment.
	MeanResidual float64
	// Transform is the estimated probe→gallery rigid alignment.
	Transform geom.Rigid
	// Pairs holds the matched index pairs (gallery, probe) for consumers
	// that need correspondences (e.g. inter-sensor calibration).
	Pairs [][2]int
}

// Matcher compares two minutiae templates.
type Matcher interface {
	// Match compares gallery and probe templates and returns a similarity
	// result. Implementations must be safe for concurrent use.
	Match(gallery, probe *minutiae.Template) (Result, error)
}

// scoreFromPairing maps a pairing onto the similarity scale. denom is the
// number of minutiae that *could* have matched (the overlap-normalized
// reference count). The shape (power law in the matched fraction, weighted
// by geometric tightness) is calibrated so impostor scores concentrate
// below 3 with an extreme tail under 7, while same-device genuine pairs
// concentrate above 7.
func scoreFromPairing(matched int, meanResidual, tol float64, denom int) float64 {
	if matched < 2 || denom <= 0 {
		return 0
	}
	ratio := float64(matched) / float64(denom)
	if ratio > 1 {
		ratio = 1
	}
	tightness := 1 - meanResidual/tol
	if tightness < 0 {
		tightness = 0
	}
	raw := ratio * (0.40 + 0.60*tightness)
	return 30 * math.Pow(raw, 1.6)
}

// overlapDenom computes the overlap-normalized reference count for a
// comparison under a probe→gallery transform: the smaller of (gallery
// minutiae whose inverse image lies inside the probe window) and (probe
// minutiae whose image lies inside the gallery window). Normalizing by the
// overlap rather than raw template sizes keeps small-platen sensors (Seek
// II) from being penalized for imaging less of the finger. A floor of half
// the smaller template count prevents tiny accidental overlaps from
// inflating impostor scores.
func overlapDenom(gallery, probe *minutiae.Template, tr geom.Rigid) int {
	// Both loops inline geom.Rigid.Apply with the rotation hoisted: the
	// per-point expressions (rotate, scale, translate) are unchanged, so
	// the counts are identical, but the trig runs twice per call instead
	// of twice per minutia — this sits inside the matcher's per-candidate
	// scoring loop.
	inv := tr.Invert()
	ic, is := math.Cos(inv.Theta), math.Sin(inv.Theta)
	pw, ph := float64(probe.Width), float64(probe.Height)
	gIn := 0
	for _, g := range gallery.Minutiae {
		x := (g.X*ic-g.Y*is)*inv.S + inv.T.X
		y := (g.X*is+g.Y*ic)*inv.S + inv.T.Y
		if x >= 0 && x < pw && y >= 0 && y < ph {
			gIn++
		}
	}
	ts := tr.S
	if ts == 0 {
		ts = 1
	}
	tc, tsn := math.Cos(tr.Theta), math.Sin(tr.Theta)
	gw, gh := float64(gallery.Width), float64(gallery.Height)
	pIn := 0
	for _, q := range probe.Minutiae {
		x := (q.X*tc-q.Y*tsn)*ts + tr.T.X
		y := (q.X*tsn+q.Y*tc)*ts + tr.T.Y
		if x >= 0 && x < gw && y >= 0 && y < gh {
			pIn++
		}
	}
	denom := gIn
	if pIn < denom {
		denom = pIn
	}
	smaller := len(gallery.Minutiae)
	if len(probe.Minutiae) < smaller {
		smaller = len(probe.Minutiae)
	}
	if floor := (smaller + 1) / 2; denom < floor {
		denom = floor
	}
	if denom < 5 {
		denom = 5
	}
	return denom
}

// angleDiff returns the absolute angular difference in [0, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

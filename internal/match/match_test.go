package match

import (
	"math"
	"sync"
	"testing"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// syntheticTemplate builds a template with n pseudo-random minutiae.
func syntheticTemplate(seed uint64, n int) *minutiae.Template {
	src := rng.New(seed)
	tpl := &minutiae.Template{Width: 330, Height: 400, DPI: 500}
	for i := 0; i < n; i++ {
		kind := minutiae.Ending
		if src.Bool(0.45) {
			kind = minutiae.Bifurcation
		}
		tpl.Minutiae = append(tpl.Minutiae, minutiae.Minutia{
			X:       20 + src.Float64()*290,
			Y:       20 + src.Float64()*360,
			Angle:   src.Float64() * 2 * math.Pi,
			Kind:    kind,
			Quality: 60,
		})
	}
	return tpl
}

// transformTemplate applies a rigid transform to every minutia, dropping
// those that leave the window.
func transformTemplate(t *minutiae.Template, tr geom.Rigid) *minutiae.Template {
	out := &minutiae.Template{Width: t.Width, Height: t.Height, DPI: t.DPI}
	for _, m := range t.Minutiae {
		p := tr.Apply(geom.Point{X: m.X, Y: m.Y})
		if p.X < 0 || p.X >= float64(t.Width) || p.Y < 0 || p.Y >= float64(t.Height) {
			continue
		}
		out.Minutiae = append(out.Minutiae, minutiae.Minutia{
			X: p.X, Y: p.Y,
			Angle:   minutiae.NormalizeAngle(m.Angle + tr.Theta),
			Kind:    m.Kind,
			Quality: m.Quality,
		})
	}
	return out
}

func TestHoughNilAndEmpty(t *testing.T) {
	var m HoughMatcher
	if _, err := m.Match(nil, syntheticTemplate(1, 10)); err == nil {
		t.Fatal("expected error for nil gallery")
	}
	empty := &minutiae.Template{Width: 100, Height: 100, DPI: 500}
	res, err := m.Match(empty, syntheticTemplate(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 {
		t.Fatalf("empty template scored %v", res.Score)
	}
}

func TestHoughSelfMatchScoresHigh(t *testing.T) {
	var m HoughMatcher
	tpl := syntheticTemplate(7, 35)
	res, err := m.Match(tpl, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 15 {
		t.Fatalf("self-match score %v too low", res.Score)
	}
	if res.Matched < 30 {
		t.Fatalf("self-match paired only %d of 35", res.Matched)
	}
}

func TestHoughInvariantToRigidMotion(t *testing.T) {
	var m HoughMatcher
	tpl := syntheticTemplate(11, 35)
	for _, tr := range []geom.Rigid{
		{Theta: 0, T: geom.Point{X: 18, Y: -12}, S: 1},
		{Theta: 0.3, T: geom.Point{X: -10, Y: 15}, S: 1},
		{Theta: -0.5, T: geom.Point{X: 25, Y: 25}, S: 1},
	} {
		moved := transformTemplate(tpl, tr)
		res, err := m.Match(tpl, moved)
		if err != nil {
			t.Fatal(err)
		}
		// Most surviving minutiae should re-pair.
		if res.Matched < int(0.7*float64(moved.Count())) {
			t.Fatalf("transform %+v: matched %d of %d", tr, res.Matched, moved.Count())
		}
		if res.Score < 10 {
			t.Fatalf("transform %+v: score %v", tr, res.Score)
		}
	}
}

func TestHoughRecoveredTransform(t *testing.T) {
	var m HoughMatcher
	tpl := syntheticTemplate(13, 30)
	want := geom.Rigid{Theta: 0.25, T: geom.Point{X: 12, Y: -8}, S: 1}
	moved := transformTemplate(tpl, want)
	// Probe = moved; transform maps probe → gallery, i.e. the inverse.
	res, err := m.Match(tpl, moved)
	if err != nil {
		t.Fatal(err)
	}
	inv := want.Invert()
	if math.Abs(geom.AngleDiff(res.Transform.Theta, inv.Theta)) > 0.1 {
		t.Fatalf("recovered rotation %v, want %v", res.Transform.Theta, inv.Theta)
	}
}

func TestImpostorScoresStayLow(t *testing.T) {
	var m HoughMatcher
	maxScore := 0.0
	for i := 0; i < 150; i++ {
		a := syntheticTemplate(uint64(1000+i), 35)
		b := syntheticTemplate(uint64(5000+i), 35)
		res, err := m.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score > maxScore {
			maxScore = res.Score
		}
	}
	// The paper's empirical bound: impostor scores never exceeded 7.
	if maxScore >= 7 {
		t.Fatalf("impostor score %v reached the genuine region", maxScore)
	}
}

func TestGenuineBeatsImpostorWithRealSensors(t *testing.T) {
	cohort := population.NewCohort(rng.New(77), population.CohortOptions{Size: 30})
	d0, _ := sensor.ProfileByID("D0")
	var m HoughMatcher
	var genuine, impostor []float64
	for i, s := range cohort.Subjects {
		a, err := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := d0.CaptureSubject(s, 1, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Match(a.Template, b.Template)
		if err != nil {
			t.Fatal(err)
		}
		genuine = append(genuine, res.Score)
		// Impostor: next subject's capture.
		o := cohort.Subjects[(i+1)%len(cohort.Subjects)]
		c, err := d0.CaptureSubject(o, 0, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res2, err := m.Match(a.Template, c.Template)
		if err != nil {
			t.Fatal(err)
		}
		impostor = append(impostor, res2.Score)
	}
	gm := mean(genuine)
	im := mean(impostor)
	if gm < im+5 {
		t.Fatalf("genuine mean %v not well above impostor mean %v", gm, im)
	}
	// Majority of genuine scores above the paper's implicit threshold 7.
	above := 0
	for _, g := range genuine {
		if g > 7 {
			above++
		}
	}
	if above < len(genuine)*6/10 {
		t.Fatalf("only %d/%d same-device genuine scores above 7", above, len(genuine))
	}
}

func TestSameDeviceBeatsCrossDevice(t *testing.T) {
	// The central interoperability phenomenon: DMG stochastically
	// dominates DDMG.
	cohort := population.NewCohort(rng.New(99), population.CohortOptions{Size: 40})
	d0, _ := sensor.ProfileByID("D0")
	d1, _ := sensor.ProfileByID("D1")
	var m HoughMatcher
	var same, cross []float64
	for _, s := range cohort.Subjects {
		g, _ := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
		p0, _ := d0.CaptureSubject(s, 1, sensor.CaptureOptions{})
		p1, _ := d1.CaptureSubject(s, 1, sensor.CaptureOptions{})
		r0, err := m.Match(g.Template, p0.Template)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := m.Match(g.Template, p1.Template)
		if err != nil {
			t.Fatal(err)
		}
		same = append(same, r0.Score)
		cross = append(cross, r1.Score)
	}
	if mean(same) <= mean(cross) {
		t.Fatalf("same-device mean %v not above cross-device %v", mean(same), mean(cross))
	}
}

func TestHoughDeterministic(t *testing.T) {
	var m HoughMatcher
	a := syntheticTemplate(21, 35)
	b := syntheticTemplate(22, 35)
	r1, _ := m.Match(a, b)
	r2, _ := m.Match(a, b)
	if r1.Score != r2.Score || r1.Matched != r2.Matched {
		t.Fatal("matcher not deterministic")
	}
}

func TestHoughConcurrentUse(t *testing.T) {
	var m HoughMatcher
	a := syntheticTemplate(31, 30)
	b := transformTemplate(a, geom.Rigid{Theta: 0.1, T: geom.Point{X: 5, Y: 5}, S: 1})
	want, _ := m.Match(a, b)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, err := m.Match(a, b)
				if err != nil || got.Score != want.Score {
					panic("concurrent match diverged")
				}
			}
		}()
	}
	wg.Wait()
}

func TestGreedyMatcherBasics(t *testing.T) {
	var m GreedyMatcher
	if _, err := m.Match(nil, nil); err == nil {
		t.Fatal("expected nil error")
	}
	tpl := syntheticTemplate(41, 30)
	res, err := m.Match(tpl, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 12 {
		t.Fatalf("greedy self-match %v too low", res.Score)
	}
	empty := &minutiae.Template{Width: 10, Height: 10, DPI: 500}
	if res, _ := m.Match(tpl, empty); res.Score != 0 {
		t.Fatal("empty probe should score 0")
	}
}

func TestGreedyWeakerThanHoughUnderRotation(t *testing.T) {
	hough := &HoughMatcher{}
	greedy := &GreedyMatcher{}
	tpl := syntheticTemplate(51, 35)
	// Rotation plus translation defeats centroid alignment but not Hough.
	tr := geom.Rigid{Theta: 0.35, T: geom.Point{X: 20, Y: -15}, S: 1}
	moved := transformTemplate(tpl, tr)
	hr, err := hough.Match(tpl, moved)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := greedy.Match(tpl, moved)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Score <= gr.Score {
		t.Fatalf("hough %v should beat greedy %v on transformed input", hr.Score, gr.Score)
	}
}

func TestEstimateRigidRecoversKnownTransform(t *testing.T) {
	src := rng.New(61)
	var ga, pr []minutiae.Minutia
	want := geom.Rigid{Theta: 0.4, T: geom.Point{X: 30, Y: -12}, S: 1}
	var pairs [][2]int
	for i := 0; i < 10; i++ {
		p := geom.Point{X: src.Float64() * 200, Y: src.Float64() * 200}
		q := want.Apply(p)
		pr = append(pr, minutiae.Minutia{X: p.X, Y: p.Y, Kind: minutiae.Ending})
		ga = append(ga, minutiae.Minutia{X: q.X, Y: q.Y, Kind: minutiae.Ending})
		pairs = append(pairs, [2]int{i, i})
	}
	got, ok := estimateRigid(ga, pr, pairs)
	if !ok {
		t.Fatal("estimateRigid failed")
	}
	if math.Abs(geom.AngleDiff(got.Theta, want.Theta)) > 1e-6 {
		t.Fatalf("theta %v, want %v", got.Theta, want.Theta)
	}
	if got.T.Dist(want.T) > 1e-6 {
		t.Fatalf("T %v, want %v", got.T, want.T)
	}
}

func TestEstimateRigidTooFewPairs(t *testing.T) {
	if _, ok := estimateRigid(nil, nil, [][2]int{{0, 0}}); ok {
		t.Fatal("expected failure with one pair")
	}
}

func TestScoreFromPairingShape(t *testing.T) {
	// More matches, tighter residuals → higher scores; bounded by 30.
	low := scoreFromPairing(4, 10, 14, 35)
	high := scoreFromPairing(28, 3, 14, 35)
	if low >= high {
		t.Fatalf("score not increasing: %v vs %v", low, high)
	}
	if high > 30 {
		t.Fatalf("score %v exceeds scale", high)
	}
	if scoreFromPairing(1, 0, 14, 35) != 0 {
		t.Fatal("single pair must score 0")
	}
	perfect := scoreFromPairing(35, 0, 14, 35)
	if perfect < 25 || perfect > 30 {
		t.Fatalf("perfect score %v outside expected band", perfect)
	}
}

func TestOverlapDenom(t *testing.T) {
	// Two equal templates under identity: denom is the full count.
	a := syntheticTemplate(91, 30)
	id := geom.Rigid{S: 1}
	if d := overlapDenom(a, a, id); d != 30 {
		t.Fatalf("identity overlap denom = %d, want 30", d)
	}
	// Shift half the window away: denom shrinks but respects the floor of
	// half the smaller template.
	shifted := geom.Rigid{T: geom.Point{X: float64(a.Width)}, S: 1}
	d := overlapDenom(a, a, shifted)
	if d < 15 {
		t.Fatalf("denominator floor violated: %d", d)
	}
	if d >= 30 {
		t.Fatalf("disjoint overlap denom = %d, want below full count", d)
	}
}

func TestAngleDiffHelper(t *testing.T) {
	if d := angleDiff(0.1, 2*math.Pi-0.1); math.Abs(d-0.2) > 1e-9 {
		t.Fatalf("wraparound diff %v", d)
	}
	if d := angleDiff(1, 1); d != 0 {
		t.Fatalf("zero diff %v", d)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func BenchmarkHoughMatchGenuine(b *testing.B) {
	var m HoughMatcher
	tpl := syntheticTemplate(71, 35)
	moved := transformTemplate(tpl, geom.Rigid{Theta: 0.2, T: geom.Point{X: 10, Y: 5}, S: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(tpl, moved); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHoughMatchImpostor(b *testing.B) {
	var m HoughMatcher
	t1 := syntheticTemplate(81, 35)
	t2 := syntheticTemplate(82, 35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(t1, t2); err != nil {
			b.Fatal(err)
		}
	}
}

package match

// Metamorphic properties of the matcher: relations that must hold under
// input transformations regardless of the concrete templates.

import (
	"math"
	"testing"
	"testing/quick"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/rng"
)

// permute returns the template with its minutiae order shuffled
// deterministically by seed.
func permute(t *minutiae.Template, seed uint64) *minutiae.Template {
	out := t.Clone()
	src := rng.New(seed)
	src.Shuffle(len(out.Minutiae), func(i, j int) {
		out.Minutiae[i], out.Minutiae[j] = out.Minutiae[j], out.Minutiae[i]
	})
	return out
}

func TestMatchInvariantUnderMinutiaePermutation(t *testing.T) {
	var m HoughMatcher
	f := func(seedA, seedB, perm uint64) bool {
		a := syntheticTemplate(seedA%1000+1, 30)
		b := syntheticTemplate(seedB%1000+1, 30)
		r1, err1 := m.Match(a, b)
		r2, err2 := m.Match(permute(a, perm), permute(b, perm+1))
		if err1 != nil || err2 != nil {
			return false
		}
		// Scores must agree to numerical noise: the pairing is a set
		// operation, not order-dependent.
		return math.Abs(r1.Score-r2.Score) < 1e-9 && r1.Matched == r2.Matched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchScoreBounds(t *testing.T) {
	var m HoughMatcher
	f := func(seedA, seedB uint64, nA, nB uint8) bool {
		a := syntheticTemplate(seedA%1000+1, int(nA%50)+1)
		b := syntheticTemplate(seedB%1000+1, int(nB%50)+1)
		res, err := m.Match(a, b)
		if err != nil {
			return false
		}
		return res.Score >= 0 && res.Score <= 30 &&
			res.Matched >= 0 &&
			res.Matched <= min(a.Count(), b.Count())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfMatchDominatesCrossMatch(t *testing.T) {
	var m HoughMatcher
	f := func(seedA, seedB uint64) bool {
		if seedA%1000 == seedB%1000 {
			return true
		}
		a := syntheticTemplate(seedA%1000+1, 35)
		b := syntheticTemplate(seedB%1000+1, 35)
		self, err1 := m.Match(a, a)
		cross, err2 := m.Match(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return self.Score > cross.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchRobustToSmallJitter(t *testing.T) {
	// Adding sub-tolerance positional jitter must not collapse the score.
	var m HoughMatcher
	base := syntheticTemplate(42, 35)
	src := rng.New(77)
	jittered := base.Clone()
	for i := range jittered.Minutiae {
		jittered.Minutiae[i].X += src.NormMS(0, 1.5)
		jittered.Minutiae[i].Y += src.NormMS(0, 1.5)
		if jittered.Minutiae[i].X < 0 {
			jittered.Minutiae[i].X = 0
		}
		if jittered.Minutiae[i].Y < 0 {
			jittered.Minutiae[i].Y = 0
		}
		if jittered.Minutiae[i].X >= float64(jittered.Width) {
			jittered.Minutiae[i].X = float64(jittered.Width) - 1
		}
		if jittered.Minutiae[i].Y >= float64(jittered.Height) {
			jittered.Minutiae[i].Y = float64(jittered.Height) - 1
		}
	}
	clean, err := m.Match(base, base)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := m.Match(base, jittered)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Score < clean.Score*0.5 {
		t.Fatalf("1.5px jitter collapsed score: %v -> %v", clean.Score, noisy.Score)
	}
}

func TestMatchDegradesMonotonicallyWithDroppedMinutiae(t *testing.T) {
	var m HoughMatcher
	base := syntheticTemplate(17, 40)
	prev := math.Inf(1)
	for _, keep := range []int{40, 30, 20, 10} {
		probe := base.Clone()
		probe.Minutiae = probe.Minutiae[:keep]
		res, err := m.Match(base, probe)
		if err != nil {
			t.Fatal(err)
		}
		// Allow small non-monotonicity from the overlap floor, but the
		// overall trend must be decreasing.
		if res.Score > prev+2 {
			t.Fatalf("score rose from %v to %v after dropping minutiae", prev, res.Score)
		}
		prev = res.Score
	}
}

func TestGreedyMatcherAgreesOnIdentity(t *testing.T) {
	g := &GreedyMatcher{}
	f := func(seed uint64) bool {
		tpl := syntheticTemplate(seed%500+1, 25)
		res, err := g.Match(tpl, tpl)
		if err != nil {
			return false
		}
		// Identity alignment: every minutia pairs with itself at zero
		// residual.
		return res.Matched == tpl.Count() && res.MeanResidual < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformedSelfMatchTransformConsistency(t *testing.T) {
	// Whatever transform the matcher reports, applying it to the probe
	// must place matched minutiae near their gallery partners.
	var m HoughMatcher
	base := syntheticTemplate(23, 30)
	tr := geom.Rigid{Theta: 0.2, T: geom.Point{X: 15, Y: -10}, S: 1}
	probe := transformTemplate(base, tr)
	res, err := m.Match(base, probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched < 5 {
		t.Fatalf("too few pairs: %d", res.Matched)
	}
	for _, pair := range res.Pairs {
		g := base.Minutiae[pair[0]]
		p := probe.Minutiae[pair[1]]
		moved := res.Transform.Apply(geom.Point{X: p.X, Y: p.Y})
		if moved.Dist(geom.Point{X: g.X, Y: g.Y}) > 14 {
			t.Fatalf("pair residual exceeds tolerance after transform")
		}
	}
}

package match

import (
	"math"

	"fpinterop/internal/minutiae"
)

// Prepared is a gallery-side template preprocessed for the Hough
// matcher hot path: the minutiae in structure-of-arrays layout (x, y,
// angle slices feed the voting loop sequentially instead of striding
// over the Minutia struct), the bounding box that sizes the translation
// accumulator window, and a spatial bucket grid (CSR layout) that
// replaces the O(n·m) pairing scan with a 3×3 neighbourhood probe.
//
// A Prepared is immutable after Prepare returns and safe for concurrent
// use by any number of Sessions. Galleries build one per enrollment so
// repeated probes against the same template skip the rebuild.
type Prepared struct {
	tpl *minutiae.Template
	p   HoughMatcher // resolved params the grid was sized for

	// Structure-of-arrays copy of tpl.Minutiae.
	x, y, angle []float64

	// Minutiae bounding box (undefined when the template is empty).
	minX, maxX, minY, maxY float64

	// Spatial bucket grid over the minutiae, CSR layout: cellStart has
	// cols*rows+1 entries; cellItems[cellStart[c]:cellStart[c+1]] are the
	// minutia indices in cell c (row-major cells, ascending index within
	// a cell). Cell sizes are at least DistTol on each axis, so every
	// minutia within DistTol of a point lies in the 3×3 neighbourhood of
	// the point's cell.
	cellStart          []int32
	cellItems          []int32
	cols, rows         int
	invCellX, invCellY float64
}

// maxGridDim bounds the bucket grid to ≈√n cells per axis: finer cells
// stop paying once they hold under one minutia each, and the cap keeps
// the per-template grid memory O(n) even for sparse, spread-out
// templates.
func gridDim(n int) float64 {
	d := math.Ceil(math.Sqrt(float64(n)))
	if d < 1 {
		d = 1
	}
	return d
}

// Prepare preprocesses a gallery-side template for repeated matching
// under this matcher's parameters. The returned value aliases tpl;
// callers that mutate templates after enrollment must re-Prepare.
func (m *HoughMatcher) Prepare(tpl *minutiae.Template) *Prepared {
	if tpl == nil {
		return nil
	}
	g := &Prepared{}
	g.build(m.params(), tpl)
	return g
}

// Template returns the template this preparation was built from.
func (g *Prepared) Template() *minutiae.Template { return g.tpl }

// build (re)fills g from tpl, reusing g's slices — Sessions call it on
// their scratch Prepared to keep the unprepared path allocation-free.
func (g *Prepared) build(p HoughMatcher, tpl *minutiae.Template) {
	g.tpl = tpl
	g.p = p
	ms := tpl.Minutiae
	n := len(ms)
	g.x = growFloats(g.x, n)
	g.y = growFloats(g.y, n)
	g.angle = growFloats(g.angle, n)
	if n == 0 {
		g.cols, g.rows = 0, 0
		return
	}
	g.minX, g.maxX = ms[0].X, ms[0].X
	g.minY, g.maxY = ms[0].Y, ms[0].Y
	finite := true
	for i, m := range ms {
		g.x[i] = m.X
		g.y[i] = m.Y
		g.angle[i] = m.Angle
		finite = finite && isFinite(m.X) && isFinite(m.Y) && isFinite(m.Angle)
		if m.X < g.minX {
			g.minX = m.X
		}
		if m.X > g.maxX {
			g.maxX = m.X
		}
		if m.Y < g.minY {
			g.minY = m.Y
		}
		if m.Y > g.maxY {
			g.maxY = m.Y
		}
	}

	if !finite {
		// Non-finite coordinates (NaN slips through Template.Validate —
		// its comparisons are all false) cannot size a grid; leave the
		// preparation gridless and let the session fall back to the
		// reference matcher, which is total over arbitrary floats.
		g.cols, g.rows = 0, 0
		return
	}

	// Cell sizes: never below the pairing tolerance radius |DistTol|
	// (the 3×3 coverage guarantee — the distance gate compares squared
	// values, so a negative tolerance still admits pairs within its
	// magnitude), never so fine that the grid outgrows the minutia
	// count.
	dim := gridDim(n)
	tol := math.Abs(p.DistTol)
	cellX := tol
	if s := (g.maxX - g.minX) / dim; s > cellX {
		cellX = s
	}
	cellY := tol
	if s := (g.maxY - g.minY) / dim; s > cellY {
		cellY = s
	}
	if !(cellX > 0) || !isFinite(cellX) || !(cellY > 0) || !isFinite(cellY) {
		// Degenerate tolerance (NaN, or zero with a point-like bounding
		// box): no usable grid; the session falls back to the reference
		// matcher.
		g.cols, g.rows = 0, 0
		return
	}
	g.invCellX = 1 / cellX
	g.invCellY = 1 / cellY
	g.cols = int((g.maxX-g.minX)*g.invCellX) + 1
	g.rows = int((g.maxY-g.minY)*g.invCellY) + 1

	cells := g.cols * g.rows
	if cap(g.cellStart) < cells+1 {
		g.cellStart = make([]int32, cells+1)
	} else {
		g.cellStart = g.cellStart[:cells+1]
		clear(g.cellStart)
	}
	g.cellItems = growInt32(g.cellItems, n)
	// Counting sort into CSR: count, prefix-sum, place (which shifts the
	// offsets one cell forward), then shift back.
	for i := 0; i < n; i++ {
		g.cellStart[g.cellOf(g.x[i], g.y[i])+1]++
	}
	for c := 1; c <= cells; c++ {
		g.cellStart[c] += g.cellStart[c-1]
	}
	for i := 0; i < n; i++ {
		c := g.cellOf(g.x[i], g.y[i])
		g.cellItems[g.cellStart[c]] = int32(i)
		g.cellStart[c]++
	}
	copy(g.cellStart[1:], g.cellStart[:cells])
	g.cellStart[0] = 0
}

// cellOf maps an in-bounds minutia position to its grid cell.
func (g *Prepared) cellOf(x, y float64) int {
	cx := int((x - g.minX) * g.invCellX)
	cy := int((y - g.minY) * g.invCellY)
	return cy*g.cols + cx
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

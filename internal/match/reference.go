package match

import (
	"math"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// referenceMatch is the pre-optimization Hough matcher kept as the
// correctness oracle: a map-backed sparse accumulator, a linear top-K
// insertion scan, and a brute-force O(n·m) pairing per candidate
// transform. It allocates freely and is slow, but its results define
// what the optimized Session path must reproduce bit for bit — the
// differential tests compare the two on randomized corpora. It is also
// the fallback when a pathological template would blow the flat
// accumulator past maxAccCells.
//
// One deliberate deviation from the historical code: pairing
// candidates sort by squared distance (sortPairCands) rather than by
// distance. The orders coincide except when two distinct d² values
// round to the same sqrt — an ulp-level tie the old comparator broke
// by index — so both implementations here share one comparator and the
// study score exports remain byte-identical to the prior release on
// real corpora.
func (m *HoughMatcher) referenceMatch(gallery, probe *minutiae.Template) (Result, error) {
	if gallery == nil || probe == nil {
		return Result{}, ErrNilTemplate
	}
	p := m.params()
	ga := gallery.Minutiae
	pr := probe.Minutiae
	if len(ga) == 0 || len(pr) == 0 {
		return Result{}, nil
	}

	// --- Vote: every (probe, gallery) pair proposes the rigid transform
	// that would map the probe minutia exactly onto the gallery one.
	acc := make(map[uint64]int32, len(ga)*len(pr)/2)
	rotStep := 2 * math.Pi / float64(p.RotBins)
	cosTab := make([]float64, p.RotBins)
	sinTab := make([]float64, p.RotBins)
	for b := 0; b < p.RotBins; b++ {
		theta := (float64(b) + 0.5) * rotStep
		cosTab[b] = math.Cos(theta)
		sinTab[b] = math.Sin(theta)
	}
	invShift := 1 / p.ShiftBin
	for _, b := range pr {
		for _, a := range ga {
			dTheta := a.Angle - b.Angle
			// Normalize into [0, 2π).
			if dTheta < 0 {
				dTheta += 2 * math.Pi
			}
			if dTheta >= 2*math.Pi {
				dTheta -= 2 * math.Pi
			}
			rotBin := int32(dTheta / rotStep)
			if rotBin >= int32(p.RotBins) {
				rotBin = int32(p.RotBins) - 1
			}
			if rotBin < 0 {
				// Unreachable for finite angles (dTheta is normalized
				// into [0, 2π) above); int32(NaN) is a huge negative,
				// and the fallback contract makes this path total.
				rotBin = 0
			}
			c, s := cosTab[rotBin], sinTab[rotBin]
			rx := b.X*c - b.Y*s
			ry := b.X*s + b.Y*c
			key := packKey(rotBin,
				int32(math.Floor((a.X-rx)*invShift)),
				int32(math.Floor((a.Y-ry)*invShift)))
			acc[key]++
		}
	}

	// --- Select the top-K most-voted cells with a single linear scan.
	nCand := p.Candidates
	topKeys := make([]uint64, 0, nCand)
	topVotes := make([]int32, 0, nCand)
	for k, v := range acc {
		pos := -1
		for i := range topVotes {
			if v > topVotes[i] || (v == topVotes[i] && k < topKeys[i]) {
				pos = i
				break
			}
		}
		switch {
		case pos == -1 && len(topVotes) < nCand:
			topKeys = append(topKeys, k)
			topVotes = append(topVotes, v)
		case pos >= 0:
			if len(topVotes) < nCand {
				topKeys = append(topKeys, 0)
				topVotes = append(topVotes, 0)
			}
			copy(topKeys[pos+1:], topKeys[pos:])
			copy(topVotes[pos+1:], topVotes[pos:])
			topKeys[pos] = k
			topVotes[pos] = v
		}
	}

	best := Result{}
	for i := 0; i < len(topKeys); i++ {
		rot, tx, ty := unpackKey(topKeys[i])
		theta := (float64(rot) + 0.5) * rotStep
		tr := geom.Rigid{
			Theta: theta,
			T: geom.Point{
				X: (float64(tx) + 0.5) * p.ShiftBin,
				Y: (float64(ty) + 0.5) * p.ShiftBin,
			},
			S: 1,
		}
		res := m.referenceScorePairing(gallery, probe, tr, p)
		// One refinement round: re-estimate the transform from the pairs
		// and re-pair. Helps recover from coarse accumulator bins.
		if res.Matched >= 3 {
			if refined, ok := estimateRigid(ga, pr, res.Pairs); ok {
				res2 := m.referenceScorePairing(gallery, probe, refined, p)
				if res2.Score > res.Score {
					res = res2
				}
			}
		}
		if res.Score > best.Score || (best.Matched == 0 && res.Matched > 0) {
			best = res
		}
	}
	return best, nil
}

// referenceScorePairing pairs minutiae under the transform by scanning
// every (probe, gallery) combination.
func (m *HoughMatcher) referenceScorePairing(gallery, probe *minutiae.Template, tr geom.Rigid, p HoughMatcher) Result {
	ga, pr := gallery.Minutiae, probe.Minutiae
	var cands []pairCand
	c0, s0 := math.Cos(tr.Theta), math.Sin(tr.Theta)
	tol2 := p.DistTol * p.DistTol
	for j, b := range pr {
		tx := b.X*c0 - b.Y*s0 + tr.T.X
		ty := b.X*s0 + b.Y*c0 + tr.T.Y
		ta := b.Angle + tr.Theta
		for i, a := range ga {
			dx := tx - a.X
			dy := ty - a.Y
			d2 := dx*dx + dy*dy
			if d2 > tol2 {
				continue
			}
			if angleDiff(ta, a.Angle) > p.AngleTol {
				continue
			}
			cands = append(cands, pairCand{d2: d2, g: int32(i), q: int32(j)})
		}
	}
	sortPairCands(cands)
	usedG := make([]bool, len(ga))
	usedQ := make([]bool, len(pr))
	var pairs [][2]int
	sumD := 0.0
	for _, c := range cands {
		if usedG[c.g] || usedQ[c.q] {
			continue
		}
		usedG[c.g] = true
		usedQ[c.q] = true
		pairs = append(pairs, [2]int{int(c.g), int(c.q)})
		sumD += math.Sqrt(c.d2)
	}
	res := Result{Matched: len(pairs), Transform: tr, Pairs: pairs}
	if len(pairs) > 0 {
		res.MeanResidual = sumD / float64(len(pairs))
	}
	res.Score = scoreFromPairing(len(pairs), res.MeanResidual, p.DistTol, overlapDenom(gallery, probe, tr))
	return res
}

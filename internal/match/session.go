package match

import (
	"math"
	"slices"
	"sync"

	"fpinterop/internal/geom"
	"fpinterop/internal/minutiae"
)

// maxAccCells bounds the flat Hough accumulator (128 MiB of int32 at
// the limit). Templates from real sensors stay thousands of times below
// it; a pathological template whose window would exceed the bound falls
// back to the sparse reference matcher, which computes the identical
// result in O(pairs) memory.
const maxAccCells = 1 << 25

// Session holds every piece of scratch state the Hough matcher hot path
// needs — flat vote accumulator, touched-cell list, per-probe rotation
// tables, top-K heap, pairing grid and candidate buffers, used-sets,
// and the pairs arena — so a steady-state match performs zero heap
// allocations. A Session is NOT safe for concurrent use; run one per
// goroutine (gallery scans, study workers, and service handlers each
// hold their own), or borrow one from the shared pool with
// AcquireSession/Release.
//
// Results returned by Session methods alias session-owned memory:
// Result.Pairs is valid only until the session's next match. Callers
// that retain pairs must copy them (HoughMatcher.Match does).
type Session struct {
	p        HoughMatcher // resolved params
	rotStep  float64
	invShift float64
	cosTab   []float64
	sinTab   []float64

	// Voting scratch.
	rotX, rotY []float64 // rotated probe coords, [probe index][rot bin]
	votes      []int32   // flat accumulator, all-zero between matches
	touched    []int32   // flat indices of non-zero cells this match
	top        []accCell // bounded min-heap, then sorted candidates

	// Gallery-side scratch for the unprepared path.
	scratch Prepared

	// Pairing scratch.
	cands        []pairCand
	usedG, usedQ []bool
	arena        [][2]int // backing storage for every Result.Pairs this match
}

// accCell is one accumulator candidate: its packed (rot, tx, ty) key
// and vote count.
type accCell struct {
	key   uint64
	votes int32
}

// pairCand is one tolerance-gated pairing candidate. Distances are kept
// squared; the square root is taken only for the pairs that survive
// greedy selection.
type pairCand struct {
	d2   float64
	g, q int32
}

// NewSession returns a dedicated session for the given matcher's
// parameters (nil means production defaults). Dedicated sessions suit
// long-lived single-goroutine loops; for ad-hoc concurrent use prefer
// AcquireSession.
func NewSession(m *HoughMatcher) *Session {
	if m == nil {
		m = &HoughMatcher{}
	}
	s := &Session{}
	s.configure(m.params())
	return s
}

var sessionPool = sync.Pool{New: func() any { return &Session{} }}

// AcquireSession borrows a session configured for m from the shared
// pool. Return it with Release when done; any Result obtained from it
// becomes invalid at that point.
func AcquireSession(m *HoughMatcher) *Session {
	if m == nil {
		m = &HoughMatcher{}
	}
	s := sessionPool.Get().(*Session)
	if p := m.params(); s.p != p {
		s.configure(p)
	}
	return s
}

// maxRetainedCells bounds the accumulator capacity a pooled session
// keeps between uses (16 MiB of int32). One spread-out template may
// legitimately demand a window up to maxAccCells for its own match,
// but letting every session retain that forever would pin
// GOMAXPROCS × 128 MiB after a handful of outliers; typical sensor
// templates need well under a megabyte.
const maxRetainedCells = 1 << 22

// Release returns the session to the shared pool.
func (s *Session) Release() {
	if cap(s.votes) > maxRetainedCells {
		s.votes = nil
	}
	sessionPool.Put(s)
}

// detachResult copies the scratch-aliasing state (Pairs) out of a
// session Result so it stays valid after the session is reused or
// released. Every acquire-match-release wrapper must go through this.
func detachResult(res Result) Result {
	if len(res.Pairs) > 0 {
		res.Pairs = append([][2]int(nil), res.Pairs...)
	}
	return res
}

// MatchPreparedOnce runs a single comparison against a prepared
// gallery template on a pooled session and returns a detached Result
// that stays valid indefinitely. Hot loops should hold a Session and
// call MatchPrepared directly instead.
func MatchPreparedOnce(m *HoughMatcher, gallery *Prepared, probe *minutiae.Template) (Result, error) {
	s := AcquireSession(m)
	res, err := s.MatchPrepared(gallery, probe)
	res = detachResult(res)
	s.Release()
	return res, err
}

// configure resolves parameters and rebuilds the rotation tables. The
// accumulator and pairing scratch carry over; they are sized per match.
func (s *Session) configure(p HoughMatcher) {
	s.p = p
	s.rotStep = 2 * math.Pi / float64(p.RotBins)
	s.invShift = 1 / p.ShiftBin
	s.cosTab = growFloats(s.cosTab, p.RotBins)
	s.sinTab = growFloats(s.sinTab, p.RotBins)
	for b := 0; b < p.RotBins; b++ {
		theta := (float64(b) + 0.5) * s.rotStep
		s.cosTab[b] = math.Cos(theta)
		s.sinTab[b] = math.Sin(theta)
	}
}

// Match compares gallery and probe like HoughMatcher.Match, reusing the
// session's scratch. Result.Pairs aliases session memory and is valid
// only until the next call on this session.
func (s *Session) Match(gallery, probe *minutiae.Template) (Result, error) {
	if gallery == nil || probe == nil {
		return Result{}, ErrNilTemplate
	}
	if len(gallery.Minutiae) == 0 || len(probe.Minutiae) == 0 {
		return Result{}, nil
	}
	s.scratch.build(s.p, gallery)
	return s.run(&s.scratch, probe)
}

// MatchPrepared is Match with the gallery-side preprocessing already
// done (see HoughMatcher.Prepare). A preparation built under different
// matcher parameters is rebuilt into session scratch, so the result is
// always the session's own parameterization.
func (s *Session) MatchPrepared(gallery *Prepared, probe *minutiae.Template) (Result, error) {
	if gallery == nil || gallery.tpl == nil || probe == nil {
		return Result{}, ErrNilTemplate
	}
	if len(gallery.tpl.Minutiae) == 0 || len(probe.Minutiae) == 0 {
		return Result{}, nil
	}
	if gallery.p != s.p {
		s.scratch.build(s.p, gallery.tpl)
		return s.run(&s.scratch, probe)
	}
	return s.run(gallery, probe)
}

// run is the optimized hot path. It must return results bit-identical
// to referenceMatch (the differential tests enforce this): identical
// vote binning arithmetic, identical top-K selection order (votes
// descending, packed key ascending), identical candidate ordering in
// the pairing, and the same refinement and best-result tie-breaks.
//
//fpvet:hotpath
func (s *Session) run(g *Prepared, probe *minutiae.Template) (Result, error) {
	ga := g.tpl.Minutiae
	pr := probe.Minutiae
	p := s.p
	rotBins := p.RotBins

	// --- Accumulator window: translations are bounded by the gallery
	// minutiae bounding box ± the probe's maximal rotation radius. One
	// guard bin on each side absorbs last-ulp rounding of the rotated
	// coordinates.
	maxR2 := 0.0
	for _, b := range pr {
		r2 := b.X*b.X + b.Y*b.Y
		if !(r2 < math.Inf(1)) || !isFinite(b.Angle) {
			// Non-finite probe geometry would index the accumulator and
			// rotation tables with garbage; the reference matcher is
			// total over arbitrary floats.
			m := s.p
			return m.referenceMatch(g.tpl, probe)
		}
		if r2 > maxR2 {
			maxR2 = r2
		}
	}
	r := math.Sqrt(maxR2)
	txLo := math.Floor((g.minX - r) * s.invShift)
	txHi := math.Floor((g.maxX + r) * s.invShift)
	tyLo := math.Floor((g.minY - r) * s.invShift)
	tyHi := math.Floor((g.maxY + r) * s.invShift)
	// Gridless preparations (non-finite coordinates), non-positive or
	// non-finite bin sizes (invShift must be a positive finite scale for
	// the window arithmetic to mean anything), and windows whose bin
	// bounds are non-finite or would overflow int32 go to the reference
	// matcher, which is total over arbitrary floats; the int32
	// conversions below are well-defined only inside this guard.
	const binRange = 1 << 30
	if g.cols == 0 || !(s.invShift > 0) || !isFinite(s.invShift) ||
		!(txLo >= -binRange && txHi <= binRange && tyLo >= -binRange && tyHi <= binRange) {
		m := s.p
		return m.referenceMatch(g.tpl, probe)
	}
	txMin := int32(txLo) - 1
	txMax := int32(txHi) + 1
	tyMin := int32(tyLo) - 1
	tyMax := int32(tyHi) + 1
	txBins := int(txMax-txMin) + 1
	tyBins := int(tyMax-tyMin) + 1
	if txBins > 1<<16 || tyBins > 1<<16 {
		// packKey wraps translation bins into 16 bits: the reference's
		// map accumulator merges bins 2^16 apart while the flat layout
		// would keep them distinct, so wider windows must take the
		// reference path to preserve identity.
		m := s.p
		return m.referenceMatch(g.tpl, probe)
	}
	if cells := int64(rotBins) * int64(txBins) * int64(tyBins); cells > maxAccCells || cells <= 0 {
		m := s.p
		return m.referenceMatch(g.tpl, probe)
	}
	cells := rotBins * txBins * tyBins
	if cap(s.votes) < cells {
		s.votes = make([]int32, cells) // zeroed; the invariant below keeps it so
	} else {
		s.votes = s.votes[:cells]
	}

	// --- Per-probe-minutia rotated coordinates, one entry per rotation
	// bin: the voting inner loop then rotates by table lookup. The
	// expressions mirror referenceMatch exactly.
	nRot := len(pr) * rotBins
	s.rotX = growFloats(s.rotX, nRot)
	s.rotY = growFloats(s.rotY, nRot)
	for j, b := range pr {
		base := j * rotBins
		for rb := 0; rb < rotBins; rb++ {
			c, sn := s.cosTab[rb], s.sinTab[rb]
			s.rotX[base+rb] = b.X*c - b.Y*sn
			s.rotY[base+rb] = b.X*sn + b.Y*c
		}
	}

	// --- Vote. Every (probe, gallery) pair proposes the rigid transform
	// mapping the probe minutia exactly onto the gallery one. The
	// touched list records first-time cells so reset cost is O(votes),
	// not O(window).
	twoPi := 2 * math.Pi
	gx, gy, gAngle := g.x, g.y, g.angle
	touched := s.touched[:0]
	for j, b := range pr {
		base := j * rotBins
		ba := b.Angle
		for i := range gx {
			dTheta := gAngle[i] - ba
			if dTheta < 0 {
				dTheta += twoPi
			}
			if dTheta >= twoPi {
				dTheta -= twoPi
			}
			rot := int(dTheta / s.rotStep)
			if rot >= rotBins {
				rot = rotBins - 1
			}
			tx := int32(math.Floor((gx[i] - s.rotX[base+rot]) * s.invShift))
			ty := int32(math.Floor((gy[i] - s.rotY[base+rot]) * s.invShift))
			idx := (rot*tyBins+int(ty-tyMin))*txBins + int(tx-txMin)
			if s.votes[idx] == 0 {
				touched = append(touched, int32(idx))
			}
			s.votes[idx]++
		}
	}
	s.touched = touched

	// --- Top-K cells via a bounded min-heap ordered worst-first (fewest
	// votes, then largest key): a touched cell with fewer votes than the
	// root is rejected without even computing its key.
	nCand := p.Candidates
	planeSize := txBins * tyBins
	top := s.top[:0]
	for _, idx := range touched {
		v := s.votes[idx]
		if len(top) < nCand {
			top = append(top, accCell{key: cellKey(idx, planeSize, txBins, txMin, tyMin), votes: v})
			siftUp(top, len(top)-1)
			continue
		}
		if v < top[0].votes {
			continue
		}
		k := cellKey(idx, planeSize, txBins, txMin, tyMin)
		if v == top[0].votes && k > top[0].key {
			continue
		}
		top[0] = accCell{key: k, votes: v}
		siftDown(top, 0)
	}
	s.top = top

	// Restore the all-zero accumulator invariant before scoring.
	for _, idx := range touched {
		s.votes[idx] = 0
	}
	s.touched = touched[:0]

	// Order candidates exactly as the reference's sorted scan: votes
	// descending, packed key ascending.
	slices.SortFunc(top, func(a, b accCell) int {
		if a.votes != b.votes {
			return int(b.votes - a.votes)
		}
		if a.key < b.key {
			return -1
		}
		if a.key > b.key {
			return 1
		}
		return 0
	})

	// --- Pairing scratch: the arena must hold every scoring round's
	// pairs of this match without reallocating, so Results handed out
	// earlier in the loop stay intact.
	maxPairs := len(ga)
	if len(pr) < maxPairs {
		maxPairs = len(pr)
	}
	if need := 2 * len(top) * maxPairs; cap(s.arena) < need {
		s.arena = make([][2]int, 0, need)
	}
	s.arena = s.arena[:0]
	if cap(s.usedG) < len(ga) {
		s.usedG = make([]bool, len(ga))
	}
	if cap(s.usedQ) < len(pr) {
		s.usedQ = make([]bool, len(pr))
	}

	best := Result{}
	for _, cell := range top {
		rot, tx, ty := unpackKey(cell.key)
		tr := geom.Rigid{
			Theta: (float64(rot) + 0.5) * s.rotStep,
			T: geom.Point{
				X: (float64(tx) + 0.5) * p.ShiftBin,
				Y: (float64(ty) + 0.5) * p.ShiftBin,
			},
			S: 1,
		}
		res := s.scorePairing(g, probe, tr)
		// One refinement round: re-estimate the transform from the pairs
		// and re-pair. Helps recover from coarse accumulator bins.
		if res.Matched >= 3 {
			if refined, ok := estimateRigid(ga, pr, res.Pairs); ok {
				res2 := s.scorePairing(g, probe, refined)
				if res2.Score > res.Score {
					res = res2
				}
			}
		}
		if res.Score > best.Score || (best.Matched == 0 && res.Matched > 0) {
			best = res
		}
	}
	return best, nil
}

// cellKey recovers the packed (rot, tx, ty) accumulator key from a
// flat cell index; a standalone function (not a closure over the
// window geometry) so the voting loop stays heap-free.
//
//fpvet:hotpath
func cellKey(idx int32, planeSize, txBins int, txMin, tyMin int32) uint64 {
	rot := int(idx) / planeSize
	rem := int(idx) - rot*planeSize
	ty := int32(rem/txBins) + tyMin
	tx := int32(rem%txBins) + txMin
	return packKey(int32(rot), tx, ty)
}

// scorePairing pairs minutiae under the transform and scores the
// pairing, probing the gallery grid 3×3 instead of scanning every
// gallery minutia. Pairs are appended to the session arena.
//
//fpvet:hotpath
func (s *Session) scorePairing(g *Prepared, probe *minutiae.Template, tr geom.Rigid) Result {
	ga, pr := g.tpl.Minutiae, probe.Minutiae
	cands := s.cands[:0]
	c0, s0 := math.Cos(tr.Theta), math.Sin(tr.Theta)
	tol2 := s.p.DistTol * s.p.DistTol
	for j, b := range pr {
		tx := b.X*c0 - b.Y*s0 + tr.T.X
		ty := b.X*s0 + b.Y*c0 + tr.T.Y
		ta := b.Angle + tr.Theta
		cx := int(math.Floor((tx - g.minX) * g.invCellX))
		cy := int(math.Floor((ty - g.minY) * g.invCellY))
		for row := cy - 1; row <= cy+1; row++ {
			if row < 0 || row >= g.rows {
				continue
			}
			lo, hi := cx-1, cx+1
			if lo < 0 {
				lo = 0
			}
			if hi >= g.cols {
				hi = g.cols - 1
			}
			if lo > hi {
				continue
			}
			// Row-major CSR: the row's 3-cell neighbourhood is one
			// contiguous item range.
			rowBase := row * g.cols
			for _, gi := range g.cellItems[g.cellStart[rowBase+lo]:g.cellStart[rowBase+hi+1]] {
				dx := tx - g.x[gi]
				dy := ty - g.y[gi]
				d2 := dx*dx + dy*dy
				if d2 > tol2 {
					continue
				}
				if angleDiff(ta, g.angle[gi]) > s.p.AngleTol {
					continue
				}
				cands = append(cands, pairCand{d2: d2, g: gi, q: int32(j)})
			}
		}
	}
	s.cands = cands
	sortPairCands(cands)
	usedG := s.usedG[:len(ga)]
	usedQ := s.usedQ[:len(pr)]
	clear(usedG)
	clear(usedQ)
	start := len(s.arena)
	sumD := 0.0
	for _, c := range cands {
		if usedG[c.g] || usedQ[c.q] {
			continue
		}
		usedG[c.g] = true
		usedQ[c.q] = true
		s.arena = append(s.arena, [2]int{int(c.g), int(c.q)})
		sumD += math.Sqrt(c.d2)
	}
	var pairs [][2]int
	if n := len(s.arena) - start; n > 0 {
		pairs = s.arena[start:len(s.arena):len(s.arena)]
	}
	res := Result{Matched: len(pairs), Transform: tr, Pairs: pairs}
	if len(pairs) > 0 {
		res.MeanResidual = sumD / float64(len(pairs))
	}
	res.Score = scoreFromPairing(len(pairs), res.MeanResidual, s.p.DistTol, overlapDenom(g.tpl, probe, tr))
	return res
}

// sortPairCands orders candidates by squared distance with (gallery,
// probe) index tie-breaks — the same total order the reference sort
// produces, since x ↦ x² is monotone.
//
//fpvet:hotpath
func sortPairCands(cands []pairCand) {
	slices.SortFunc(cands, func(a, b pairCand) int {
		if a.d2 != b.d2 {
			if a.d2 < b.d2 {
				return -1
			}
			return 1
		}
		if a.g != b.g {
			return int(a.g - b.g)
		}
		return int(a.q - b.q)
	})
}

// worse reports whether a should sit below b in the worst-first heap:
// fewer votes, or equal votes and a larger packed key.
//
//fpvet:hotpath
func worse(a, b accCell) bool {
	return a.votes < b.votes || (a.votes == b.votes && a.key > b.key)
}

//fpvet:hotpath
func siftUp(h []accCell, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

//fpvet:hotpath
func siftDown(h []accCell, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		w := l
		if r := l + 1; r < len(h) && worse(h[r], h[l]) {
			w = r
		}
		if !worse(h[w], h[i]) {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

package matchsvc

import (
	"bytes"
	"testing"
)

// TestFrameRoundTripZeroAllocs is the asserting form of the PR-4 frame
// benchmarks: once the pooled scratch and the reused transport buffers
// are warm, building a numeric payload, framing it, reading the frame
// back, and decoding it performs zero heap allocations. String and
// template fields are excluded by design — string decoding converts
// (allocates) and templates go through minutiae.Marshal — so this test
// covers exactly the //fpvet:hotpath codec surface in protocol.go.
func TestFrameRoundTripZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; asserted in non-race builds")
	}
	var wire bytes.Buffer
	in := make([]byte, 0, 256)
	raw := []byte{0xde, 0xad, 0xbe, 0xef}

	roundTrip := func() {
		fs := acquireFrameScratch()
		fs.w.uint32(42)
		fs.w.float64(0.5)
		fs.w.bytes(raw)

		wire.Reset()
		if err := writeFrameHdr(&wire, OpPing, fs.w.buf, &fs.hdr); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		op, payload, err := readFrameIntoHdr(&wire, in[:0], &fs.hdr)
		if err != nil {
			t.Fatalf("readFrameInto: %v", err)
		}
		if op != OpPing {
			t.Fatalf("op = %#x, want OpPing", op)
		}
		if cap(payload) > cap(in) {
			in = payload[:0]
		}

		r := payloadReader{buf: payload}
		u, err := r.uint32()
		if err != nil || u != 42 {
			t.Fatalf("uint32 = %d, %v; want 42", u, err)
		}
		f, err := r.float64()
		if err != nil || f != 0.5 {
			t.Fatalf("float64 = %v, %v; want 0.5", f, err)
		}
		b, err := r.bytes()
		if err != nil || !bytes.Equal(b, raw) {
			t.Fatalf("bytes = %x, %v; want %x", b, err, raw)
		}
		releaseFrameScratch(fs)
	}

	// Warm the pool, the frame buffers, and bytes.Buffer's capacity.
	for i := 0; i < 10; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs != 0 {
		t.Fatalf("frame round-trip allocates %.1f times per run; want 0", allocs)
	}
}

package matchsvc

// Allocation-reporting benchmarks for the RPC hot path: the shard
// router fans every 1:N search across remote backends, so per-RPC
// garbage on client and server multiplies by the shard count. The
// frame-buffer pooling keeps the framing layer allocation-free; what
// remains is the decoded template and the result payloads.

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// benchService boots a loopback server with n enrollments and returns a
// connected client.
func benchService(b *testing.B, n int) *Client {
	b.Helper()
	srv := NewServer(nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	b.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cli.Close() })
	tpls := testImpressions(b, n, "D0", 0)
	items := make([]Enrollment, n)
	for i, tpl := range tpls {
		items[i] = Enrollment{ID: fmt.Sprintf("subj-%04d", i), DeviceID: "D0", Template: tpl}
	}
	if _, err := cli.EnrollBatch(context.Background(), items); err != nil {
		b.Fatal(err)
	}
	return cli
}

// BenchmarkVerifyRPC measures one 1:1 verification round trip,
// reporting allocations across client framing, server framing, decode,
// and the pooled matcher session.
func BenchmarkVerifyRPC(b *testing.B) {
	cli := benchService(b, 8)
	probe := testImpressions(b, 1, "D0", 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Verify(context.Background(), fmt.Sprintf("subj-%04d", i%8), probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentifyRPC measures one 1:N identification round trip
// against a small gallery.
func BenchmarkIdentifyRPC(b *testing.B) {
	cli := benchService(b, 32)
	probe := testImpressions(b, 1, "D0", 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := cli.Identify(context.Background(), probe, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkPingRPC isolates the framing layer: after warm-up a ping
// performs no per-request client-side allocations.
func BenchmarkPingRPC(b *testing.B) {
	cli := benchService(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Ping(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

package matchsvc

// Allocation-reporting benchmarks for the RPC hot path: the shard
// router fans every 1:N search across remote backends, so per-RPC
// garbage on client and server multiplies by the shard count. The
// frame-buffer pooling keeps the framing layer allocation-free; what
// remains is the decoded template and the result payloads.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchService boots a loopback server with n enrollments and returns a
// connected client.
func benchService(b *testing.B, n int) *Client {
	b.Helper()
	srv := NewServer(nil, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	b.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cli.Close() })
	tpls := testImpressions(b, n, "D0", 0)
	items := make([]Enrollment, n)
	for i, tpl := range tpls {
		items[i] = Enrollment{ID: fmt.Sprintf("subj-%04d", i), DeviceID: "D0", Template: tpl}
	}
	if _, err := cli.EnrollBatch(context.Background(), items); err != nil {
		b.Fatal(err)
	}
	return cli
}

// BenchmarkVerifyRPC measures one 1:1 verification round trip,
// reporting allocations across client framing, server framing, decode,
// and the pooled matcher session.
func BenchmarkVerifyRPC(b *testing.B) {
	cli := benchService(b, 8)
	probe := testImpressions(b, 1, "D0", 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Verify(context.Background(), fmt.Sprintf("subj-%04d", i%8), probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdentifyRPC measures one 1:N identification round trip
// against a small gallery.
func BenchmarkIdentifyRPC(b *testing.B) {
	cli := benchService(b, 32)
	probe := testImpressions(b, 1, "D0", 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := cli.Identify(context.Background(), probe, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkPingRPC isolates the framing layer: after warm-up a ping
// performs no per-request client-side allocations.
func BenchmarkPingRPC(b *testing.B) {
	cli := benchService(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Ping(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDepth drives op from `depth` concurrent workers over one client
// until b.N operations complete, reporting p50/p99 per-op latency next
// to the usual throughput numbers. With the multiplexed transport all
// depths share pooled connections: depth 1 measures a request's full
// round trip, deeper runs measure how well the wire pipelines.
func benchDepth(b *testing.B, depth int, op func() error) {
	b.ReportAllocs()
	var next atomic.Int64
	lats := make([][]time.Duration, depth)
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				t0 := time.Now()
				if err := op(); err != nil {
					b.Error(err)
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(all[len(all)/2]), "p50-ns")
	b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
}

func benchIdentifyDepth(b *testing.B, depth int) {
	cli := benchService(b, 32)
	cli.SetPoolSize(2)
	probe := testImpressions(b, 1, "D0", 1)[0]
	benchDepth(b, depth, func() error {
		cands, err := cli.Identify(context.Background(), probe, 5)
		if err == nil && len(cands) == 0 {
			return errors.New("no candidates")
		}
		return err
	})
}

func BenchmarkIdentifyRPCDepth1(b *testing.B)  { benchIdentifyDepth(b, 1) }
func BenchmarkIdentifyRPCDepth8(b *testing.B)  { benchIdentifyDepth(b, 8) }
func BenchmarkIdentifyRPCDepth64(b *testing.B) { benchIdentifyDepth(b, 64) }

func benchPingDepth(b *testing.B, depth int) {
	cli := benchService(b, 1)
	cli.SetPoolSize(2)
	benchDepth(b, depth, func() error {
		return cli.Ping(context.Background())
	})
}

func BenchmarkPingRPCDepth1(b *testing.B)  { benchPingDepth(b, 1) }
func BenchmarkPingRPCDepth64(b *testing.B) { benchPingDepth(b, 64) }

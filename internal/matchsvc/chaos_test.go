package matchsvc

// The seeded fault-injection suite: a real server behind a
// faultnet-wrapped listener, a pooled retrying client, and >1000 mixed
// operations under deterministic resets, torn frames, byte corruption,
// latency spikes, transient accept failures, and blackholed reads. The
// contract under chaos:
//
//   - every failed operation reports a prompt typed error from the
//     known set — never a hang, never an untyped surprise;
//   - every operation that succeeds returns the answer the clean server
//     would have given (zero mis-answers — the mux CRC's job);
//   - every acknowledged enrollment is durable: it is present when the
//     faults stop.
//
// After the chaos phase injection is disabled and the same client and
// gallery must converge to exact agreement with direct store queries.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpinterop/internal/faultnet"
	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/rng"
)

// chaosErrOK reports whether err is one of the typed failures the
// client is allowed to surface under injected faults.
func chaosErrOK(err error) bool {
	return errors.Is(err, ErrTransport) ||
		errors.Is(err, ErrRemote) ||
		errors.Is(err, ErrCorruptFrame) ||
		errors.Is(err, ErrFrameTooLarge) ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, errShortPayload) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}

func TestChaosSeededFaultsZeroLostOrMisanswered(t *testing.T) {
	const (
		baseline = 40 // clean enrollments whose answers are pinned
		workers  = 8
	)
	opsPerWorker := 150 // 1200 operations under fault injection
	if testing.Short() {
		opsPerWorker = 40
	}

	store := gallery.New(nil)
	srv := NewServer(store, nil)
	srv.SetIdleTimeout(2 * time.Second)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	faults := faultnet.Wrap(inner, faultnet.Faults{
		Seed:             0xC0FFEE,
		LatencyProb:      0.01,
		LatencyMin:       time.Millisecond,
		LatencyMax:       5 * time.Millisecond,
		ResetProb:        0.003,
		PartialWriteProb: 0.003,
		CorruptProb:      0.003,
		AcceptFailProb:   0.2,
		BlackholeProb:    0.002,
	})
	faults.SetEnabled(false) // clean setup phase first
	if err := srv.ListenOn(faults); err != nil {
		t.Fatalf("listen on faultnet: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx) }()
	defer func() { srv.Close(); <-done }()

	cli, err := Dial(inner.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	cli.SetPoolSize(4)
	cli.SetRequestTimeout(2 * time.Second)
	cli.SetKeepalive(100 * time.Millisecond)
	cli.SetRetry(Retry{Attempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})

	// ---- Clean setup: enroll the baseline and pin expected answers ----
	tpls := testImpressions(t, baseline, "D0", 0)
	probes := testImpressions(t, baseline, "D0", 1)
	items := make([]Enrollment, baseline)
	ids := make([]string, baseline)
	for i, tpl := range tpls {
		ids[i] = fmt.Sprintf("base-%03d", i)
		items[i] = Enrollment{ID: ids[i], DeviceID: "D0", Template: tpl}
	}
	if n, err := cli.EnrollBatch(context.Background(), items); err != nil || n != baseline {
		t.Fatalf("baseline enroll: n=%d err=%v", n, err)
	}
	wantVerify := make([]MatchResult, baseline)
	for i := range ids {
		res, err := cli.Verify(context.Background(), ids[i], probes[i])
		if err != nil {
			t.Fatalf("clean verify %s: %v", ids[i], err)
		}
		wantVerify[i] = res
	}
	// Fresh identities enrolled during chaos, captured on another device
	// so they never displace a baseline subject's own rank-1.
	chaosTpls := testImpressions(t, workers, "D1", 2)

	// ---- Chaos phase ----
	faults.SetEnabled(true)
	var (
		acked     sync.Map // enroll ids the server acknowledged
		attempted atomic.Int64
		succeeded atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
		failOnce  sync.Once
	)
	fatal := func(format string, args ...any) {
		failOnce.Do(func() { t.Errorf(format, args...) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(0xFEED).Child(fmt.Sprintf("worker/%d", w))
			for i := 0; i < opsPerWorker; i++ {
				octx, ocancel := context.WithTimeout(context.Background(), 5*time.Second)
				var err error
				switch pick := r.Intn(100); {
				case pick < 15:
					err = cli.Ping(octx)
				case pick < 45:
					idx := r.Intn(baseline)
					var res MatchResult
					res, err = cli.Verify(octx, ids[idx], probes[idx])
					if err == nil && res != wantVerify[idx] {
						fatal("MIS-ANSWER: verify %s returned %+v, want %+v", ids[idx], res, wantVerify[idx])
					}
				case pick < 60:
					idx := r.Intn(baseline)
					var cands []gallery.Candidate
					cands, err = cli.Identify(octx, probes[idx], 3)
					if err == nil {
						if len(cands) > 3 {
							fatal("MIS-ANSWER: identify k=3 returned %d candidates", len(cands))
						}
						for j := 1; j < len(cands); j++ {
							if cands[j].Score > cands[j-1].Score {
								fatal("MIS-ANSWER: identify ranking out of order: %+v", cands)
							}
						}
					}
				case pick < 75:
					idx := r.Intn(baseline)
					var ok bool
					ok, err = cli.Has(octx, ids[idx])
					if err == nil && !ok {
						fatal("MIS-ANSWER: has %s = false for an enrolled id", ids[idx])
					}
				case pick < 85:
					var n int
					n, err = cli.Count(octx)
					if err == nil && n < baseline {
						fatal("MIS-ANSWER: count %d below the %d baseline", n, baseline)
					}
				default:
					id := fmt.Sprintf("chaos-%d-%d", w, i)
					attempted.Add(1)
					err = cli.Enroll(octx, id, "D1", chaosTpls[w])
					if err == nil {
						acked.Store(id, struct{}{})
					}
				}
				ocancel()
				if err == nil {
					succeeded.Add(1)
				} else {
					failed.Add(1)
					if !chaosErrOK(err) {
						fatal("untyped error under chaos: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	total := succeeded.Load() + failed.Load()
	t.Logf("chaos phase: %d ops (%d ok, %d typed failures), %d enrolls acked of %d attempted",
		total, succeeded.Load(), failed.Load(), countMap(&acked), attempted.Load())
	if want := int64(workers * opsPerWorker); total != want {
		t.Fatalf("ran %d ops, want %d", total, want)
	}

	// ---- Recovery phase: faults off, exact agreement required ----
	faults.SetEnabled(false)
	rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer rcancel()
	if err := cli.Ping(rctx); err != nil {
		t.Fatalf("ping after chaos: %v", err)
	}
	// Quiesce before the exact-agreement checks: requests whose callers
	// timed out may still be executing server-side (the mux dispatches
	// per-request goroutines, and blackholed reads deliver frames late),
	// so wait until the gallery stops moving.
	quiesceAt := time.Now().Add(30 * time.Second)
	for stable, last := 0, -1; stable < 6; {
		n, err := cli.Count(rctx)
		if err == nil && n == last {
			stable++
		} else {
			stable, last = 0, n
		}
		if time.Now().After(quiesceAt) {
			t.Fatal("gallery never quiesced after chaos")
		}
		time.Sleep(250 * time.Millisecond)
	}
	// Every acknowledged enrollment must have survived.
	acked.Range(func(k, _ any) bool {
		ok, err := cli.Has(rctx, k.(string))
		if err != nil {
			t.Fatalf("has %s after chaos: %v", k, err)
			return false
		}
		if !ok {
			t.Errorf("LOST ACK: enroll %s was acknowledged but is gone", k)
		}
		return true
	})
	// The gallery holds the baseline, everything acked, and at most
	// everything attempted (a lost ack after the server applied the
	// enroll legitimately leaves an extra row).
	n, err := cli.Count(rctx)
	if err != nil {
		t.Fatalf("count after chaos: %v", err)
	}
	if min := baseline + countMap(&acked); n < min {
		t.Errorf("count %d below %d acked enrollments", n, min)
	}
	if max := baseline + int(attempted.Load()); n > max {
		t.Errorf("count %d above %d attempted enrollments", n, max)
	}
	// Wire answers must now agree exactly with direct store queries. The
	// wire probe passes through the template codec (which quantizes), so
	// the direct query must use the same round-tripped template.
	for i := 0; i < baseline; i += 5 {
		got, err := cli.Identify(rctx, probes[i], 5)
		if err != nil {
			t.Fatalf("identify %d after chaos: %v", i, err)
		}
		data, err := minutiae.Marshal(probes[i])
		if err != nil {
			t.Fatalf("marshal probe %d: %v", i, err)
		}
		rt, err := minutiae.Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal probe %d: %v", i, err)
		}
		want, _, err := srv.Store().IdentifyDetailed(rt, 5)
		if err != nil {
			t.Fatalf("store identify %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("identify %d over the wire diverges from the store:\n got %+v\nwant %+v", i, got, want)
		}
		res, err := cli.Verify(rctx, ids[i], probes[i])
		if err != nil {
			t.Fatalf("verify %d after chaos: %v", i, err)
		}
		if res != wantVerify[i] {
			t.Errorf("verify %d = %+v, want %+v", i, res, wantVerify[i])
		}
	}
}

func countMap(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// TestChaosProxySerialClient drives the legacy-compatible path through a
// faultnet proxy: the client is configured with retries but talks to a
// server through fault-injected forwarding, exercising dial-time faults
// (the proxy's accept failures) alongside stream faults. Smaller than
// the main suite; its job is covering NewProxy, which the matchd chaos
// smoke also uses.
func TestChaosProxyRetriesThrough(t *testing.T) {
	srv := NewServer(nil, nil)
	srv.SetIdleTimeout(2 * time.Second)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx) }()
	defer func() { srv.Close(); <-done }()

	proxy, err := faultnet.NewProxy(addr, faultnet.Faults{
		Seed:        7,
		ResetProb:   0.02,
		LatencyProb: 0.05,
		LatencyMin:  time.Millisecond,
		LatencyMax:  3 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	cli, err := Dial(proxy.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(2 * time.Second)
	cli.SetRetry(Retry{Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond})

	tpl := testImpressions(t, 1, "D0", 0)[0]
	if err := cli.Enroll(context.Background(), "p0", "D0", tpl); err != nil && !chaosErrOK(err) {
		t.Fatalf("enroll through proxy: %v", err)
	}
	okPings := 0
	for i := 0; i < 60; i++ {
		octx, ocancel := context.WithTimeout(context.Background(), 3*time.Second)
		err := cli.Ping(octx)
		ocancel()
		if err == nil {
			okPings++
		} else if !chaosErrOK(err) {
			t.Fatalf("untyped ping error through proxy: %v", err)
		}
	}
	if okPings == 0 {
		t.Fatal("no ping ever succeeded through the lossy proxy despite retries")
	}
	proxy.SetEnabled(false)
	rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer rcancel()
	if err := cli.Ping(rctx); err != nil {
		t.Fatalf("ping after proxy faults disabled: %v", err)
	}
}

package matchsvc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// Client is a connection to the matching service. It is safe for
// concurrent use; requests are serialized over one connection. After a
// transport failure — including the server dropping an idle connection
// at its read deadline — the next request transparently redials, so a
// long-lived client (e.g. a shard router front) survives quiet periods
// and server restarts.
//
// Every request takes a context.Context: its deadline bounds the whole
// wire round trip (connection deadlines are derived from it), and
// cancellation interrupts in-flight I/O. When the context carries no
// deadline, the SetRequestTimeout fallback applies.
type Client struct {
	mu          sync.Mutex
	addr        string
	dialTimeout time.Duration
	conn        net.Conn
	broken      bool
	closed      bool
	timeout     time.Duration
	// recv is the response frame buffer, reused across requests. Safe
	// because responses are decoded under mu, before the next request
	// can overwrite it.
	recv []byte
	// hdr is the frame-header scratch for writeFrameHdr/readFrameIntoHdr,
	// reused under mu for the same reason.
	hdr [5]byte
	// met is non-nil after SetMetrics.
	met *clientMetrics
}

// SetRequestTimeout sets the fallback round-trip bound used when a
// request's context has no deadline of its own; zero (the default)
// means no fallback deadline. Identification over a large gallery can
// legitimately take seconds — size the timeout to the gallery.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetRedialTimeout bounds the transparent reconnect attempted after a
// transport failure, independently of the triggering request's
// context; zero leaves reconnects bounded by that context alone.
// Dial seeds it with its own timeout; DialContext leaves it zero.
func (c *Client) SetRedialTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dialTimeout = d
}

// DialContext connects to a server address under the given context: a
// pre-cancelled or expired context fails fast without touching the
// network, and cancellation mid-handshake aborts the dial. Reconnects
// after transport failures are bounded by the context of the request
// that triggers them.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("matchsvc: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn}, nil
}

// Dial connects to a server address with the given timeout (also used
// to bound later reconnects).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	ctx := context.Background() //fpvet:allow ctxflow non-ctx constructor is a genuine root; the timeout below is its only bound
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c, err := DialContext(ctx, addr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The expired context is Dial's own timeout, not a caller's:
			// keep the address in the diagnostic as Dial always has.
			return nil, fmt.Errorf("matchsvc: dial %s: %w", addr, err)
		}
		return nil, err
	}
	c.dialTimeout = timeout
	return c, nil
}

// Close shuts the connection down; subsequent requests fail instead of
// redialling.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request and decodes the response payload with
// decode (nil when the caller only needs the status). The decode runs
// under the client mutex because the response buffer is pooled: it must
// not retain the reader or its bytes. A request over a connection
// broken by an earlier failure redials first; the failure that broke
// the connection was already reported to its caller, and a response
// frame can never be mistaken for a request's because requests are
// serialized under the mutex.
//
// The per-call I/O deadline comes from ctx when it has one, else from
// the SetRequestTimeout fallback; with neither, the deadline is
// cleared, so a stale bound from an earlier call cannot leak into this
// one. A context that can be cancelled is additionally watched for the
// duration of the call, and cancellation yanks the connection deadline
// to interrupt blocked I/O; the context's error then outranks the I/O
// error it provoked.
func (c *Client) roundTrip(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("matchsvc: client closed")
	}
	if m := c.met; m != nil {
		m.inflight.Inc()
		m.reqBytes.Observe(int64(len(payload)))
		defer m.inflight.Dec()
	}
	if c.broken {
		d := net.Dialer{Timeout: c.dialTimeout}
		if d.Timeout == 0 && c.timeout > 0 {
			// A DialContext-created client has no redial timeout of its
			// own; without this, a deadline-free request context would
			// leave the reconnect bounded only by the OS connect timeout.
			d.Timeout = c.timeout
		}
		conn, err := d.DialContext(ctx, "tcp", c.addr) //fpvet:allow locksafe requests are serialized under c.mu by design; the redial is part of the serialized request
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("matchsvc: redial %s: %w", c.addr, err)
		}
		c.conn.Close()
		c.conn = conn
		c.broken = false
		if c.met != nil {
			c.met.redials.Inc()
		}
	}
	var deadline time.Time // zero clears any previous call's deadline
	if d, ok := ctx.Deadline(); ok {
		// Padded past the context deadline: the watcher below interrupts
		// I/O the instant ctx.Done() fires, so by the time the connection
		// deadline could trip on its own the context is definitely
		// expired and the caller sees ctx.Err(), not a raw I/O timeout.
		deadline = d.Add(10 * time.Millisecond)
	} else if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		return fmt.Errorf("matchsvc: set deadline: %w", err)
	}
	if ctx.Done() != nil {
		conn := c.conn
		stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
		// Runs before the mutex is released. A false return means the
		// interrupt already started and may yank the deadline after this
		// call returns — retire the connection rather than let a later
		// request race it.
		defer func() {
			if !stop() {
				c.broken = true
			}
		}()
	}
	fail := func(err error) error {
		// Includes deadline expiry: a late response arriving after the
		// caller gave up must not be read as the answer to the next
		// request, so the connection is replaced, not reused.
		c.broken = true
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	if err := writeFrameHdr(c.conn, op, payload, &c.hdr); err != nil {
		return fail(err)
	}
	status, resp, err := readFrameIntoHdr(c.conn, c.recv, &c.hdr)
	if err != nil {
		return fail(fmt.Errorf("matchsvc: read response: %w", err))
	}
	if c.met != nil {
		c.met.respBytes.Observe(int64(len(resp)))
	}
	if cap(resp) > cap(c.recv) {
		c.recv = resp[:0]
	}
	r := payloadReader{buf: resp}
	if status == StatusError {
		msg, err := r.string()
		if err != nil {
			msg = "(malformed error payload)"
		}
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	if status != StatusOK {
		return fmt.Errorf("matchsvc: unknown status 0x%02x", status)
	}
	if decode == nil {
		return nil
	}
	return decode(&r)
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	return c.roundTrip(ctx, OpPing, nil, nil)
}

// MatchResult is the service-side comparison outcome.
type MatchResult struct {
	Score   float64
	Matched int
}

func decodeMatch(r *payloadReader) (MatchResult, error) {
	score, err := r.float64()
	if err != nil {
		return MatchResult{}, err
	}
	matched, err := r.uint32()
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{Score: score, Matched: int(matched)}, nil
}

// Match compares two templates on the server.
func (c *Client) Match(ctx context.Context, g, p *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.template(g); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(p); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTrip(ctx, OpMatch, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Enroll registers a template under id.
func (c *Client) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	if err := fs.w.string(deviceID); err != nil {
		return err
	}
	if err := fs.w.template(tpl); err != nil {
		return err
	}
	return c.roundTrip(ctx, OpEnroll, fs.w.buf, nil)
}

// Enrollment is one EnrollBatch item.
type Enrollment struct {
	ID, DeviceID string
	Template     *minutiae.Template
}

// enrollBatchBudget leaves headroom under the frame cap for the count
// prefix and per-item length framing.
const enrollBatchBudget = maxFrame - 4096

// EnrollBatch registers many templates in as few round trips as the
// 1 MiB frame cap allows, returning how many were enrolled. Batches are
// not atomic: on error, items from already-shipped chunks (and items
// preceding the failure inside its chunk, which the server reports)
// remain enrolled.
func (c *Client) EnrollBatch(ctx context.Context, items []Enrollment) (int, error) {
	return c.enrollBatchChunked(ctx, items, enrollBatchBudget)
}

// enrollBatchChunked is EnrollBatch with an explicit per-frame payload
// budget (separated out so tests can force multi-frame chunking without
// megabyte fixtures).
func (c *Client) enrollBatchChunked(ctx context.Context, items []Enrollment, budget int) (int, error) {
	enrolled := 0
	encoded := make([][]byte, 0, len(items))
	size := 0
	flush := func() error {
		if len(encoded) == 0 {
			return nil
		}
		fs := acquireFrameScratch()
		defer releaseFrameScratch(fs)
		fs.w.uint32(uint32(len(encoded)))
		for _, e := range encoded {
			fs.w.buf = append(fs.w.buf, e...)
		}
		var n uint32
		err := c.roundTrip(ctx, OpEnrollBatch, fs.w.buf, func(r *payloadReader) (derr error) {
			n, derr = r.uint32()
			return derr
		})
		if err != nil {
			return err
		}
		if int(n) != len(encoded) {
			return fmt.Errorf("matchsvc: batch enrolled %d of %d items", n, len(encoded))
		}
		enrolled += int(n)
		encoded = encoded[:0]
		size = 0
		return nil
	}
	for _, it := range items {
		var w payloadWriter
		if err := w.string(it.ID); err != nil {
			return enrolled, err
		}
		if err := w.string(it.DeviceID); err != nil {
			return enrolled, err
		}
		if err := w.template(it.Template); err != nil {
			return enrolled, err
		}
		if len(w.buf) > budget {
			return enrolled, fmt.Errorf("matchsvc: batch item %q of %d bytes exceeds frame budget", it.ID, len(w.buf))
		}
		if size+len(w.buf) > budget {
			if err := flush(); err != nil {
				return enrolled, err
			}
		}
		encoded = append(encoded, w.buf)
		size += len(w.buf)
	}
	return enrolled, flush()
}

// Verify compares a probe against one enrollment.
func (c *Client) Verify(ctx context.Context, id string, probe *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(probe); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTrip(ctx, OpVerify, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Identify searches the gallery and returns the top-k candidates
// (k <= 0 requests the full ranking).
func (c *Client) Identify(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, err
	}
	var cands []gallery.Candidate
	err := c.roundTrip(ctx, OpIdentify, fs.w.buf, func(r *payloadReader) (derr error) {
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// IdentifyEx is Identify plus the server's retrieval statistics: how
// large the gallery was, how many candidates the triplet index
// shortlisted, and whether the indexed path served the search.
func (c *Client) IdentifyEx(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	var stats gallery.IdentifyStats
	var cands []gallery.Candidate
	err := c.roundTrip(ctx, OpIdentifyEx, fs.w.buf, func(r *payloadReader) error {
		var vals [4]uint32
		for i := range vals {
			var derr error
			if vals[i], derr = r.uint32(); derr != nil {
				return derr
			}
		}
		stats.GallerySize = int(vals[0])
		stats.Shortlist = int(vals[1])
		stats.Scanned = int(vals[2])
		stats.Indexed = vals[3] != 0
		var derr error
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	return cands, stats, nil
}

func decodeCandidates(r *payloadReader) ([]gallery.Candidate, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	// A candidate occupies at least 12 payload bytes; clamp the
	// preallocation so a malformed count cannot demand gigabytes before
	// the short-payload error surfaces.
	capHint := n
	if max := uint32(len(r.buf)-r.off) / 12; capHint > max {
		capHint = max
	}
	out := make([]gallery.Candidate, 0, capHint)
	for i := uint32(0); i < n; i++ {
		id, err := r.string()
		if err != nil {
			return nil, err
		}
		dev, err := r.string()
		if err != nil {
			return nil, err
		}
		score, err := r.float64()
		if err != nil {
			return nil, err
		}
		out = append(out, gallery.Candidate{ID: id, DeviceID: dev, Score: score})
	}
	return out, nil
}

// Has reports whether id is enrolled on the server.
func (c *Client) Has(ctx context.Context, id string) (bool, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return false, err
	}
	var v uint32
	err := c.roundTrip(ctx, OpHas, fs.w.buf, func(r *payloadReader) (derr error) {
		v, derr = r.uint32()
		return derr
	})
	return v != 0, err
}

// Scan returns up to max enrollments whose ID sorts strictly after
// afterID, in ID order. The server may return fewer than max to respect
// the frame cap; callers page by passing the last returned ID as the
// next afterID, and an empty page means the scan is complete.
func (c *Client) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(afterID); err != nil {
		return nil, err
	}
	fs.w.uint32(uint32(max))
	var out []gallery.Export
	err := c.roundTrip(ctx, OpScan, fs.w.buf, func(r *payloadReader) error {
		n, derr := r.uint32()
		if derr != nil {
			return derr
		}
		// An item occupies at least 8 payload bytes; clamp the
		// preallocation against malformed counts.
		capHint := n
		if max := uint32(len(r.buf)-r.off) / 8; capHint > max {
			capHint = max
		}
		out = make([]gallery.Export, 0, capHint)
		for i := uint32(0); i < n; i++ {
			id, derr := r.string()
			if derr != nil {
				return derr
			}
			dev, derr := r.string()
			if derr != nil {
				return derr
			}
			tpl, derr := r.template()
			if derr != nil {
				return derr
			}
			out = append(out, gallery.Export{ID: id, DeviceID: dev, Template: tpl})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Remove deletes an enrollment.
func (c *Client) Remove(ctx context.Context, id string) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	return c.roundTrip(ctx, OpRemove, fs.w.buf, nil)
}

// ServiceStats returns the server's service-level summary: topology,
// index state, and — when the serving process is durable — its WAL
// recovery and log-size detail. Servers predating the op report it as
// unknown through ErrRemote; callers wanting to support them can fall
// back to Count.
func (c *Client) ServiceStats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.roundTrip(ctx, OpStats, nil, func(r *payloadReader) (derr error) {
		st, derr = decodeServiceStats(r)
		return derr
	})
	return st, err
}

// Count returns the number of enrollments.
func (c *Client) Count(ctx context.Context) (int, error) {
	var n uint32
	err := c.roundTrip(ctx, OpCount, nil, func(r *payloadReader) (derr error) {
		n, derr = r.uint32()
		return derr
	})
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

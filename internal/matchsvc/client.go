package matchsvc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// Client is a connection to the matching service. It is safe for
// concurrent use; requests are serialized over one connection. After a
// transport failure — including the server dropping an idle connection
// at its read deadline — the next request transparently redials, so a
// long-lived client (e.g. a shard router front) survives quiet periods
// and server restarts.
type Client struct {
	mu          sync.Mutex
	addr        string
	dialTimeout time.Duration
	conn        net.Conn
	broken      bool
	closed      bool
	timeout     time.Duration
	// recv is the response frame buffer, reused across requests. Safe
	// because responses are decoded under mu, before the next request
	// can overwrite it.
	recv []byte
}

// SetRequestTimeout bounds each round trip; zero (the default) means no
// deadline. Identification over a large gallery can legitimately take
// seconds — size the timeout to the gallery.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Dial connects to a server address with the given timeout (also used
// for later reconnects).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("matchsvc: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, dialTimeout: timeout, conn: conn}, nil
}

// Close shuts the connection down; subsequent requests fail instead of
// redialling.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request and decodes the response payload with
// decode (nil when the caller only needs the status). The decode runs
// under the client mutex because the response buffer is pooled: it must
// not retain the reader or its bytes. A request over a connection
// broken by an earlier failure redials first; the failure that broke
// the connection was already reported to its caller, and a response
// frame can never be mistaken for a request's because requests are
// serialized under the mutex.
func (c *Client) roundTrip(op byte, payload []byte, decode func(*payloadReader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("matchsvc: client closed")
	}
	if c.broken {
		conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
		if err != nil {
			return fmt.Errorf("matchsvc: redial %s: %w", c.addr, err)
		}
		c.conn.Close()
		c.conn = conn
		c.broken = false
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("matchsvc: set deadline: %w", err)
		}
	}
	if err := writeFrame(c.conn, op, payload); err != nil {
		c.broken = true
		return err
	}
	status, resp, err := readFrameInto(c.conn, c.recv)
	if err != nil {
		// Includes deadline expiry: a late response arriving after the
		// caller gave up must not be read as the answer to the next
		// request, so the connection is replaced, not reused.
		c.broken = true
		return fmt.Errorf("matchsvc: read response: %w", err)
	}
	if cap(resp) > cap(c.recv) {
		c.recv = resp[:0]
	}
	r := payloadReader{buf: resp}
	if status == StatusError {
		msg, err := r.string()
		if err != nil {
			msg = "(malformed error payload)"
		}
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	if status != StatusOK {
		return fmt.Errorf("matchsvc: unknown status 0x%02x", status)
	}
	if decode == nil {
		return nil
	}
	return decode(&r)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	return c.roundTrip(OpPing, nil, nil)
}

// MatchResult is the service-side comparison outcome.
type MatchResult struct {
	Score   float64
	Matched int
}

func decodeMatch(r *payloadReader) (MatchResult, error) {
	score, err := r.float64()
	if err != nil {
		return MatchResult{}, err
	}
	matched, err := r.uint32()
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{Score: score, Matched: int(matched)}, nil
}

// Match compares two templates on the server.
func (c *Client) Match(g, p *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.template(g); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(p); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTrip(OpMatch, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Enroll registers a template under id.
func (c *Client) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	if err := fs.w.string(deviceID); err != nil {
		return err
	}
	if err := fs.w.template(tpl); err != nil {
		return err
	}
	return c.roundTrip(OpEnroll, fs.w.buf, nil)
}

// Enrollment is one EnrollBatch item.
type Enrollment struct {
	ID, DeviceID string
	Template     *minutiae.Template
}

// enrollBatchBudget leaves headroom under the frame cap for the count
// prefix and per-item length framing.
const enrollBatchBudget = maxFrame - 4096

// EnrollBatch registers many templates in as few round trips as the
// 1 MiB frame cap allows, returning how many were enrolled. Batches are
// not atomic: on error, items from already-shipped chunks (and items
// preceding the failure inside its chunk, which the server reports)
// remain enrolled.
func (c *Client) EnrollBatch(items []Enrollment) (int, error) {
	return c.enrollBatchChunked(items, enrollBatchBudget)
}

// enrollBatchChunked is EnrollBatch with an explicit per-frame payload
// budget (separated out so tests can force multi-frame chunking without
// megabyte fixtures).
func (c *Client) enrollBatchChunked(items []Enrollment, budget int) (int, error) {
	enrolled := 0
	encoded := make([][]byte, 0, len(items))
	size := 0
	flush := func() error {
		if len(encoded) == 0 {
			return nil
		}
		fs := acquireFrameScratch()
		defer releaseFrameScratch(fs)
		fs.w.uint32(uint32(len(encoded)))
		for _, e := range encoded {
			fs.w.buf = append(fs.w.buf, e...)
		}
		var n uint32
		err := c.roundTrip(OpEnrollBatch, fs.w.buf, func(r *payloadReader) (derr error) {
			n, derr = r.uint32()
			return derr
		})
		if err != nil {
			return err
		}
		if int(n) != len(encoded) {
			return fmt.Errorf("matchsvc: batch enrolled %d of %d items", n, len(encoded))
		}
		enrolled += int(n)
		encoded = encoded[:0]
		size = 0
		return nil
	}
	for _, it := range items {
		var w payloadWriter
		if err := w.string(it.ID); err != nil {
			return enrolled, err
		}
		if err := w.string(it.DeviceID); err != nil {
			return enrolled, err
		}
		if err := w.template(it.Template); err != nil {
			return enrolled, err
		}
		if len(w.buf) > budget {
			return enrolled, fmt.Errorf("matchsvc: batch item %q of %d bytes exceeds frame budget", it.ID, len(w.buf))
		}
		if size+len(w.buf) > budget {
			if err := flush(); err != nil {
				return enrolled, err
			}
		}
		encoded = append(encoded, w.buf)
		size += len(w.buf)
	}
	return enrolled, flush()
}

// Verify compares a probe against one enrollment.
func (c *Client) Verify(id string, probe *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(probe); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTrip(OpVerify, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Identify searches the gallery and returns the top-k candidates.
func (c *Client) Identify(probe *minutiae.Template, k int) ([]gallery.Candidate, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, err
	}
	var cands []gallery.Candidate
	err := c.roundTrip(OpIdentify, fs.w.buf, func(r *payloadReader) (derr error) {
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// IdentifyEx is Identify plus the server's retrieval statistics: how
// large the gallery was, how many candidates the triplet index
// shortlisted, and whether the indexed path served the search.
func (c *Client) IdentifyEx(probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	var stats gallery.IdentifyStats
	var cands []gallery.Candidate
	err := c.roundTrip(OpIdentifyEx, fs.w.buf, func(r *payloadReader) error {
		var vals [4]uint32
		for i := range vals {
			var derr error
			if vals[i], derr = r.uint32(); derr != nil {
				return derr
			}
		}
		stats.GallerySize = int(vals[0])
		stats.Shortlist = int(vals[1])
		stats.Scanned = int(vals[2])
		stats.Indexed = vals[3] != 0
		var derr error
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	return cands, stats, nil
}

func decodeCandidates(r *payloadReader) ([]gallery.Candidate, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	// A candidate occupies at least 12 payload bytes; clamp the
	// preallocation so a malformed count cannot demand gigabytes before
	// the short-payload error surfaces.
	capHint := n
	if max := uint32(len(r.buf)-r.off) / 12; capHint > max {
		capHint = max
	}
	out := make([]gallery.Candidate, 0, capHint)
	for i := uint32(0); i < n; i++ {
		id, err := r.string()
		if err != nil {
			return nil, err
		}
		dev, err := r.string()
		if err != nil {
			return nil, err
		}
		score, err := r.float64()
		if err != nil {
			return nil, err
		}
		out = append(out, gallery.Candidate{ID: id, DeviceID: dev, Score: score})
	}
	return out, nil
}

// Remove deletes an enrollment.
func (c *Client) Remove(id string) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	return c.roundTrip(OpRemove, fs.w.buf, nil)
}

// Count returns the number of enrollments.
func (c *Client) Count() (int, error) {
	var n uint32
	err := c.roundTrip(OpCount, nil, func(r *payloadReader) (derr error) {
		n, derr = r.uint32()
		return derr
	})
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

package matchsvc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/rng"
)

// defaultKeepalive spaces the idle-connection pings; it must sit well
// under the server's 2-minute default idle deadline so a quiet pooled
// connection is never silently dropped between requests.
const defaultKeepalive = 50 * time.Second

// keepalivePingTimeout bounds one background keepalive ping.
const keepalivePingTimeout = 5 * time.Second

// Client is a connection pool to the matching service. It is safe for
// concurrent use. Against a server that understands the multiplexed
// protocol (negotiated per connection via OpHello) many requests share
// each connection concurrently, routed back by request ID; against an
// older server the client transparently falls back to the serialized
// one-request-at-a-time protocol and the pool's other connections
// provide the parallelism. After a transport failure — including the
// server dropping an idle connection at its read deadline — the pool
// evicts the dead connection and the next request dials a fresh one,
// so a long-lived client (e.g. a shard router front) survives quiet
// periods and server restarts. A background keepalive additionally
// pings idle pooled connections (SetKeepalive) so they are not idle
// from the server's point of view in the first place.
//
// Every request takes a context.Context: its deadline bounds the whole
// wire round trip, and cancellation interrupts or abandons in-flight
// I/O. When the context carries no deadline, the SetRequestTimeout
// fallback applies. With SetRetry, idempotent requests that fail on a
// transport error are transparently retried with capped jittered
// exponential backoff; retries are off by default.
type Client struct {
	addr string

	mu          sync.Mutex
	dialTimeout time.Duration
	timeout     time.Duration
	retry       Retry
	met         *clientMetrics
	closed      bool
	keepalive   time.Duration
	// jitter drives retry backoff spreading; guarded by mu.
	jitter *rng.Source

	pool *pool
	stop chan struct{}
	kaWG sync.WaitGroup
}

// SetRequestTimeout sets the fallback round-trip bound used when a
// request's context has no deadline of its own; zero (the default)
// means no fallback deadline. Identification over a large gallery can
// legitimately take seconds — size the timeout to the gallery.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetRedialTimeout bounds the reconnects the pool performs after a
// transport failure, independently of the triggering request's
// context; zero leaves reconnects bounded by that context alone.
// Dial seeds it with its own timeout; DialContext leaves it zero.
func (c *Client) SetRedialTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dialTimeout = d
}

// SetPoolSize sets how many connections the pool may hold (minimum 1,
// the default). Connections are dialed on demand, so a larger pool
// costs nothing until concurrency needs it.
func (c *Client) SetPoolSize(n int) {
	c.pool.resize(n)
}

// SetKeepalive sets the idle-connection ping interval; d <= 0 disables
// keepalives. The default (50s) sits under the server's default
// 2-minute idle deadline.
func (c *Client) SetKeepalive(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keepalive = d
}

func (c *Client) metrics() *clientMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.met
}

func (c *Client) requestTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeout
}

func (c *Client) retryPolicy() Retry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry
}

// DialContext connects to a server address under the given context: a
// pre-cancelled or expired context fails fast without touching the
// network, and cancellation mid-handshake aborts the dial. Reconnects
// after transport failures are bounded by the context of the request
// that triggers them.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("matchsvc: dial %s: %w", addr, err)
	}
	c := &Client{
		addr:      addr,
		keepalive: defaultKeepalive,
		jitter:    rng.New(0x9e3779b97f4a7c15).Child(addr),
		stop:      make(chan struct{}),
	}
	c.pool = newPool(c, 1)
	c.pool.seed(newWireConn(c, conn))
	c.kaWG.Add(1)
	go c.keepaliveLoop()
	return c, nil
}

// Dial connects to a server address with the given timeout (also used
// to bound later reconnects).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	ctx := context.Background() //fpvet:allow ctxflow non-ctx constructor is a genuine root; the timeout below is its only bound
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c, err := DialContext(ctx, addr)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The expired context is Dial's own timeout, not a caller's:
			// keep the address in the diagnostic as Dial always has.
			return nil, fmt.Errorf("matchsvc: dial %s: %w", addr, err)
		}
		return nil, err
	}
	c.dialTimeout = timeout
	return c, nil
}

// dialRaw opens one pool connection, bounded by the redial timeout
// when set (else the request-timeout fallback) and by ctx.
func (c *Client) dialRaw(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	d := net.Dialer{Timeout: c.dialTimeout}
	if d.Timeout == 0 && c.timeout > 0 {
		// A DialContext-created client has no redial timeout of its own;
		// without this, a deadline-free request context would leave the
		// reconnect bounded only by the OS connect timeout.
		d.Timeout = c.timeout
	}
	c.mu.Unlock()
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, transportErr(fmt.Errorf("matchsvc: redial %s: %w", c.addr, err))
	}
	return conn, nil
}

// Close shuts the pool down; subsequent requests fail instead of
// redialling.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.pool.close()
	c.kaWG.Wait()
	return nil
}

// keepaliveLoop pings idle pooled connections so the server's idle
// deadline never fires on a healthy conn the pool intends to reuse.
// Only connections whose protocol mode is already negotiated are
// pinged — the first real request drives negotiation under its own
// context.
func (c *Client) keepaliveLoop() {
	defer c.kaWG.Done()
	for {
		c.mu.Lock()
		interval := c.keepalive
		c.mu.Unlock()
		tick := interval / 2
		if interval <= 0 {
			tick = time.Second // disabled: just poll the setting
		} else if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTimer(tick)
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if interval <= 0 {
			continue
		}
		for _, w := range c.pool.snapshot() {
			if w.refs.Load() != 0 {
				// Checked out: live traffic is its keepalive.
				continue
			}
			if time.Since(time.Unix(0, w.lastUsed.Load())) < tick {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), keepalivePingTimeout) //fpvet:allow ctxflow background maintenance loop with no caller context; the timeout above bounds it
			w.keepalivePing(ctx)
			cancel()
		}
	}
}

// roundTrip sends one non-idempotent request; roundTripIdem sends one
// the Retry policy may transparently replay after a transport failure.
func (c *Client) roundTrip(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	return c.do(ctx, op, payload, decode, false)
}

func (c *Client) roundTripIdem(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	return c.do(ctx, op, payload, decode, true)
}

// do runs one request under the retry policy. Only transport-class
// failures of idempotent operations are retried; ctx is re-checked
// between attempts and its error always outranks the transport error
// that a cancellation provoked.
func (c *Client) do(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error, idempotent bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m := c.metrics()
	if m != nil {
		m.inflight.Inc()
		defer m.inflight.Dec()
	}
	pol := c.retryPolicy()
	attempts := 1
	if idempotent && pol.enabled() {
		attempts = pol.Attempts
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.callOnce(ctx, op, payload, decode)
		if err == nil || attempt >= attempts || !errors.Is(err, ErrTransport) {
			return err
		}
		if m != nil {
			m.retries.Inc()
		}
		if werr := c.backoff(ctx, pol, attempt); werr != nil {
			return werr
		}
	}
}

// callOnce checks a connection out for one attempt. A connection that
// turns out to have been retired before the request was written
// (errConnStale — e.g. the server idle-dropped it between checkouts)
// is replaced and the request replayed on a fresh conn: nothing
// reached the wire, so this is safe even for non-idempotent ops, and
// it preserves the serialized client's transparent-redial behavior.
func (c *Client) callOnce(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	for stale := 0; ; stale++ {
		w, err := c.pool.checkout(ctx)
		if err != nil {
			return err
		}
		err = c.callOn(ctx, w, op, payload, decode)
		c.pool.checkin(w)
		if errors.Is(err, errConnStale) && stale < 2 && ctx.Err() == nil {
			continue
		}
		return err
	}
}

func (c *Client) callOn(ctx context.Context, w *wireConn, op byte, payload []byte, decode func(*payloadReader) error) error {
	if err := w.negotiate(ctx); err != nil {
		if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Another caller's context drove the shared handshake and gave
			// up; that cancellation is not ours. Replay on a fresh conn.
			return errConnStale
		}
		return err
	}
	if w.muxed {
		return w.muxCall(ctx, op, payload, decode)
	}
	return w.legacyCall(ctx, op, payload, decode)
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	return c.roundTripIdem(ctx, OpPing, nil, nil)
}

// MatchResult is the service-side comparison outcome.
type MatchResult struct {
	Score   float64
	Matched int
}

func decodeMatch(r *payloadReader) (MatchResult, error) {
	score, err := r.float64()
	if err != nil {
		return MatchResult{}, err
	}
	matched, err := r.uint32()
	if err != nil {
		return MatchResult{}, err
	}
	return MatchResult{Score: score, Matched: int(matched)}, nil
}

// Match compares two templates on the server.
func (c *Client) Match(ctx context.Context, g, p *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.template(g); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(p); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTrip(ctx, OpMatch, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Enroll registers a template under id.
func (c *Client) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	if err := fs.w.string(deviceID); err != nil {
		return err
	}
	if err := fs.w.template(tpl); err != nil {
		return err
	}
	return c.roundTrip(ctx, OpEnroll, fs.w.buf, nil)
}

// Enrollment is one EnrollBatch item.
type Enrollment struct {
	ID, DeviceID string
	Template     *minutiae.Template
}

// enrollBatchBudget leaves headroom under the frame cap for the count
// prefix and per-item length framing.
const enrollBatchBudget = maxFrame - 4096

// EnrollBatch registers many templates in as few round trips as the
// 1 MiB frame cap allows, returning how many were enrolled. Batches are
// not atomic: on error, items from already-shipped chunks (and items
// preceding the failure inside its chunk, which the server reports)
// remain enrolled.
func (c *Client) EnrollBatch(ctx context.Context, items []Enrollment) (int, error) {
	return c.enrollBatchChunked(ctx, items, enrollBatchBudget)
}

// enrollBatchChunked is EnrollBatch with an explicit per-frame payload
// budget (separated out so tests can force multi-frame chunking without
// megabyte fixtures).
func (c *Client) enrollBatchChunked(ctx context.Context, items []Enrollment, budget int) (int, error) {
	enrolled := 0
	encoded := make([][]byte, 0, len(items))
	size := 0
	flush := func() error {
		if len(encoded) == 0 {
			return nil
		}
		fs := acquireFrameScratch()
		defer releaseFrameScratch(fs)
		fs.w.uint32(uint32(len(encoded)))
		for _, e := range encoded {
			fs.w.buf = append(fs.w.buf, e...)
		}
		var n uint32
		err := c.roundTrip(ctx, OpEnrollBatch, fs.w.buf, func(r *payloadReader) (derr error) {
			n, derr = r.uint32()
			return derr
		})
		if err != nil {
			return err
		}
		if int(n) != len(encoded) {
			return fmt.Errorf("matchsvc: batch enrolled %d of %d items", n, len(encoded))
		}
		enrolled += int(n)
		encoded = encoded[:0]
		size = 0
		return nil
	}
	for _, it := range items {
		var w payloadWriter
		if err := w.string(it.ID); err != nil {
			return enrolled, err
		}
		if err := w.string(it.DeviceID); err != nil {
			return enrolled, err
		}
		if err := w.template(it.Template); err != nil {
			return enrolled, err
		}
		if len(w.buf) > budget {
			return enrolled, fmt.Errorf("matchsvc: batch item %q of %d bytes exceeds frame budget", it.ID, len(w.buf))
		}
		if size+len(w.buf) > budget {
			if err := flush(); err != nil {
				return enrolled, err
			}
		}
		encoded = append(encoded, w.buf)
		size += len(w.buf)
	}
	return enrolled, flush()
}

// Verify compares a probe against one enrollment.
func (c *Client) Verify(ctx context.Context, id string, probe *minutiae.Template) (MatchResult, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return MatchResult{}, err
	}
	if err := fs.w.template(probe); err != nil {
		return MatchResult{}, err
	}
	var res MatchResult
	err := c.roundTripIdem(ctx, OpVerify, fs.w.buf, func(r *payloadReader) (derr error) {
		res, derr = decodeMatch(r)
		return derr
	})
	return res, err
}

// Identify searches the gallery and returns the top-k candidates
// (k <= 0 requests the full ranking).
func (c *Client) Identify(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, err
	}
	var cands []gallery.Candidate
	err := c.roundTripIdem(ctx, OpIdentify, fs.w.buf, func(r *payloadReader) (derr error) {
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// IdentifyEx is Identify plus the server's retrieval statistics: how
// large the gallery was, how many candidates the triplet index
// shortlisted, and whether the indexed path served the search.
func (c *Client) IdentifyEx(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint32(uint32(k))
	if err := fs.w.template(probe); err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	var stats gallery.IdentifyStats
	var cands []gallery.Candidate
	err := c.roundTripIdem(ctx, OpIdentifyEx, fs.w.buf, func(r *payloadReader) error {
		var vals [4]uint32
		for i := range vals {
			var derr error
			if vals[i], derr = r.uint32(); derr != nil {
				return derr
			}
		}
		stats.GallerySize = int(vals[0])
		stats.Shortlist = int(vals[1])
		stats.Scanned = int(vals[2])
		stats.Indexed = vals[3] != 0
		var derr error
		cands, derr = decodeCandidates(r)
		return derr
	})
	if err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	return cands, stats, nil
}

func decodeCandidates(r *payloadReader) ([]gallery.Candidate, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	// A candidate occupies at least 12 payload bytes; clamp the
	// preallocation so a malformed count cannot demand gigabytes before
	// the short-payload error surfaces.
	capHint := n
	if max := uint32(len(r.buf)-r.off) / 12; capHint > max {
		capHint = max
	}
	out := make([]gallery.Candidate, 0, capHint)
	for i := uint32(0); i < n; i++ {
		id, err := r.string()
		if err != nil {
			return nil, err
		}
		dev, err := r.string()
		if err != nil {
			return nil, err
		}
		score, err := r.float64()
		if err != nil {
			return nil, err
		}
		out = append(out, gallery.Candidate{ID: id, DeviceID: dev, Score: score})
	}
	return out, nil
}

// Has reports whether id is enrolled on the server.
func (c *Client) Has(ctx context.Context, id string) (bool, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return false, err
	}
	var v uint32
	err := c.roundTripIdem(ctx, OpHas, fs.w.buf, func(r *payloadReader) (derr error) {
		v, derr = r.uint32()
		return derr
	})
	return v != 0, err
}

// Scan returns up to max enrollments whose ID sorts strictly after
// afterID, in ID order. The server may return fewer than max to respect
// the frame cap; callers page by passing the last returned ID as the
// next afterID, and an empty page means the scan is complete.
func (c *Client) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(afterID); err != nil {
		return nil, err
	}
	fs.w.uint32(uint32(max))
	var out []gallery.Export
	err := c.roundTripIdem(ctx, OpScan, fs.w.buf, func(r *payloadReader) error {
		n, derr := r.uint32()
		if derr != nil {
			return derr
		}
		// An item occupies at least 8 payload bytes; clamp the
		// preallocation against malformed counts.
		capHint := n
		if max := uint32(len(r.buf)-r.off) / 8; capHint > max {
			capHint = max
		}
		out = make([]gallery.Export, 0, capHint)
		for i := uint32(0); i < n; i++ {
			id, derr := r.string()
			if derr != nil {
				return derr
			}
			dev, derr := r.string()
			if derr != nil {
				return derr
			}
			tpl, derr := r.template()
			if derr != nil {
				return derr
			}
			out = append(out, gallery.Export{ID: id, DeviceID: dev, Template: tpl})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Remove deletes an enrollment.
func (c *Client) Remove(ctx context.Context, id string) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	if err := fs.w.string(id); err != nil {
		return err
	}
	return c.roundTrip(ctx, OpRemove, fs.w.buf, nil)
}

// ServiceStats returns the server's service-level summary: topology,
// index state, and — when the serving process is durable — its WAL
// recovery and log-size detail. Servers predating the op report it as
// unknown through ErrRemote; callers wanting to support them can fall
// back to Count.
func (c *Client) ServiceStats(ctx context.Context) (ServiceStats, error) {
	var st ServiceStats
	err := c.roundTripIdem(ctx, OpStats, nil, func(r *payloadReader) (derr error) {
		st, derr = decodeServiceStats(r)
		return derr
	})
	return st, err
}

// Count returns the number of enrollments.
func (c *Client) Count(ctx context.Context) (int, error) {
	var n uint32
	err := c.roundTripIdem(ctx, OpCount, nil, func(r *payloadReader) (derr error) {
		n, derr = r.uint32()
		return derr
	})
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

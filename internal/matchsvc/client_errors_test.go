package matchsvc

// Client-side failure paths: a well-behaved client must surface server
// error statuses, truncated or oversized response frames, and mid-response
// connection loss as clean errors rather than hangs, panics, or silently
// wrong results.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer accepts one connection, reads one request frame, and hands
// the connection to respond for a scripted reply. It models a server
// predating the mux: the client's OpHello is refused with a
// status-error frame on a connection that stays open (exactly what the
// old unknown-opcode path did), so the client falls back to the
// serialized legacy protocol and the script answers the real request.
func fakeServer(t *testing.T, respond func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		op, _, err := readFrame(conn)
		if err != nil {
			return
		}
		if op == OpHello {
			var w payloadWriter
			_ = w.string("matchsvc: unknown opcode 0x0d")
			if err := writeFrame(conn, StatusError, w.buf); err != nil {
				return
			}
			if _, _, err := readFrame(conn); err != nil {
				return
			}
		}
		respond(conn)
	}()
	return ln.Addr().String()
}

func dialFake(t *testing.T, addr string) *Client {
	t.Helper()
	cli, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	cli.SetRequestTimeout(2 * time.Second)
	return cli
}

func TestClientServerStatusError(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		var w payloadWriter
		_ = w.string("synthetic failure")
		_ = writeFrame(conn, StatusError, w.buf)
	})
	err := dialFake(t, addr).Ping(context.Background())
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("error lost the server message: %v", err)
	}
}

func TestClientMalformedErrorPayload(t *testing.T) {
	// StatusError whose payload is not a valid string: still ErrRemote,
	// with a placeholder message instead of a decode panic.
	addr := fakeServer(t, func(conn net.Conn) {
		_ = writeFrame(conn, StatusError, []byte{0xff})
	})
	err := dialFake(t, addr).Ping(context.Background())
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("expected placeholder message, got %v", err)
	}
}

func TestClientUnknownStatus(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		_ = writeFrame(conn, 0x7e, nil)
	})
	err := dialFake(t, addr).Ping(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown status") {
		t.Fatalf("want unknown-status error, got %v", err)
	}
}

func TestClientOversizeResponseRejected(t *testing.T) {
	// A frame header claiming more than the 1 MiB cap must be rejected
	// before the client tries to allocate or read the payload.
	addr := fakeServer(t, func(conn net.Conn) {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
		hdr[4] = StatusOK
		_, _ = conn.Write(hdr[:])
	})
	err := dialFake(t, addr).Ping(context.Background())
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestClientTruncatedResponse(t *testing.T) {
	// Header promises 100 payload bytes but the connection closes after 10.
	addr := fakeServer(t, func(conn net.Conn) {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], 100)
		hdr[4] = StatusOK
		_, _ = conn.Write(hdr[:])
		_, _ = conn.Write(make([]byte, 10))
	})
	err := dialFake(t, addr).Ping(context.Background())
	if err == nil || !strings.Contains(err.Error(), "read response") {
		t.Fatalf("want read-response error, got %v", err)
	}
}

func TestClientConnClosedMidResponse(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// Close without replying at all.
	})
	if _, err := dialFake(t, addr).Count(context.Background()); err == nil {
		t.Fatal("count over a closed connection succeeded")
	}
}

func TestClientShortResultPayload(t *testing.T) {
	// StatusOK whose payload is too short for the expected result shape.
	addr := fakeServer(t, func(conn net.Conn) {
		_ = writeFrame(conn, StatusOK, []byte{0, 0})
	})
	if _, err := dialFake(t, addr).Count(context.Background()); !errors.Is(err, errShortPayload) {
		t.Fatalf("want short-payload error, got %v", err)
	}
}

func TestClientRedialsAfterIdleDrop(t *testing.T) {
	// A server with an aggressive idle timeout drops the quiet client;
	// the client's next request redials transparently instead of failing
	// forever on the dead connection — the lifecycle a long-lived shard
	// front depends on.
	srv := NewServer(nil, nil)
	srv.SetIdleTimeout(100 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(2 * time.Second)
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // server drops the idle connection
	// One request may surface the broken connection; within two requests
	// the client must be healthy again.
	if err := cli.Ping(context.Background()); err != nil {
		if err := cli.Ping(context.Background()); err != nil {
			t.Fatalf("client did not recover after idle drop: %v", err)
		}
	}
	if _, err := cli.Count(context.Background()); err != nil {
		t.Fatalf("count after recovery: %v", err)
	}
	// A closed client stays closed — no zombie redials.
	cli.Close()
	if err := cli.Ping(context.Background()); err == nil {
		t.Fatal("request on a closed client succeeded")
	}
}

func TestServerIdleTimeoutDropsStalledConnection(t *testing.T) {
	srv := NewServer(nil, nil)
	srv.SetIdleTimeout(150 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})

	// A slow-loris connection: send a partial frame header, then stall.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled connection was answered instead of dropped")
	} else if netErr, ok := err.(net.Error); ok && netErr.Timeout() {
		t.Fatal("server kept the stalled connection past the idle timeout")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("drop took %v, idle timeout was 150ms", waited)
	}

	// A live connection with activity inside the timeout keeps working.
	cli, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if err := cli.Ping(context.Background()); err != nil {
			t.Fatalf("ping %d over live connection: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestEnrollBatchChunksUnderFrameBudget(t *testing.T) {
	cli, srv := startServer(t)
	tpls := testImpressions(t, 8, "D0", 0)
	items := make([]Enrollment, len(tpls))
	for i, tpl := range tpls {
		items[i] = Enrollment{ID: fmt.Sprintf("batch-%02d", i), DeviceID: "D0", Template: tpl}
	}
	// A tiny budget forces one frame per item or two; the server must see
	// every item regardless of how the client splits the frames.
	var itemSize int // largest encoded item
	for _, it := range items {
		var w payloadWriter
		_ = w.string(it.ID)
		_ = w.string(it.DeviceID)
		_ = w.template(it.Template)
		if len(w.buf) > itemSize {
			itemSize = len(w.buf)
		}
	}
	n, err := cli.enrollBatchChunked(context.Background(), items, itemSize+8)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(items) {
		t.Fatalf("enrolled %d of %d", n, len(items))
	}
	if srv.Store().Len() != len(items) {
		t.Fatalf("server holds %d enrollments", srv.Store().Len())
	}

	// One item alone over the budget is rejected up front.
	if _, err := cli.enrollBatchChunked(context.Background(), items[:1], 16); err == nil {
		t.Fatal("oversized single item accepted")
	}
}

func TestEnrollBatchPartialFailure(t *testing.T) {
	cli, srv := startServer(t)
	tpls := testImpressions(t, 4, "D0", 0)
	items := make([]Enrollment, len(tpls))
	for i, tpl := range tpls {
		items[i] = Enrollment{ID: fmt.Sprintf("p-%d", i), DeviceID: "D0", Template: tpl}
	}
	items[2].ID = "p-0" // duplicate → server fails at item 2
	n, err := cli.EnrollBatch(context.Background(), items)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	// The frame-level failure means no chunk completed, so the client
	// reports zero — but the server kept the items preceding the failure.
	if n != 0 {
		t.Fatalf("client-confirmed count = %d, want 0", n)
	}
	if got := srv.Store().Len(); got != 2 {
		t.Fatalf("server enrolled %d, want the 2 preceding the duplicate", got)
	}
}

func TestEnrollBatchEmpty(t *testing.T) {
	cli, _ := startServer(t)
	n, err := cli.EnrollBatch(context.Background(), nil)
	if err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v", n, err)
	}
}

func TestEnrollBatchConcurrentWithIdentify(t *testing.T) {
	cli, srv := startServer(t)
	tpls := testImpressions(t, 6, "D0", 0)
	probes := testImpressions(t, 6, "D0", 1)
	seed := make([]Enrollment, 3)
	for i := 0; i < 3; i++ {
		seed[i] = Enrollment{ID: fmt.Sprintf("s-%d", i), DeviceID: "D0", Template: tpls[i]}
	}
	if _, err := cli.EnrollBatch(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := Dial(addr, time.Second)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		rest := make([]Enrollment, 3)
		for i := 0; i < 3; i++ {
			rest[i] = Enrollment{ID: fmt.Sprintf("t-%d", i), DeviceID: "D0", Template: tpls[3+i]}
		}
		if _, err := c.EnrollBatch(context.Background(), rest); err != nil {
			errs <- err
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := cli.Identify(context.Background(), probes[i%len(probes)], 1); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := cli.Count(context.Background()); err != nil || n != 6 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

// countingListener counts accepted connections so tests can prove a
// dial never reached the network.
func countingListener(t *testing.T) (net.Listener, *int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepts int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&accepts, 1)
			conn.Close()
		}
	}()
	return ln, &accepts
}

// TestDialContextPreCancelledFailsFastWithoutDialing is the satellite
// contract: a context cancelled before DialContext is called fails
// immediately with the context's error and never opens a connection.
func TestDialContextPreCancelledFailsFastWithoutDialing(t *testing.T) {
	ln, accepts := countingListener(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	cli, err := DialContext(ctx, ln.Addr().String())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (client=%v)", err, cli)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("pre-cancelled dial took %v", elapsed)
	}
	// Give a would-be connection time to surface, then require none.
	time.Sleep(50 * time.Millisecond)
	if n := atomic.LoadInt32(accepts); n != 0 {
		t.Fatalf("pre-cancelled dial reached the listener %d times", n)
	}
}

// TestDialContextConnects sanity-checks the happy path against a real
// server.
func TestDialContextConnects(t *testing.T) {
	_, srv := startServer(t)
	addr := srv.listener.Addr().String()
	cli, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRequestCancellationInterruptsBlockedIO proves an in-flight
// request blocked on a mute server unblocks promptly with ctx.Err()
// when its context is cancelled — no fallback timeout required — and
// that the client recovers on the next request.
func TestRequestCancellationInterruptsBlockedIO(t *testing.T) {
	// A server that accepts and reads but never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	cli, err := DialContext(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cli.Ping(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled request returned after %v", elapsed)
	}
	// A context deadline bounds the round trip the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer dcancel()
	start = time.Now()
	if err := cli.Ping(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded request returned after %v", elapsed)
	}
}

package matchsvc

import (
	"bytes"
	"testing"
	"testing/quick"
)

// readFrame must never panic on arbitrary bytes: the server reads frames
// straight off the network.
func TestReadFrameNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("readFrame panicked: %v", r)
			}
		}()
		_, _, _ = readFrame(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// dispatch must never panic on arbitrary payloads for any opcode.
func TestDispatchNeverPanics(t *testing.T) {
	srv := NewServer(nil, nil)
	f := func(op byte, payload []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("dispatch(0x%02x) panicked: %v", op, r)
			}
		}()
		var w payloadWriter
		status, _ := srv.dispatch(op, payload, &w)
		return status == StatusOK || status == StatusError
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package matchsvc

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fmt"

	"fpinterop/internal/gallery"
	"fpinterop/internal/index"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
)

// startServer spins a server on an ephemeral port and returns a connected
// client; everything shuts down with the test.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := NewServer(gallery.New(nil), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	cli, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

// testImpressions captures a small cohort on a device.
func testImpressions(t testing.TB, n int, deviceID string, sample int) []*minutiae.Template {
	t.Helper()
	cohort := population.NewCohort(rng.New(999), population.CohortOptions{Size: n})
	dev, _ := sensor.ProfileByID(deviceID)
	out := make([]*minutiae.Template, n)
	for i, s := range cohort.Subjects {
		imp, err := dev.CaptureSubject(s, sample, sensor.CaptureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = imp.Template
	}
	return out
}

func TestPing(t *testing.T) {
	cli, _ := startServer(t)
	if err := cli.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteMatch(t *testing.T) {
	cli, _ := startServer(t)
	tpls := testImpressions(t, 2, "D0", 0)
	probes := testImpressions(t, 2, "D0", 1)
	genuine, err := cli.Match(context.Background(), tpls[0], probes[0])
	if err != nil {
		t.Fatal(err)
	}
	impostor, err := cli.Match(context.Background(), tpls[0], probes[1])
	if err != nil {
		t.Fatal(err)
	}
	if genuine.Score <= impostor.Score {
		t.Fatalf("remote genuine %v not above impostor %v", genuine.Score, impostor.Score)
	}
	if genuine.Matched == 0 {
		t.Fatal("no matched minutiae reported")
	}
}

func TestEnrollVerifyIdentifyRemove(t *testing.T) {
	cli, _ := startServer(t)
	gallery := testImpressions(t, 3, "D0", 0)
	probes := testImpressions(t, 3, "D1", 1) // cross-device probes
	ids := []string{"alice", "bob", "carol"}
	for i, tpl := range gallery {
		if err := cli.Enroll(context.Background(), ids[i], "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := cli.Count(context.Background()); err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	res, err := cli.Verify(context.Background(), "alice", probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("verify score %v", res.Score)
	}
	cands, err := cli.Identify(context.Background(), probes[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidates", len(cands))
	}
	if cands[0].ID != "bob" {
		t.Fatalf("rank-1 = %s, want bob", cands[0].ID)
	}
	if cands[0].DeviceID != "D0" {
		t.Fatal("device metadata lost in transit")
	}
	if err := cli.Remove(context.Background(), "bob"); err != nil {
		t.Fatal(err)
	}
	if n, _ := cli.Count(context.Background()); n != 2 {
		t.Fatalf("count after remove = %d", n)
	}
}

func TestRemoteErrors(t *testing.T) {
	cli, _ := startServer(t)
	tpl := testImpressions(t, 1, "D0", 0)[0]
	// Verify against unknown ID → remote error.
	if _, err := cli.Verify(context.Background(), "ghost", tpl); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if err := cli.Enroll(context.Background(), "a", "D0", tpl); err != nil {
		t.Fatal(err)
	}
	if err := cli.Enroll(context.Background(), "a", "D0", tpl); !errors.Is(err, ErrRemote) {
		t.Fatalf("duplicate enroll: want ErrRemote, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	cli, srv := startServer(t)
	tpls := testImpressions(t, 4, "D0", 0)
	for i, tpl := range tpls {
		if err := cli.Enroll(context.Background(), string(rune('a'+i)), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 3; i++ {
				if _, err := c.Identify(context.Background(), tpls[w], 1); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownOpcode(t *testing.T) {
	_, srv := startServer(t)
	addr := srv.listener.Addr().String()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, 0x7f, nil); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusError {
		t.Fatalf("status = 0x%02x, want error", status)
	}
	r := &payloadReader{buf: payload}
	msg, err := r.string()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "unknown opcode") {
		t.Fatalf("message %q", msg)
	}
}

func TestMalformedPayloadRejected(t *testing.T) {
	_, srv := startServer(t)
	addr := srv.listener.Addr().String()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// OpMatch with garbage payload must produce a clean error frame, not
	// a hang or crash.
	if err := writeFrame(conn, OpMatch, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	status, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusError {
		t.Fatalf("status = 0x%02x, want error", status)
	}
}

func TestFrameCap(t *testing.T) {
	var sink deadWriter
	err := writeFrame(&sink, OpPing, make([]byte, maxFrame+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

type deadWriter struct{}

func (deadWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestPayloadRoundTrip(t *testing.T) {
	var w payloadWriter
	if err := w.string("hello"); err != nil {
		t.Fatal(err)
	}
	w.uint32(42)
	w.float64(3.25)
	w.bytes([]byte{9, 8})
	r := &payloadReader{buf: w.buf}
	if s, err := r.string(); err != nil || s != "hello" {
		t.Fatalf("string: %q %v", s, err)
	}
	if v, err := r.uint32(); err != nil || v != 42 {
		t.Fatalf("uint32: %d %v", v, err)
	}
	if f, err := r.float64(); err != nil || f != 3.25 {
		t.Fatalf("float64: %v %v", f, err)
	}
	if b, err := r.bytes(); err != nil || len(b) != 2 || b[0] != 9 {
		t.Fatalf("bytes: %v %v", b, err)
	}
	// Reading past the end fails cleanly.
	if _, err := r.uint32(); err == nil {
		t.Fatal("expected short-payload error")
	}
}

func TestServeBeforeListen(t *testing.T) {
	srv := NewServer(nil, nil)
	if err := srv.Serve(context.Background()); err == nil {
		t.Fatal("expected error")
	}
}

func TestServerCloseIdempotentShutdown(t *testing.T) {
	cli, srv := startServer(t)
	_ = cli.Ping(context.Background())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, client requests fail.
	if err := cli.Ping(context.Background()); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}

func TestClientRequestTimeout(t *testing.T) {
	// A server that accepts but never replies: the request must fail by
	// deadline rather than hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	cli, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetRequestTimeout(100 * time.Millisecond)
	start := time.Now()
	if err := cli.Ping(context.Background()); err == nil {
		t.Fatal("ping to mute server succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not bound the request")
	}
}

func TestIdentifyExStatsOverIndexedStore(t *testing.T) {
	store := gallery.New(nil)
	if err := store.EnableIndex(gallery.IndexOptions{
		Index:         index.Options{Fanout: 8},
		MinCandidates: 2,
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	tpls := testImpressions(t, 20, "D0", 0)
	probes := testImpressions(t, 20, "D0", 1)
	for i, tpl := range tpls {
		if err := cli.Enroll(context.Background(), fmt.Sprintf("subj-%02d", i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	cands, stats, err := cli.IdentifyEx(context.Background(), probes[4], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Indexed {
		t.Fatalf("indexed store did not serve from the shortlist: %+v", stats)
	}
	if stats.GallerySize != 20 || stats.Shortlist == 0 || stats.Scanned == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	if stats.Scanned >= stats.GallerySize {
		t.Fatalf("shortlist did not prune the gallery: %+v", stats)
	}
	if len(cands) != 1 || cands[0].ID != "subj-04" {
		t.Fatalf("indexed identification wrong: %+v", cands)
	}
}

func TestIdentifyExStatsOverPlainStore(t *testing.T) {
	cli, _ := startServer(t)
	tpls := testImpressions(t, 3, "D0", 0)
	probes := testImpressions(t, 3, "D0", 1)
	for i, tpl := range tpls {
		if err := cli.Enroll(context.Background(), fmt.Sprintf("p-%d", i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	cands, stats, err := cli.IdentifyEx(context.Background(), probes[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Indexed || stats.Shortlist != 0 {
		t.Fatalf("plain store reported an indexed search: %+v", stats)
	}
	if stats.GallerySize != 3 || stats.Scanned != 3 {
		t.Fatalf("exhaustive stats wrong: %+v", stats)
	}
	if len(cands) != 2 || cands[0].ID != "p-1" {
		t.Fatalf("identification wrong: %+v", cands)
	}
}

package matchsvc

import (
	"sync/atomic"
	"time"

	"fpinterop/internal/obs"
)

// framesOutstanding counts frameScratch buffers currently checked out
// of the pool — a live view of wire-path buffer pressure across every
// client and server in the process.
var framesOutstanding atomic.Int64

// opLabels maps opcodes to their metric label, indexed by opcode.
var opLabels = [OpHello + 1]string{
	OpPing:        "ping",
	OpMatch:       "match",
	OpEnroll:      "enroll",
	OpVerify:      "verify",
	OpIdentify:    "identify",
	OpRemove:      "remove",
	OpCount:       "count",
	OpIdentifyEx:  "identify_ex",
	OpEnrollBatch: "enroll_batch",
	OpScan:        "scan",
	OpHas:         "has",
	OpStats:       "stats",
	OpHello:       "hello",
}

// clientMetrics holds a client's handles, resolved once in SetMetrics.
type clientMetrics struct {
	inflight  *obs.Gauge     // matchsvc_client_inflight
	redials   *obs.Counter   // matchsvc_client_redials_total
	retries   *obs.Counter   // matchsvc_client_retries_total
	late      *obs.Counter   // matchsvc_client_late_responses_total
	reqBytes  *obs.Histogram // matchsvc_client_request_bytes
	respBytes *obs.Histogram // matchsvc_client_response_bytes
}

// SetMetrics registers the client's wire metrics — in-flight requests,
// transparent redials, and frame payload sizes — on reg. Call once,
// before concurrent use; a client without metrics pays one nil check
// per request.
func (c *Client) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &clientMetrics{
		inflight: reg.Gauge("matchsvc_client_inflight",
			"Requests currently holding the client connection."),
		redials: reg.Counter("matchsvc_client_redials_total",
			"Transparent reconnects after a transport failure."),
		retries: reg.Counter("matchsvc_client_retries_total",
			"Idempotent requests transparently retried after a transport failure."),
		late: reg.Counter("matchsvc_client_late_responses_total",
			"Multiplexed responses discarded because their caller had already given up."),
		reqBytes: reg.Histogram("matchsvc_client_request_bytes",
			"Request frame payload sizes in bytes.", obs.SizeBuckets()),
		respBytes: reg.Histogram("matchsvc_client_response_bytes",
			"Response frame payload sizes in bytes.", obs.SizeBuckets()),
	}
	c.mu.Lock()
	c.met = m
	c.mu.Unlock()
}

// serverMetrics holds a server's handles, with per-op counters and
// latency histograms pre-resolved into opcode-indexed arrays so the
// dispatch path never touches a label lookup.
type serverMetrics struct {
	conns      *obs.Gauge   // matchsvc_server_connections
	connsTotal *obs.Counter // matchsvc_server_connections_total
	inflight   *obs.Gauge   // matchsvc_server_inflight
	unknown    *obs.Counter // requests with an opcode outside the table
	requests   [len(opLabels)]*obs.Counter
	latency    [len(opLabels)]*obs.Histogram
}

// SetMetrics registers the server's wire metrics — connection and
// in-flight gauges, per-op request counters and latency histograms,
// and the process-wide frame-pool occupancy — on reg. Call before
// Serve.
func (s *Server) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &serverMetrics{
		conns: reg.Gauge("matchsvc_server_connections",
			"Currently open client connections."),
		connsTotal: reg.Counter("matchsvc_server_connections_total",
			"Client connections accepted."),
		inflight: reg.Gauge("matchsvc_server_inflight",
			"Requests currently being served."),
		unknown: reg.Counter("matchsvc_server_unknown_ops_total",
			"Requests carrying an opcode the server does not know."),
	}
	req := reg.CounterVec("matchsvc_server_requests_total",
		"Requests served, by opcode.", "op")
	lat := reg.HistogramVec("matchsvc_server_latency_ns",
		"Request dispatch latency in nanoseconds, by opcode.",
		obs.LatencyBuckets(), "op")
	for op, name := range opLabels {
		if name == "" {
			continue
		}
		m.requests[op] = req.With(name)
		m.latency[op] = lat.With(name)
	}
	reg.GaugeFunc("matchsvc_frame_pool_outstanding",
		"Frame scratch buffers currently checked out of the shared pool (process-wide).",
		framesOutstanding.Load)
	s.met = m
}

// observeOp records one dispatched request.
//
//fpvet:hotpath
func (m *serverMetrics) observeOp(op byte, t0 time.Time) {
	if int(op) < len(opLabels) && m.requests[op] != nil {
		m.requests[op].Inc()
		m.latency[op].ObserveSince(t0)
		return
	}
	m.unknown.Inc()
}

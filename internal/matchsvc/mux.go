package matchsvc

// The multiplexed connection. One wireConn carries many concurrent
// requests: callers seal their request under a fresh request ID, a
// single demux reader goroutine routes each response frame to the
// waiter that owns its ID, and a group-flushed buffered writer
// coalesces frames queued by concurrent callers into fewer syscalls.
// The mode is negotiated per connection (see OpHello): against a server
// predating the mux the same wireConn falls back to the serialized v1
// protocol under a per-call mutex, and the pool's other connections
// provide the parallelism instead.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// muxWriteTimeout bounds a single frame write on a multiplexed
// connection when the caller's context carries no tighter deadline: the
// write mutex is shared by every in-flight call, so one peer that stops
// draining must fail the connection rather than wedge the pool slot.
const muxWriteTimeout = 30 * time.Second

// errConnStale classifies a request that never reached the wire because
// its connection had already been retired (server idle drop, another
// caller's failure). The pool checks out a fresh connection and
// replays the request once — the transparent-redial behavior the
// serialized client had.
var errConnStale = fmt.Errorf("%w: connection retired before send", ErrTransport)

// errConnRetired retires a connection without a more specific cause
// (pool shutdown, a deadline yanked by another caller's cancellation).
// Unlike errConnStale it may reach calls whose request was already on
// the wire, so it is never replayed outside the Retry policy.
var errConnRetired = fmt.Errorf("%w: connection retired", ErrTransport)

// muxResult is one response frame routed to its waiter, or the
// connection-level failure that retired all waiters.
type muxResult struct {
	status byte
	body   []byte
	err    error
}

// wireConn is one pooled connection in either protocol mode.
type wireConn struct {
	nc net.Conn
	c  *Client

	// Negotiation runs once, driven by the first caller; nego flips
	// after the mode is known.
	negoOnce sync.Once
	negoErr  error
	nego     atomic.Bool
	muxed    bool

	// Legacy mode: one request at a time under lmu; recv and lhdr are
	// the per-connection scratch the serialized protocol reuses.
	lmu  sync.Mutex
	recv []byte
	lhdr [5]byte

	// Muxed mode: wmu serializes frame writes into bw; queued counts
	// writers waiting on wmu so the last one in a burst flushes for the
	// whole group.
	wmu    sync.Mutex
	bw     *bufio.Writer
	whdr   [muxFrameHdrSize]byte
	queued atomic.Int32

	// pmu guards the waiter table and death state.
	pmu     sync.Mutex
	pending map[uint64]chan muxResult
	dead    bool
	deadErr error
	nextID  atomic.Uint64

	// refs counts pool checkouts; lastUsed is the unixnano of the last
	// checkin, consulted by the keepalive loop.
	refs     atomic.Int32
	lastUsed atomic.Int64
}

func newWireConn(c *Client, nc net.Conn) *wireConn {
	w := &wireConn{nc: nc, c: c}
	w.touch()
	return w
}

func (w *wireConn) touch() { w.lastUsed.Store(time.Now().UnixNano()) }

func (w *wireConn) isDead() bool {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	return w.dead
}

// deadError is what a call that had not yet sent anything reports when
// it finds its connection already retired: always errConnStale, so the
// caller replays on a fresh connection regardless of idempotence.
func (w *wireConn) deadError() error {
	return errConnStale
}

// kill retires the connection with err: the socket closes (unblocking
// the demux reader and any in-flight I/O) and every pending waiter
// receives the error promptly. First failure wins.
func (w *wireConn) kill(err error) {
	w.pmu.Lock()
	if w.dead {
		w.pmu.Unlock()
		return
	}
	w.dead = true
	w.deadErr = err
	pend := w.pending
	w.pending = nil
	w.pmu.Unlock()
	w.nc.Close()
	for _, ch := range pend {
		ch <- muxResult{err: err}
	}
}

// close retires the connection without an error to report (pool
// shutdown or eviction of an already-dead conn).
func (w *wireConn) close() { w.kill(errConnRetired) }

// armDeadline applies the per-call connection deadline the serialized
// protocol uses: the context's deadline (padded so the watcher below
// always outruns it), else the client's fallback request timeout, else
// a cleared deadline. A cancellable context is watched for the duration
// of the call; cancellation yanks the deadline to interrupt blocked
// I/O. The returned disarm must run before the call returns — a watcher
// that already started may yank the deadline late, so the connection is
// retired rather than let a later request race it.
func (w *wireConn) armDeadline(ctx context.Context) (disarm func(), err error) {
	var deadline time.Time // zero clears any previous call's deadline
	if d, ok := ctx.Deadline(); ok {
		deadline = d.Add(10 * time.Millisecond)
	} else if t := w.c.requestTimeout(); t > 0 {
		deadline = time.Now().Add(t)
	}
	if err := w.nc.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("matchsvc: set deadline: %w", err)
	}
	if ctx.Done() == nil {
		return func() {}, nil
	}
	nc := w.nc
	stop := context.AfterFunc(ctx, func() { nc.SetDeadline(time.Now()) })
	return func() {
		if !stop() {
			w.kill(errConnRetired)
		}
	}, nil
}

// negotiate establishes the connection's protocol mode, driven by the
// first caller under its context; concurrent callers wait on the same
// handshake and share its outcome.
func (w *wireConn) negotiate(ctx context.Context) error {
	w.negoOnce.Do(func() {
		w.negoErr = w.doHello(ctx)
		w.nego.Store(true)
	})
	return w.negoErr
}

// negotiated reports whether the handshake has completed (the keepalive
// loop only pings connections whose mode is known).
func (w *wireConn) negotiated() bool { return w.nego.Load() }

// doHello performs the version handshake. StatusOK upgrades the
// connection to the mux and starts the demux reader; StatusError is an
// old server rejecting the opcode while keeping the connection open, so
// the wireConn speaks the serialized v1 protocol instead.
func (w *wireConn) doHello(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		w.kill(errConnRetired)
		return err
	}
	disarm, err := w.armDeadline(ctx)
	if err != nil {
		err = transportErr(err)
		w.kill(err)
		return err
	}
	defer disarm()
	fail := func(err error) error {
		err = transportErr(err)
		w.kill(err)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	var version [4]byte
	version[3] = protoMuxed
	if err := writeFrameHdr(w.nc, OpHello, version[:], &w.lhdr); err != nil {
		return fail(err)
	}
	status, resp, err := readFrameIntoHdr(w.nc, w.recv, &w.lhdr)
	if err != nil {
		return fail(fmt.Errorf("matchsvc: read hello response: %w", err))
	}
	if cap(resp) > cap(w.recv) {
		w.recv = resp[:0]
	}
	switch status {
	case StatusError:
		// Only two refusals legitimately carry StatusError: a server
		// predating OpHello rejecting the opcode (it keeps the
		// connection open), and a current server refusing the proposed
		// version. Anything else — e.g. a corrupted frame that happens
		// to parse as an error — must not steer this connection into
		// the checksum-free legacy mode; retire it and redial.
		r := payloadReader{buf: resp}
		msg, derr := r.string()
		if derr != nil || !(strings.Contains(msg, "unknown opcode 0x0d") ||
			strings.Contains(msg, "unsupported protocol version")) {
			return fail(fmt.Errorf("matchsvc: hello rejected unrecognizably: %q", msg))
		}
		// Speak the serialized v1 protocol on this connection.
		return nil
	case StatusOK:
		r := payloadReader{buf: resp}
		v, derr := r.uint32()
		if derr != nil || v != protoMuxed {
			return fail(fmt.Errorf("matchsvc: hello negotiated unusable version %d (%v)", v, derr))
		}
		// The demux reader owns the read side from here and blocks
		// freely between responses; per-call bounds move to each
		// waiter's context, so the handshake deadline must not linger.
		if err := w.nc.SetDeadline(time.Time{}); err != nil {
			return fail(fmt.Errorf("matchsvc: clear deadline: %w", err))
		}
		w.bw = bufio.NewWriterSize(w.nc, 32*1024)
		w.pmu.Lock()
		if w.dead {
			w.pmu.Unlock()
			return fail(errors.New("matchsvc: connection retired during handshake"))
		}
		w.muxed = true
		w.pending = make(map[uint64]chan muxResult)
		w.pmu.Unlock()
		go w.readLoop()
		return nil
	default:
		return fail(fmt.Errorf("matchsvc: unknown hello status 0x%02x", status))
	}
}

// readLoop is the demux reader: it routes each response frame to the
// waiter owning its request ID. Any framing, checksum, or unknown-ID
// violation retires the connection — every in-flight call then gets a
// prompt typed error and the pool replaces the conn on next checkout.
func (w *wireConn) readLoop() {
	var hdr [5]byte
	for {
		status, payload, err := readFrameIntoHdr(w.nc, nil, &hdr)
		if err != nil {
			w.kill(transportErr(fmt.Errorf("matchsvc: read response: %w", err)))
			return
		}
		id, body, err := openMuxEnvelope(status, payload)
		if err != nil {
			w.kill(transportErr(err))
			return
		}
		if id == 0 || id > w.nextID.Load() {
			// An ID this client never issued: the server (or something
			// between) is off the rails; nothing on this stream can be
			// trusted to be the answer to the right question.
			w.kill(transportErr(fmt.Errorf("matchsvc: response carries unknown request id %d", id)))
			return
		}
		w.pmu.Lock()
		ch := w.pending[id]
		delete(w.pending, id)
		w.pmu.Unlock()
		if ch == nil {
			// A late answer to an abandoned call. Routing by ID makes it
			// safely discardable — unlike the serialized protocol, the
			// connection survives.
			if m := w.c.metrics(); m != nil {
				m.late.Inc()
			}
			continue
		}
		if m := w.c.metrics(); m != nil {
			m.respBytes.Observe(int64(len(body)))
		}
		ch <- muxResult{status: status, body: body}
	}
}

// forget abandons a waiter (its caller gave up before the response).
func (w *wireConn) forget(id uint64) {
	w.pmu.Lock()
	delete(w.pending, id)
	w.pmu.Unlock()
}

// writeMux queues one sealed frame. Writes from concurrent callers
// serialize under wmu into the buffered writer; a writer with nobody
// queued behind it flushes for the whole burst, so depth-N traffic
// coalesces into far fewer syscalls than N. A write failure retires the
// connection — a partial frame may already be on the wire, after which
// nothing framed can follow it.
func (w *wireConn) writeMux(ctx context.Context, op byte, id uint64, body []byte) error {
	w.queued.Add(1)
	w.wmu.Lock()
	w.queued.Add(-1)
	defer w.wmu.Unlock()
	if w.isDead() {
		return w.deadError()
	}
	deadline := time.Now().Add(muxWriteTimeout)
	if d, ok := ctx.Deadline(); ok {
		if padded := d.Add(10 * time.Millisecond); padded.Before(deadline) {
			deadline = padded
		}
	}
	// SetWriteDeadline cannot disturb the demux reader, whose read side
	// is deadline-free.
	if err := w.nc.SetWriteDeadline(deadline); err != nil {
		err = transportErr(err)
		w.kill(err)
		return err
	}
	err := writeMuxFrame(w.bw, op, id, body, &w.whdr)
	if err == nil && w.queued.Load() == 0 {
		err = w.bw.Flush()
	}
	if err != nil {
		err = transportErr(err)
		w.kill(err)
		return err
	}
	return nil
}

// muxCall runs one request over the multiplexed connection: register a
// waiter, seal and send, then wait for the demux reader (or the
// caller's context, or the fallback request timeout). A caller that
// gives up deregisters its waiter and leaves the connection healthy —
// its late response is discarded by ID, which is precisely what the
// serialized protocol could not do.
func (w *wireConn) muxCall(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	id := w.nextID.Add(1)
	ch := make(chan muxResult, 1)
	w.pmu.Lock()
	if w.dead || w.pending == nil {
		w.pmu.Unlock()
		return w.deadError()
	}
	w.pending[id] = ch
	w.pmu.Unlock()
	if m := w.c.metrics(); m != nil {
		m.reqBytes.Observe(int64(len(payload)))
	}
	if err := w.writeMux(ctx, op, id, payload); err != nil {
		w.forget(id)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	var timerC <-chan time.Time
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		if t := w.c.requestTimeout(); t > 0 {
			timer := time.NewTimer(t)
			defer timer.Stop()
			timerC = timer.C
		}
	}
	select {
	case res := <-ch:
		if res.err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return res.err
		}
		return decodeResponse(res.status, res.body, decode)
	case <-ctx.Done():
		w.forget(id)
		return ctx.Err()
	case <-timerC:
		w.forget(id)
		return fmt.Errorf("matchsvc: request timed out after %v: %w", w.c.requestTimeout(), os.ErrDeadlineExceeded)
	}
}

// legacyCall runs one serialized v1 round trip under the per-connection
// mutex — the original client's protocol, kept for servers that predate
// the mux. Any transport failure (including a deadline expiry, whose
// late response must not be read as the answer to a later request)
// retires the connection; the pool replaces it on next checkout.
func (w *wireConn) legacyCall(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	w.lmu.Lock()
	defer w.lmu.Unlock()
	//fpvet:allow locksafe the v1 protocol is serialized per connection by design; the armed socket deadline bounds the hold
	return w.legacyCallLocked(ctx, op, payload, decode)
}

func (w *wireConn) legacyCallLocked(ctx context.Context, op byte, payload []byte, decode func(*payloadReader) error) error {
	if w.isDead() {
		return w.deadError()
	}
	m := w.c.metrics()
	if m != nil {
		m.reqBytes.Observe(int64(len(payload)))
	}
	disarm, err := w.armDeadline(ctx)
	if err != nil {
		err = transportErr(err)
		w.kill(err)
		return err
	}
	defer disarm()
	fail := func(err error) error {
		err = transportErr(err)
		w.kill(err)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	if err := writeFrameHdr(w.nc, op, payload, &w.lhdr); err != nil {
		return fail(err)
	}
	status, resp, err := readFrameIntoHdr(w.nc, w.recv, &w.lhdr)
	if err != nil {
		return fail(fmt.Errorf("matchsvc: read response: %w", err))
	}
	if m != nil {
		m.respBytes.Observe(int64(len(resp)))
	}
	if cap(resp) > cap(w.recv) {
		w.recv = resp[:0]
	}
	return decodeResponse(status, resp, decode)
}

// decodeResponse interprets a response's status and payload — shared by
// both protocol modes, so error shapes are identical across them.
func decodeResponse(status byte, resp []byte, decode func(*payloadReader) error) error {
	r := payloadReader{buf: resp}
	if status == StatusError {
		msg, err := r.string()
		if err != nil {
			msg = "(malformed error payload)"
		}
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	if status != StatusOK {
		return fmt.Errorf("matchsvc: unknown status 0x%02x", status)
	}
	if decode == nil {
		return nil
	}
	return decode(&r)
}

// keepalivePing best-effort pings the connection so a server's idle
// deadline does not silently kill a healthy pooled conn. A legacy
// connection that is mid-request is by definition not idle, so a
// contended mutex just skips the round.
func (w *wireConn) keepalivePing(ctx context.Context) {
	if !w.negotiated() || w.isDead() {
		return
	}
	if w.muxed {
		_ = w.muxCall(ctx, OpPing, nil, nil)
		w.touch()
		return
	}
	if !w.lmu.TryLock() {
		return
	}
	defer w.lmu.Unlock()
	_ = w.legacyCallLocked(ctx, OpPing, nil, nil)
	w.touch()
}

package matchsvc

// Error-path tests for the multiplexed client: scripted mux-speaking
// fake servers inject the precise wire violations (truncation, oversize
// frames, unknown request IDs, corrupt checksums, mid-flight closes)
// and the tests assert the client's contract — a prompt typed error for
// every in-flight call, and a pool that recovers on the next request.

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/obs"
)

// muxFake is a scripted multiplexed server: it accepts connections,
// answers the hello handshake with StatusOK/protoMuxed, then hands the
// raw connection to the script along with its 1-based accept number.
// The script owns the connection from there; returning closes it.
type muxFake struct {
	ln net.Listener
	wg sync.WaitGroup
}

func startMuxFake(t *testing.T, script func(conn net.Conn, nconn int)) *muxFake {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &muxFake{ln: ln}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for n := 1; ; n++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func(conn net.Conn, n int) {
				defer f.wg.Done()
				defer conn.Close()
				if err := muxFakeHandshake(conn); err != nil {
					return
				}
				script(conn, n)
			}(conn, n)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		f.wg.Wait()
	})
	return f
}

func (f *muxFake) addr() string { return f.ln.Addr().String() }

// muxFakeHandshake consumes the client's hello and accepts the mux.
func muxFakeHandshake(conn net.Conn) error {
	op, _, err := readFrame(conn)
	if err != nil {
		return err
	}
	if op != OpHello {
		return errors.New("expected hello")
	}
	var w payloadWriter
	w.uint32(protoMuxed)
	return writeFrame(conn, StatusOK, w.buf)
}

// readMuxReq reads and unseals one enveloped request frame.
func readMuxReq(conn net.Conn) (op byte, id uint64, body []byte, err error) {
	op, payload, err := readFrame(conn)
	if err != nil {
		return 0, 0, nil, err
	}
	id, body, err = openMuxEnvelope(op, payload)
	return op, id, body, err
}

// answerPings serves valid responses until the connection drops — the
// recovery half of every error-path script.
func answerPings(conn net.Conn) {
	var hdr [muxFrameHdrSize]byte
	for {
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		if err := writeMuxFrame(conn, StatusOK, id, nil, &hdr); err != nil {
			return
		}
	}
}

func dialMuxFake(t *testing.T, f *muxFake) *Client {
	t.Helper()
	c, err := Dial(f.addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetRequestTimeout(2 * time.Second)
	return c
}

// requireRecovers asserts the pool replaces the killed connection and
// the next request succeeds.
func requireRecovers(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
}

func TestMuxTruncatedResponseTypedErrorAndRecovery(t *testing.T) {
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		if nconn > 1 {
			answerPings(conn)
			return
		}
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		// Announce a 100-byte payload, deliver 10, and vanish.
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], 100)
		hdr[4] = StatusOK
		conn.Write(hdr[:])
		conn.Write(make([]byte, 10))
		_ = id
	})
	c := dialMuxFake(t, f)
	err := c.Ping(context.Background())
	if err == nil {
		t.Fatal("expected error from truncated response")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
	requireRecovers(t, c)
}

func TestMuxOversizeResponseTypedErrorAndRecovery(t *testing.T) {
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		if nconn > 1 {
			answerPings(conn)
			return
		}
		if _, _, _, err := readMuxReq(conn); err != nil {
			return
		}
		// A length prefix over the 1 MiB cap: the client must refuse it
		// before reading a byte of payload.
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
		hdr[4] = StatusOK
		conn.Write(hdr[:])
	})
	c := dialMuxFake(t, f)
	err := c.Ping(context.Background())
	if !errors.Is(err, ErrFrameTooLarge) || !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrFrameTooLarge wrapped in ErrTransport, got %v", err)
	}
	requireRecovers(t, c)
}

func TestMuxUnknownRequestIDKillsConnection(t *testing.T) {
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		if nconn > 1 {
			answerPings(conn)
			return
		}
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		// A well-formed response to a request this client never made.
		var hdr [muxFrameHdrSize]byte
		writeMuxFrame(conn, StatusOK, id+1000, nil, &hdr)
		answerPings(conn)
	})
	c := dialMuxFake(t, f)
	err := c.Ping(context.Background())
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "unknown request id") {
		t.Fatalf("error should name the unknown request id, got %v", err)
	}
	requireRecovers(t, c)
}

func TestMuxCorruptChecksumTypedErrorAndRecovery(t *testing.T) {
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		if nconn > 1 {
			answerPings(conn)
			return
		}
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		// A frame whose CRC does not cover its contents.
		var hdr [muxFrameHdrSize]byte
		binary.BigEndian.PutUint32(hdr[:4], muxEnvelopeSize)
		hdr[4] = StatusOK
		binary.BigEndian.PutUint64(hdr[5:13], id)
		binary.BigEndian.PutUint32(hdr[13:17], muxCRC(StatusOK, id, nil)^0xdeadbeef)
		conn.Write(hdr[:])
	})
	c := dialMuxFake(t, f)
	err := c.Ping(context.Background())
	if !errors.Is(err, ErrCorruptFrame) || !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrCorruptFrame wrapped in ErrTransport, got %v", err)
	}
	requireRecovers(t, c)
}

func TestMuxServerCloseFailsAllInFlightPromptly(t *testing.T) {
	const inFlight = 4
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		if nconn > 1 {
			answerPings(conn)
			return
		}
		// Collect the whole burst without answering, then hang up: every
		// waiter must get a typed error, not a timeout.
		for i := 0; i < inFlight; i++ {
			if _, _, _, err := readMuxReq(conn); err != nil {
				return
			}
		}
	})
	c := dialMuxFake(t, f)
	c.SetRequestTimeout(10 * time.Second) // errors must beat this by a mile
	errs := make(chan error, inFlight)
	start := time.Now()
	for i := 0; i < inFlight; i++ {
		go func() { errs <- c.Ping(context.Background()) }()
	}
	for i := 0; i < inFlight; i++ {
		err := <-errs
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("in-flight call %d: want ErrTransport, got %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("in-flight errors took %v; want prompt failure", elapsed)
	}
	c.SetRequestTimeout(2 * time.Second)
	requireRecovers(t, c)
}

func TestMuxLateResponseAfterTimeoutIsDiscarded(t *testing.T) {
	release := make(chan struct{})
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		var hdr [muxFrameHdrSize]byte
		// Hold the first request's answer until released, then serve
		// normally — the connection must survive the caller's timeout.
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		<-release
		writeMuxFrame(conn, StatusOK, id, nil, &hdr)
		answerPings(conn)
	})
	c := dialMuxFake(t, f)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	close(release)
	// The late answer is discarded by request ID and the same connection
	// keeps serving — no redial.
	requireRecovers(t, c)
	deadline := time.Now().Add(2 * time.Second)
	for c.metrics().late.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late-response counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.metrics().redials.Value(); got != 0 {
		t.Fatalf("late response should not cost a redial; redials = %d", got)
	}
}

// TestKeepaliveOutlivesServerIdleTimeout is the keepalive contract: a
// pooled connection left idle past the server's read deadline stays
// alive because the client pings it, so no redial is ever needed.
func TestKeepaliveOutlivesServerIdleTimeout(t *testing.T) {
	srv := NewServer(nil, nil)
	srv.SetIdleTimeout(150 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx) }()
	defer func() { srv.Close(); <-done }()

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetRequestTimeout(2 * time.Second)
	c.SetKeepalive(40 * time.Millisecond)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	// Several idle-timeout periods of client-side silence.
	time.Sleep(500 * time.Millisecond)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after idle period: %v", err)
	}
	if got := c.metrics().redials.Value(); got != 0 {
		t.Fatalf("keepalive should have kept the connection alive; redials = %d", got)
	}
}

// TestKeepaliveDisabledConnectionIdlesOut is the control for the test
// above: with keepalives off, the server's idle deadline drops the
// connection and the next request transparently redials.
func TestKeepaliveDisabledConnectionIdlesOut(t *testing.T) {
	srv := NewServer(nil, nil)
	srv.SetIdleTimeout(100 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx) }()
	defer func() { srv.Close(); <-done }()

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetRequestTimeout(2 * time.Second)
	c.SetKeepalive(0)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after idle period: %v", err)
	}
	if got := c.metrics().redials.Value(); got == 0 {
		t.Fatal("without keepalive the idle drop should have forced a redial")
	}
}

// TestMuxUnknownOpcodeStatusError is the multiplexed twin of the legacy
// unknown-opcode test: the server answers a status error naming the
// opcode, counts it, and keeps the connection serving.
func TestMuxUnknownOpcodeStatusError(t *testing.T) {
	srv := NewServer(nil, nil)
	sreg := obs.NewRegistry()
	srv.SetMetrics(sreg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx) }()
	defer func() { srv.Close(); <-done }()

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetRequestTimeout(2 * time.Second)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("negotiating ping: %v", err)
	}
	err = c.do(context.Background(), 0x7f, nil, nil, false)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote for unknown opcode, got %v", err)
	}
	if !strings.Contains(err.Error(), "unknown opcode") {
		t.Fatalf("error should name the unknown opcode, got %v", err)
	}
	// The status error came back on the same live connection.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after unknown opcode: %v", err)
	}
	if got := c.metrics().redials.Value(); got != 0 {
		t.Fatalf("unknown opcode must not cost the connection; redials = %d", got)
	}
	if got := srv.met.unknown.Value(); got != 1 {
		t.Fatalf("server unknown-op counter = %d, want 1", got)
	}
}

// TestMuxFallbackTimeoutDoesNotKillConnection: a request that hits the
// client's fallback request timeout (no context deadline) gets a typed
// deadline error and the connection survives for later requests.
func TestMuxFallbackTimeoutTyped(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	f := startMuxFake(t, func(conn net.Conn, nconn int) {
		var hdr [muxFrameHdrSize]byte
		_, id, _, err := readMuxReq(conn)
		if err != nil {
			return
		}
		<-release
		writeMuxFrame(conn, StatusOK, id, nil, &hdr)
		answerPings(conn)
	})
	c := dialMuxFake(t, f)
	c.SetRequestTimeout(60 * time.Millisecond)
	err := c.Ping(context.Background())
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want os.ErrDeadlineExceeded from fallback timeout, got %v", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("a timeout is not a retryable transport failure: %v", err)
	}
}

package matchsvc

// The connection pool. Calls check a connection out for the duration of
// one request and check it back in; checkout prefers an idle live
// connection, dials into a free slot when every live conn is busy, and
// shares the least-loaded conn once the pool is at size. Dead
// connections (demux reader saw EOF, a call hit a transport failure)
// are evicted at checkout, which is where the serialized client's
// transparent-redial behavior now lives.

import (
	"context"
	"sync"
)

type poolSlot struct {
	conn    *wireConn // nil while empty or dialing
	dialing bool
}

type pool struct {
	c *Client

	mu     sync.Mutex
	slots  []*poolSlot
	closed bool
	// installed is closed and replaced whenever a slot changes state, so
	// checkouts blocked on an in-progress dial re-evaluate.
	installed chan struct{}
	// everDialed distinguishes the constructor's seeded connection from
	// later dials, which count as redials in the metrics.
	everDialed bool
}

func newPool(c *Client, size int) *pool {
	if size < 1 {
		size = 1
	}
	p := &pool{c: c, installed: make(chan struct{})}
	p.slots = make([]*poolSlot, size)
	for i := range p.slots {
		p.slots[i] = &poolSlot{}
	}
	return p
}

// seed installs the constructor's eagerly-dialed connection.
func (p *pool) seed(w *wireConn) {
	p.mu.Lock()
	p.slots[0].conn = w
	p.everDialed = true
	p.mu.Unlock()
}

// resize grows or shrinks the pool's slot count. Shrinking closes the
// surplus connections; calls holding one finish with a transport error
// and the stale-conn replay picks up a surviving slot.
func (p *pool) resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	for len(p.slots) > n {
		s := p.slots[len(p.slots)-1]
		p.slots = p.slots[:len(p.slots)-1]
		if s.conn != nil {
			s.conn.close()
		}
	}
	for len(p.slots) < n {
		p.slots = append(p.slots, &poolSlot{})
	}
	p.broadcast()
	p.mu.Unlock()
}

func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}

// broadcast wakes checkouts waiting on a dial; callers hold p.mu.
func (p *pool) broadcast() {
	close(p.installed)
	p.installed = make(chan struct{})
}

// checkout returns a connection with its ref count raised; every
// checkout must be paired with a checkin on all paths.
func (p *pool) checkout(ctx context.Context) (*wireConn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		var best *wireConn
		var bestRefs int32
		free := -1
		dialing := false
		for i, s := range p.slots {
			if s.conn != nil && s.conn.isDead() {
				s.conn.close()
				s.conn = nil
			}
			if s.conn == nil {
				if s.dialing {
					dialing = true
				} else if free < 0 {
					free = i
				}
				continue
			}
			if r := s.conn.refs.Load(); best == nil || r < bestRefs {
				best, bestRefs = s.conn, r
			}
		}
		if best != nil && (bestRefs == 0 || free < 0) {
			best.refs.Add(1)
			p.mu.Unlock()
			return best, nil
		}
		if free >= 0 {
			s := p.slots[free]
			s.dialing = true
			redial := p.everDialed
			p.everDialed = true
			p.mu.Unlock()
			nc, err := p.c.dialRaw(ctx)
			p.mu.Lock()
			s.dialing = false
			if err != nil {
				p.broadcast()
				p.mu.Unlock()
				return nil, err
			}
			if p.closed || !p.holds(s) {
				p.broadcast()
				p.mu.Unlock()
				nc.Close()
				return nil, ErrClosed
			}
			w := newWireConn(p.c, nc)
			w.refs.Add(1)
			s.conn = w
			if redial {
				if m := p.c.metrics(); m != nil {
					m.redials.Inc()
				}
			}
			p.broadcast()
			p.mu.Unlock()
			return w, nil
		}
		if best != nil {
			// Pool at size, everything busy: share the least-loaded
			// connection — the mux makes that safe.
			best.refs.Add(1)
			p.mu.Unlock()
			return best, nil
		}
		if !dialing {
			// No live conn, no free slot, no dial in flight: resize shrank
			// the pool out from under us; re-evaluate immediately.
			p.mu.Unlock()
			continue
		}
		ch := p.installed
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// holds reports whether s is still one of the pool's slots (a resize
// may have dropped it while its dial was in flight); callers hold p.mu.
func (p *pool) holds(s *poolSlot) bool {
	for _, have := range p.slots {
		if have == s {
			return true
		}
	}
	return false
}

// checkin releases a checkout.
func (p *pool) checkin(w *wireConn) {
	if w == nil {
		return
	}
	w.refs.Add(-1)
	w.touch()
}

// snapshot returns the live connections for the keepalive loop.
func (p *pool) snapshot() []*wireConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*wireConn, 0, len(p.slots))
	for _, s := range p.slots {
		if s.conn != nil {
			out = append(out, s.conn)
		}
	}
	return out
}

func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]*wireConn, 0, len(p.slots))
	for _, s := range p.slots {
		if s.conn != nil {
			conns = append(conns, s.conn)
			s.conn = nil
		}
	}
	p.broadcast()
	p.mu.Unlock()
	for _, w := range conns {
		w.close()
	}
}

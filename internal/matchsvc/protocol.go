// Package matchsvc implements a networked fingerprint matching service:
// a TCP server fronting a central enrollment gallery, and a client
// library for edge capture stations. This is the deployment architecture
// the paper's discussion section asks about — heterogeneous sensors at
// the edge, one central matcher and gallery — so the interoperability
// effects quantified by the study surface as service-level error rates.
//
// The wire protocol is deliberately simple and self-contained: each
// message is a frame
//
//	uint32  payload length (big endian, excluding these 5 bytes)
//	uint8   opcode (request) or status (response)
//	bytes   payload
//
// Payload strings are uint16-length-prefixed UTF-8; templates use the
// minutiae binary codec. Frames are capped at 1 MiB.
package matchsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fpinterop/internal/minutiae"
)

// Opcodes for requests.
const (
	// OpPing checks liveness.
	OpPing = 0x01
	// OpMatch compares two templates carried in the request.
	OpMatch = 0x02
	// OpEnroll adds a template to the gallery under an ID.
	OpEnroll = 0x03
	// OpVerify compares a probe against one enrollment (1:1).
	OpVerify = 0x04
	// OpIdentify searches a probe against the whole gallery (1:N).
	OpIdentify = 0x05
	// OpRemove deletes an enrollment.
	OpRemove = 0x06
	// OpCount returns the number of enrollments.
	OpCount = 0x07
	// OpIdentifyEx is OpIdentify plus retrieval statistics in the
	// response (gallery size, index shortlist size, matcher scans, and
	// whether the indexed path served the search).
	OpIdentifyEx = 0x08
	// OpEnrollBatch adds many templates in one round trip: uint32 count,
	// then per item (id, device id, template). The response carries the
	// number enrolled. Enrollment is sequential and not atomic — on
	// failure the server reports an error after having enrolled the
	// items preceding the failing one.
	OpEnrollBatch = 0x09
)

// Response status codes.
const (
	// StatusOK carries a successful result payload.
	StatusOK = 0x00
	// StatusError carries an error string payload.
	StatusError = 0x01
)

// maxFrame bounds a frame payload (1 MiB — a template is ≤ ~32 KiB).
const maxFrame = 1 << 20

var (
	// ErrFrameTooLarge reports an oversized frame.
	ErrFrameTooLarge = errors.New("matchsvc: frame exceeds 1 MiB cap")
	// ErrRemote wraps a server-reported error on the client side.
	ErrRemote = errors.New("matchsvc: remote error")
)

// writeFrame emits one frame.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("matchsvc: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("matchsvc: write payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("matchsvc: read payload: %w", err)
	}
	return hdr[4], payload, nil
}

// payloadWriter accumulates a request/response payload.
type payloadWriter struct {
	buf []byte
}

func (p *payloadWriter) string(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("matchsvc: string of %d bytes too long", len(s))
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	p.buf = append(p.buf, l[:]...)
	p.buf = append(p.buf, s...)
	return nil
}

func (p *payloadWriter) bytes(b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	p.buf = append(p.buf, l[:]...)
	p.buf = append(p.buf, b...)
}

func (p *payloadWriter) template(t *minutiae.Template) error {
	data, err := minutiae.Marshal(t)
	if err != nil {
		return err
	}
	p.bytes(data)
	return nil
}

func (p *payloadWriter) uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	p.buf = append(p.buf, b[:]...)
}

func (p *payloadWriter) float64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	p.buf = append(p.buf, b[:]...)
}

// payloadReader consumes a payload.
type payloadReader struct {
	buf []byte
	off int
}

var errShortPayload = errors.New("matchsvc: short payload")

func (p *payloadReader) take(n int) ([]byte, error) {
	if p.off+n > len(p.buf) {
		return nil, errShortPayload
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *payloadReader) string() (string, error) {
	l, err := p.take(2)
	if err != nil {
		return "", err
	}
	b, err := p.take(int(binary.BigEndian.Uint16(l)))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (p *payloadReader) bytes() ([]byte, error) {
	l, err := p.take(4)
	if err != nil {
		return nil, err
	}
	return p.take(int(binary.BigEndian.Uint32(l)))
}

func (p *payloadReader) template() (*minutiae.Template, error) {
	data, err := p.bytes()
	if err != nil {
		return nil, err
	}
	return minutiae.Unmarshal(data)
}

func (p *payloadReader) uint32() (uint32, error) {
	b, err := p.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (p *payloadReader) float64() (float64, error) {
	b, err := p.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

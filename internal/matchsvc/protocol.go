// Package matchsvc implements a networked fingerprint matching service:
// a TCP server fronting a central enrollment gallery, and a client
// library for edge capture stations. This is the deployment architecture
// the paper's discussion section asks about — heterogeneous sensors at
// the edge, one central matcher and gallery — so the interoperability
// effects quantified by the study surface as service-level error rates.
//
// The wire protocol is deliberately simple and self-contained: each
// message is a frame
//
//	uint32  payload length (big endian, excluding these 5 bytes)
//	uint8   opcode (request) or status (response)
//	bytes   payload
//
// Payload strings are uint16-length-prefixed UTF-8; templates use the
// minutiae binary codec. Frames are capped at 1 MiB.
package matchsvc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"fpinterop/internal/minutiae"
)

// Opcodes for requests.
const (
	// OpPing checks liveness.
	OpPing = 0x01
	// OpMatch compares two templates carried in the request.
	OpMatch = 0x02
	// OpEnroll adds a template to the gallery under an ID.
	OpEnroll = 0x03
	// OpVerify compares a probe against one enrollment (1:1).
	OpVerify = 0x04
	// OpIdentify searches a probe against the whole gallery (1:N).
	OpIdentify = 0x05
	// OpRemove deletes an enrollment.
	OpRemove = 0x06
	// OpCount returns the number of enrollments.
	OpCount = 0x07
	// OpIdentifyEx is OpIdentify plus retrieval statistics in the
	// response (gallery size, index shortlist size, matcher scans, and
	// whether the indexed path served the search).
	OpIdentifyEx = 0x08
	// OpEnrollBatch adds many templates in one round trip: uint32 count,
	// then per item (id, device id, template). The response carries the
	// number enrolled. Enrollment is sequential and not atomic — on
	// failure the server reports an error after having enrolled the
	// items preceding the failing one.
	OpEnrollBatch = 0x09
	// OpScan pages through enrollments in ID order for shard migration:
	// the request carries a cursor (exclusive lower bound on ID) and a
	// uint32 max. The response holds uint32 count then per item (id,
	// device id, template); the server may return fewer than max to
	// respect the frame cap, and an empty page means the scan is done.
	OpScan = 0x0A
	// OpHas asks whether an ID is enrolled: string id in, uint32 0/1
	// out. Routers use it as the duplicate guard on keys whose
	// ownership is mid-migration.
	OpHas = 0x0B
	// OpStats returns a service-level summary (see ServiceStats): uint32
	// enrollments, uint32 shards, uint32 degraded-shard count then that
	// many strings, uint32 indexed 0/1, uint32 has-WAL 0/1 and, when
	// set, uint32 snapshot entries, uint32 replayed, uint64 truncated
	// bytes, uint32 torn tails, uint64 log bytes. Servers without a
	// stats source answer from their gallery alone.
	OpStats = 0x0C
	// OpHello negotiates the protocol version for a connection: the
	// client sends uint32 version; a multiplexing-capable server answers
	// StatusOK with the uint32 version it accepts, after which every
	// frame on the connection carries the mux envelope (request ID +
	// CRC). A server predating OpHello answers its usual unknown-opcode
	// StatusError and keeps the connection open, which the client takes
	// as "speak the serialized v1 protocol" — so new clients work
	// against old servers without configuration.
	OpHello = 0x0D
	// OpSyncSnapshot ships one chunk of a consistent WAL snapshot to a
	// catching-up replica: the request carries uint64 resumeLSN (0 asks
	// the server to capture fresh state), uint64 offset, uint32 max
	// bytes; the response carries uint64 snapshot LSN, uint64 total
	// stream size, then the chunk bytes. A non-zero resumeLSN pins the
	// transfer to one capture so every chunk comes from the same
	// immutable byte stream; when that capture is gone the server
	// answers an error and the replica restarts at resumeLSN 0. Only
	// WAL-backed servers implement it.
	OpSyncSnapshot = 0x0E
	// OpSyncTail streams WAL records above an LSN: the request carries
	// uint64 afterLSN and uint32 max body bytes; the response carries
	// uint64 primary LSN, uint32 flags (bit 0 = tail truncated by
	// compaction — restart from a snapshot), uint32 count, then per
	// record uint64 LSN, uint8 op, string id and, for enrolls, string
	// device id plus template bytes. The server may return fewer
	// records than the budget allows to respect the frame cap; an empty
	// un-truncated page means the replica has caught up to the primary
	// LSN. Only WAL-backed servers implement it.
	OpSyncTail = 0x0F
)

// Protocol versions negotiated by OpHello.
const (
	// protoLegacy is the original one-request-at-a-time protocol: bare
	// frames, responses in request order.
	protoLegacy = 1
	// protoMuxed adds the mux envelope to every post-hello frame, so
	// responses may return out of order and one connection carries many
	// concurrent requests.
	protoMuxed = 2
)

// Response status codes.
const (
	// StatusOK carries a successful result payload.
	StatusOK = 0x00
	// StatusError carries an error string payload.
	StatusError = 0x01
)

// maxFrame bounds a frame payload (1 MiB — a template is ≤ ~32 KiB).
const maxFrame = 1 << 20

// scanBudget leaves headroom under the frame cap for a scan response's
// count prefix and per-item framing.
const scanBudget = maxFrame - 4096

var (
	// ErrFrameTooLarge reports an oversized frame.
	ErrFrameTooLarge = errors.New("matchsvc: frame exceeds 1 MiB cap")
	// ErrRemote wraps a server-reported error on the client side.
	ErrRemote = errors.New("matchsvc: remote error")
	// ErrTransport classifies connection-level failures — dial errors,
	// torn or truncated frames, resets, corrupt envelopes — as distinct
	// from server-reported errors (ErrRemote) and caller cancellation.
	// Only transport failures are safe to retry, and only for
	// idempotent operations (see Retry).
	ErrTransport = errors.New("matchsvc: transport failure")
	// ErrCorruptFrame reports a mux frame whose CRC does not cover its
	// contents: bytes were damaged in transit, so the connection cannot
	// be trusted and is retired.
	ErrCorruptFrame = errors.New("matchsvc: corrupt frame")
	// ErrClosed reports a request on a client after Close.
	ErrClosed = errors.New("matchsvc: client closed")
)

// transportErr classifies err as a retryable transport failure. Context
// errors pass through unchanged: cancellation is the caller's decision,
// never retried.
func transportErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrTransport) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrTransport, err)
}

// The mux envelope prefixes every post-hello frame payload:
//
//	uint64  request ID (client-assigned, echoed by the response)
//	uint32  CRC-32C over the request ID bytes and the body
//	bytes   body (the v1 payload, unchanged)
//
// The CRC is what lets the fault-injection suite promise "zero acked
// operations mis-answered": a flipped byte anywhere in the envelope or
// body fails the checksum instead of decoding into a plausible wrong
// answer, and a flipped length prefix desynchronizes framing into a
// torn-frame error. Either way the connection is retired and in-flight
// calls get typed errors.
const muxEnvelopeSize = 12

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64), matching the WAL's record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// muxCRC checksums a frame's opcode (or status), request ID, and body
// exactly as sealed on the wire. Covering the op byte matters: a
// corrupted opcode with an intact envelope would dispatch the wrong
// operation yet answer the right request ID — a mis-answer no caller
// could detect.
//
//fpvet:hotpath
func muxCRC(op byte, id uint64, body []byte) uint32 {
	var pre [9]byte
	pre[0] = op
	binary.BigEndian.PutUint64(pre[1:], id)
	return crc32.Update(crc32.Update(0, crcTable, pre[:]), crcTable, body)
}

// muxFrameHdrSize is the on-wire prefix of a mux frame: the 5-byte
// frame header plus the 12-byte envelope.
const muxFrameHdrSize = 5 + muxEnvelopeSize

// writeMuxFrame emits one enveloped frame: header and envelope are
// assembled in the caller's scratch so the whole prefix leaves in one
// Write (into the connection's buffered writer), then the body.
//
//fpvet:hotpath
func writeMuxFrame(w io.Writer, op byte, id uint64, body []byte, hdr *[muxFrameHdrSize]byte) error {
	if len(body)+muxEnvelopeSize > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+muxEnvelopeSize))
	hdr[4] = op
	binary.BigEndian.PutUint64(hdr[5:13], id)
	binary.BigEndian.PutUint32(hdr[13:17], muxCRC(op, id, body))
	if _, err := w.Write(hdr[:]); err != nil {
		// Returned raw: the (non-hot) callers add context and classify
		// it as a transport failure.
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// openMuxEnvelope validates and splits an enveloped payload arriving
// under op. The body aliases payload.
func openMuxEnvelope(op byte, payload []byte) (id uint64, body []byte, err error) {
	if len(payload) < muxEnvelopeSize {
		return 0, nil, fmt.Errorf("%w: %d-byte payload below envelope size", ErrCorruptFrame, len(payload))
	}
	id = binary.BigEndian.Uint64(payload[:8])
	crc := binary.BigEndian.Uint32(payload[8:12])
	body = payload[muxEnvelopeSize:]
	if got := muxCRC(op, id, body); got != crc {
		return 0, nil, fmt.Errorf("%w: crc %08x, want %08x", ErrCorruptFrame, got, crc)
	}
	return id, body, nil
}

// writeFrame emits one frame.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [5]byte
	return writeFrameHdr(w, op, payload, &hdr)
}

// writeFrameHdr is writeFrame building the header in the caller's
// buffer: a local header array escapes through the io.Writer call, so
// steady-state transports (the client under its mutex, the server's
// per-connection scratch) pass a long-lived buffer to stay off the
// heap.
func writeFrameHdr(w io.Writer, op byte, payload []byte, hdr *[5]byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("matchsvc: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("matchsvc: write payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame into a fresh buffer.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one frame, reusing buf's backing array when it is
// large enough. The returned payload aliases the (possibly grown)
// buffer; callers own its lifecycle.
func readFrameInto(r io.Reader, buf []byte) (op byte, payload []byte, err error) {
	var hdr [5]byte
	return readFrameIntoHdr(r, buf, &hdr)
}

// readFrameIntoHdr is readFrameInto with a caller-owned header buffer
// (see writeFrameHdr).
func readFrameIntoHdr(r io.Reader, buf []byte, hdr *[5]byte) (op byte, payload []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("matchsvc: read payload: %w", err)
	}
	return hdr[4], payload, nil
}

// frameScratch recycles the per-RPC frame state — an inbound payload
// buffer and an outbound payload writer — so steady-state request
// handling and request building stop allocating per message. Servers
// hold one per connection; clients borrow one per request.
type frameScratch struct {
	in  []byte
	w   payloadWriter
	hdr [5]byte // frame header scratch for writeFrameHdr/readFrameIntoHdr
}

var framePool = sync.Pool{New: func() any { return new(frameScratch) }}

// acquireFrameScratch returns a scratch with an empty writer.
func acquireFrameScratch() *frameScratch {
	framesOutstanding.Add(1)
	fs := framePool.Get().(*frameScratch)
	fs.w.buf = fs.w.buf[:0]
	return fs
}

// keep retains a (possibly regrown) inbound payload buffer for reuse.
func (fs *frameScratch) keep(payload []byte) {
	if cap(payload) > cap(fs.in) {
		fs.in = payload[:0]
	}
}

func releaseFrameScratch(fs *frameScratch) {
	framesOutstanding.Add(-1)
	framePool.Put(fs)
}

// payloadWriter accumulates a request/response payload. The numeric
// and raw-bytes appenders are hot-path (//fpvet:hotpath): with a
// pooled frameScratch they reuse the retained buffer and stay off the
// heap; only string (conversion) and template (marshal) allocate by
// design.
type payloadWriter struct {
	buf []byte
}

func (p *payloadWriter) string(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("matchsvc: string of %d bytes too long", len(s))
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	p.buf = append(p.buf, l[:]...)
	p.buf = append(p.buf, s...)
	return nil
}

//fpvet:hotpath
func (p *payloadWriter) bytes(b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	p.buf = append(p.buf, l[:]...)
	p.buf = append(p.buf, b...)
}

func (p *payloadWriter) template(t *minutiae.Template) error {
	data, err := minutiae.Marshal(t)
	if err != nil {
		return err
	}
	p.bytes(data)
	return nil
}

//fpvet:hotpath
func (p *payloadWriter) uint32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	p.buf = append(p.buf, b[:]...)
}

//fpvet:hotpath
func (p *payloadWriter) uint64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	p.buf = append(p.buf, b[:]...)
}

//fpvet:hotpath
func (p *payloadWriter) float64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	p.buf = append(p.buf, b[:]...)
}

// payloadReader consumes a payload.
type payloadReader struct {
	buf []byte
	off int
}

var errShortPayload = errors.New("matchsvc: short payload")

//fpvet:hotpath
func (p *payloadReader) take(n int) ([]byte, error) {
	if p.off+n > len(p.buf) {
		return nil, errShortPayload
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b, nil
}

func (p *payloadReader) string() (string, error) {
	l, err := p.take(2)
	if err != nil {
		return "", err
	}
	b, err := p.take(int(binary.BigEndian.Uint16(l)))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

//fpvet:hotpath
func (p *payloadReader) bytes() ([]byte, error) {
	l, err := p.take(4)
	if err != nil {
		return nil, err
	}
	return p.take(int(binary.BigEndian.Uint32(l)))
}

func (p *payloadReader) template() (*minutiae.Template, error) {
	data, err := p.bytes()
	if err != nil {
		return nil, err
	}
	return minutiae.Unmarshal(data)
}

//fpvet:hotpath
func (p *payloadReader) uint32() (uint32, error) {
	b, err := p.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

//fpvet:hotpath
func (p *payloadReader) uint64() (uint64, error) {
	b, err := p.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

//fpvet:hotpath
func (p *payloadReader) float64() (float64, error) {
	b, err := p.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

//go:build !race

package matchsvc

// raceEnabled reports whether the race detector instruments this
// build. AllocsPerRun assertions are skipped under the detector: its
// instrumentation allocates on paths that are allocation-free in
// production builds.
const raceEnabled = false

package matchsvc

// Wire-level tests for the replica sync ops: chunked snapshot
// transfer, tail paging, and the capability refusal on servers with no
// WAL behind them.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/wal"
)

// startServerOn is startServer over a caller-provided backend.
func startServerOn(t *testing.T, store Gallery) (*Client, *Server) {
	t.Helper()
	srv := NewServer(store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	cli, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

func TestSyncSnapshotChunkedTransfer(t *testing.T) {
	ws, err := wal.Open(t.TempDir(), gallery.New(nil), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	cli, _ := startServerOn(t, ws)
	ctx := context.Background()
	tpls := testImpressions(t, 6, "D0", 0)
	for i, tpl := range tpls {
		if err := cli.Enroll(ctx, fmt6(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}

	// Pull the stream in deliberately tiny chunks so the resume path
	// (same LSN on every chunk, same bytes as one straight read) is
	// exercised over the wire.
	first, err := cli.SyncSnapshot(ctx, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if first.LSN != ws.LSN() {
		t.Fatalf("capture lsn %d, primary at %d", first.LSN, ws.LSN())
	}
	var stream []byte
	stream = append(stream, first.Data...)
	for int64(len(stream)) < first.Total {
		chunk, err := cli.SyncSnapshot(ctx, first.LSN, int64(len(stream)), 512)
		if err != nil {
			t.Fatal(err)
		}
		if chunk.LSN != first.LSN || chunk.Total != first.Total {
			t.Fatalf("chunk identity drifted: lsn %d/%d total %d/%d",
				chunk.LSN, first.LSN, chunk.Total, first.Total)
		}
		if len(chunk.Data) == 0 {
			t.Fatal("empty chunk before the stream completed")
		}
		stream = append(stream, chunk.Data...)
	}
	lsn, entries, err := wal.DecodeSnapshot(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != first.LSN {
		t.Fatalf("decoded lsn %d, want %d", lsn, first.LSN)
	}
	if len(entries) != len(tpls) {
		t.Fatalf("snapshot carries %d entries, want %d", len(entries), len(tpls))
	}

	// A resume for an unknown capture surfaces the expiry as a remote
	// error the follower can recognize by restarting at LSN 0.
	if _, err := cli.SyncSnapshot(ctx, first.LSN+99, 0, 512); !errors.Is(err, ErrRemote) {
		t.Fatalf("stale resume: err = %v, want ErrRemote", err)
	}
}

func TestSyncTailOverWire(t *testing.T) {
	ws, err := wal.Open(t.TempDir(), gallery.New(nil), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	cli, _ := startServerOn(t, ws)
	ctx := context.Background()
	tpls := testImpressions(t, 5, "D0", 0)
	for i, tpl := range tpls {
		if err := cli.Enroll(ctx, fmt6(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Remove(ctx, fmt6(1)); err != nil {
		t.Fatal(err)
	}

	// Page the whole history through a replica gallery with a 1-byte
	// budget: one record per page, every boundary crossed on the wire.
	replica := gallery.New(nil)
	var after uint64
	for {
		page, err := cli.SyncTail(ctx, after, 1)
		if err != nil {
			t.Fatal(err)
		}
		if page.Truncated {
			t.Fatal("truncated tail on an uncompacted log")
		}
		if len(page.Records) == 0 {
			if page.PrimaryLSN != ws.LSN() {
				t.Fatalf("primary lsn %d, want %d", page.PrimaryLSN, ws.LSN())
			}
			break
		}
		for _, rec := range page.Records {
			if rec.LSN <= after {
				t.Fatalf("record lsn %d not above cursor %d", rec.LSN, after)
			}
			after = rec.LSN
			if err := wal.ApplyRecord(replica, rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, want := replica.Scan("", 1<<20), ws.Scan("", 1<<20)
	if len(got) != len(want) {
		t.Fatalf("replica holds %d entries, primary %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("entry %d: %q vs %q", i, got[i].ID, want[i].ID)
		}
	}

	// After compaction, a cursor below the compaction LSN is told to
	// restart instead of being fed a gap.
	if err := ws.Compact(); err != nil {
		t.Fatal(err)
	}
	page, err := cli.SyncTail(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !page.Truncated {
		t.Fatal("pre-compaction cursor not flagged truncated")
	}
}

func TestSyncRefusedWithoutWAL(t *testing.T) {
	cli, _ := startServerOn(t, gallery.New(nil))
	ctx := context.Background()
	if _, err := cli.SyncSnapshot(ctx, 0, 0, 0); !errors.Is(err, ErrRemote) ||
		!strings.Contains(err.Error(), "replica sync") {
		t.Fatalf("snapshot on plain store: %v", err)
	}
	if _, err := cli.SyncTail(ctx, 0, 0); !errors.Is(err, ErrRemote) ||
		!strings.Contains(err.Error(), "replica sync") {
		t.Fatalf("tail on plain store: %v", err)
	}
}

func fmt6(i int) string {
	return "subject-" + string(rune('a'+i))
}

package matchsvc

// The retry policy. Only transport-class failures (errors.Is ErrTransport:
// dial errors, torn frames, connections retired by the server's idle
// deadline) are retried, and only for idempotent operations — the
// server answered nothing, or the answer was lost, so re-asking cannot
// double-apply. A remote error (ErrRemote), a context cancellation, or
// the fallback request timeout is the answer and is never retried.
// Retries are off by default; enable with SetRetry.

import (
	"context"
	"time"
)

// Retry configures transparent retries of idempotent operations
// (Ping, Verify, Identify, Has, Scan, Count, ServiceStats) after
// transport failures.
type Retry struct {
	// Attempts is the total number of tries, including the first;
	// values below 2 disable retries.
	Attempts int
	// BaseDelay seeds the capped exponential backoff before the second
	// attempt; 0 means 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 500ms.
	MaxDelay time.Duration
}

func (r Retry) enabled() bool { return r.Attempts > 1 }

// delay returns the jittered backoff before the given retry (1 is the
// first retry). jitter is uniform in [0,1) and spreads the delay over
// [d/2, d] so synchronized clients desynchronize.
func (r Retry) delay(retry int, jitter float64) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(jitter*float64(half))
}

// SetRetry installs the retry policy. Call before concurrent use.
func (c *Client) SetRetry(r Retry) {
	c.mu.Lock()
	c.retry = r
	c.mu.Unlock()
}

// backoff sleeps the policy's jittered delay before retry number
// `retry`, honoring cancellation: the context is checked between
// attempts and interrupts the wait.
func (c *Client) backoff(ctx context.Context, pol Retry, retry int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	jitter := c.jitter.Float64()
	c.mu.Unlock()
	t := time.NewTimer(pol.delay(retry, jitter))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package matchsvc

import (
	"context"
	"fmt"
	"testing"

	"fpinterop/internal/gallery"
	"fpinterop/internal/minutiae"
)

// TestScanAndHasRoundTrip exercises the bulk-transfer wire ops the
// shard rebalancer rides on: Has for ownership probes, Scan for
// cursor-paged streaming of whole enrollments.
func TestScanAndHasRoundTrip(t *testing.T) {
	cli, _ := startServer(t)
	ctx := context.Background()
	tpls := testImpressions(t, 5, "D0", 0)
	for i, tpl := range tpls {
		if err := cli.Enroll(ctx, fmt.Sprintf("subject-%04d", i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}

	ok, err := cli.Has(ctx, "subject-0002")
	if err != nil || !ok {
		t.Fatalf("Has(existing) = %v, %v", ok, err)
	}
	ok, err = cli.Has(ctx, "ghost")
	if err != nil || ok {
		t.Fatalf("Has(missing) = %v, %v", ok, err)
	}

	// Page with max=2: cursor pagination must walk the whole gallery in
	// ID order with no gaps or repeats, ending on an empty page.
	var got []gallery.Export
	after := ""
	pages := 0
	for {
		page, err := cli.Scan(ctx, after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		if len(page) > 2 {
			t.Fatalf("page of %d exceeds requested max 2", len(page))
		}
		after = page[len(page)-1].ID
		got = append(got, page...)
		pages++
	}
	if len(got) != len(tpls) || pages < 3 {
		t.Fatalf("scanned %d entries over %d pages, want %d over >= 3", len(got), pages, len(tpls))
	}
	for i, e := range got {
		wantID := fmt.Sprintf("subject-%04d", i)
		if e.ID != wantID || e.DeviceID != "D0" {
			t.Fatalf("entry %d = (%q, %q), want (%q, \"D0\")", i, e.ID, e.DeviceID, wantID)
		}
		if e.Template == nil || len(e.Template.Minutiae) == 0 {
			t.Fatalf("entry %d carried no template", i)
		}
		// The transferred template must survive the codec byte-for-byte:
		// a rebalanced shard has to score identically to the source.
		want, err := minutiae.Marshal(tpls[i])
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := minutiae.Marshal(e.Template)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotB) != string(want) {
			t.Fatalf("entry %d template mutated in transit", i)
		}
	}
}

// scanlessGallery hides the store's Scan/Has so the server's capability
// detection is what the test sees.
type scanlessGallery struct{ *gallery.Store }

func (scanlessGallery) Scan() {}
func (scanlessGallery) Has()  {}

// TestScanWithoutCapabilityRefused pins that a backend without the
// Scanner/Haser capabilities refuses the ops instead of panicking or
// fabricating pages.
func TestScanWithoutCapabilityRefused(t *testing.T) {
	store := gallery.New(nil)
	srv := NewServer(scanlessGallery{store}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if _, err := cli.Scan(ctx, "", 8); err == nil {
		t.Fatal("Scan against a scanless backend succeeded")
	}
	if _, err := cli.Has(ctx, "x"); err == nil {
		t.Fatal("Has against a haserless backend succeeded")
	}
}

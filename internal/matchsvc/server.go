package matchsvc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/wal"
)

// Gallery is the enrollment backend a Server fronts. *gallery.Store is
// the canonical single-node implementation; a shard router satisfies the
// same contract, so one server binary can serve either a leaf store or a
// scatter-gather tier.
type Gallery interface {
	Enroll(id, deviceID string, tpl *minutiae.Template) error
	Remove(id string) error
	Verify(id string, probe *minutiae.Template) (match.Result, error)
	IdentifyDetailed(probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error)
	Len() int
}

// Scanner is the optional capability behind OpScan: backends that can
// page their enrollments out in ID order (gallery.Store does) let a
// shard rebalancer stream them to a joining shard. Backends without it
// simply refuse the op.
type Scanner interface {
	Scan(afterID string, max int) []gallery.Export
}

// Haser is the optional capability behind OpHas.
type Haser interface {
	Has(id string) bool
}

// SyncSource is the optional capability behind OpSyncSnapshot and
// OpSyncTail: a WAL-backed store (wal.Store) can ship a consistent
// snapshot capture plus its log tail to a catching-up read replica.
// Backends without a log refuse the ops — there is no history to ship.
type SyncSource interface {
	SyncSnapshot(resumeLSN uint64) (lsn uint64, data []byte, err error)
	SyncTail(afterLSN uint64, maxBytes int) (wal.TailPage, error)
}

// defaultIdleTimeout bounds how long a connection may sit between (or
// inside) requests before the server drops it: a dead peer or a
// slow-loris client must not pin a handler goroutine forever.
const defaultIdleTimeout = 2 * time.Minute

// Server is the central matching service: it owns a Gallery backend and
// serves the frame protocol over TCP. Connections are handled
// concurrently; requests within one connection are processed in order.
type Server struct {
	store       Gallery
	logger      *log.Logger
	idleTimeout time.Duration
	// statsFn, when set, answers OpStats with the serving process's
	// full summary; without it the op falls back to the gallery alone.
	statsFn func() ServiceStats
	// met is non-nil after SetMetrics.
	met *serverMetrics

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns a server backed by the given gallery (a fresh
// single-node store with the default matcher when nil). logger may be
// nil to disable logging.
func NewServer(store Gallery, logger *log.Logger) *Server {
	if store == nil {
		store = gallery.New(nil)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		store:       store,
		logger:      logger,
		idleTimeout: defaultIdleTimeout,
		conns:       make(map[net.Conn]struct{}),
	}
}

// SetIdleTimeout bounds how long the server waits for a complete request
// frame on an open connection (default 2 minutes); d <= 0 disables the
// deadline. Call before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.idleTimeout = d
}

// Store exposes the underlying gallery (e.g. for pre-enrollment).
func (s *Server) Store() Gallery { return s.store }

// SetStatsFunc installs the OpStats source: the serving process knows
// its own topology (shard count, index state, WAL durability) in a way
// the wire server cannot infer from the Gallery interface. Call before
// Serve. Without it, OpStats still answers with the gallery's
// enrollment count and a shard count of one.
func (s *Server) SetStatsFunc(fn func() ServiceStats) { s.statsFn = fn }

// Listen binds addr (e.g. "127.0.0.1:0") and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("matchsvc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("matchsvc: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// ListenOn serves on an externally-created listener instead of binding
// one — the hook fault-injection harnesses use to interpose on the
// accept path (e.g. faultnet.Wrap around a TCP listener). The server
// takes ownership: Close closes it.
func (s *Server) ListenOn(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		ln.Close()
		return errors.New("matchsvc: server already closed")
	}
	s.listener = ln
	return nil
}

// Serve accepts connections until the context is cancelled or Close is
// called. Listen must have been called first.
func (s *Server) Serve(ctx context.Context) error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("matchsvc: Serve before Listen")
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.isClosed() {
				s.wg.Wait()
				return nil
			}
			if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
				// Transient accept failure (fd pressure, injected fault):
				// back off briefly instead of tearing the server down.
				select {
				case <-ctx.Done():
				case <-time.After(5 * time.Millisecond):
				}
				continue
			}
			return fmt.Errorf("matchsvc: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.met != nil {
			s.met.connsTotal.Inc()
			s.met.conns.Inc()
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				if s.met != nil {
					s.met.conns.Dec()
				}
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logger.Printf("matchsvc: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops accepting, closes active connections and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// handle serves one connection until EOF. Each request frame must
// arrive — completely — within the idle timeout, so neither a silent
// peer nor one dribbling a byte at a time can hold the handler. Request
// and response buffers come from the shared frame pool and are reused
// across the connection's requests, so steady-state serving does not
// allocate per RPC at the framing layer (decoded templates and result
// payloads still do).
func (s *Server) handle(conn net.Conn) error {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return fmt.Errorf("matchsvc: set read deadline: %w", err)
			}
		}
		op, payload, err := readFrameIntoHdr(conn, fs.in, &fs.hdr)
		if err != nil {
			return err
		}
		fs.keep(payload)
		fs.w.buf = fs.w.buf[:0]
		if op == OpHello {
			// Version negotiation: a client proposing the multiplexed
			// protocol (or newer) gets StatusOK plus the version the
			// server will speak, and the connection switches to the mux
			// dispatcher. Anything else is refused with a status error —
			// the connection stays open in legacy mode.
			var t0 time.Time
			if s.met != nil {
				t0 = time.Now()
			}
			r := payloadReader{buf: payload}
			ver, verr := r.uint32()
			if verr != nil {
				// An unparseable hello is indistinguishable from a frame
				// corrupted in transit; a StatusError answer would steer
				// the client into the checksum-free legacy mode, so drop
				// the connection and let it redial cleanly instead.
				return fmt.Errorf("matchsvc: malformed hello payload: %w", verr)
			}
			upgrade := ver >= protoMuxed
			status := byte(StatusOK)
			if upgrade {
				fs.w.uint32(protoMuxed)
			} else {
				status = StatusError
				if err := fs.w.string("matchsvc: unsupported protocol version"); err != nil {
					return err
				}
			}
			if s.met != nil {
				s.met.observeOp(OpHello, t0)
			}
			if s.idleTimeout > 0 {
				if err := conn.SetWriteDeadline(time.Now().Add(s.idleTimeout)); err != nil {
					return fmt.Errorf("matchsvc: set write deadline: %w", err)
				}
			}
			if err := writeFrameHdr(conn, status, fs.w.buf, &fs.hdr); err != nil {
				return err
			}
			if upgrade {
				return s.handleMux(conn)
			}
			continue
		}
		var t0 time.Time
		if s.met != nil {
			t0 = time.Now()
			s.met.inflight.Inc()
		}
		status, resp := s.dispatch(op, payload, &fs.w)
		if s.met != nil {
			s.met.observeOp(op, t0)
			s.met.inflight.Dec()
		}
		if s.idleTimeout > 0 {
			// The response write gets the same bound: a peer that never
			// drains its receive buffer must not pin the handler either.
			if err := conn.SetWriteDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return fmt.Errorf("matchsvc: set write deadline: %w", err)
			}
		}
		if err := writeFrameHdr(conn, status, resp, &fs.hdr); err != nil {
			return err
		}
	}
}

// dispatch executes one request and builds the response payload into w
// (arriving empty; dispatch must not retain payload or w.buf past the
// return — both are connection-scoped scratch).
func (s *Server) dispatch(op byte, payload []byte, w *payloadWriter) (byte, []byte) {
	fail := func(err error) (byte, []byte) {
		// A branch may have written part of a success payload before
		// failing; the error response starts clean.
		w.buf = w.buf[:0]
		// Error strings are bounded by the frame cap; truncate defensively.
		msg := err.Error()
		if len(msg) > 1024 {
			msg = msg[:1024]
		}
		if werr := w.string(msg); werr != nil {
			return StatusError, nil
		}
		return StatusError, w.buf
	}
	r := &payloadReader{buf: payload}
	switch op {
	case OpPing:
		return StatusOK, nil

	case OpMatch:
		g, err := r.template()
		if err != nil {
			return fail(err)
		}
		p, err := r.template()
		if err != nil {
			return fail(err)
		}
		res, err := (&match.HoughMatcher{}).Match(g, p)
		if err != nil {
			return fail(err)
		}
		w.float64(res.Score)
		w.uint32(uint32(res.Matched))
		return StatusOK, w.buf

	case OpEnroll:
		id, err := r.string()
		if err != nil {
			return fail(err)
		}
		deviceID, err := r.string()
		if err != nil {
			return fail(err)
		}
		tpl, err := r.template()
		if err != nil {
			return fail(err)
		}
		if err := s.store.Enroll(id, deviceID, tpl); err != nil {
			return fail(err)
		}
		return StatusOK, nil

	case OpVerify:
		id, err := r.string()
		if err != nil {
			return fail(err)
		}
		probe, err := r.template()
		if err != nil {
			return fail(err)
		}
		res, err := s.store.Verify(id, probe)
		if err != nil {
			return fail(err)
		}
		w.float64(res.Score)
		w.uint32(uint32(res.Matched))
		return StatusOK, w.buf

	case OpIdentify, OpIdentifyEx:
		k, err := r.uint32()
		if err != nil {
			return fail(err)
		}
		probe, err := r.template()
		if err != nil {
			return fail(err)
		}
		cands, stats, err := s.store.IdentifyDetailed(probe, int(k))
		if err != nil {
			return fail(err)
		}
		if stats.Indexed {
			s.logger.Printf("identify: shortlist %d of %d enrollments (scanned %d)",
				stats.Shortlist, stats.GallerySize, stats.Scanned)
		}
		if op == OpIdentifyEx {
			w.uint32(uint32(stats.GallerySize))
			w.uint32(uint32(stats.Shortlist))
			w.uint32(uint32(stats.Scanned))
			indexed := uint32(0)
			if stats.Indexed {
				indexed = 1
			}
			w.uint32(indexed)
		}
		w.uint32(uint32(len(cands)))
		for _, c := range cands {
			if err := w.string(c.ID); err != nil {
				return fail(err)
			}
			if err := w.string(c.DeviceID); err != nil {
				return fail(err)
			}
			w.float64(c.Score)
		}
		return StatusOK, w.buf

	case OpEnrollBatch:
		n, err := r.uint32()
		if err != nil {
			return fail(err)
		}
		for i := uint32(0); i < n; i++ {
			id, err := r.string()
			if err != nil {
				return fail(fmt.Errorf("batch item %d: %w", i, err))
			}
			deviceID, err := r.string()
			if err != nil {
				return fail(fmt.Errorf("batch item %d: %w", i, err))
			}
			tpl, err := r.template()
			if err != nil {
				return fail(fmt.Errorf("batch item %d: %w", i, err))
			}
			if err := s.store.Enroll(id, deviceID, tpl); err != nil {
				// Not atomic: items before i are enrolled; say so.
				return fail(fmt.Errorf("batch item %d (%d enrolled): %w", i, i, err))
			}
		}
		w.uint32(n)
		return StatusOK, w.buf

	case OpRemove:
		id, err := r.string()
		if err != nil {
			return fail(err)
		}
		if err := s.store.Remove(id); err != nil {
			return fail(err)
		}
		return StatusOK, nil

	case OpCount:
		w.uint32(uint32(s.store.Len()))
		return StatusOK, w.buf

	case OpStats:
		var st ServiceStats
		if s.statsFn != nil {
			st = s.statsFn()
		} else {
			st = ServiceStats{Enrollments: s.store.Len(), Shards: 1}
		}
		if err := encodeServiceStats(w, st); err != nil {
			return fail(err)
		}
		return StatusOK, w.buf

	case OpHas:
		h, ok := s.store.(Haser)
		if !ok {
			return fail(errors.New("matchsvc: backend does not support has"))
		}
		id, err := r.string()
		if err != nil {
			return fail(err)
		}
		v := uint32(0)
		if h.Has(id) {
			v = 1
		}
		w.uint32(v)
		return StatusOK, w.buf

	case OpScan:
		sc, ok := s.store.(Scanner)
		if !ok {
			return fail(errors.New("matchsvc: backend does not support scan"))
		}
		afterID, err := r.string()
		if err != nil {
			return fail(err)
		}
		max, err := r.uint32()
		if err != nil {
			return fail(err)
		}
		exports := sc.Scan(afterID, int(max))
		// Pack items under the frame budget; the count prefix is
		// patched once the cut is known. Fewer than max items is a
		// legal page — the client advances its cursor and asks again —
		// but an empty page with entries pending would end the scan
		// early, so a first item too large to ship is an error.
		w.uint32(0)
		count := uint32(0)
		for _, e := range exports {
			mark := len(w.buf)
			if err := w.string(e.ID); err != nil {
				return fail(err)
			}
			if err := w.string(e.DeviceID); err != nil {
				return fail(err)
			}
			if err := w.template(e.Template); err != nil {
				return fail(err)
			}
			if len(w.buf) > scanBudget {
				if count == 0 {
					return fail(fmt.Errorf("matchsvc: scan item %q exceeds frame budget", e.ID))
				}
				w.buf = w.buf[:mark]
				break
			}
			count++
		}
		binary.BigEndian.PutUint32(w.buf[:4], count)
		return StatusOK, w.buf

	case OpSyncSnapshot:
		src, ok := s.store.(SyncSource)
		if !ok {
			return fail(errors.New("matchsvc: backend does not support replica sync"))
		}
		resumeLSN, err := r.uint64()
		if err != nil {
			return fail(err)
		}
		offset, err := r.uint64()
		if err != nil {
			return fail(err)
		}
		maxBytes, err := r.uint32()
		if err != nil {
			return fail(err)
		}
		lsn, data, err := src.SyncSnapshot(resumeLSN)
		if err != nil {
			return fail(err)
		}
		if offset > uint64(len(data)) {
			return fail(fmt.Errorf("matchsvc: snapshot offset %d beyond %d-byte stream", offset, len(data)))
		}
		max := int(maxBytes)
		if max <= 0 || max > scanBudget {
			max = scanBudget
		}
		chunk := data[offset:]
		if len(chunk) > max {
			chunk = chunk[:max]
		}
		w.uint64(lsn)
		w.uint64(uint64(len(data)))
		w.bytes(chunk)
		return StatusOK, w.buf

	case OpSyncTail:
		src, ok := s.store.(SyncSource)
		if !ok {
			return fail(errors.New("matchsvc: backend does not support replica sync"))
		}
		afterLSN, err := r.uint64()
		if err != nil {
			return fail(err)
		}
		maxBytes, err := r.uint32()
		if err != nil {
			return fail(err)
		}
		max := int(maxBytes)
		if max <= 0 || max > scanBudget {
			max = scanBudget
		}
		page, err := src.SyncTail(afterLSN, max)
		if err != nil {
			return fail(err)
		}
		w.uint64(page.PrimaryLSN)
		flags := uint32(0)
		if page.Truncated {
			flags |= 1
		}
		w.uint32(flags)
		// Count prefix patched once the cut is known, like OpScan: the
		// byte budget handed to SyncTail is record bodies only, so the
		// wire framing on top can still overflow the frame cap.
		w.uint32(0)
		count := uint32(0)
		for _, rec := range page.Records {
			mark := len(w.buf)
			w.uint64(rec.LSN)
			w.buf = append(w.buf, rec.Op)
			if err := w.string(rec.ID); err != nil {
				return fail(err)
			}
			if rec.Op == wal.OpEnroll {
				if err := w.string(rec.DeviceID); err != nil {
					return fail(err)
				}
				w.bytes(rec.Template)
			}
			if len(w.buf) > scanBudget {
				if count == 0 {
					return fail(fmt.Errorf("matchsvc: sync record for %q exceeds frame budget", rec.ID))
				}
				w.buf = w.buf[:mark]
				break
			}
			count++
		}
		binary.BigEndian.PutUint32(w.buf[12:16], count)
		return StatusOK, w.buf

	default:
		return fail(fmt.Errorf("matchsvc: unknown opcode 0x%02x", op))
	}
}

// muxServerConcurrency bounds how many requests one multiplexed
// connection may have executing at once; excess frames queue at the
// read loop, applying natural backpressure through TCP.
const muxServerConcurrency = 128

// posReader counts bytes so the mux read loop can tell an idle
// connection (zero bytes of the next frame arrived — fine while
// responses are still owed) from a stalled one (a frame cut off
// mid-header, which desyncs the stream and must drop the conn).
type posReader struct {
	r io.Reader
	n int64
}

func (p *posReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	p.n += int64(n)
	return n, err
}

// handleMux serves one negotiated multiplexed connection: each request
// frame dispatches on its own goroutine (bounded by
// muxServerConcurrency) and responses return in completion order,
// carrying the request ID they answer. One slow 1:N no longer blocks
// the pings queued behind it — the whole point of the mux. Response
// writes group-flush through a buffered writer, so bursts of small
// responses coalesce into few syscalls.
func (s *Server) handleMux(conn net.Conn) error {
	pr := &posReader{r: conn}
	bw := bufio.NewWriterSize(conn, 32*1024)
	var (
		wmu      sync.Mutex
		queued   atomic.Int32
		whdr     [muxFrameHdrSize]byte
		inflight atomic.Int64
		wg       sync.WaitGroup
		hdr      [5]byte
	)
	defer wg.Wait()
	writeRes := func(id uint64, status byte, resp []byte) {
		queued.Add(1)
		wmu.Lock()
		queued.Add(-1)
		defer wmu.Unlock()
		if s.idleTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				conn.Close()
				return
			}
		}
		err := writeMuxFrame(bw, status, id, resp, &whdr)
		if err == nil && queued.Load() == 0 {
			err = bw.Flush()
		}
		if err != nil {
			// A torn response frame desyncs the stream; closing the socket
			// fails the read loop too, which is the only safe recovery.
			conn.Close()
		}
	}
	sem := make(chan struct{}, muxServerConcurrency)
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return fmt.Errorf("matchsvc: set read deadline: %w", err)
			}
		}
		start := pr.n
		op, payload, err := readFrameIntoHdr(pr, nil, &hdr)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) && pr.n == start && inflight.Load() > 0 {
				// Quiet between frames while requests still execute: their
				// responses are the connection's liveness. Keep waiting.
				continue
			}
			return err
		}
		id, body, err := openMuxEnvelope(op, payload)
		if err != nil {
			// The envelope (or its checksum) is unreadable, so no error
			// reply can name the request it answers; drop the conn.
			return err
		}
		sem <- struct{}{}
		inflight.Add(1)
		wg.Add(1)
		go func(op byte, id uint64, body []byte) {
			defer wg.Done()
			defer inflight.Add(-1)
			defer func() { <-sem }()
			fs := acquireFrameScratch()
			defer releaseFrameScratch(fs)
			fs.w.buf = fs.w.buf[:0]
			var t0 time.Time
			if s.met != nil {
				t0 = time.Now()
				s.met.inflight.Inc()
			}
			status, resp := s.dispatch(op, body, &fs.w)
			if s.met != nil {
				s.met.observeOp(op, t0)
				s.met.inflight.Dec()
			}
			writeRes(id, status, resp)
		}(op, id, body)
	}
}

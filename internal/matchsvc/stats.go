package matchsvc

// ServiceStats is the OpStats payload: a point-in-time service summary
// the serving process assembles from whatever it actually runs —
// shard topology, index state, and write-ahead-log durability — so a
// remote client can surface the same Stats a local service would.
type ServiceStats struct {
	// Enrollments counts enrolled subjects (reachable shards only).
	Enrollments int
	// Shards is the number of backends serving the gallery.
	Shards int
	// DegradedShards names shards currently excluded from searches.
	DegradedShards []string
	// Indexed reports whether a retrieval index serves identifications.
	Indexed bool
	// WAL summarizes write-ahead-log state; nil when the serving
	// process is not durable.
	WAL *WALServiceStats
}

// WALServiceStats mirrors the WAL summary across the wire.
type WALServiceStats struct {
	SnapshotEntries int
	Replayed        int
	TruncatedBytes  int64
	TornTails       int
	LogBytes        int64
}

func encodeServiceStats(w *payloadWriter, st ServiceStats) error {
	w.uint32(uint32(st.Enrollments))
	w.uint32(uint32(st.Shards))
	w.uint32(uint32(len(st.DegradedShards)))
	for _, name := range st.DegradedShards {
		if err := w.string(name); err != nil {
			return err
		}
	}
	indexed := uint32(0)
	if st.Indexed {
		indexed = 1
	}
	w.uint32(indexed)
	if st.WAL == nil {
		w.uint32(0)
		return nil
	}
	w.uint32(1)
	w.uint32(uint32(st.WAL.SnapshotEntries))
	w.uint32(uint32(st.WAL.Replayed))
	w.uint64(uint64(st.WAL.TruncatedBytes))
	w.uint32(uint32(st.WAL.TornTails))
	w.uint64(uint64(st.WAL.LogBytes))
	return nil
}

func decodeServiceStats(r *payloadReader) (ServiceStats, error) {
	var st ServiceStats
	enrollments, err := r.uint32()
	if err != nil {
		return st, err
	}
	shards, err := r.uint32()
	if err != nil {
		return st, err
	}
	st.Enrollments = int(enrollments)
	st.Shards = int(shards)
	n, err := r.uint32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < n; i++ {
		name, err := r.string()
		if err != nil {
			return st, err
		}
		st.DegradedShards = append(st.DegradedShards, name)
	}
	indexed, err := r.uint32()
	if err != nil {
		return st, err
	}
	st.Indexed = indexed != 0
	hasWAL, err := r.uint32()
	if err != nil {
		return st, err
	}
	if hasWAL == 0 {
		return st, nil
	}
	var w WALServiceStats
	snap, err := r.uint32()
	if err != nil {
		return st, err
	}
	replayed, err := r.uint32()
	if err != nil {
		return st, err
	}
	trunc, err := r.uint64()
	if err != nil {
		return st, err
	}
	torn, err := r.uint32()
	if err != nil {
		return st, err
	}
	logBytes, err := r.uint64()
	if err != nil {
		return st, err
	}
	w.SnapshotEntries = int(snap)
	w.Replayed = int(replayed)
	w.TruncatedBytes = int64(trunc)
	w.TornTails = int(torn)
	w.LogBytes = int64(logBytes)
	st.WAL = &w
	return st, nil
}

package matchsvc

// Client side of the replica sync path: chunked snapshot transfer plus
// WAL tail streaming (OpSyncSnapshot / OpSyncTail). Both ops are
// idempotent reads of the primary's history, so they ride the
// idempotent retry path like Scan does.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"fpinterop/internal/wal"
)

// SyncSnapshotChunk is one OpSyncSnapshot response: a slice of the
// primary's serialized snapshot stream.
type SyncSnapshotChunk struct {
	// LSN identifies the capture; every chunk of one transfer must
	// carry the same LSN or the stream being assembled is not a single
	// consistent snapshot.
	LSN uint64
	// Total is the full stream size; the transfer is complete when
	// offset + len(Data) reaches it.
	Total int64
	// Data is the chunk at the requested offset.
	Data []byte
}

// SyncSnapshot fetches one snapshot chunk from the primary. resumeLSN
// 0 starts a fresh transfer (the server captures current state);
// subsequent chunks pass the LSN of the first response so the whole
// transfer reads one immutable capture. maxBytes <= 0 lets the server
// pick the largest chunk the frame cap allows.
func (c *Client) SyncSnapshot(ctx context.Context, resumeLSN uint64, offset int64, maxBytes int) (SyncSnapshotChunk, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint64(resumeLSN)
	fs.w.uint64(uint64(offset))
	fs.w.uint32(uint32(maxBytes))
	var out SyncSnapshotChunk
	err := c.roundTripIdem(ctx, OpSyncSnapshot, fs.w.buf, func(r *payloadReader) error {
		lsn, derr := r.uint64()
		if derr != nil {
			return derr
		}
		total, derr := r.uint64()
		if derr != nil {
			return derr
		}
		data, derr := r.bytes()
		if derr != nil {
			return derr
		}
		// data aliases the response buffer; the chunk outlives the call.
		out = SyncSnapshotChunk{LSN: lsn, Total: int64(total), Data: append([]byte(nil), data...)}
		return nil
	})
	if err != nil {
		// Wire-boundary sentinel translation (on sentinelerr's AllowIn
		// list): the server reports a stale resume LSN as text, and this
		// is the one place that string becomes wal.ErrSnapshotExpired so
		// callers can restart the transfer with errors.Is.
		if errors.Is(err, ErrRemote) && strings.Contains(err.Error(), "snapshot expired") {
			return SyncSnapshotChunk{}, fmt.Errorf("%w: %w", wal.ErrSnapshotExpired, err)
		}
		return SyncSnapshotChunk{}, err
	}
	return out, nil
}

// SyncTail fetches WAL records above afterLSN from the primary, up to
// roughly maxBytes of record bodies (<= 0 for the server's maximum).
// An empty, un-truncated page means the caller has caught up to
// PrimaryLSN; a Truncated page means compaction discarded the needed
// records and the caller must restart from a snapshot.
func (c *Client) SyncTail(ctx context.Context, afterLSN uint64, maxBytes int) (wal.TailPage, error) {
	fs := acquireFrameScratch()
	defer releaseFrameScratch(fs)
	fs.w.uint64(afterLSN)
	fs.w.uint32(uint32(maxBytes))
	var page wal.TailPage
	err := c.roundTripIdem(ctx, OpSyncTail, fs.w.buf, func(r *payloadReader) error {
		primary, derr := r.uint64()
		if derr != nil {
			return derr
		}
		flags, derr := r.uint32()
		if derr != nil {
			return derr
		}
		n, derr := r.uint32()
		if derr != nil {
			return derr
		}
		page = wal.TailPage{PrimaryLSN: primary, Truncated: flags&1 != 0}
		// A record occupies at least 11 payload bytes; clamp the
		// preallocation against malformed counts.
		capHint := n
		if max := uint32(len(r.buf)-r.off) / 11; capHint > max {
			capHint = max
		}
		recs := make([]wal.Record, 0, capHint)
		for i := uint32(0); i < n; i++ {
			var rec wal.Record
			if rec.LSN, derr = r.uint64(); derr != nil {
				return derr
			}
			opb, derr := r.take(1)
			if derr != nil {
				return derr
			}
			rec.Op = opb[0]
			if rec.ID, derr = r.string(); derr != nil {
				return derr
			}
			if rec.Op == wal.OpEnroll {
				if rec.DeviceID, derr = r.string(); derr != nil {
					return derr
				}
				tpl, derr := r.bytes()
				if derr != nil {
					return derr
				}
				rec.Template = append([]byte(nil), tpl...)
			}
			recs = append(recs, rec)
		}
		page.Records = recs
		return nil
	})
	if err != nil {
		return wal.TailPage{}, err
	}
	return page, nil
}

package minutiae

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary template format, modelled on ISO/IEC 19794-2 compact cards:
//
//	offset  size  field
//	0       4     magic "FMR\x00"
//	4       2     format version (big endian), currently 1
//	6       2     image width in pixels
//	8       2     image height in pixels
//	10      2     resolution in DPI
//	12      2     minutia count
//	14      8·n   minutiae records
//
// Each minutia record is 8 bytes:
//
//	0  2   type (2 bits) << 14 | x (14 bits, fixed-point pixels)
//	2  2   y (14 bits)
//	4  2   angle, units of 2π/65536
//	6  1   quality 0..100
//	7  1   reserved (zero)
var (
	magic = [4]byte{'F', 'M', 'R', 0}

	// ErrBadMagic reports a stream that is not a serialized template.
	ErrBadMagic = errors.New("minutiae: bad template magic")
	// ErrTruncated reports a stream shorter than its declared contents.
	ErrTruncated = errors.New("minutiae: truncated template")
)

const (
	headerSize  = 14
	recordSize  = 8
	formatV1    = 1
	maxCoord    = 1<<14 - 1
	angleUnits  = 65536.0
	maxMinutiae = 1 << 12
)

// Marshal serializes the template.
func Marshal(t *Template) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	if t.Width > maxCoord || t.Height > maxCoord {
		return nil, fmt.Errorf("minutiae: dimensions %dx%d exceed 14-bit coordinate space", t.Width, t.Height)
	}
	if len(t.Minutiae) > maxMinutiae {
		return nil, fmt.Errorf("minutiae: %d minutiae exceed format cap %d", len(t.Minutiae), maxMinutiae)
	}
	buf := make([]byte, headerSize+recordSize*len(t.Minutiae))
	copy(buf[0:4], magic[:])
	binary.BigEndian.PutUint16(buf[4:6], formatV1)
	binary.BigEndian.PutUint16(buf[6:8], uint16(t.Width))
	binary.BigEndian.PutUint16(buf[8:10], uint16(t.Height))
	binary.BigEndian.PutUint16(buf[10:12], uint16(t.DPI))
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(t.Minutiae)))
	for i, m := range t.Minutiae {
		rec := buf[headerSize+i*recordSize:]
		var kind uint16
		switch m.Kind {
		case Ending:
			kind = 1
		case Bifurcation:
			kind = 2
		}
		// Coordinates are valid in [0, dim), so rounding may land exactly
		// on the dimension (e.g. x=403.6 in a 404-wide window); clamp to
		// the last in-bounds pixel or the round trip fails validation.
		x := uint16(math.Round(m.X))
		y := uint16(math.Round(m.Y))
		if x >= uint16(t.Width) {
			x = uint16(t.Width) - 1
		}
		if y >= uint16(t.Height) {
			y = uint16(t.Height) - 1
		}
		binary.BigEndian.PutUint16(rec[0:2], kind<<14|x)
		binary.BigEndian.PutUint16(rec[2:4], y)
		angle := uint16(math.Round(NormalizeAngle(m.Angle) / (2 * math.Pi) * angleUnits))
		binary.BigEndian.PutUint16(rec[4:6], angle)
		q := m.Quality
		if q > 100 {
			q = 100
		}
		rec[6] = q
		rec[7] = 0
	}
	return buf, nil
}

// Unmarshal parses a serialized template.
func Unmarshal(data []byte) (*Template, error) {
	if len(data) < headerSize {
		return nil, ErrTruncated
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != formatV1 {
		return nil, fmt.Errorf("minutiae: unsupported format version %d", v)
	}
	t := &Template{
		Width:  int(binary.BigEndian.Uint16(data[6:8])),
		Height: int(binary.BigEndian.Uint16(data[8:10])),
		DPI:    int(binary.BigEndian.Uint16(data[10:12])),
	}
	n := int(binary.BigEndian.Uint16(data[12:14]))
	if len(data) < headerSize+n*recordSize {
		return nil, ErrTruncated
	}
	t.Minutiae = make([]Minutia, n)
	for i := 0; i < n; i++ {
		rec := data[headerSize+i*recordSize:]
		word := binary.BigEndian.Uint16(rec[0:2])
		var kind Type
		switch word >> 14 {
		case 1:
			kind = Ending
		case 2:
			kind = Bifurcation
		default:
			return nil, fmt.Errorf("minutiae: record %d has invalid type %d", i, word>>14)
		}
		t.Minutiae[i] = Minutia{
			X:       float64(word & maxCoord),
			Y:       float64(binary.BigEndian.Uint16(rec[2:4]) & maxCoord),
			Angle:   float64(binary.BigEndian.Uint16(rec[4:6])) / angleUnits * 2 * math.Pi,
			Kind:    kind,
			Quality: rec[6],
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("unmarshal: %w", err)
	}
	return t, nil
}

package minutiae

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	tp := validTemplate()
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != tp.Width || back.Height != tp.Height || back.DPI != tp.DPI {
		t.Fatal("header fields lost")
	}
	if len(back.Minutiae) != len(tp.Minutiae) {
		t.Fatal("minutiae count lost")
	}
	for i := range tp.Minutiae {
		a, b := tp.Minutiae[i], back.Minutiae[i]
		if math.Abs(a.X-b.X) > 0.5 || math.Abs(a.Y-b.Y) > 0.5 {
			t.Fatalf("minutia %d position drift: %+v vs %+v", i, a, b)
		}
		if d := math.Abs(a.Angle - b.Angle); d > 0.001 && d < 2*math.Pi-0.001 {
			t.Fatalf("minutia %d angle drift: %v vs %v", i, a.Angle, b.Angle)
		}
		if a.Kind != b.Kind || a.Quality != b.Quality {
			t.Fatalf("minutia %d metadata lost", i)
		}
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	tp := validTemplate()
	tp.Minutiae[0].Angle = -1
	if _, err := Marshal(tp); err == nil {
		t.Fatal("expected error for invalid template")
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	data, _ := Marshal(validTemplate())
	data[0] = 'X'
	if _, err := Unmarshal(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	data, _ := Marshal(validTemplate())
	for _, n := range []int{0, 5, headerSize - 1, len(data) - 1} {
		if _, err := Unmarshal(data[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("len %d: want ErrTruncated, got %v", n, err)
		}
	}
}

func TestUnmarshalBadVersion(t *testing.T) {
	data, _ := Marshal(validTemplate())
	data[5] = 99
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("expected version error")
	}
}

func TestUnmarshalBadType(t *testing.T) {
	data, _ := Marshal(validTemplate())
	// Zero out the type bits of the first record.
	data[headerSize] &= 0x3f
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("expected type error")
	}
}

func TestMarshalEmptyTemplate(t *testing.T) {
	tp := &Template{Width: 10, Height: 10, DPI: 500}
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Fatal("empty template grew minutiae")
	}
}

func TestMarshalQualityClamped(t *testing.T) {
	tp := validTemplate()
	tp.Minutiae[0].Quality = 255
	data, err := Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Minutiae[0].Quality != 100 {
		t.Fatalf("quality = %d, want clamp to 100", back.Minutiae[0].Quality)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(xs, ys []uint16, angles []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if len(angles) < n {
			n = len(angles)
		}
		if n > 64 {
			n = 64
		}
		tp := &Template{Width: 800, Height: 750, DPI: 500}
		for i := 0; i < n; i++ {
			kind := Ending
			if i%2 == 1 {
				kind = Bifurcation
			}
			a := angles[i]
			if math.IsNaN(a) || math.IsInf(a, 0) {
				a = 0
			}
			tp.Minutiae = append(tp.Minutiae, Minutia{
				X:       float64(xs[i] % 800),
				Y:       float64(ys[i] % 750),
				Angle:   NormalizeAngle(a),
				Kind:    kind,
				Quality: uint8(i % 101),
			})
		}
		data, err := Marshal(tp)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if back.Count() != tp.Count() {
			return false
		}
		for i := range tp.Minutiae {
			if tp.Minutiae[i].Kind != back.Minutiae[i].Kind {
				return false
			}
			if math.Abs(tp.Minutiae[i].X-back.Minutiae[i].X) > 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripEdgeCoordinates(t *testing.T) {
	// A minutia within half a pixel of the window edge must survive the
	// round trip: rounding to the nearest pixel would land exactly on
	// the dimension, which Validate rejects.
	tpl := &Template{Width: 404, Height: 404, DPI: 500, Minutiae: []Minutia{
		{X: 403.6, Y: 403.9, Angle: 1, Kind: Ending, Quality: 50},
		{X: 0.2, Y: 0.4, Angle: 2, Kind: Bifurcation, Quality: 50},
	}}
	data, err := Marshal(tpl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Minutiae[0].X != 403 || back.Minutiae[0].Y != 403 {
		t.Fatalf("edge minutia moved to (%v, %v)", back.Minutiae[0].X, back.Minutiae[0].Y)
	}
}

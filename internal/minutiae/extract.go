package minutiae

import (
	"math"
	"sort"

	"fpinterop/internal/imgproc"
)

// ExtractOptions tunes skeleton-based minutiae extraction.
type ExtractOptions struct {
	// BorderMargin drops minutiae closer than this many pixels to the
	// image border (border artifacts dominate there). Default 12.
	BorderMargin int
	// MinSpurLength removes ridge endings whose skeleton branch is shorter
	// than this many pixels (spur artifacts). Default 8.
	MinSpurLength int
	// MergeRadius merges minutiae pairs closer than this many pixels
	// (broken-ridge artifacts produce facing endpoint pairs). Default 6.
	MergeRadius float64
	// MinCoherence drops minutiae in blocks with orientation coherence
	// below this threshold (unreliable regions). Default 0.15.
	MinCoherence float64
}

func (o ExtractOptions) withDefaults() ExtractOptions {
	if o.BorderMargin == 0 {
		o.BorderMargin = 12
	}
	if o.MinSpurLength == 0 {
		o.MinSpurLength = 8
	}
	if o.MergeRadius == 0 {
		o.MergeRadius = 6
	}
	if o.MinCoherence == 0 {
		o.MinCoherence = 0.15
	}
	return o
}

// Extract locates minutiae on a ridge skeleton using the crossing-number
// method and applies standard spurious-minutiae filtering. The orientation
// field of the source image supplies minutia angles; dpi annotates the
// resulting template.
func Extract(skel *imgproc.Binary, of *imgproc.OrientationField, dpi int, opts ExtractOptions) *Template {
	opts = opts.withDefaults()
	var raw []Minutia
	for y := 0; y < skel.H; y++ {
		for x := 0; x < skel.W; x++ {
			if !skel.At(x, y) {
				continue
			}
			cn := imgproc.CrossingNumber(skel, x, y)
			var kind Type
			switch {
			case cn == 1:
				kind = Ending
			case cn >= 3:
				kind = Bifurcation
			default:
				continue
			}
			angle := minutiaAngle(skel, x, y, of, kind)
			raw = append(raw, Minutia{
				X: float64(x), Y: float64(y),
				Angle: angle, Kind: kind, Quality: 60,
			})
		}
	}
	raw = dropBorder(raw, skel.W, skel.H, opts.BorderMargin)
	raw = dropLowCoherence(raw, of, opts.MinCoherence)
	raw = removeSpurs(raw, skel, opts.MinSpurLength)
	raw = mergeClose(raw, opts.MergeRadius)
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].Y != raw[j].Y {
			return raw[i].Y < raw[j].Y
		}
		return raw[i].X < raw[j].X
	})
	return &Template{Width: skel.W, Height: skel.H, DPI: dpi, Minutiae: raw}
}

// minutiaAngle derives the minutia direction: the local ridge orientation
// disambiguated by the direction of the attached skeleton branch.
func minutiaAngle(skel *imgproc.Binary, x, y int, of *imgproc.OrientationField, kind Type) float64 {
	theta := of.ThetaAt(x, y) // ridge orientation in [0, π)
	// Walk a few pixels along the branch to find which of theta/theta+π the
	// ridge actually leaves toward.
	dir := branchDirection(skel, x, y)
	if dir == nil {
		return NormalizeAngle(theta)
	}
	cand := theta
	d1 := math.Abs(angularDiff(math.Atan2(dir[1], dir[0]), theta))
	d2 := math.Abs(angularDiff(math.Atan2(dir[1], dir[0]), theta+math.Pi))
	if d2 < d1 {
		cand = theta + math.Pi
	}
	if kind == Ending {
		// Ending direction points back along the ridge.
		cand += math.Pi
	}
	return NormalizeAngle(cand)
}

// branchDirection returns the average direction of skeleton pixels within a
// small disc of (x, y), or nil when isolated.
func branchDirection(skel *imgproc.Binary, x, y int) []float64 {
	var sx, sy float64
	n := 0
	const r = 4
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if skel.At(x+dx, y+dy) {
				sx += float64(dx)
				sy += float64(dy)
				n++
			}
		}
	}
	if n == 0 || (sx == 0 && sy == 0) {
		return nil
	}
	return []float64{sx, sy}
}

func angularDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func dropBorder(ms []Minutia, w, h, margin int) []Minutia {
	out := ms[:0]
	for _, m := range ms {
		if m.X < float64(margin) || m.Y < float64(margin) ||
			m.X >= float64(w-margin) || m.Y >= float64(h-margin) {
			continue
		}
		out = append(out, m)
	}
	return out
}

func dropLowCoherence(ms []Minutia, of *imgproc.OrientationField, minCoh float64) []Minutia {
	out := ms[:0]
	for _, m := range ms {
		if of.CoherenceAt(int(m.X), int(m.Y)) < minCoh {
			continue
		}
		out = append(out, m)
	}
	return out
}

// removeSpurs drops endings whose skeleton branch terminates within
// minLen pixels — classic spur artifacts of thinning.
func removeSpurs(ms []Minutia, skel *imgproc.Binary, minLen int) []Minutia {
	out := ms[:0]
	for _, m := range ms {
		if m.Kind == Ending && branchLength(skel, int(m.X), int(m.Y), minLen+1) < minLen {
			continue
		}
		out = append(out, m)
	}
	return out
}

// branchLength walks the skeleton from an endpoint until a junction, another
// endpoint, or the cap, returning the number of steps taken.
func branchLength(skel *imgproc.Binary, x, y, cap int) int {
	px, py := -1, -1
	steps := 0
	for steps < cap {
		// Find the next skeleton neighbour that is not where we came from.
		nx, ny, count := -1, -1, 0
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				cx, cy := x+dx, y+dy
				if !skel.At(cx, cy) || (cx == px && cy == py) {
					continue
				}
				nx, ny = cx, cy
				count++
			}
		}
		if count != 1 {
			// Junction (or dead end): branch over.
			return steps
		}
		px, py = x, y
		x, y = nx, ny
		steps++
	}
	return steps
}

// mergeClose removes both members of minutia pairs closer than radius —
// facing endpoint pairs from broken ridges and double-detected
// bifurcations are the classic false positives.
func mergeClose(ms []Minutia, radius float64) []Minutia {
	drop := make([]bool, len(ms))
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			if ms[i].Dist(ms[j]) < radius {
				drop[i] = true
				drop[j] = true
			}
		}
	}
	out := ms[:0]
	for i, m := range ms {
		if !drop[i] {
			out = append(out, m)
		}
	}
	return out
}

package minutiae

import (
	"testing"

	"fpinterop/internal/imgproc"
)

// flatField returns an orientation field with uniform horizontal ridges and
// full coherence, large enough for a w×h image.
func flatField(w, h int) *imgproc.OrientationField {
	bs := 16
	bw := (w + bs - 1) / bs
	bh := (h + bs - 1) / bs
	of := &imgproc.OrientationField{BlockSize: bs, BW: bw, BH: bh}
	of.Theta = make([][]float64, bh)
	of.Coherence = make([][]float64, bh)
	for y := 0; y < bh; y++ {
		of.Theta[y] = make([]float64, bw)
		of.Coherence[y] = make([]float64, bw)
		for x := 0; x < bw; x++ {
			of.Coherence[y][x] = 1
		}
	}
	return of
}

// drawLine sets skeleton pixels along a horizontal segment.
func drawLine(b *imgproc.Binary, x0, x1, y int) {
	for x := x0; x <= x1; x++ {
		b.Set(x, y, true)
	}
}

func TestExtractFindsLineEnding(t *testing.T) {
	skel := imgproc.NewBinary(96, 64)
	// A long horizontal ridge whose endpoints are well inside the margin.
	drawLine(skel, 20, 70, 32)
	tp := Extract(skel, flatField(96, 64), 500, ExtractOptions{})
	endings := 0
	for _, m := range tp.Minutiae {
		if m.Kind == Ending {
			endings++
		}
	}
	if endings != 2 {
		t.Fatalf("got %d endings, want 2 (minutiae: %+v)", endings, tp.Minutiae)
	}
}

func TestExtractFindsBifurcation(t *testing.T) {
	skel := imgproc.NewBinary(96, 96)
	// Horizontal stem plus a diagonal branch leaving from (48, 48).
	drawLine(skel, 20, 75, 48)
	for i := 1; i <= 25; i++ {
		skel.Set(48+i, 48-i, true)
	}
	tp := Extract(skel, flatField(96, 96), 500, ExtractOptions{})
	bifs := 0
	for _, m := range tp.Minutiae {
		if m.Kind == Bifurcation {
			bifs++
		}
	}
	if bifs < 1 {
		t.Fatalf("found no bifurcation: %+v", tp.Minutiae)
	}
}

func TestExtractDropsBorderMinutiae(t *testing.T) {
	skel := imgproc.NewBinary(96, 64)
	// Ridge running into the left border: the border endpoint must be
	// dropped, the interior one kept.
	drawLine(skel, 0, 48, 32)
	tp := Extract(skel, flatField(96, 64), 500, ExtractOptions{})
	for _, m := range tp.Minutiae {
		if m.X < 12 {
			t.Fatalf("border minutia survived at %v", m.X)
		}
	}
}

func TestExtractRemovesShortSpur(t *testing.T) {
	skel := imgproc.NewBinary(96, 64)
	drawLine(skel, 20, 75, 32)
	// 3-pixel spur hanging off the ridge: its tip must not be an ending.
	skel.Set(47, 31, true)
	skel.Set(46, 30, true)
	skel.Set(45, 29, true)
	tp := Extract(skel, flatField(96, 64), 500, ExtractOptions{})
	for _, m := range tp.Minutiae {
		if m.Kind == Ending && m.Y < 31 {
			t.Fatalf("spur tip survived: %+v", m)
		}
	}
}

func TestExtractMergesFacingEndpoints(t *testing.T) {
	skel := imgproc.NewBinary(96, 64)
	// Broken ridge: two segments separated by a 3px gap produce two facing
	// endings that should annihilate.
	drawLine(skel, 20, 45, 32)
	drawLine(skel, 49, 75, 32)
	tp := Extract(skel, flatField(96, 64), 500, ExtractOptions{})
	for _, m := range tp.Minutiae {
		if m.X > 40 && m.X < 55 {
			t.Fatalf("facing endpoint survived at %+v", m)
		}
	}
}

func TestExtractEmptySkeleton(t *testing.T) {
	skel := imgproc.NewBinary(64, 64)
	tp := Extract(skel, flatField(64, 64), 500, ExtractOptions{})
	if tp.Count() != 0 {
		t.Fatal("empty skeleton produced minutiae")
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractResultValidates(t *testing.T) {
	skel := imgproc.NewBinary(96, 96)
	drawLine(skel, 20, 75, 48)
	for i := 1; i <= 25; i++ {
		skel.Set(48+i, 48-i, true)
	}
	tp := Extract(skel, flatField(96, 96), 500, ExtractOptions{})
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.DPI != 500 || tp.Width != 96 {
		t.Fatal("metadata wrong")
	}
}

func TestExtractLowCoherenceFilter(t *testing.T) {
	skel := imgproc.NewBinary(96, 64)
	drawLine(skel, 20, 70, 32)
	of := flatField(96, 64)
	for y := range of.Coherence {
		for x := range of.Coherence[y] {
			of.Coherence[y][x] = 0.01 // everything unreliable
		}
	}
	tp := Extract(skel, of, 500, ExtractOptions{})
	if tp.Count() != 0 {
		t.Fatalf("low-coherence minutiae survived: %d", tp.Count())
	}
}

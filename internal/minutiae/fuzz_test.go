package minutiae

import (
	"testing"
	"testing/quick"
)

// Unmarshal must reject, never panic on, arbitrary input — templates
// arrive over the network in the matching service.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %d bytes: %v", len(data), r)
			}
		}()
		tpl, err := Unmarshal(data)
		// Either a clean error or a template that validates.
		if err == nil {
			if verr := tpl.Validate(); verr != nil {
				t.Fatalf("Unmarshal accepted invalid template: %v", verr)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Unmarshal must also survive corrupted versions of valid templates.
func TestUnmarshalCorruptedValidTemplate(t *testing.T) {
	tpl := validTemplate()
	data, err := Marshal(tpl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		for _, flip := range []byte{0xff, 0x80, 0x01} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic with byte %d flipped by %x: %v", i, flip, r)
					}
				}()
				if out, err := Unmarshal(mut); err == nil {
					if verr := out.Validate(); verr != nil {
						t.Fatalf("corrupted template accepted: %v", verr)
					}
				}
			}()
		}
	}
}

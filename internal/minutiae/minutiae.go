// Package minutiae defines the minutiae template representation shared by
// the whole pipeline, image-based minutiae extraction from ridge skeletons,
// spurious-minutiae filtering, and an ISO/IEC 19794-2-style binary template
// codec.
//
// Template coordinates are in pixels at the template's resolution (DPI),
// origin at the top-left of the capture window, x growing right and y
// growing down. Angles are in radians in [0, 2π), measured
// counter-clockwise from the positive x axis, and denote the direction the
// ridge *leaves* the minutia (ISO convention).
package minutiae

import (
	"fmt"
	"math"
)

// Type classifies a minutia.
type Type uint8

const (
	// Ending is a ridge termination (crossing number 1).
	Ending Type = iota + 1
	// Bifurcation is a ridge split (crossing number 3).
	Bifurcation
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case Ending:
		return "ending"
	case Bifurcation:
		return "bifurcation"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Minutia is a single fingerprint feature point.
type Minutia struct {
	// X, Y are pixel coordinates at the template resolution.
	X, Y float64
	// Angle is the ridge direction in radians, [0, 2π).
	Angle float64
	// Kind is ending or bifurcation.
	Kind Type
	// Quality is a per-minutia confidence in [0, 100]; 0 means unreported.
	Quality uint8
}

// Pos returns the position as a coordinate pair.
func (m Minutia) Pos() (x, y float64) { return m.X, m.Y }

// Dist returns the Euclidean distance to another minutia.
func (m Minutia) Dist(o Minutia) float64 {
	return math.Hypot(m.X-o.X, m.Y-o.Y)
}

// Template is a set of minutiae extracted from (or synthesized for) one
// fingerprint impression.
type Template struct {
	// Width, Height are the capture window dimensions in pixels.
	Width, Height int
	// DPI is the spatial resolution the coordinates are expressed at.
	DPI int
	// Minutiae is the feature set.
	Minutiae []Minutia
}

// Clone returns a deep copy of the template.
func (t *Template) Clone() *Template {
	out := &Template{Width: t.Width, Height: t.Height, DPI: t.DPI}
	out.Minutiae = append([]Minutia(nil), t.Minutiae...)
	return out
}

// Count returns the number of minutiae.
func (t *Template) Count() int { return len(t.Minutiae) }

// Validate checks structural invariants: positive dimensions, in-bounds
// coordinates, normalized angles, and known types.
func (t *Template) Validate() error {
	if t.Width <= 0 || t.Height <= 0 {
		return fmt.Errorf("minutiae: invalid dimensions %dx%d", t.Width, t.Height)
	}
	if t.DPI <= 0 {
		return fmt.Errorf("minutiae: invalid DPI %d", t.DPI)
	}
	for i, m := range t.Minutiae {
		if m.X < 0 || m.X >= float64(t.Width) || m.Y < 0 || m.Y >= float64(t.Height) {
			return fmt.Errorf("minutiae: minutia %d out of bounds (%.1f, %.1f)", i, m.X, m.Y)
		}
		if m.Angle < 0 || m.Angle >= 2*math.Pi {
			return fmt.Errorf("minutiae: minutia %d angle %.3f outside [0, 2π)", i, m.Angle)
		}
		if m.Kind != Ending && m.Kind != Bifurcation {
			return fmt.Errorf("minutiae: minutia %d has unknown type %d", i, m.Kind)
		}
	}
	return nil
}

// Centroid returns the mean minutia position, or the window centre when the
// template is empty.
func (t *Template) Centroid() (x, y float64) {
	if len(t.Minutiae) == 0 {
		return float64(t.Width) / 2, float64(t.Height) / 2
	}
	for _, m := range t.Minutiae {
		x += m.X
		y += m.Y
	}
	n := float64(len(t.Minutiae))
	return x / n, y / n
}

// NormalizeAngle wraps an angle into [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

package minutiae

import (
	"math"
	"testing"
)

func validTemplate() *Template {
	return &Template{
		Width: 400, Height: 375, DPI: 500,
		Minutiae: []Minutia{
			{X: 100, Y: 120, Angle: 1.2, Kind: Ending, Quality: 70},
			{X: 210, Y: 80, Angle: 4.5, Kind: Bifurcation, Quality: 55},
		},
	}
}

func TestTypeString(t *testing.T) {
	if Ending.String() != "ending" || Bifurcation.String() != "bifurcation" {
		t.Fatal("type names wrong")
	}
	if Type(9).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

func TestMinutiaDist(t *testing.T) {
	a := Minutia{X: 0, Y: 0}
	b := Minutia{X: 3, Y: 4}
	if a.Dist(b) != 5 {
		t.Fatal("Dist wrong")
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := validTemplate().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Template){
		func(tp *Template) { tp.Width = 0 },
		func(tp *Template) { tp.DPI = 0 },
		func(tp *Template) { tp.Minutiae[0].X = -1 },
		func(tp *Template) { tp.Minutiae[0].X = 400 },
		func(tp *Template) { tp.Minutiae[0].Angle = -0.1 },
		func(tp *Template) { tp.Minutiae[0].Angle = 2 * math.Pi },
		func(tp *Template) { tp.Minutiae[0].Kind = 0 },
	}
	for i, mutate := range cases {
		tp := validTemplate()
		mutate(tp)
		if err := tp.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tp := validTemplate()
	c := tp.Clone()
	c.Minutiae[0].X = 999
	if tp.Minutiae[0].X == 999 {
		t.Fatal("Clone shares minutiae storage")
	}
}

func TestCentroid(t *testing.T) {
	tp := validTemplate()
	x, y := tp.Centroid()
	if x != 155 || y != 100 {
		t.Fatalf("centroid = (%v, %v)", x, y)
	}
	empty := &Template{Width: 100, Height: 50, DPI: 500}
	x, y = empty.Centroid()
	if x != 50 || y != 25 {
		t.Fatalf("empty centroid = (%v, %v)", x, y)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCountIsLen(t *testing.T) {
	if validTemplate().Count() != 2 {
		t.Fatal("Count wrong")
	}
}

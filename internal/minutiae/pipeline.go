package minutiae

import (
	"fmt"

	"fpinterop/internal/imgproc"
)

// ExtractFromImage runs the full image-to-template pipeline on a grayscale
// fingerprint image (ridges dark): normalization, block orientation
// estimation with smoothing, Gabor enhancement, Otsu binarization,
// Zhang–Suen thinning, and crossing-number minutiae extraction with
// spurious filtering.
func ExtractFromImage(img *imgproc.Image, dpi int, opts ExtractOptions) (*Template, error) {
	if img == nil || img.W == 0 || img.H == 0 {
		return nil, fmt.Errorf("minutiae: empty image")
	}
	if dpi <= 0 {
		return nil, fmt.Errorf("minutiae: invalid dpi %d", dpi)
	}
	work := img.Clone().Normalize(0.5, 0.18).Clamp()

	const block = 16
	of := imgproc.EstimateOrientation(work, block)
	of.Smooth(1)

	// Gabor enhancement tuned to the measured ridge frequency (fall back
	// to the 500-dpi prior of 9 px when measurement fails).
	freq := imgproc.EstimateFrequency(work, of, work.W/2, work.H/2, 48)
	if freq < 1.0/16 || freq > 1.0/5 {
		freq = 1.0 / 9
	}
	sigma := 1 / freq / 2.2
	const bins = 16
	kernels := make([][][]float64, bins)
	for b := 0; b < bins; b++ {
		theta := (float64(b) + 0.5) * 3.141592653589793 / float64(bins)
		kernels[b] = imgproc.GaborKernel(theta, freq, sigma, sigma)
	}
	enhanced := imgproc.NewImage(work.W, work.H)
	for y := 0; y < work.H; y++ {
		for x := 0; x < work.W; x++ {
			theta := of.ThetaAt(x, y)
			b := int(theta / 3.141592653589793 * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			r := imgproc.ApplyKernelAt(work, kernels[b], x, y)
			// Negative response = ridge (dark); map to grayscale.
			enhanced.Pix[y*work.W+x] = 0.5 + 0.5*r
		}
	}
	enhanced.Clamp()

	thr := imgproc.OtsuThreshold(enhanced)
	binary := imgproc.Binarize(enhanced, thr)
	skel := imgproc.Thin(binary)
	tpl := Extract(skel, of, dpi, opts)
	return tpl, nil
}

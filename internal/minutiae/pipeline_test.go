package minutiae

import (
	"math"
	"testing"

	"fpinterop/internal/imgproc"
)

// sinusoidalRidges renders clean parallel ridges with a few breaks so the
// extractor has endpoints to find.
func sinusoidalRidges(w, h int, period float64) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.5 + 0.45*math.Cos(2*math.Pi*float64(y)/period)
			im.Set(x, y, v)
		}
	}
	// Punch a wide white gap (3 periods — too wide for Gabor enhancement
	// to heal) into the ridges to create endings.
	for y := 0; y < h; y++ {
		for x := w / 2; x < w/2+3*int(period); x++ {
			if im.At(x, y) < 0.4 {
				im.Set(x, y, 1)
			}
		}
	}
	return im
}

func TestExtractFromImageFindsFeatures(t *testing.T) {
	img := sinusoidalRidges(128, 128, 9)
	tpl, err := ExtractFromImage(img, 500, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tpl.DPI != 500 || tpl.Width != 128 {
		t.Fatal("metadata wrong")
	}
	if tpl.Count() == 0 {
		t.Fatal("no minutiae found in broken-ridge image")
	}
}

func TestExtractFromImageErrors(t *testing.T) {
	if _, err := ExtractFromImage(nil, 500, ExtractOptions{}); err == nil {
		t.Fatal("expected nil-image error")
	}
	if _, err := ExtractFromImage(imgproc.NewImage(32, 32), 0, ExtractOptions{}); err == nil {
		t.Fatal("expected dpi error")
	}
}

func TestExtractFromImageBlankImage(t *testing.T) {
	blank := imgproc.NewImageFilled(96, 96, 1)
	tpl, err := ExtractFromImage(blank, 500, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Count() > 4 {
		t.Fatalf("blank image produced %d minutiae", tpl.Count())
	}
}

func TestExtractFromImageDeterministic(t *testing.T) {
	img := sinusoidalRidges(96, 96, 9)
	a, err := ExtractFromImage(img, 500, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractFromImage(img, 500, ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() {
		t.Fatal("pipeline not deterministic")
	}
}

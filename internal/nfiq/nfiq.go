// Package nfiq implements a NIST-NFIQ-like fingerprint image quality
// assessor. Like the original NFIQ (NISTIR 7151), it maps image features
// that predict matcher performance onto five quality classes, 1 (best) to
// 5 (worst). The paper uses NFIQ to stratify its FNMR analysis (Table 6,
// Figure 5) and cites the NIST recommendation to re-acquire when thumbs or
// index fingers score worse than 3.
package nfiq

import (
	"fmt"

	"fpinterop/internal/imgproc"
)

// Class is an NFIQ-style quality level: 1 is the highest quality, 5 the
// poorest.
type Class int

const (
	// Excellent (NFIQ 1).
	Excellent Class = 1
	// VeryGood (NFIQ 2).
	VeryGood Class = 2
	// Good (NFIQ 3).
	Good Class = 3
	// Fair (NFIQ 4).
	Fair Class = 4
	// Poor (NFIQ 5).
	Poor Class = 5
)

// Valid reports whether c is one of the five defined classes.
func (c Class) Valid() bool { return c >= Excellent && c <= Poor }

// String renders the numeric NFIQ level.
func (c Class) String() string { return fmt.Sprintf("NFIQ-%d", int(c)) }

// Features are the raw image measurements the classifier consumes,
// mirroring the feature families of NIST NFIQ (orientation certainty,
// ridge clarity, contrast, usable area).
type Features struct {
	// OrientationCertainty is the mean orientation coherence over
	// foreground blocks, in [0, 1].
	OrientationCertainty float64
	// Contrast is the grayscale standard deviation over the foreground.
	Contrast float64
	// ForegroundFraction is the fraction of the image with ridge content.
	ForegroundFraction float64
	// RidgeFrequencyValid is the fraction of foreground blocks whose
	// estimated ridge frequency falls in the plausible band for 500 dpi.
	RidgeFrequencyValid float64
}

// ExtractFeatures measures quality features on a grayscale fingerprint
// image (ridges dark, background light).
func ExtractFeatures(img *imgproc.Image) Features {
	const block = 16
	of := imgproc.EstimateOrientation(img, block)

	var f Features
	fgBlocks, cohSum, freqValid := 0, 0.0, 0
	var fgPix []float64
	for by := 0; by < of.BH; by++ {
		for bx := 0; bx < of.BW; bx++ {
			x0, y0 := bx*block, by*block
			// A block is foreground when it has meaningful dark content.
			sub := img.SubImage(x0, y0, block, block)
			mean, std := sub.MeanStd()
			if mean > 0.93 || std < 0.04 {
				continue // background / blank
			}
			fgBlocks++
			cohSum += of.Coherence[by][bx]
			fgPix = append(fgPix, sub.Pix...)
			freq := imgproc.EstimateFrequency(img, of, x0+block/2, y0+block/2, 32)
			// Plausible ridge period at 500 dpi: 5–16 px.
			if freq > 1.0/16 && freq < 1.0/5 {
				freqValid++
			}
		}
	}
	total := of.BH * of.BW
	if total > 0 {
		f.ForegroundFraction = float64(fgBlocks) / float64(total)
	}
	if fgBlocks > 0 {
		f.OrientationCertainty = cohSum / float64(fgBlocks)
		f.RidgeFrequencyValid = float64(freqValid) / float64(fgBlocks)
	}
	if len(fgPix) > 0 {
		fg := &imgproc.Image{W: len(fgPix), H: 1, Pix: fgPix}
		_, f.Contrast = fg.MeanStd()
	}
	return f
}

// Score combines features into a scalar quality utility in [0, 1]
// (higher is better). Weights follow the relative importance NFIQ's
// feature analysis reports: orientation certainty dominates, then ridge
// frequency validity, contrast and coverage.
func (f Features) Score() float64 {
	contrast := f.Contrast / 0.35 // saturating normalization
	if contrast > 1 {
		contrast = 1
	}
	coverage := f.ForegroundFraction / 0.5
	if coverage > 1 {
		coverage = 1
	}
	s := 0.45*f.OrientationCertainty +
		0.25*f.RidgeFrequencyValid +
		0.15*contrast +
		0.15*coverage
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return s
}

// classThresholds map the scalar utility onto the five NFIQ classes.
// Calibrated so that clean synthetic captures score 1–2 and heavily
// degraded ink scans score 4–5.
var classThresholds = [4]float64{0.80, 0.65, 0.50, 0.35}

// ClassFromScore buckets a utility score into an NFIQ class.
func ClassFromScore(s float64) Class {
	switch {
	case s >= classThresholds[0]:
		return Excellent
	case s >= classThresholds[1]:
		return VeryGood
	case s >= classThresholds[2]:
		return Good
	case s >= classThresholds[3]:
		return Fair
	default:
		return Poor
	}
}

// Assess computes the NFIQ class of a fingerprint image.
func Assess(img *imgproc.Image) Class {
	return ClassFromScore(ExtractFeatures(img).Score())
}

// FromFidelity maps a latent capture fidelity φ ∈ [0, 1] onto an NFIQ
// class. The template-level capture path knows the ground-truth fidelity
// of each impression directly; this mapping is the NFIQ measurement model
// for that path (the image path measures instead). The mapping mirrors
// ClassFromScore so the two paths are statistically comparable.
func FromFidelity(phi float64) Class {
	return ClassFromScore(phi)
}

// RecaptureRecommended implements the NIST SP 800-76 guidance the paper
// quotes: re-acquire (up to three times) when the quality of thumbs or
// index fingers is worse than NFIQ 3.
func RecaptureRecommended(c Class) bool {
	return c > Good
}

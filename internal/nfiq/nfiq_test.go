package nfiq

import (
	"math"
	"testing"

	"fpinterop/internal/imgproc"
)

// cleanRidges builds a high-quality sinusoidal ridge image.
func cleanRidges(w, h int, period float64) *imgproc.Image {
	im := imgproc.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, 0.5+0.45*math.Cos(2*math.Pi*float64(x)/period))
		}
	}
	return im
}

// noisyRidges corrupts a ridge image with strong deterministic noise.
func noisyRidges(w, h int, period, noise float64) *imgproc.Image {
	im := cleanRidges(w, h, period)
	seed := uint64(777)
	for i := range im.Pix {
		seed = seed*6364136223846793005 + 1442695040888963407
		im.Pix[i] += noise * (float64(seed>>40)/float64(1<<24) - 0.5)
	}
	return im.Clamp()
}

func TestClassValidity(t *testing.T) {
	for c := Excellent; c <= Poor; c++ {
		if !c.Valid() {
			t.Fatalf("%v should be valid", c)
		}
	}
	if Class(0).Valid() || Class(6).Valid() {
		t.Fatal("out-of-range classes reported valid")
	}
	if Excellent.String() != "NFIQ-1" {
		t.Fatal("class rendering wrong")
	}
}

func TestCleanRidgesScoreWell(t *testing.T) {
	img := cleanRidges(128, 128, 9)
	c := Assess(img)
	if c > VeryGood {
		t.Fatalf("clean ridges assessed %v, want NFIQ 1-2", c)
	}
}

func TestHeavyNoiseScoresWorseThanClean(t *testing.T) {
	clean := Assess(cleanRidges(128, 128, 9))
	noisy := Assess(noisyRidges(128, 128, 9, 1.4))
	if noisy <= clean {
		t.Fatalf("noisy image class %v not worse than clean %v", noisy, clean)
	}
}

func TestBlankImageScoresPoor(t *testing.T) {
	blank := imgproc.NewImageFilled(128, 128, 1)
	if c := Assess(blank); c != Poor {
		t.Fatalf("blank image assessed %v, want NFIQ-5", c)
	}
}

func TestFeatureMonotonicityInNoise(t *testing.T) {
	// Score should decrease monotonically (weakly) as noise increases.
	prev := math.Inf(1)
	for _, noise := range []float64{0, 0.6, 1.2, 1.8} {
		s := ExtractFeatures(noisyRidges(128, 128, 9, noise)).Score()
		if s > prev+0.05 {
			t.Fatalf("score rose with noise: %v after %v", s, prev)
		}
		prev = s
	}
}

func TestExtractFeaturesRanges(t *testing.T) {
	f := ExtractFeatures(noisyRidges(96, 96, 9, 0.5))
	for name, v := range map[string]float64{
		"certainty": f.OrientationCertainty,
		"coverage":  f.ForegroundFraction,
		"freqvalid": f.RidgeFrequencyValid,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
	if f.Contrast < 0 {
		t.Fatal("negative contrast")
	}
}

func TestClassFromScoreThresholds(t *testing.T) {
	cases := []struct {
		score float64
		want  Class
	}{
		{0.95, Excellent},
		{0.80, Excellent},
		{0.70, VeryGood},
		{0.55, Good},
		{0.40, Fair},
		{0.10, Poor},
	}
	for _, c := range cases {
		if got := ClassFromScore(c.score); got != c.want {
			t.Fatalf("ClassFromScore(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestFromFidelityMonotone(t *testing.T) {
	prev := Poor + 1
	for _, phi := range []float64{0.1, 0.3, 0.45, 0.6, 0.75, 0.95} {
		c := FromFidelity(phi)
		if !c.Valid() {
			t.Fatalf("FromFidelity(%v) invalid", phi)
		}
		if c > prev {
			t.Fatalf("class got worse as fidelity rose: %v after %v", c, prev)
		}
		prev = c
	}
	if FromFidelity(0.95) != Excellent || FromFidelity(0.05) != Poor {
		t.Fatal("fidelity extremes misclassified")
	}
}

func TestRecaptureRecommendation(t *testing.T) {
	// NIST SP 800-76: reacquire when quality is worse than 3.
	if RecaptureRecommended(Good) {
		t.Fatal("NFIQ-3 should not trigger recapture")
	}
	if !RecaptureRecommended(Fair) || !RecaptureRecommended(Poor) {
		t.Fatal("NFIQ-4/5 must trigger recapture")
	}
}

func TestScoreBounded(t *testing.T) {
	f := Features{OrientationCertainty: 5, Contrast: 5, ForegroundFraction: 5, RidgeFrequencyValid: 5}
	if s := f.Score(); s != 1 {
		t.Fatalf("saturated score = %v, want 1", s)
	}
	if s := (Features{}).Score(); s != 0 {
		t.Fatalf("zero-feature score = %v, want 0", s)
	}
}

package obs

import (
	"testing"
	"time"
)

// TestRecordPathZeroAllocs pins the tentpole constraint: recording on
// resolved handles — and dispatching to registered hooks — allocates
// nothing. If a future change boxes a value or grows a closure on any
// of these paths, this fails before any benchmark notices.
func TestRecordPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "", LatencyBuckets())
	vc := r.CounterVec("vc_total", "", "shard").With("shard-0")
	vh := r.HistogramVec("vh_ns", "", LatencyBuckets(), "shard").With("shard-0")
	hooks := NewHooks()
	hooks.OnBefore(func(op, backend string) {})
	hooks.OnAfter(func(e Event) {})
	hooks.OnError(func(e Event) {})
	ev := Event{Op: "identify", Backend: "local", Duration: time.Millisecond}
	t0 := time.Now()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(123_456) }},
		{"Histogram.ObserveSince", func() { h.ObserveSince(t0) }},
		{"Vec counter handle", func() { vc.Inc() }},
		{"Vec histogram handle", func() { vh.Observe(42) }},
		{"Hooks.Before", func() { hooks.Before("identify", "local") }},
		{"Hooks.After", func() { hooks.After(ev) }},
		{"nil Counter", func() { (*Counter)(nil).Inc() }},
		{"nil Histogram", func() { (*Histogram)(nil).Observe(1) }},
		{"nil Hooks", func() { (*Hooks)(nil).After(ev) }},
	}
	for _, tc := range cases {
		tc.fn() // warm
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_ns", "", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1001)
	}
}

func BenchmarkHooksAfter(b *testing.B) {
	hooks := NewHooks()
	var n int64
	hooks.OnAfter(func(e Event) { n += int64(e.Duration) })
	ev := Event{Op: "identify", Backend: "local", Duration: time.Microsecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hooks.After(ev)
	}
}

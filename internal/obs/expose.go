package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
)

// famSnapshot is a point-in-time copy of one family, taken under the
// family lock so encoding can run without holding any lock (the
// repo's lock discipline bans blocking I/O under mutexes).
type famSnapshot struct {
	name   string
	help   string
	kind   metricKind
	keys   []string
	bounds []int64
	series []seriesSnapshot
}

type seriesSnapshot struct {
	labels  []string
	value   int64  // counter (as int64) or gauge
	count   uint64 // histogram observation count
	sum     int64
	buckets []uint64 // raw per-bucket counts, len(bounds)+1
}

// snapshot copies every family's current values.
func (r *Registry) snapshot() []famSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	out := make([]famSnapshot, 0, len(fams))
	for _, f := range fams {
		fs := famSnapshot{name: f.name, help: f.help, kind: f.kind, keys: f.keys, bounds: f.bounds}
		f.mu.Lock()
		for _, s := range f.order {
			ss := seriesSnapshot{labels: s.labels}
			switch f.kind {
			case kindCounter:
				ss.value = int64(s.c.Value())
			case kindGauge:
				ss.value = s.g.Value()
			case kindHistogram:
				ss.buckets = make([]uint64, len(s.h.counts))
				ss.count, ss.sum = s.h.snapshotInto(ss.buckets)
			}
			fs.series = append(fs.series, ss)
		}
		for key, fn := range f.gaugeF {
			var labels []string
			if key != "" {
				labels = strings.Split(key, labelSep)
			}
			fs.series = append(fs.series, seriesSnapshot{labels: labels, value: fn()})
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one
// line per series, histograms expanded into cumulative _bucket lines
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter, kindGauge:
				b.WriteString(f.name)
				writeLabelsLe(&b, f.keys, s.labels, "", "")
				fmt.Fprintf(&b, " %d\n", s.value)
			case kindHistogram:
				var cum uint64
				for i := range s.buckets {
					cum += s.buckets[i]
					le := "+Inf"
					if i < len(f.bounds) {
						le = strconv.FormatInt(f.bounds[i], 10)
					}
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabelsLe(&b, f.keys, s.labels, "le", le)
					fmt.Fprintf(&b, " %d\n", cum)
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabelsLe(&b, f.keys, s.labels, "", "")
				fmt.Fprintf(&b, " %d\n", s.sum)
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabelsLe(&b, f.keys, s.labels, "", "")
				fmt.Fprintf(&b, " %d\n", s.count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabelsLe renders {k1="v1",...}, appending an optional extra
// label (Prometheus histogram "le").
func writeLabelsLe(b *strings.Builder, keys, values []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `"\`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteJSON writes the registry as a single flat JSON object in the
// spirit of expvar's /debug/vars: one key per series — the family
// name, plus {k=v,...} when labeled — mapping to the value for
// counters and gauges, or to {count, sum, p50, p90, p99, buckets}
// for histograms. Keys sort lexicographically (encoding/json map
// order), so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	flat := make(map[string]any)
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			key := f.name
			if len(f.keys) > 0 {
				var b strings.Builder
				b.WriteString(f.name)
				b.WriteByte('{')
				for i, k := range f.keys {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(k)
					b.WriteByte('=')
					b.WriteString(s.labels[i])
				}
				b.WriteByte('}')
				key = b.String()
			}
			switch f.kind {
			case kindCounter, kindGauge:
				flat[key] = s.value
			case kindHistogram:
				flat[key] = histJSON(f.bounds, s)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

func histJSON(bounds []int64, s seriesSnapshot) map[string]any {
	// Rebuild a throwaway histogram so quantile estimation shares the
	// exact interpolation logic the live handles use.
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(s.buckets))}
	for i, n := range s.buckets {
		h.counts[i].Store(n)
	}
	h.count.Store(s.count)
	h.sum.Store(s.sum)
	buckets := make([]map[string]any, 0, len(s.buckets))
	var cum uint64
	for i, n := range s.buckets {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatInt(bounds[i], 10)
		}
		buckets = append(buckets, map[string]any{"le": le, "count": cum})
	}
	return map[string]any{
		"count":   s.count,
		"sum":     s.sum,
		"p50":     h.Quantile(0.50),
		"p90":     h.Quantile(0.90),
		"p99":     h.Quantile(0.99),
		"buckets": buckets,
	}
}

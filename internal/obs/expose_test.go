package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "Total requests.").Add(7)
	r.GaugeVec("shard_degraded", "1 while degraded.", "shard").With("shard-0").Set(1)
	h := r.Histogram("op_latency_ns", "Latency.", []int64{1000, 10000})
	h.Observe(500)
	h.Observe(5000)
	h.Observe(50000)
	r.GaugeFunc("pool_in_use", "Scratch frames out.", func() int64 { return 3 })
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := exampleRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 7",
		`shard_degraded{shard="shard-0"} 1`,
		"# TYPE op_latency_ns histogram",
		`op_latency_ns_bucket{le="1000"} 1`,
		`op_latency_ns_bucket{le="10000"} 2`,
		`op_latency_ns_bucket{le="+Inf"} 3`,
		"op_latency_ns_sum 55500",
		"op_latency_ns_count 3",
		"# TYPE pool_in_use gauge",
		"pool_in_use 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "", "path").With(`a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c_total{path="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := exampleRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal([]byte(b.String()), &flat); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got := flat["requests_total"]; got != float64(7) {
		t.Fatalf("requests_total = %v, want 7", got)
	}
	if got := flat["shard_degraded{shard=shard-0}"]; got != float64(1) {
		t.Fatalf("labeled gauge = %v, want 1", got)
	}
	hist, ok := flat["op_latency_ns"].(map[string]any)
	if !ok {
		t.Fatalf("op_latency_ns not an object: %v", flat["op_latency_ns"])
	}
	if hist["count"] != float64(3) || hist["sum"] != float64(55500) {
		t.Fatalf("histogram summary wrong: %v", hist)
	}
	for _, k := range []string{"p50", "p90", "p99", "buckets"} {
		if _, ok := hist[k]; !ok {
			t.Fatalf("histogram JSON missing %q: %v", k, hist)
		}
	}
	if got := flat["pool_in_use"]; got != float64(3) {
		t.Fatalf("pool_in_use = %v, want 3", got)
	}
}

func TestExpositionIsDeterministic(t *testing.T) {
	r := exampleRegistry()
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of an idle registry differ")
	}
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event describes one completed operation, delivered to after and
// error hooks.
type Event struct {
	// Op is the operation name ("enroll", "identify", ...).
	Op string
	// Backend is the deployment shape serving the op ("local",
	// "sharded", "remote").
	Backend string
	// Duration is the wall time the operation took.
	Duration time.Duration
	// Err is the operation's error, nil on success.
	Err error
	// Class is a low-cardinality classification of Err ("canceled",
	// "not_found", ...), empty on success. Suitable as a metric label
	// where Err.Error() is not.
	Class string
}

// Hooks is a lifecycle bus: callers register functions to run before
// and after operations (and on errors), and instrumented code
// dispatches without knowing who is listening — the observer idiom.
// Registration copies-on-write into an atomically swapped set, so
// dispatch is lock-free: one atomic load plus direct calls. A nil
// *Hooks dispatches to nobody. Hook functions run synchronously on
// the operation's goroutine and must not block.
type Hooks struct {
	mu  sync.Mutex // serializes registration
	set atomic.Pointer[hookSet]
}

type hookSet struct {
	before []func(op, backend string)
	after  []func(Event)
	onErr  []func(Event)
}

// NewHooks returns an empty bus.
func NewHooks() *Hooks { return &Hooks{} }

func (h *Hooks) update(f func(*hookSet)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := &hookSet{}
	if cur := h.set.Load(); cur != nil {
		next.before = append(next.before, cur.before...)
		next.after = append(next.after, cur.after...)
		next.onErr = append(next.onErr, cur.onErr...)
	}
	f(next)
	h.set.Store(next)
}

// OnBefore registers fn to run as each operation starts.
func (h *Hooks) OnBefore(fn func(op, backend string)) {
	if h == nil || fn == nil {
		return
	}
	h.update(func(s *hookSet) { s.before = append(s.before, fn) })
}

// OnAfter registers fn to run as each operation completes,
// success or failure.
func (h *Hooks) OnAfter(fn func(Event)) {
	if h == nil || fn == nil {
		return
	}
	h.update(func(s *hookSet) { s.after = append(s.after, fn) })
}

// OnError registers fn to run only when an operation fails; it runs
// after the OnAfter hooks.
func (h *Hooks) OnError(fn func(Event)) {
	if h == nil || fn == nil {
		return
	}
	h.update(func(s *hookSet) { s.onErr = append(s.onErr, fn) })
}

// Before dispatches the before hooks.
//
//fpvet:hotpath dispatch runs on zero-alloc request paths.
func (h *Hooks) Before(op, backend string) {
	if h == nil {
		return
	}
	s := h.set.Load()
	if s == nil {
		return
	}
	for _, fn := range s.before {
		fn(op, backend)
	}
}

// After dispatches the after hooks, then the error hooks when
// e.Err is non-nil.
//
//fpvet:hotpath dispatch runs on zero-alloc request paths.
func (h *Hooks) After(e Event) {
	if h == nil {
		return
	}
	s := h.set.Load()
	if s == nil {
		return
	}
	for _, fn := range s.after {
		fn(e)
	}
	if e.Err == nil {
		return
	}
	for _, fn := range s.onErr {
		fn(e)
	}
}

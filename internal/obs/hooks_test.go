package obs

import (
	"errors"
	"testing"
	"time"
)

func TestHooksDispatchOrder(t *testing.T) {
	h := NewHooks()
	var trace []string
	h.OnBefore(func(op, backend string) { trace = append(trace, "before:"+op+":"+backend) })
	h.OnAfter(func(e Event) { trace = append(trace, "after:"+e.Op) })
	h.OnError(func(e Event) { trace = append(trace, "error:"+e.Class) })

	h.Before("identify", "local")
	h.After(Event{Op: "identify", Backend: "local", Duration: time.Millisecond})
	h.After(Event{Op: "enroll", Err: errors.New("boom"), Class: "other"})

	want := []string{"before:identify:local", "after:identify", "after:enroll", "error:other"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q (all %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestHooksMultipleListeners(t *testing.T) {
	h := NewHooks()
	calls := 0
	h.OnAfter(func(Event) { calls++ })
	h.OnAfter(func(Event) { calls++ })
	h.After(Event{Op: "x"})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestNilHooksSafe(t *testing.T) {
	var h *Hooks
	h.OnBefore(func(string, string) {})
	h.OnAfter(func(Event) {})
	h.OnError(func(Event) {})
	h.Before("op", "local")
	h.After(Event{Err: errors.New("x")})
}

func TestEmptyHooksSafe(t *testing.T) {
	h := NewHooks()
	h.Before("op", "local")
	h.After(Event{})
}

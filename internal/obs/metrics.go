package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter silently discards records, so handles
// resolved from a nil Registry cost one predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//fpvet:hotpath called from zero-alloc request paths
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta (negative deltas are ignored: counters only go up).
//
//fpvet:hotpath called from zero-alloc request paths
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(uint64(delta))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-receiver safe like
// Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//fpvet:hotpath called from zero-alloc request paths
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
//
//fpvet:hotpath called from zero-alloc request paths
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
//
//fpvet:hotpath called from zero-alloc request paths
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one.
//
//fpvet:hotpath called from zero-alloc request paths
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive
// upper bounds in ascending order; observations above the last bound
// land in an implicit +Inf bucket. Recording is lock-free: one linear
// scan over the bounds (tens of entries, cache-resident) and three
// atomic adds. A nil Histogram discards records.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
}

// Observe records one value.
//
//fpvet:hotpath one bounds scan plus three atomic adds
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since t0 — the common
// latency-histogram idiom: h.ObserveSince(start).
//
//fpvet:hotpath called from zero-alloc request paths
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) by
// linear interpolation inside the bucket holding that rank.
// Observations in the +Inf bucket are attributed to the last finite
// bound, so an estimate never invents a value the bounds cannot
// express. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: report the largest expressible bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := float64(rank-cum) / float64(n)
		return lo + int64(float64(hi-lo)*frac)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotInto copies the bucket counters into dst (len(counts)).
func (h *Histogram) snapshotInto(dst []uint64) (count uint64, sum int64) {
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return h.count.Load(), h.sum.Load()
}

// LatencyBuckets returns the standard latency bounds in nanoseconds:
// 1µs to 10s with 1-2.5-5 spacing. Callers may append or slice the
// result freely; each call returns a fresh slice.
func LatencyBuckets() []int64 {
	return []int64{
		1_000, 2_500, 5_000, // 1µs .. 5µs
		10_000, 25_000, 50_000, // 10µs .. 50µs
		100_000, 250_000, 500_000, // 100µs .. 500µs
		1_000_000, 2_500_000, 5_000_000, // 1ms .. 5ms
		10_000_000, 25_000_000, 50_000_000, // 10ms .. 50ms
		100_000_000, 250_000_000, 500_000_000, // 100ms .. 500ms
		1_000_000_000, 2_500_000_000, 5_000_000_000, // 1s .. 5s
		10_000_000_000, // 10s
	}
}

// SizeBuckets returns power-of-four bounds from 1 to 1Mi, suitable
// for shortlist sizes, fan-out widths, and frame byte counts.
func SizeBuckets() []int64 {
	return []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

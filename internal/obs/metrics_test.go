package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // counters only go up; negative deltas are dropped
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestNilRegistryHandsOutNilHandles(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", LatencyBuckets()).Observe(1)
	r.GaugeFunc("d", "", func() int64 { return 1 })
	r.CounterVec("e", "", "k").With("v").Inc()
	r.GaugeVec("f", "", "k").With("v").Set(1)
	r.HistogramVec("g", "", SizeBuckets(), "k").With("v").Observe(1)
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5126 {
		t.Fatalf("sum = %d, want 5126", got)
	}
	want := []uint64{2, 2, 0, 1} // [<=10]=2 (5,10), (10,100]=2 (11,100), (100,1000]=0, +Inf=1
	got := make([]uint64, 4)
	h.snapshotInto(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(int64((i*40 + 99) / 100))
	}
	if got := h.Quantile(0.5); got < 15 || got > 25 {
		t.Fatalf("p50 = %d, want ~20", got)
	}
	if got := h.Quantile(0.99); got < 35 || got > 40 {
		t.Fatalf("p99 = %d, want ~40", got)
	}
	if got := h.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("p0 = %d, want in first bucket", got)
	}
	if got := h.Quantile(1); got != 40 {
		t.Fatalf("p100 = %d, want 40", got)
	}
}

func TestHistogramQuantileOverflowClampsToLastBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{10})
	h.Observe(99999)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("overflow quantile = %d, want last bound 10", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "help")
	b := r.Counter("shared_total", "help")
	if a != b {
		t.Fatal("same-schema re-registration must return the same handle")
	}
	v1 := r.CounterVec("vec_total", "", "shard")
	v2 := r.CounterVec("vec_total", "", "shard")
	if v1.With("s0") != v2.With("s0") {
		t.Fatal("vec series must be shared across re-registrations")
	}
	if v1.With("s0") == v1.With("s1") {
		t.Fatal("distinct label values must get distinct series")
	}
}

func TestRegistrySchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestLatencyBucketsAscending(t *testing.T) {
	for _, bs := range [][]int64{LatencyBuckets(), SizeBuckets()} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bs)
			}
		}
	}
}

// Package obs is the repo's stdlib-only observability core: atomic
// metric primitives (Counter, Gauge, Histogram) organised into a
// Registry of labeled families, two exposition encoders (Prometheus
// text format and expvar-style JSON), a lifecycle-hook bus for
// callers that want to tap operations without the core knowing
// (Hooks), and a structured key=value logger (Logger).
//
// The design rule throughout is that recording must be safe on the
// zero-allocation hot path:
//
//   - every record method (Add, Inc, Set, Observe) is a handful of
//     atomic operations — no locks, no maps, no interface boxing;
//   - every handle is nil-receiver safe, so code instrumented against
//     a nil *Registry compiles to near-no-ops and needs no branches
//     at the call site;
//   - label resolution (Vec.With) happens once at setup time, never
//     per record — callers keep the resolved *Counter/*Histogram.
//
// Exposition, registration, and hook registration take locks and
// allocate freely; they are control-plane operations.
package obs

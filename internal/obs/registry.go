package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and hands out record handles. All
// methods are safe for concurrent use and get-or-create: registering
// the same name twice with an identical schema returns the existing
// family, so independent components (per-shard stores, client and
// server of the same process) can share families. Re-registering a
// name with a different kind, label keys, or bucket bounds panics —
// that is a programming error, caught at setup time.
//
// Every method is nil-receiver safe and returns nil handles from a
// nil *Registry, which record methods in turn treat as no-ops: code
// can instrument unconditionally and let a nil registry disable the
// whole plane.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label-key schema and any
// number of label-value series.
type family struct {
	name   string
	help   string
	kind   metricKind
	keys   []string
	bounds []int64 // histogram families only

	mu     sync.Mutex
	order  []*series
	byKey  map[string]*series
	gaugeF map[string]func() int64 // callback gauges, keyed like byKey
}

// series is one label-value combination inside a family.
type series struct {
	labels []string // values, parallel to family.keys
	c      *Counter
	g      *Gauge
	h      *Histogram
}

const labelSep = "\x1f"

func (r *Registry) lookup(name, help string, kind metricKind, keys []string, bounds []int64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.keys, keys) || !equalInt64s(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema (have %s%v, want %s%v)",
				name, f.kind, f.keys, kind, keys))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		keys:   append([]string(nil), keys...),
		bounds: append([]int64(nil), bounds...),
		byKey:  make(map[string]*series),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values %v, got %d",
			f.name, len(f.keys), f.keys, len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).with(nil).g
}

// Histogram registers (or finds) an unlabeled histogram with the
// given inclusive upper bounds (ascending; an implicit +Inf bucket is
// added).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return r.lookup(name, help, kindHistogram, nil, bounds).with(nil).h
}

// GaugeFunc registers a callback gauge evaluated at exposition time —
// for values some other structure already maintains (pool occupancy,
// map sizes). Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gaugeF == nil {
		f.gaugeF = make(map[string]func() int64)
	}
	f.gaugeF[""] = fn
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, keys, nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, keys, nil)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []int64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, keys, bounds)}
}

func checkBounds(name string, bounds []int64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("obs: histogram %q bounds must be ascending", name))
	}
}

// CounterVec resolves label values to Counter handles. Resolution
// takes the family lock and may allocate — do it at setup time and
// keep the handle.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per key,
// in key order), creating the series on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values).c
}

// GaugeVec resolves label values to Gauge handles.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values).g
}

// HistogramVec resolves label values to Histogram handles.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(values).h
}

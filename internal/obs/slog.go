package obs

import (
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger is a minimal structured logger emitting one key=value line
// per call:
//
//	ts=2026-08-08T10:11:12.123Z level=info msg=listening addr=127.0.0.1:7400 enrollments=1000
//
// Values print bare when they contain no spaces, quotes, or '='; they
// are strconv-quoted otherwise, so lines stay machine-parseable
// (split on spaces outside quotes). A nil *Logger discards
// everything. Logging is not a hot-path facility: calls allocate
// freely.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test seam; nil means time.Now
}

// NewLogger returns a logger writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w}
}

// Info emits a level=info line. kv alternates keys and values; a
// trailing key without a value prints as key=MISSING.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Error emits a level=error line.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil || l.w == nil {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level)
	b.WriteString(" msg=")
	b.WriteString(formatValue(msg))
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		} else {
			b.WriteString("MISSING")
		}
	}
	b.WriteByte('\n')
	line := b.String()
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, line)
}

func formatValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case time.Duration:
		s = x.String()
	case fmt.Stringer:
		s = x.String()
	default:
		s = fmt.Sprint(x)
	}
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// stdAdapter lets code that wants a *log.Logger (matchsvc.NewServer)
// feed its lines through the structured logger.
type stdAdapter struct {
	l         *Logger
	component string
}

func (a stdAdapter) Write(p []byte) (int, error) {
	a.l.Info(strings.TrimRight(string(p), "\n"), "component", a.component)
	return len(p), nil
}

// StdLogger returns a *log.Logger whose every line becomes a
// structured Info entry tagged component=name.
func (l *Logger) StdLogger(name string) *log.Logger {
	return log.New(stdAdapter{l: l, component: name}, "", 0)
}

package obs

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 10, 11, 12, 123_000_000, time.UTC)
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.now = fixedClock
	l.Info("listening", "addr", "127.0.0.1:7400", "enrollments", 1000)
	want := "ts=2026-08-08T10:11:12.123Z level=info msg=listening addr=127.0.0.1:7400 enrollments=1000\n"
	if b.String() != want {
		t.Fatalf("line = %q, want %q", b.String(), want)
	}
}

func TestLoggerQuotesAndTypes(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.now = fixedClock
	l.Error("wal recovery", "err", errors.New("torn tail"), "dur", 1500*time.Millisecond, "ok", true, "empty", "")
	line := b.String()
	for _, want := range []string{
		"level=error",
		`msg="wal recovery"`,
		`err="torn tail"`,
		"dur=1.5s",
		"ok=true",
		`empty=""`,
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("line missing %q: %q", want, line)
		}
	}
}

func TestLoggerOddKeyValues(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Info("x", "dangling")
	if !strings.Contains(b.String(), "dangling=MISSING") {
		t.Fatalf("odd kv not marked: %q", b.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("dropped")
	l.Error("dropped")
}

func TestLoggerLinesParseable(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Info("listening", "addr", "127.0.0.1:9")
	re := regexp.MustCompile(`^ts=\S+ level=info msg=listening addr=127\.0\.0\.1:9\n$`)
	if !re.MatchString(b.String()) {
		t.Fatalf("line unparseable: %q", b.String())
	}
}

func TestStdLoggerAdapter(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.now = fixedClock
	std := l.StdLogger("matchsvc")
	std.Printf("identify: shortlist %d of %d", 32, 1000)
	line := b.String()
	if !strings.Contains(line, `msg="identify: shortlist 32 of 1000"`) || !strings.Contains(line, "component=matchsvc") {
		t.Fatalf("adapter line = %q", line)
	}
}

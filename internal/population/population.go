// Package population generates the synthetic study cohort. The paper
// collected fingerprints from 494 participants at West Virginia University
// in 2012; Figure 1 summarizes their age and ethnicity distributions (53%
// aged 20–29, 57.2% Caucasian). This package reproduces those demographics
// and attaches the per-subject physiological traits — skin moisture,
// elasticity, ridge wear — that drive capture quality in the sensor models.
package population

import (
	"fmt"
	"sync"

	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

// AgeGroup bins participant age as in the paper's Figure 1.
type AgeGroup int

const (
	// AgeUnder20 is younger than 20 years.
	AgeUnder20 AgeGroup = iota + 1
	// Age20s is 20–29 years (the dominant group, 53%).
	Age20s
	// Age30s is 30–39 years.
	Age30s
	// Age40s is 40–49 years.
	Age40s
	// Age50s is 50–59 years.
	Age50s
	// Age60Plus is 60 years or older.
	Age60Plus
)

// String returns the bin label.
func (a AgeGroup) String() string {
	switch a {
	case AgeUnder20:
		return "<20"
	case Age20s:
		return "20-29"
	case Age30s:
		return "30-39"
	case Age40s:
		return "40-49"
	case Age50s:
		return "50-59"
	case Age60Plus:
		return "60+"
	default:
		return fmt.Sprintf("age(%d)", int(a))
	}
}

// ageDistribution reproduces Figure 1: 53% of participants were 20–29.
var ageDistribution = []struct {
	group  AgeGroup
	weight float64
}{
	{AgeUnder20, 0.06},
	{Age20s, 0.53},
	{Age30s, 0.16},
	{Age40s, 0.11},
	{Age50s, 0.09},
	{Age60Plus, 0.05},
}

// Ethnicity bins participant ethnicity as in the paper's Figure 1.
type Ethnicity int

const (
	// Caucasian is the dominant group (57.2%).
	Caucasian Ethnicity = iota + 1
	// Asian participants.
	Asian
	// AfricanAmerican participants.
	AfricanAmerican
	// MiddleEastern participants.
	MiddleEastern
	// Hispanic participants.
	Hispanic
	// OtherEthnicity covers the remaining groups.
	OtherEthnicity
)

// String returns the bin label.
func (e Ethnicity) String() string {
	switch e {
	case Caucasian:
		return "Caucasian"
	case Asian:
		return "Asian"
	case AfricanAmerican:
		return "African American"
	case MiddleEastern:
		return "Middle Eastern"
	case Hispanic:
		return "Hispanic"
	case OtherEthnicity:
		return "Other"
	default:
		return fmt.Sprintf("ethnicity(%d)", int(e))
	}
}

// ethnicityDistribution reproduces Figure 1: 57.2% Caucasian.
var ethnicityDistribution = []struct {
	group  Ethnicity
	weight float64
}{
	{Caucasian, 0.572},
	{Asian, 0.168},
	{AfricanAmerican, 0.095},
	{MiddleEastern, 0.07},
	{Hispanic, 0.055},
	{OtherEthnicity, 0.04},
}

// Traits are per-subject physiological factors that modulate how well the
// finger images on a sensor. All are in [0, 1]; higher is more favourable.
type Traits struct {
	// SkinMoisture: dry skin (low) produces faint, broken ridges.
	SkinMoisture float64
	// SkinElasticity: inelastic skin (low, correlated with age) distorts
	// more under placement pressure.
	SkinElasticity float64
	// RidgeDefinition: worn or fine ridges (low) lower image contrast.
	RidgeDefinition float64
	// Cooperation: how consistently the subject places the finger;
	// low cooperation increases placement jitter.
	Cooperation float64
}

// Finger identifies one of the ten fingers, in ten-print card order.
type Finger int

const (
	// RightThumb through RightLittle are the right-hand fingers.
	RightThumb Finger = iota
	RightIndex
	RightMiddle
	RightRing
	RightLittle
	// LeftThumb through LeftLittle are the left-hand fingers.
	LeftThumb
	LeftIndex
	LeftMiddle
	LeftRing
	LeftLittle
	numFingers
)

// fingerNames are the stable derivation keys for per-finger masters.
var fingerNames = [numFingers]string{
	"R-thumb", "R-index", "R-middle", "R-ring", "R-little",
	"L-thumb", "L-index", "L-middle", "L-ring", "L-little",
}

// String returns the conventional finger label.
func (f Finger) String() string {
	if f < 0 || f >= numFingers {
		return fmt.Sprintf("finger(%d)", int(f))
	}
	return fingerNames[f]
}

// Valid reports whether f names one of the ten fingers.
func (f Finger) Valid() bool { return f >= 0 && f < numFingers }

// Subject is one study participant.
type Subject struct {
	// ID is the participant number, 0-based.
	ID int
	// Age and Ethnicity are the demographic bins of Figure 1.
	Age       AgeGroup
	Ethnicity Ethnicity
	// Traits drive capture quality.
	Traits Traits
	// master is the right-index-finger master print (the finger the study
	// matches), generated eagerly; other fingers are generated lazily.
	master *ridge.Master
	src    *rng.Source

	mu      sync.Mutex
	fingers map[Finger]*ridge.Master
	genOpts ridge.GenOptions
}

// Cohort is the full set of study participants.
type Cohort struct {
	Subjects []*Subject
}

// CohortOptions configures cohort generation.
type CohortOptions struct {
	// Size is the number of participants (default 494, the paper's cohort).
	Size int
	// MeanMinutiae forwards to master-fingerprint generation.
	MeanMinutiae float64
}

func (o CohortOptions) withDefaults() CohortOptions {
	if o.Size == 0 {
		o.Size = 494
	}
	return o
}

// NewCohort deterministically generates a cohort from the study source.
func NewCohort(src *rng.Source, opts CohortOptions) *Cohort {
	opts = opts.withDefaults()
	c := &Cohort{Subjects: make([]*Subject, opts.Size)}
	for i := 0; i < opts.Size; i++ {
		ssrc := src.Child(fmt.Sprintf("subject/%d", i))
		c.Subjects[i] = newSubject(i, ssrc, opts)
	}
	return c
}

func newSubject(id int, src *rng.Source, opts CohortOptions) *Subject {
	s := &Subject{ID: id, src: src}
	// Demographics.
	ageWeights := make([]float64, len(ageDistribution))
	for i, a := range ageDistribution {
		ageWeights[i] = a.weight
	}
	s.Age = ageDistribution[src.Pick(ageWeights)].group
	ethWeights := make([]float64, len(ethnicityDistribution))
	for i, e := range ethnicityDistribution {
		ethWeights[i] = e.weight
	}
	s.Ethnicity = ethnicityDistribution[src.Pick(ethWeights)].group

	// Traits: age degrades moisture and elasticity; everything has
	// individual variation.
	agePenalty := map[AgeGroup]float64{
		AgeUnder20: 0.00, Age20s: 0.02, Age30s: 0.06,
		Age40s: 0.12, Age50s: 0.20, Age60Plus: 0.30,
	}[s.Age]
	tsrc := src.Child("traits")
	s.Traits = Traits{
		SkinMoisture:    tsrc.TruncNorm(0.72-agePenalty, 0.15, 0.05, 1),
		SkinElasticity:  tsrc.TruncNorm(0.78-agePenalty*1.2, 0.12, 0.05, 1),
		RidgeDefinition: tsrc.TruncNorm(0.75-agePenalty*0.8, 0.14, 0.05, 1),
		Cooperation:     tsrc.TruncNorm(0.8, 0.12, 0.2, 1),
	}

	// Master fingerprint for the right index finger (the study's finger);
	// the other nine are generated on demand by Finger.
	s.genOpts = ridge.GenOptions{MeanMinutiae: opts.MeanMinutiae}
	s.master = ridge.Generate(
		fmt.Sprintf("subject/%d/finger/R-index", id),
		src.Child("finger/R-index"),
		s.genOpts,
	)
	return s
}

// Master returns the subject's right-index-finger master print.
func (s *Subject) Master() *ridge.Master { return s.master }

// Finger returns the master print for any of the subject's ten fingers,
// generating it deterministically on first use. It returns an error for
// invalid finger identifiers. Safe for concurrent use.
func (s *Subject) Finger(f Finger) (*ridge.Master, error) {
	if !f.Valid() {
		return nil, fmt.Errorf("population: invalid finger %d", int(f))
	}
	if f == RightIndex {
		return s.master, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fingers == nil {
		s.fingers = make(map[Finger]*ridge.Master)
	}
	if m, ok := s.fingers[f]; ok {
		return m, nil
	}
	m := ridge.Generate(
		fmt.Sprintf("subject/%d/finger/%s", s.ID, f),
		s.src.Child("finger/"+f.String()),
		s.genOpts,
	)
	s.fingers[f] = m
	return m, nil
}

// CaptureSource returns a deterministic randomness source for one capture
// event of this subject, keyed by device and sample index.
func (s *Subject) CaptureSource(deviceID string, sample int) *rng.Source {
	return s.src.Child(fmt.Sprintf("capture/%s/%d", deviceID, sample))
}

// AgeHistogram returns participant counts per age group.
func (c *Cohort) AgeHistogram() map[AgeGroup]int {
	h := make(map[AgeGroup]int)
	for _, s := range c.Subjects {
		h[s.Age]++
	}
	return h
}

// EthnicityHistogram returns participant counts per ethnicity group.
func (c *Cohort) EthnicityHistogram() map[Ethnicity]int {
	h := make(map[Ethnicity]int)
	for _, s := range c.Subjects {
		h[s.Ethnicity]++
	}
	return h
}

// AgeGroups lists all age bins in display order.
func AgeGroups() []AgeGroup {
	return []AgeGroup{AgeUnder20, Age20s, Age30s, Age40s, Age50s, Age60Plus}
}

// Ethnicities lists all ethnicity bins in display order.
func Ethnicities() []Ethnicity {
	return []Ethnicity{Caucasian, Asian, AfricanAmerican, MiddleEastern, Hispanic, OtherEthnicity}
}

package population

import (
	"math"
	"sync"
	"testing"

	"fpinterop/internal/ridge"
	"fpinterop/internal/rng"
)

func testCohort(size int) *Cohort {
	return NewCohort(rng.New(2013), CohortOptions{Size: size, MeanMinutiae: 20})
}

func TestCohortDefaultSizeIs494(t *testing.T) {
	c := NewCohort(rng.New(1), CohortOptions{MeanMinutiae: 8})
	if len(c.Subjects) != 494 {
		t.Fatalf("default cohort size %d, want 494 (paper cohort)", len(c.Subjects))
	}
}

func TestCohortDeterministic(t *testing.T) {
	a := testCohort(50)
	b := testCohort(50)
	for i := range a.Subjects {
		if a.Subjects[i].Age != b.Subjects[i].Age ||
			a.Subjects[i].Ethnicity != b.Subjects[i].Ethnicity ||
			a.Subjects[i].Traits != b.Subjects[i].Traits {
			t.Fatalf("subject %d differs between equal-seed cohorts", i)
		}
	}
}

func TestDemographicsMatchFigure1(t *testing.T) {
	c := testCohort(4000)
	ages := c.AgeHistogram()
	n := float64(len(c.Subjects))
	if f := float64(ages[Age20s]) / n; math.Abs(f-0.53) > 0.04 {
		t.Fatalf("20-29 fraction %v, want ≈ 0.53 (Figure 1)", f)
	}
	eth := c.EthnicityHistogram()
	if f := float64(eth[Caucasian]) / n; math.Abs(f-0.572) > 0.04 {
		t.Fatalf("Caucasian fraction %v, want ≈ 0.572 (Figure 1)", f)
	}
}

func TestTraitsInRange(t *testing.T) {
	c := testCohort(200)
	for _, s := range c.Subjects {
		tr := s.Traits
		for name, v := range map[string]float64{
			"moisture": tr.SkinMoisture, "elasticity": tr.SkinElasticity,
			"definition": tr.RidgeDefinition, "cooperation": tr.Cooperation,
		} {
			if v < 0 || v > 1 {
				t.Fatalf("subject %d %s = %v out of [0,1]", s.ID, name, v)
			}
		}
	}
}

func TestAgeDegradesTraits(t *testing.T) {
	c := testCohort(4000)
	var youngSum, oldSum float64
	var youngN, oldN int
	for _, s := range c.Subjects {
		switch s.Age {
		case AgeUnder20, Age20s:
			youngSum += s.Traits.SkinElasticity
			youngN++
		case Age50s, Age60Plus:
			oldSum += s.Traits.SkinElasticity
			oldN++
		}
	}
	if youngN == 0 || oldN == 0 {
		t.Fatal("age bins unexpectedly empty")
	}
	if youngSum/float64(youngN) <= oldSum/float64(oldN) {
		t.Fatal("elasticity does not decrease with age")
	}
}

func TestSubjectsHaveDistinctMasters(t *testing.T) {
	c := testCohort(10)
	a := c.Subjects[0].Master()
	b := c.Subjects[1].Master()
	if a == nil || b == nil {
		t.Fatal("missing master prints")
	}
	if a.PeriodMM == b.PeriodMM && len(a.Minutiae) == len(b.Minutiae) &&
		len(a.Minutiae) > 0 && a.Minutiae[0] == b.Minutiae[0] {
		t.Fatal("two subjects share a master fingerprint")
	}
}

func TestCaptureSourceKeyed(t *testing.T) {
	c := testCohort(2)
	s := c.Subjects[0]
	a := s.CaptureSource("D0", 0)
	b := s.CaptureSource("D0", 0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same capture key gave different streams")
	}
	d := s.CaptureSource("D1", 0)
	if a.Uint64() == d.Uint64() {
		t.Fatal("different devices share capture stream")
	}
}

func TestHistogramsCoverWholeCohort(t *testing.T) {
	c := testCohort(300)
	total := 0
	for _, n := range c.AgeHistogram() {
		total += n
	}
	if total != 300 {
		t.Fatalf("age histogram covers %d of 300", total)
	}
	total = 0
	for _, n := range c.EthnicityHistogram() {
		total += n
	}
	if total != 300 {
		t.Fatalf("ethnicity histogram covers %d of 300", total)
	}
}

func TestGroupLabels(t *testing.T) {
	if Age20s.String() != "20-29" || Caucasian.String() != "Caucasian" {
		t.Fatal("labels wrong")
	}
	if len(AgeGroups()) != 6 || len(Ethnicities()) != 6 {
		t.Fatal("bin enumerations wrong")
	}
	if AgeGroup(99).String() == "" || Ethnicity(99).String() == "" {
		t.Fatal("unknown bins should render")
	}
}

func TestFingerLabels(t *testing.T) {
	if RightIndex.String() != "R-index" || LeftLittle.String() != "L-little" {
		t.Fatal("finger labels wrong")
	}
	if Finger(42).String() == "" || Finger(42).Valid() {
		t.Fatal("invalid finger handling wrong")
	}
}

func TestFingerMastersDistinctAndDeterministic(t *testing.T) {
	c := testCohort(2)
	s := c.Subjects[0]
	idx, err := s.Finger(RightIndex)
	if err != nil {
		t.Fatal(err)
	}
	if idx != s.Master() {
		t.Fatal("RightIndex must be the study master")
	}
	mid, err := s.Finger(RightMiddle)
	if err != nil {
		t.Fatal(err)
	}
	mid2, err := s.Finger(RightMiddle)
	if err != nil {
		t.Fatal(err)
	}
	if mid != mid2 {
		t.Fatal("finger master not cached")
	}
	if mid.PeriodMM == idx.PeriodMM && len(mid.Minutiae) == len(idx.Minutiae) {
		if len(mid.Minutiae) > 0 && mid.Minutiae[0] == idx.Minutiae[0] {
			t.Fatal("two fingers share a master")
		}
	}
	if _, err := s.Finger(Finger(-1)); err == nil {
		t.Fatal("expected invalid finger error")
	}
}

func TestFingerConcurrentAccess(t *testing.T) {
	c := testCohort(1)
	s := c.Subjects[0]
	var wg sync.WaitGroup
	masters := make([]*ridge.Master, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Finger(LeftThumb)
			if err != nil {
				panic(err)
			}
			masters[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if masters[i] != masters[0] {
			t.Fatal("concurrent Finger calls produced different masters")
		}
	}
}

package replica

// Replica read-scaling benchmarks: the same identify workload pushed
// through a Set with one member (a bare primary) versus three (primary
// plus two caught-up replicas). On multi-core hardware the three-member
// set spreads concurrent probes across independent galleries, so
// per-op latency under parallel load is the headline number. The pick
// benchmark pins the dispatch overhead the balancer itself adds to a
// read — it must stay in the tens of nanoseconds with zero heap
// traffic beyond the backend call.
//
// CI publishes these as BENCH_PR10.json via cmd/benchjson.

import (
	"context"
	"testing"

	"fpinterop/internal/gallery"
	"fpinterop/internal/shard"
)

// benchSet builds a Set whose members each hold a full copy of the
// fixture gallery — the steady state a caught-up replica group serves
// from.
func benchSet(b *testing.B, members int) *Set {
	b.Helper()
	gal, _ := fixtures(b)
	backends := make([]shard.Backend, members)
	for m := range backends {
		store := gallery.New(nil)
		for i, tpl := range gal {
			if err := store.Enroll(subjectID(i), "D0", tpl); err != nil {
				b.Fatal(err)
			}
		}
		backends[m] = shard.NewLocal(subjectID(m), store)
	}
	return NewSet("bench", backends[0], backends[1:], SetOptions{})
}

func benchIdentify(b *testing.B, members int) {
	set := benchSet(b, members)
	_, probes := fixtures(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			probe := probes[i%len(probes)]
			i++
			cands, _, err := set.IdentifyDetailed(context.Background(), probe, 3)
			if err != nil {
				b.Fatal(err)
			}
			if len(cands) == 0 {
				b.Fatal("empty ranking")
			}
		}
	})
}

func BenchmarkReplicaIdentifyMembers1(b *testing.B) { benchIdentify(b, 1) }
func BenchmarkReplicaIdentifyMembers3(b *testing.B) { benchIdentify(b, 3) }

// BenchmarkReplicaSetDispatch isolates the balancer itself: health
// check, member pick, inflight accounting, and metrics around a no-op
// backend read.
func BenchmarkReplicaSetDispatch(b *testing.B) {
	backends := []shard.Backend{
		&fakeBackend{name: "m0"},
		&fakeBackend{name: "m1"},
		&fakeBackend{name: "m2"},
	}
	set := NewSet("bench", backends[0], backends[1:], SetOptions{})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := set.IdentifyDetailed(ctx, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

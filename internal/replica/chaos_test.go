package replica

// Chaos acceptance test for the replica subsystem: one WAL-backed
// primary and two followers serve a replica set over real TCP; a
// replica process is killed mid-identify under concurrent write load.
// The bar is the PR's acceptance criteria: zero acked writes lost,
// every read answered, and once the survivors catch up, identify
// rankings bit-identical to a single gallery.Store holding the same
// enrollments.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/shard"
	"fpinterop/internal/wal"
)

// replicaNode is one follower: a local gallery kept in sync from the
// primary, served read-only over its own listener.
type replicaNode struct {
	store  *gallery.Store
	f      *Follower
	srv    *matchsvc.Server
	addr   string
	cancel context.CancelFunc
	done   chan struct{}
}

func startReplicaNode(t *testing.T, primaryAddr string) *replicaNode {
	t.Helper()
	store := gallery.New(nil)
	cli, err := matchsvc.Dial(primaryAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n := &replicaNode{
		store: store,
		f:     NewFollower(store, cli, FollowerOptions{Interval: 3 * time.Millisecond}),
		srv:   matchsvc.NewServer(ReadOnlyGallery{Store: store}, nil),
		done:  make(chan struct{}),
	}
	addr, err := n.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = addr
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); n.srv.Serve(ctx) }()
	go func() { defer wg.Done(); n.f.Run(ctx) }()
	go func() { wg.Wait(); cli.Close(); close(n.done) }()
	t.Cleanup(func() { n.kill() })
	return n
}

// kill tears the node down abruptly — listener and sync loop both die,
// like a crashed process. Idempotent.
func (n *replicaNode) kill() {
	n.cancel()
	n.srv.Close()
	<-n.done
}

func TestChaosKillReplicaMidIdentifyUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real listeners and load")
	}
	gal, probes := fixtures(t)

	// Primary: WAL-backed store over TCP.
	ws, err := wal.Open(t.TempDir(), gallery.New(nil), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	psrv := matchsvc.NewServer(ws, nil)
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pctx, pcancel := context.WithCancel(context.Background())
	pdone := make(chan error, 1)
	go func() { pdone <- psrv.Serve(pctx) }()
	defer func() { pcancel(); psrv.Close(); <-pdone }()

	r1 := startReplicaNode(t, paddr)
	r2 := startReplicaNode(t, paddr)

	dial := func(addr string) *shard.Remote {
		cli, err := matchsvc.Dial(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		return shard.NewRemote(addr, cli)
	}
	set := NewSet("slot0", dial(paddr), []shard.Backend{dial(r1.addr), dial(r2.addr)},
		SetOptions{FailureThreshold: 2})
	ctx := context.Background()

	// Seed half the cohort so reads have something to rank, and let the
	// replicas catch up before the storm.
	half := len(gal) / 2
	for i := 0; i < half; i++ {
		if err := set.Enroll(ctx, subjectID(i), "D0", gal[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp := func(f *Follower) {
		deadline := time.Now().Add(5 * time.Second)
		for f.LSN() != ws.LSN() {
			if time.Now().After(deadline) {
				t.Fatalf("replica stuck at lsn %d, primary at %d", f.LSN(), ws.LSN())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitCaughtUp(r1.f)
	waitCaughtUp(r2.f)

	// Load: a writer enrolls the second half while readers identify
	// nonstop. Mid-storm, one replica dies.
	var (
		acked      []string
		ackedMu    sync.Mutex
		reads      atomic.Int64
		readErrs   atomic.Int64
		stop       = make(chan struct{})
		readerWG   sync.WaitGroup
		readErrSet sync.Map
	)
	for w := 0; w < 4; w++ {
		readerWG.Add(1)
		go func(w int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				probe := probes[(w+i)%half]
				rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				_, _, err := set.IdentifyDetailed(rctx, probe, 3)
				cancel()
				reads.Add(1)
				if err != nil {
					readErrs.Add(1)
					readErrSet.Store(err.Error(), true)
				}
			}
		}(w)
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(30 * time.Millisecond)
		r1.kill()
	}()

	for i := half; i < len(gal); i++ {
		if err := set.Enroll(ctx, subjectID(i), "D0", gal[i]); err != nil {
			t.Fatalf("enroll %d under chaos: %v", i, err)
		}
		ackedMu.Lock()
		acked = append(acked, subjectID(i))
		ackedMu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	<-killed
	time.Sleep(50 * time.Millisecond) // keep reading against the dead member for a while
	close(stop)
	readerWG.Wait()

	if reads.Load() == 0 {
		t.Fatal("no reads issued during the storm")
	}
	// Acceptance: every read answered. A dead member costs in-set
	// failover, not an error surfaced to the caller.
	if readErrs.Load() != 0 {
		var msgs []string
		readErrSet.Range(func(k, _ any) bool { msgs = append(msgs, k.(string)); return false })
		t.Fatalf("%d of %d reads failed during the kill (e.g. %v)", readErrs.Load(), reads.Load(), msgs)
	}

	// Acceptance: zero acked writes lost — every acked enrollment is on
	// the primary (the WAL acked it) and reaches the surviving replica.
	for i := 0; i < half; i++ {
		if !ws.Has(subjectID(i)) {
			t.Fatalf("pre-storm enrollment %q lost", subjectID(i))
		}
	}
	ackedMu.Lock()
	for _, id := range acked {
		if !ws.Has(id) {
			t.Fatalf("acked enrollment %q missing from primary", id)
		}
	}
	ackedMu.Unlock()
	waitCaughtUp(r2.f)
	t.Logf("storm summary: %d reads answered, 0 failed; %d live enrollments acked; survivor lag %d",
		reads.Load(), len(acked), r2.f.Lag())

	// Acceptance: post-catch-up identify rankings bit-identical to a
	// single store with the same enrollments — on the surviving replica
	// and through the set.
	// The reference store enrolls through the same codec round trip the
	// wire applies (marshal quantizes once), so "bit-identical" compares
	// matcher output, not codec quantization.
	ref := gallery.New(nil)
	for i, tpl := range gal {
		raw, err := minutiae.Marshal(tpl)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := minutiae.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Enroll(subjectID(i), "D0", rt); err != nil {
			t.Fatal(err)
		}
	}
	for pi := range probes {
		// Probes quantize on the wire the same way enrollments do.
		raw, err := minutiae.Marshal(probes[pi])
		if err != nil {
			t.Fatal(err)
		}
		probe, err := minutiae.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.IdentifyDetailed(probe, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r2.store.IdentifyDetailed(probe, 5)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, fmt.Sprintf("replica, probe %d", pi), got, want)
		sgot, _, err := set.IdentifyDetailed(ctx, probe, 5)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, fmt.Sprintf("set, probe %d", pi), sgot, want)
	}
}

// assertSameRanking demands bit-identical candidate lists: same IDs in
// the same order with exactly equal scores.
func assertSameRanking(t *testing.T, where string, got, want []gallery.Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d candidates, want %d", where, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: rank %d is %q, want %q", where, i, got[i].ID, want[i].ID)
		}
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: rank %d (%s) score %v, want bit-identical %v",
				where, i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

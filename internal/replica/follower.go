package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
	"fpinterop/internal/wal"
)

// DefaultSyncInterval is how often a Follower polls the primary's tail
// when the caller does not choose a cadence. Short enough that replica
// staleness stays in the tens of milliseconds under steady write load.
const DefaultSyncInterval = 75 * time.Millisecond

// ErrReadOnlyReplica is returned when a write lands on a replica-mode
// server: replicas only accept state from their primary's log.
var ErrReadOnlyReplica = errors.New("replica: store is a read-only replica; write to the primary")

// FollowerOptions configures the catch-up loop.
type FollowerOptions struct {
	// Interval between tail polls in Run. 0 means DefaultSyncInterval.
	Interval time.Duration
	// MaxBytes bounds one tail page or snapshot chunk (0 lets the wire
	// layer choose its budget).
	MaxBytes int
	// Metrics, when non-nil, registers the follower's families there.
	Metrics *obs.Registry
	// Shard labels the metrics; defaults to "0".
	Shard string
}

// Follower keeps a local gallery caught up with a WAL-backed primary
// over the matchsvc sync ops: it bootstraps from a chunked snapshot
// transfer, then polls the log tail above its applied LSN, restarting
// from a fresh snapshot when compaction truncates the history it needs.
// Reads of the local gallery are safe at any time — applied records are
// whole and in order, the replica is just ≤ Lag records behind.
type Follower struct {
	store *gallery.Store
	cli   *matchsvc.Client
	opt   FollowerOptions

	lsn        atomic.Uint64
	primaryLSN atomic.Uint64

	lag       *obs.Gauge
	applied   *obs.Counter
	restores  *obs.Counter
	syncFails *obs.Counter
}

// NewFollower wires a local gallery to a primary reachable through cli.
// The caller keeps ownership of both; the follower only mutates the
// gallery through snapshot restores and record application.
func NewFollower(store *gallery.Store, cli *matchsvc.Client, opt FollowerOptions) *Follower {
	if opt.Interval <= 0 {
		opt.Interval = DefaultSyncInterval
	}
	if opt.Shard == "" {
		opt.Shard = "0"
	}
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f := &Follower{store: store, cli: cli, opt: opt}
	f.lag = reg.GaugeVec("replica_lsn_lag",
		"Primary LSN minus this replica's applied LSN; 0 when caught up.", "shard").With(opt.Shard)
	f.applied = reg.CounterVec("replica_records_applied_total",
		"WAL records applied from the primary.", "shard").With(opt.Shard)
	f.restores = reg.CounterVec("replica_snapshot_restores_total",
		"Full snapshot restores (bootstrap or post-compaction restart).", "shard").With(opt.Shard)
	f.syncFails = reg.CounterVec("replica_sync_errors_total",
		"Failed sync rounds in the Run loop.", "shard").With(opt.Shard)
	return f
}

// LSN is the highest log record applied locally.
func (f *Follower) LSN() uint64 { return f.lsn.Load() }

// PrimaryLSN is the primary's LSN as of the last completed sync round.
func (f *Follower) PrimaryLSN() uint64 { return f.primaryLSN.Load() }

// Lag is PrimaryLSN minus LSN — how many acked primary mutations this
// replica has not applied yet, as of the last sync round. This is the
// replica's staleness bound: a read served here can miss at most Lag
// acknowledged writes.
func (f *Follower) Lag() uint64 {
	p, l := f.primaryLSN.Load(), f.lsn.Load()
	if p <= l {
		return 0
	}
	return p - l
}

func (f *Follower) publishLag() { f.lag.Set(int64(f.Lag())) }

// Sync runs catch-up rounds until the replica has applied every record
// the primary had when the last round started. The first call (LSN 0
// against a compacted primary) bootstraps via snapshot restore.
func (f *Follower) Sync(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		page, err := f.cli.SyncTail(ctx, f.lsn.Load(), f.opt.MaxBytes)
		if err != nil {
			return err
		}
		f.primaryLSN.Store(page.PrimaryLSN)
		if page.Truncated {
			if err := f.restore(ctx); err != nil {
				return err
			}
			continue
		}
		if len(page.Records) == 0 {
			f.publishLag()
			return nil
		}
		for _, rec := range page.Records {
			if rec.LSN <= f.lsn.Load() {
				return fmt.Errorf("replica: tail went backwards: record lsn %d at cursor %d",
					rec.LSN, f.lsn.Load())
			}
			if err := wal.ApplyRecord(f.store, rec); err != nil {
				return err
			}
			f.lsn.Store(rec.LSN)
			f.applied.Inc()
		}
		f.publishLag()
	}
}

// restore replaces the local gallery with a fresh snapshot from the
// primary, pulled in chunks under the wire frame cap.
func (f *Follower) restore(ctx context.Context) error {
	first, err := f.cli.SyncSnapshot(ctx, 0, 0, f.opt.MaxBytes)
	if err != nil {
		return err
	}
	stream := append([]byte(nil), first.Data...)
	for int64(len(stream)) < first.Total {
		chunk, err := f.cli.SyncSnapshot(ctx, first.LSN, int64(len(stream)), f.opt.MaxBytes)
		if err != nil {
			if isSnapshotExpired(err) {
				// The primary re-captured mid-transfer; start over.
				return f.restore(ctx)
			}
			return err
		}
		if chunk.LSN != first.LSN || chunk.Total != first.Total || len(chunk.Data) == 0 {
			return fmt.Errorf("replica: snapshot transfer drifted (lsn %d→%d, total %d→%d, %d-byte chunk)",
				first.LSN, chunk.LSN, first.Total, chunk.Total, len(chunk.Data))
		}
		stream = append(stream, chunk.Data...)
	}
	_, entries, err := wal.DecodeSnapshot(bytes.NewReader(stream))
	if err != nil {
		return err
	}
	if err := f.store.ReplaceAll(entries); err != nil {
		return err
	}
	f.lsn.Store(first.LSN)
	f.restores.Inc()
	f.publishLag()
	return nil
}

// isSnapshotExpired recognizes the primary's capture-expired refusal,
// translated to the wal sentinel at the wire boundary.
func isSnapshotExpired(err error) bool {
	return errors.Is(err, wal.ErrSnapshotExpired)
}

// Run polls Sync on the configured interval until ctx is done. Errors
// are counted and retried — a replica must survive primary restarts and
// network trouble, catching up when the far side returns.
func (f *Follower) Run(ctx context.Context) {
	ticker := time.NewTicker(f.opt.Interval)
	defer ticker.Stop()
	for {
		if err := f.Sync(ctx); err != nil && ctx.Err() == nil {
			f.syncFails.Inc()
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// ReadOnlyGallery adapts a replica's local gallery to the matchsvc
// Gallery contract with writes refused: a replica-mode server answers
// Verify/Identify/Has/Scan/Len from local state and tells writers to go
// to the primary.
type ReadOnlyGallery struct {
	*gallery.Store
}

// Enroll refuses: replicas apply primary log records only.
func (ReadOnlyGallery) Enroll(id, deviceID string, tpl *minutiae.Template) error {
	return ErrReadOnlyReplica
}

// Remove refuses: replicas apply primary log records only.
func (ReadOnlyGallery) Remove(id string) error {
	return ErrReadOnlyReplica
}

package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fpinterop/internal/gallery"
	"fpinterop/internal/matchsvc"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/population"
	"fpinterop/internal/rng"
	"fpinterop/internal/sensor"
	"fpinterop/internal/wal"
)

// Captured templates are the expensive fixture; build one shared set.
var (
	tplOnce   sync.Once
	tplGal    []*minutiae.Template // D0 sample 0 — enrollments
	tplProbes []*minutiae.Template // D1 sample 1 — cross-device probes
	tplErr    error
)

const tplCount = 16

func fixtures(t testing.TB) (gal, probes []*minutiae.Template) {
	t.Helper()
	tplOnce.Do(func() {
		cohort := population.NewCohort(rng.New(20130624), population.CohortOptions{Size: tplCount})
		d0, _ := sensor.ProfileByID("D0")
		d1, _ := sensor.ProfileByID("D1")
		for _, s := range cohort.Subjects {
			g, err := d0.CaptureSubject(s, 0, sensor.CaptureOptions{})
			if err != nil {
				tplErr = err
				return
			}
			p, err := d1.CaptureSubject(s, 1, sensor.CaptureOptions{})
			if err != nil {
				tplErr = err
				return
			}
			tplGal = append(tplGal, g.Template)
			tplProbes = append(tplProbes, p.Template)
		}
	})
	if tplErr != nil {
		t.Fatal(tplErr)
	}
	return tplGal, tplProbes
}

func subjectID(i int) string { return fmt.Sprintf("subject-%04d", i) }

// startPrimary serves a WAL-backed store over a loopback listener and
// returns the store plus a connected client.
func startPrimary(t *testing.T, ws *wal.Store) *matchsvc.Client {
	t.Helper()
	srv := matchsvc.NewServer(ws, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(sctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	cli, err := matchsvc.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func openPrimary(t *testing.T) *wal.Store {
	t.Helper()
	ws, err := wal.Open(t.TempDir(), gallery.New(nil), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	return ws
}

// wantMirror fails unless the replica gallery holds exactly the
// primary's entries, templates byte-identical.
func wantMirror(t *testing.T, replica *gallery.Store, ws *wal.Store) {
	t.Helper()
	got, want := replica.Scan("", 1<<20), ws.Scan("", 1<<20)
	if len(got) != len(want) {
		t.Fatalf("replica holds %d entries, primary %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].DeviceID != want[i].DeviceID {
			t.Fatalf("entry %d: %q/%q vs %q/%q", i, got[i].ID, got[i].DeviceID, want[i].ID, want[i].DeviceID)
		}
		gb, err := minutiae.Marshal(got[i].Template)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := minutiae.Marshal(want[i].Template)
		if err != nil {
			t.Fatal(err)
		}
		if string(gb) != string(wb) {
			t.Fatalf("entry %q template bytes differ", got[i].ID)
		}
	}
}

func TestFollowerTailsFromEmpty(t *testing.T) {
	gal, _ := fixtures(t)
	ws := openPrimary(t)
	cli := startPrimary(t, ws)
	local := gallery.New(nil)
	f := NewFollower(local, cli, FollowerOptions{})
	ctx := context.Background()

	for i, tpl := range gal[:6] {
		if err := ws.Enroll(subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if f.LSN() != ws.LSN() || f.Lag() != 0 {
		t.Fatalf("follower at lsn %d lag %d, primary at %d", f.LSN(), f.Lag(), ws.LSN())
	}
	wantMirror(t, local, ws)

	// Incremental rounds: more enrolls and a removal arrive as tail
	// records, not a fresh snapshot.
	for i, tpl := range gal[6:9] {
		if err := ws.Enroll(subjectID(6+i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Remove(subjectID(2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	wantMirror(t, local, ws)
	if f.restores != nil && f.restores.Value() != 0 {
		t.Fatalf("tail-only catch-up performed %d snapshot restores", f.restores.Value())
	}
}

func TestFollowerBootstrapsAfterCompaction(t *testing.T) {
	gal, _ := fixtures(t)
	ws := openPrimary(t)
	for i, tpl := range gal[:5] {
		if err := ws.Enroll(subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction discards the log the replica would have tailed: its
	// first sync must detect the gap and restore from a snapshot.
	if err := ws.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Enroll(subjectID(5), "D0", gal[5]); err != nil {
		t.Fatal(err)
	}
	cli := startPrimary(t, ws)
	local := gallery.New(nil)
	// A tiny chunk budget forces the multi-chunk snapshot path.
	f := NewFollower(local, cli, FollowerOptions{MaxBytes: 700})
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.restores.Value() != 1 {
		t.Fatalf("restores = %d, want 1", f.restores.Value())
	}
	wantMirror(t, local, ws)
	if f.Lag() != 0 {
		t.Fatalf("lag = %d after full sync", f.Lag())
	}
}

func TestFollowerRunCatchesUpContinuously(t *testing.T) {
	gal, _ := fixtures(t)
	ws := openPrimary(t)
	cli := startPrimary(t, ws)
	local := gallery.New(nil)
	f := NewFollower(local, cli, FollowerOptions{Interval: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	for i, tpl := range gal[:8] {
		if err := ws.Enroll(subjectID(i), "D0", tpl); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.LSN() != ws.LSN() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, primary at %d", f.LSN(), ws.LSN())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	wantMirror(t, local, ws)
}

func TestFollowerSurvivesPrimaryOutage(t *testing.T) {
	gal, _ := fixtures(t)
	ws := openPrimary(t)

	srv := matchsvc.NewServer(ws, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithCancel(context.Background())
	sdone := make(chan error, 1)
	go func() { sdone <- srv.Serve(sctx) }()
	cli, err := matchsvc.Dial(addr, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	local := gallery.New(nil)
	f := NewFollower(local, cli, FollowerOptions{})
	if err := ws.Enroll(subjectID(0), "D0", gal[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Take the primary's listener down: sync rounds fail but return
	// errors rather than wedging, and local reads keep working.
	scancel()
	srv.Close()
	<-sdone
	if err := f.Sync(context.Background()); err == nil {
		t.Fatal("sync against a dead primary reported success")
	}
	if !local.Has(subjectID(0)) {
		t.Fatal("local state lost during outage")
	}
}

func TestReadOnlyGalleryRefusesWrites(t *testing.T) {
	gal, _ := fixtures(t)
	store := gallery.New(nil)
	if err := store.Enroll(subjectID(0), "D0", gal[0]); err != nil {
		t.Fatal(err)
	}
	ro := ReadOnlyGallery{Store: store}
	if err := ro.Enroll("x", "D0", gal[1]); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("enroll: %v", err)
	}
	if err := ro.Remove(subjectID(0)); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("remove: %v", err)
	}
	// Reads pass through to the wrapped store.
	if !ro.Has(subjectID(0)) {
		t.Fatal("read-only wrapper lost reads")
	}
	if ro.Len() != 1 {
		t.Fatal("len mismatch")
	}
	// And the wrapper satisfies the wire server's backend contract.
	var _ matchsvc.Gallery = ro
	var _ matchsvc.Scanner = ro
	var _ matchsvc.Haser = ro
}

// Package replica adds per-shard read replication: a Set groups one
// primary and N read replicas behind the shard.Backend interface, so a
// ring slot that used to be a single machine becomes a replica group
// without the router changing shape. Writes (Enroll, EnrollBatch,
// Remove) go to the primary alone and keep the existing WAL ack
// discipline; reads (Verify, Identify) balance across healthy members
// and fail over inside the set, so killing one replica mid-identify
// loses no reads. A replica catches up from the primary over the wire
// — snapshot transfer plus WAL tail streaming (the Follower) — and its
// staleness is observable as an LSN-lag gauge.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/obs"
	"fpinterop/internal/shard"
)

// DefaultFailureThreshold sidelines a member after this many
// consecutive read failures, mirroring the shard router's health
// machinery.
const DefaultFailureThreshold = 3

// SetOptions configures a replica set.
type SetOptions struct {
	// FailureThreshold is how many consecutive failed reads sideline a
	// member (readmitted on its next success, typically a health
	// probe). 0 means DefaultFailureThreshold.
	FailureThreshold int
	// Metrics, when non-nil, registers the set's families there,
	// labeled by set and member name.
	Metrics *obs.Registry
}

// member is one copy of the shard plus its health state. Health is
// all-atomic: reads are the hot path and must not serialize on a
// bookkeeping lock.
type member struct {
	backend shard.Backend
	// consecFails counts consecutive read failures; crossing the
	// threshold sets degraded. Any success clears both — the readmit
	// signal, exactly like the router's per-shard machinery.
	consecFails atomic.Int32
	degraded    atomic.Bool
	// inflight counts identify/verify attempts currently on this
	// member. The balancer prefers the least-loaded member, which is
	// also what steers a hedge away from the member a stalled first
	// attempt is pinning.
	inflight atomic.Int64

	reads    *obs.Counter
	failures *obs.Counter
	degGauge *obs.Gauge
}

// Set is a replica group serving one ring slot. Member 0 is the
// primary; the rest are read replicas.
type Set struct {
	name      string
	members   []*member
	threshold int32
	// cursor breaks least-loaded ties round-robin so idle members
	// share the read load instead of member 0 absorbing it all.
	cursor    atomic.Uint64
	failovers *obs.Counter
}

// NewSet groups a primary and its read replicas under one slot name.
// The name is what the ring hashes — pass the primary's name so
// attaching replicas to an existing deployment moves no keys.
func NewSet(name string, primary shard.Backend, replicas []shard.Backend, opt SetOptions) *Set {
	if name == "" {
		name = primary.Name()
	}
	threshold := opt.FailureThreshold
	if threshold <= 0 {
		threshold = DefaultFailureThreshold
	}
	s := &Set{name: name, threshold: int32(threshold)}
	backends := append([]shard.Backend{primary}, replicas...)
	reg := opt.Metrics
	if reg == nil {
		// Metric handles are hot-path atomics with no nil receiver
		// path; a private registry keeps them real and unexported.
		reg = obs.NewRegistry()
	}
	reads := reg.CounterVec("replica_reads_total",
		"Reads served, by set and member.", "set", "member")
	fails := reg.CounterVec("replica_read_failures_total",
		"Failed reads, by set and member.", "set", "member")
	deg := reg.GaugeVec("replica_member_degraded",
		"1 when the member is sidelined after consecutive read failures.", "set", "member")
	s.failovers = reg.CounterVec("replica_read_failovers_total",
		"Reads answered by a different member after the first choice failed.", "set").With(name)
	for _, b := range backends {
		m := &member{
			backend:  b,
			reads:    reads.With(name, b.Name()),
			failures: fails.With(name, b.Name()),
			degGauge: deg.With(name, b.Name()),
		}
		s.members = append(s.members, m)
	}
	return s
}

// Name identifies the slot on the ring.
func (s *Set) Name() string { return s.name }

// Replicas reports the member count, primary included.
func (s *Set) Replicas() int { return len(s.members) }

// Primary exposes the write member (e.g. for fpis to reach its WAL).
func (s *Set) Primary() shard.Backend { return s.members[0].backend }

// record folds one read outcome into the member's health. Context
// errors are the caller giving up, not evidence about the member.
func (s *Set) record(m *member, err error) {
	if err == nil {
		m.consecFails.Store(0)
		if m.degraded.Swap(false) {
			m.degGauge.Set(0)
		}
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	m.failures.Inc()
	if m.consecFails.Add(1) >= s.threshold {
		if !m.degraded.Swap(true) {
			m.degGauge.Set(1)
		}
	}
}

// ctxErr reports whether err is the context's own error — a caller
// deadline or cancellation that says nothing about member health.
func ctxErr(ctx context.Context, err error) bool {
	return ctx.Err() != nil && err != nil
}

// pick chooses a member for one read attempt: healthy members first,
// then lowest in-flight count, round-robin among ties; members listed
// in tried (and the avoid index) are excluded. Returns -1 when every
// member is excluded. With every member degraded, degraded members
// become eligible again — someone has to answer, and a success is the
// readmit signal.
func (s *Set) pick(avoid int, tried []bool) int {
	best, bestLoad := -1, int64(1<<62)
	n := len(s.members)
	start := int(s.cursor.Add(1) % uint64(n))
	degradedToo := s.allDegraded()
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if (tried != nil && tried[i]) || i == avoid {
			continue
		}
		m := s.members[i]
		if m.degraded.Load() && !degradedToo {
			continue
		}
		if load := m.inflight.Load(); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best == -1 && avoid >= 0 && (tried == nil || !tried[avoid]) {
		// avoid was the only candidate left: serving from it beats
		// refusing the read.
		return avoid
	}
	return best
}

func (s *Set) allDegraded() bool {
	for _, m := range s.members {
		if !m.degraded.Load() {
			return false
		}
	}
	return true
}

// read runs one balanced read with in-set failover: each failed member
// is marked and the next one tried, so a member dying mid-call costs a
// retry, not the read. avoid steers the first try away from a member
// (hedging); picked, when non-nil and buffered, receives the first
// member index chosen.
func (s *Set) read(ctx context.Context, avoid int, picked chan<- int, call func(shard.Backend) error) error {
	tried := make([]bool, len(s.members))
	var lastErr error
	for attempt := 0; attempt < len(s.members); attempt++ {
		i := s.pick(avoid, tried)
		if i < 0 {
			break
		}
		tried[i] = true
		m := s.members[i]
		if picked != nil {
			select {
			case picked <- i:
			default:
			}
			picked = nil
		}
		m.inflight.Add(1)
		m.reads.Inc()
		err := call(m.backend)
		m.inflight.Add(-1)
		if ctxErr(ctx, err) {
			// The caller's deadline fired; no member can answer faster.
			return err
		}
		s.record(m, err)
		if err == nil {
			return nil
		}
		lastErr = err
		if s.failovers != nil && attempt == 0 {
			s.failovers.Inc()
		}
		// After the first failure the placement constraint yields to
		// availability: any member beats no answer.
		avoid = -1
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("replica: set %s has no eligible member", s.name)
	}
	return lastErr
}

// Enroll writes through the primary; the primary's WAL ack discipline
// is the set's ack discipline.
func (s *Set) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	return s.members[0].backend.Enroll(ctx, id, deviceID, tpl)
}

// EnrollBatch writes through the primary.
func (s *Set) EnrollBatch(ctx context.Context, items []shard.Enrollment) error {
	return s.members[0].backend.EnrollBatch(ctx, items)
}

// Remove writes through the primary.
func (s *Set) Remove(ctx context.Context, id string) error {
	return s.members[0].backend.Remove(ctx, id)
}

// Has asks the primary: it is the router's duplicate guard during
// migration, and only the primary's answer is authoritative — a
// lagging replica saying "no" could admit a duplicate enrollment.
func (s *Set) Has(ctx context.Context, id string) (bool, error) {
	return s.members[0].backend.Has(ctx, id)
}

// Scan pages from the primary: the rebalancer streams subjects out of
// it, and only the primary is guaranteed complete.
func (s *Set) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	return s.members[0].backend.Scan(ctx, afterID, max)
}

// Verify runs on a balanced healthy member, failing over inside the
// set.
func (s *Set) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	var res match.Result
	err := s.read(ctx, -1, nil, func(b shard.Backend) error {
		var cerr error
		res, cerr = b.Verify(ctx, id, probe)
		return cerr
	})
	return res, err
}

// IdentifyDetailed runs on a balanced healthy member, failing over
// inside the set. With members caught up, the answer is bit-identical
// no matter which member serves it — every member holds the same
// entries and the matcher is deterministic.
func (s *Set) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	return s.IdentifyDetailedAvoiding(ctx, probe, k, -1, nil)
}

// IdentifyDetailedAvoiding implements shard.ReplicaReader: the router
// threads the member its first attempt landed on into avoid so the
// hedge lands elsewhere, and learns this attempt's landing member from
// picked.
func (s *Set) IdentifyDetailedAvoiding(ctx context.Context, probe *minutiae.Template, k int, avoid int, picked chan<- int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	var (
		cands []gallery.Candidate
		stats gallery.IdentifyStats
	)
	err := s.read(ctx, avoid, picked, func(b shard.Backend) error {
		var cerr error
		cands, stats, cerr = b.IdentifyDetailed(ctx, probe, k)
		return cerr
	})
	if err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	return cands, stats, nil
}

// Len probes every member — it is the router's health check, so
// probing all members is what readmits a recovered replica — and
// reports the primary's count, falling back to the first healthy
// member when the primary is unreachable (reads can outlive the
// primary; writes cannot).
func (s *Set) Len(ctx context.Context) (int, error) {
	count, err := -1, error(nil)
	for i, m := range s.members {
		n, lerr := m.backend.Len(ctx)
		if ctxErr(ctx, lerr) {
			return 0, lerr
		}
		s.record(m, lerr)
		if lerr == nil && count < 0 {
			count = n
		}
		if i == 0 {
			err = lerr
		}
	}
	if count >= 0 {
		return count, nil
	}
	return 0, err
}

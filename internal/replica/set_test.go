package replica

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"fpinterop/internal/gallery"
	"fpinterop/internal/match"
	"fpinterop/internal/minutiae"
	"fpinterop/internal/shard"
)

var bg = context.Background()

// fakeBackend is a scriptable shard.Backend that records which calls
// landed on it.
type fakeBackend struct {
	name       string
	failing    atomic.Bool
	enrolls    atomic.Int64
	removes    atomic.Int64
	identifies atomic.Int64
	verifies   atomic.Int64
	lens       atomic.Int64
}

var errDown = errors.New("fake: member down")

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Enroll(ctx context.Context, id, deviceID string, tpl *minutiae.Template) error {
	f.enrolls.Add(1)
	return nil
}

func (f *fakeBackend) EnrollBatch(ctx context.Context, items []shard.Enrollment) error {
	f.enrolls.Add(int64(len(items)))
	return nil
}

func (f *fakeBackend) Remove(ctx context.Context, id string) error {
	f.removes.Add(1)
	return nil
}

func (f *fakeBackend) Has(ctx context.Context, id string) (bool, error) { return false, nil }

func (f *fakeBackend) Scan(ctx context.Context, afterID string, max int) ([]gallery.Export, error) {
	return nil, nil
}

func (f *fakeBackend) Verify(ctx context.Context, id string, probe *minutiae.Template) (match.Result, error) {
	f.verifies.Add(1)
	if f.failing.Load() {
		return match.Result{}, errDown
	}
	return match.Result{}, nil
}

func (f *fakeBackend) IdentifyDetailed(ctx context.Context, probe *minutiae.Template, k int) ([]gallery.Candidate, gallery.IdentifyStats, error) {
	f.identifies.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, gallery.IdentifyStats{}, err
	}
	if f.failing.Load() {
		return nil, gallery.IdentifyStats{}, errDown
	}
	return []gallery.Candidate{{ID: f.name}}, gallery.IdentifyStats{}, nil
}

func (f *fakeBackend) Len(ctx context.Context) (int, error) {
	f.lens.Add(1)
	if f.failing.Load() {
		return 0, errDown
	}
	return 7, nil
}

func fakeSet(t *testing.T, n int) (*Set, []*fakeBackend) {
	t.Helper()
	members := make([]*fakeBackend, n)
	for i := range members {
		members[i] = &fakeBackend{name: string(rune('a' + i))}
	}
	backends := make([]shard.Backend, 0, n-1)
	for _, m := range members[1:] {
		backends = append(backends, m)
	}
	return NewSet("", members[0], backends, SetOptions{}), members
}

func TestSetWritesGoToPrimaryOnly(t *testing.T) {
	s, members := fakeSet(t, 3)
	if err := s.Enroll(bg, "s1", "D0", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.EnrollBatch(bg, make([]shard.Enrollment, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(bg, "s1"); err != nil {
		t.Fatal(err)
	}
	if got := members[0].enrolls.Load(); got != 5 {
		t.Fatalf("primary saw %d enrolls, want 5", got)
	}
	for _, m := range members[1:] {
		if m.enrolls.Load() != 0 || m.removes.Load() != 0 {
			t.Fatalf("replica %s saw writes", m.name)
		}
	}
	if s.Name() != "a" {
		t.Fatalf("set name %q, want primary's name", s.Name())
	}
}

func TestSetReadsBalanceAcrossMembers(t *testing.T) {
	s, members := fakeSet(t, 3)
	for i := 0; i < 30; i++ {
		if _, _, err := s.IdentifyDetailed(bg, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range members {
		if n := m.identifies.Load(); n != 10 {
			t.Fatalf("member %s served %d of 30 reads; want an even 10", m.name, n)
		}
	}
}

func TestSetFailsOverAndDegrades(t *testing.T) {
	s, members := fakeSet(t, 3)
	members[1].failing.Store(true)
	// Every read is answered even though a member is down.
	for i := 0; i < 12; i++ {
		if _, _, err := s.IdentifyDetailed(bg, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !members[1].degraded(s) {
		t.Fatal("failing member not degraded after threshold")
	}
	before := members[1].identifies.Load()
	for i := 0; i < 12; i++ {
		if _, _, err := s.IdentifyDetailed(bg, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := members[1].identifies.Load(); got != before {
		t.Fatalf("degraded member still receiving reads (%d new)", got-before)
	}
	// Recovery: a Len health probe touches every member and readmits.
	members[1].failing.Store(false)
	if _, err := s.Len(bg); err != nil {
		t.Fatal(err)
	}
	if members[1].degraded(s) {
		t.Fatal("recovered member not readmitted by health probe")
	}
	before = members[1].identifies.Load()
	for i := 0; i < 9; i++ {
		if _, _, err := s.IdentifyDetailed(bg, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if members[1].identifies.Load() == before {
		t.Fatal("readmitted member got no reads")
	}
}

// degraded reports the set's view of this fake.
func (f *fakeBackend) degraded(s *Set) bool {
	for _, m := range s.members {
		if m.backend == f {
			return m.degraded.Load()
		}
	}
	return false
}

func TestSetAvoidSteersAndReportsPick(t *testing.T) {
	s, members := fakeSet(t, 3)
	for i := 0; i < 20; i++ {
		picked := make(chan int, 1)
		if _, _, err := s.IdentifyDetailedAvoiding(bg, nil, 1, 0, picked); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-picked:
			if got == 0 {
				t.Fatal("avoided member 0 was picked anyway")
			}
		default:
			t.Fatal("pick not reported")
		}
	}
	if members[0].identifies.Load() != 0 {
		t.Fatal("avoided member served a read with healthy alternatives present")
	}
}

func TestSetAvoidYieldsWhenItIsTheOnlyMember(t *testing.T) {
	s, members := fakeSet(t, 1)
	if _, _, err := s.IdentifyDetailedAvoiding(bg, nil, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if members[0].identifies.Load() != 1 {
		t.Fatal("single-member set refused a read because of avoid")
	}
}

func TestSetAllDegradedStillAnswers(t *testing.T) {
	s, members := fakeSet(t, 2)
	for _, m := range members {
		m.failing.Store(true)
	}
	for i := 0; i < 8; i++ {
		s.IdentifyDetailed(bg, nil, 1)
	}
	for _, m := range members {
		if !m.degraded(s) {
			t.Fatalf("member %s not degraded", m.name)
		}
	}
	// With every member degraded a read still tries someone — and the
	// first success readmits.
	members[1].failing.Store(false)
	var ok bool
	for i := 0; i < 4 && !ok; i++ {
		_, _, err := s.IdentifyDetailed(bg, nil, 1)
		ok = err == nil
	}
	if !ok {
		t.Fatal("no read answered after a member recovered")
	}
	if members[1].degraded(s) {
		t.Fatal("successful read did not readmit the member")
	}
}

func TestSetContextErrorDoesNotDegrade(t *testing.T) {
	s, members := fakeSet(t, 2)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	for i := 0; i < 10; i++ {
		if _, _, err := s.IdentifyDetailed(ctx, nil, 1); err == nil {
			t.Fatal("read succeeded on a canceled context")
		}
	}
	for _, m := range members {
		if m.degraded(s) {
			t.Fatalf("member %s degraded by the caller's cancellation", m.name)
		}
	}
}

func TestSetVerifyFailsOver(t *testing.T) {
	s, members := fakeSet(t, 2)
	members[0].failing.Store(true)
	members[1].failing.Store(true)
	if _, err := s.Verify(bg, "s1", nil); !errors.Is(err, errDown) {
		t.Fatalf("want the member error surfaced, got %v", err)
	}
	members[1].failing.Store(false)
	if _, err := s.Verify(bg, "s1", nil); err != nil {
		t.Fatalf("verify with one live member: %v", err)
	}
	if members[0].verifies.Load() == 0 && members[1].verifies.Load() == 0 {
		t.Fatal("no member attempted")
	}
}

func TestSetLenPrefersPrimaryFallsBack(t *testing.T) {
	s, members := fakeSet(t, 3)
	if n, err := s.Len(bg); err != nil || n != 7 {
		t.Fatalf("len = %d, %v", n, err)
	}
	members[0].failing.Store(true)
	if n, err := s.Len(bg); err != nil || n != 7 {
		t.Fatalf("len with dead primary = %d, %v; want replica fallback", n, err)
	}
	for _, m := range members {
		m.failing.Store(true)
	}
	if _, err := s.Len(bg); err == nil {
		t.Fatal("len with every member dead reported success")
	}
}
